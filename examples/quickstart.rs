//! Quickstart: co-locate two DNN services on one simulated A100 with
//! Abacus and watch the deterministic operator overlap in action.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{run_colocation, train_unified, ColocationConfig, PolicyKind, TrainerConfig};
use std::sync::Arc;

fn main() {
    // 1. The substrate: an instantiated model zoo and a calibrated A100.
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let pair = [ModelId::ResNet152, ModelId::Bert];
    println!("deploying {} + {} on {}", pair[0].name(), pair[1].name(), gpu.name);
    for m in pair {
        println!(
            "  {:<8} solo(max input) = {:5.1} ms, QoS target = {:5.1} ms",
            m.name(),
            lib.solo_ms(m, m.max_input(), &gpu),
            lib.qos_target_ms(m, &gpu),
        );
    }

    // 2. Offline phase (§5): sample operator groups the scheduler can
    //    produce, profile them on the GPU, train the MLP duration model.
    println!("\ntraining the overlap-aware latency predictor...");
    let (mlp, data) = train_unified(
        &[pair.to_vec()],
        &lib,
        &gpu,
        &noise,
        &TrainerConfig {
            samples_per_set: 800,
            runs_per_group: 5,
            ..TrainerConfig::default()
        },
    );
    let mut rng = workload::SeededRng::new(1);
    let (_, test) = data.split(0.85, &mut rng);
    println!(
        "  trained on {} profiled operator groups; held-out MAPE {:.1}%",
        data.len(),
        100.0 * predictor::eval::mape(&mlp, &test)
    );
    let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);

    // 3. Online phase (§6): serve 25 QPS per service for 15 seconds under
    //    FCFS (the Nexus/Clockwork per-GPU policy) and under Abacus.
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 15_000.0,
        seed: 42,
        ..ColocationConfig::default()
    };
    println!("\nserving 25 QPS per service for 15 s (identical workloads):");
    println!(
        "  {:<8} {:>9} {:>12} {:>12}",
        "policy", "p99 (ms)", "violations", "tput (q/s)"
    );
    for policy in [PolicyKind::Fcfs, PolicyKind::Edf, PolicyKind::Abacus] {
        let pred = (policy == PolicyKind::Abacus).then(|| mlp.clone());
        let r = run_colocation(&pair, policy, pred, &lib, &gpu, &noise, &cfg);
        println!(
            "  {:<8} {:>9.1} {:>11.1}% {:>12.1}",
            policy.name(),
            r.all.p99_latency(),
            100.0 * r.violation_ratio(),
            r.completed_qps(),
        );
    }
    println!("\nAbacus overlaps operators across the services deterministically,");
    println!("so its tail latency drops while throughput rises — the paper's core result.");
}
