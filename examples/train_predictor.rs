//! The offline pipeline of §5 as a standalone tool: sample operator groups
//! (Fig. 9), profile them (§5.2), train the three predictor families, and
//! persist the winning MLP to disk.
//!
//! ```sh
//! cargo run --release --example train_predictor -- /tmp/abacus_model.mlp
//! ```

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{
    eval, persist, sample_groups, Dataset, LinearRegression, LinearSvr, Mlp, MlpConfig,
    SvrConfig,
};
use serving::collect_profiles;
use std::sync::Arc;
use workload::SeededRng;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/abacus_model.mlp".to_string());
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let pair = [ModelId::ResNet152, ModelId::Vgg19];

    // Instance-based sampling (Fig. 9): only groups the scheduler can emit.
    let preview = sample_groups(&pair, 3, &lib, 1);
    println!("instance-based samples over ({}, {}):", pair[0].name(), pair[1].name());
    for g in &preview {
        for e in &g.entries {
            println!(
                "  {:<8} ops {:>3}..{:<3} bs {:>2} seq {:>2}",
                e.model.name(),
                e.op_start,
                e.op_end,
                e.input.batch,
                e.input.seq
            );
        }
        println!("  --");
    }

    // Profile (§5.2): run each group repeatedly on the simulated GPU.
    println!("profiling 1500 operator groups x 8 runs...");
    let t0 = std::time::Instant::now();
    let profiles = collect_profiles(
        &pair,
        &lib,
        &gpu,
        &noise,
        &serving::TrainerConfig {
            samples_per_set: 1_500,
            runs_per_group: 8,
            ..serving::TrainerConfig::default()
        },
        0,
    );
    let mean: f64 = profiles.iter().map(|p| p.mean_ms).sum::<f64>() / profiles.len() as f64;
    let cv: f64 = profiles.iter().map(|p| p.std_ms / p.mean_ms).sum::<f64>() / profiles.len() as f64;
    println!(
        "  done in {:.1?}; mean group latency {mean:.1} ms, std/mean {:.1}% (paper §5.2: 4.53%)",
        t0.elapsed(),
        100.0 * cv
    );

    // Train and compare the three families (§5.5 / Fig. 10).
    let data = Dataset::from_profiles(&profiles, &lib);
    let mut rng = SeededRng::new(7);
    let (train, test) = data.split(0.8, &mut rng);
    let mlp = Mlp::train(&train, &MlpConfig::default());
    let lr = LinearRegression::fit(&train, 1e-3);
    let svr = LinearSvr::fit(&train, &SvrConfig::default());
    println!("prediction error (MAPE, Eq. 1) on the held-out 20%:");
    println!("  linear regression : {:5.1}%", 100.0 * eval::mape(&lr, &test));
    println!("  linear SVR        : {:5.1}%", 100.0 * eval::mape(&svr, &test));
    println!("  MLP (3 x 32)      : {:5.1}%", 100.0 * eval::mape(&mlp, &test));

    // Persist the deployable artifact (§7.8: ~14 kB).
    persist::save(&mlp, &out_path).expect("cannot write model");
    println!(
        "saved {} ({:.1} kB, {} parameters)",
        out_path,
        mlp.size_bytes() as f64 / 1024.0,
        mlp.param_count()
    );
    let reloaded = persist::load(&out_path).expect("cannot reload model");
    use predictor::LatencyModel;
    let x = preview[0].features(&lib);
    assert_eq!(mlp.predict_one(&x), reloaded.predict_one(&x));
    println!("round-trip verified: reloaded model predicts identically");
}
