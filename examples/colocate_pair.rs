//! Inspect one scheduling round in detail: how the headroom-based
//! controller forms an operator group, what the predictor certifies, and
//! what the segmental executor actually measures.
//!
//! ```sh
//! cargo run --release --example colocate_pair
//! ```

use abacus_core::{plan_group, Query, SearchResult, SegmentalExecutor};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{train_unified, TrainerConfig};
use std::sync::Arc;

fn main() {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let models = [ModelId::ResNet152, ModelId::InceptionV3, ModelId::Bert];

    println!("training a unified predictor over the triplet...");
    let (mlp, _) = train_unified(
        &[models.to_vec()],
        &lib,
        &gpu,
        &noise,
        &TrainerConfig {
            samples_per_set: 800,
            runs_per_group: 4,
            ..TrainerConfig::default()
        },
    );
    let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);

    // Three in-flight queries with different QoS headrooms (Fig. 12's
    // scenario): the Bert query is most urgent.
    let mk = |id, m: ModelId, arrival: f64| {
        let input = m.max_input();
        Query::new(id, m, input, arrival, lib.qos_target_ms(m, &gpu), lib.graph(m, input).len())
    };
    let now = 30.0;
    let queries = [mk(0, ModelId::Bert, 10.0), mk(1, ModelId::ResNet152, 25.0), mk(2, ModelId::InceptionV3, 28.0)];
    let mut sorted: Vec<&Query> = queries.iter().collect();
    sorted.sort_by(|a, b| a.headroom_ms(now).total_cmp(&b.headroom_ms(now)));
    println!("\nqueries at t = {now} ms (sorted by Eq. 2 headroom):");
    for q in &sorted {
        println!(
            "  {:<8} headroom {:5.1} ms, {} operators remaining",
            q.model.name(),
            q.headroom_ms(now),
            q.remaining_ops()
        );
    }

    // Multi-way search under the head query's headroom (§6.2–6.3).
    let budget = sorted[0].headroom_ms(now);
    match plan_group(&sorted, budget, mlp.as_ref(), &lib, 4) {
        SearchResult::Planned(plan) => {
            println!("\noperator schedule group (budget {budget:.1} ms):");
            for e in &plan.entries {
                let q = queries.iter().find(|q| q.id == e.query_id).unwrap();
                println!(
                    "  {:<8} ops {:>3}..{:<3} ({} of {})",
                    q.model.name(),
                    e.op_start,
                    e.op_end,
                    e.len(),
                    q.n_ops
                );
            }
            println!(
                "  predicted duration {:.1} ms in {} prediction round(s)",
                plan.predicted_ms, plan.prediction_rounds
            );

            // Execute the exact group on the simulated GPU and compare.
            let mut exec = SegmentalExecutor::new(gpu.clone(), noise, lib.clone(), 7);
            let spec = plan.to_spec(|id| queries.iter().find(|q| q.id == id).unwrap(), &lib);
            let out = exec.execute(&spec);
            let seq = spec.sequential_ms(&lib, &gpu);
            println!("\nsegmental executor measurement:");
            println!("  measured group duration : {:.1} ms", out.duration_ms);
            println!("  sequential would take   : {seq:.1} ms");
            println!(
                "  overlap gain            : {:.0}% ({} MB of intermediates held)",
                100.0 * (seq / out.duration_ms - 1.0),
                (out.saved_bytes / 1e6).round()
            );
            println!(
                "  prediction error        : {:.1}%",
                100.0 * (plan.predicted_ms - out.duration_ms).abs() / out.duration_ms
            );
        }
        SearchResult::Infeasible { .. } => {
            println!("head query infeasible — it would be dropped (§6.2)");
        }
    }
}
