//! Cluster-scale serving (§7.6): a small Abacus + K8s-style cluster vs
//! Clockwork replaying a bursty MAF-like trace, with the §7.9 autoscaler
//! reading the resulting signals.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use cluster::{
    build_timeline, cluster_workload, run_cluster, run_cluster_detailed, summarize,
    AutoscalePolicy, ClusterConfig, ClusterSystem, NodeSignals,
};
use dnn_models::ModelLibrary;
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{train_unified, TrainerConfig};
use std::sync::Arc;
use workload::synthesize_maf_like;

fn main() {
    let lib = Arc::new(ModelLibrary::new());
    let v100 = GpuSpec::v100();
    let noise = NoiseModel::calibrated();

    // A 2-node × 2-GPU cluster and an 8-minute diurnal trace.
    let minutes = 8;
    let trace = synthesize_maf_like(minutes, 200.0, 11);
    let cfg = ClusterConfig {
        nodes: 2,
        gpus_per_node: 2,
        ..ClusterConfig::paper(trace, 3)
    };
    println!(
        "cluster: {} nodes x {} {} GPUs, quad deployment {:?}, QoS {} ms",
        cfg.nodes,
        cfg.gpus_per_node,
        v100.name,
        cfg.models.iter().map(|m| m.name()).collect::<Vec<_>>(),
        cfg.qos_ms
    );

    println!("training the V100 quad predictor...");
    let (mlp, _) = train_unified(
        std::slice::from_ref(&cfg.models),
        &lib,
        &v100,
        &noise,
        &TrainerConfig {
            samples_per_set: 800,
            runs_per_group: 4,
            ..TrainerConfig::default()
        },
    );
    let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);

    let (arrivals, inputs) = cluster_workload(&cfg, &lib);
    let reqs: Vec<u32> = inputs.iter().map(|i| i.batch).collect();
    println!("replaying {} queries over {minutes} minutes...\n", arrivals.len());

    let detailed = run_cluster_detailed(
        ClusterSystem::AbacusK8s,
        &cfg,
        &lib,
        &v100,
        &noise,
        Some(mlp),
    );
    let abacus = detailed.records;
    let clockwork = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &v100, &noise, None);

    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>9} {:>9}",
        "minute", "offered", "abacus r/s", "clock r/s", "aba p99", "clk p99"
    );
    let tl_a = build_timeline(&arrivals, &reqs, &abacus, minutes);
    let tl_c = build_timeline(&arrivals, &reqs, &clockwork, minutes);
    for (a, c) in tl_a.iter().zip(&tl_c) {
        println!(
            "{:>6} {:>9.0} {:>11.0} {:>11.0} {:>9.1} {:>9.1}",
            a.minute, a.offered_rps, a.achieved_rps, c.achieved_rps, a.p99_ms, c.p99_ms
        );
    }

    let sa = summarize(&abacus, 1, minutes);
    let sc = summarize(&clockwork, 1, minutes);
    println!(
        "\nsteady state: Abacus {:.0} r/s ({:.1}% drops) vs Clockwork {:.0} r/s ({:.1}% drops)",
        sa.mean_rps,
        100.0 * sa.drop_ratio,
        sc.mean_rps,
        100.0 * sc.drop_ratio
    );

    // Feed the autoscaler the *measured* per-GPU signals (§7.9).
    let horizon = minutes as f64 * 60_000.0;
    let fleet: Vec<NodeSignals> = detailed
        .gpu_usage
        .iter()
        .map(|u| NodeSignals {
            busy_fraction: u.busy_fraction(horizon),
            violation_ratio: sa.drop_ratio,
            overlap_gain: u.overlap_gain(),
        })
        .collect();
    for (g, s) in fleet.iter().enumerate() {
        println!(
            "gpu {g}: busy {:.0}%, overlap gain {:.2}x",
            100.0 * s.busy_fraction,
            s.overlap_gain
        );
    }
    println!(
        "autoscaler decision for this fleet: {:?}",
        AutoscalePolicy::default().decide_fleet(&fleet)
    );
}
