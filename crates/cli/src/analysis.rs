//! Latency anatomy (extension) — decomposes end-to-end latency into
//! queueing delay and service time per policy (§3.3's first instability
//! factor), and dumps a kernel-span trace of one operator group so the
//! deterministic overlap can be inspected directly.

use crate::common::{as_model, ensure_predictor, Options};
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{Engine, GpuSpec, NoiseModel};
use serving::{run_colocation, ColocationConfig, PolicyKind};
use std::sync::Arc;

/// Run the latency-anatomy study and emit `results/analysis.csv` +
/// `results/trace.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let pair = [ModelId::ResNet152, ModelId::Bert];
    let mlp = ensure_predictor("ablation_res152_bert", &[pair.to_vec()], &lib, &gpu, opts);

    let cfg = ColocationConfig {
        qps_per_service: opts.qos_load_total() / 2.0,
        horizon_ms: opts.scale.horizon_ms(),
        seed: opts.seed,
        ..ColocationConfig::default()
    };
    let mut csv = CsvWriter::create(
        opts.csv_path("analysis"),
        &[
            "policy",
            "mean_queue_ms",
            "queue_p50_ms",
            "queue_p99_ms",
            "mean_service_ms",
            "mean_latency_ms",
            "p99_ms",
        ],
    )
    .expect("csv");
    let mut table = Table::new(vec!["policy", "queue", "q50", "q99", "service", "mean e2e", "p99"]);
    println!(
        "Latency anatomy — ({},{}) at {} QPS aggregate (completed queries; queue \
         percentiles {})",
        pair[0].name(),
        pair[1].name(),
        opts.qos_load_total(),
        if opts.sketch { "from the streaming sketch" } else { "exact" }
    );
    for policy in PolicyKind::ALL {
        let pred = (policy == PolicyKind::Abacus).then(|| as_model(&mlp));
        let r = run_colocation(&pair, policy, pred, &lib, &gpu, &noise, &cfg);
        let queue = r.all.mean_queue_ms();
        let mean = r.all.mean_latency();
        let service = mean - queue;
        // `--sketch` swaps the q50/q99 columns to the mergeable streaming
        // sketch (bounded memory, within its documented rank-error of the
        // exact pool); the default stays the exact kept-every-delay path.
        let (q50, q99) = if opts.sketch {
            (r.all.queue_sketch_percentile(50.0), r.all.queue_sketch_percentile(99.0))
        } else {
            (r.all.queue_p50_ms(), r.all.queue_p99_ms())
        };
        let row = [queue, q50, q99, service, mean, r.all.p99_latency()];
        csv.write_record(policy.name(), &row).expect("row");
        table.row_f64(policy.name().to_string(), &row, 1);
    }
    csv.flush().expect("flush");
    println!("{}", table.render());
    println!(
        "Abacus trades a little service time (overlap contention) for much\n\
         less queueing — the sequential policies serialise the queue."
    );

    // Kernel-span trace of one overlapped group.
    let mut engine = Engine::new(gpu.clone(), noise, opts.seed);
    engine.enable_trace();
    let streams = [
        (ModelId::ResNet152, 0usize, 120usize),
        (ModelId::Bert, 0, 173),
    ];
    for (m, s, e) in streams {
        let ks = lib.graph(m, m.max_input()).kernels_range(s, e);
        engine.add_stream(ks, 0.0);
    }
    engine.run_until_idle();
    telemetry::export::kernel_spans_csv(opts.csv_path("trace"), engine.trace()).expect("trace csv");
    println!(
        "kernel-span trace of one (Res152[0..120] ∥ Bert[0..173]) group: {} spans -> {}",
        engine.trace().len(),
        opts.csv_path("trace").display()
    );
}
