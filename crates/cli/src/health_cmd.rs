//! `health` — the streaming run-health study: how quickly do the online
//! drift detectors and SLO burn-rate monitors flag a fault after its
//! onset?
//!
//! Runs plain Abacus over the fault-plan family of the `faults` sweep,
//! but with the run-health monitors enabled ([`Telemetry::with_health`])
//! and the plan split into its components so each detector sees its
//! matched stimulus:
//!
//! * `bias`  — predictor under-prediction only, present from `t = 0`
//!   (drift-detector stimulus; detection latency is measured from 0);
//! * `burst` — the mid-run arrival surge only, onset at 2 000 ms
//!   (burn-rate stimulus; latency measured from the window start);
//! * `full`  — the composite [`FaultPlan::at_intensity`] scenario;
//! * `none`  — the healthy baseline, which also reproduces the solo-round
//!   out-of-distribution finding *online*: solo rounds alarm the solo-width
//!   drift class while every multi-way class stays quiet.
//!
//! Outputs: `health.csv` (one row per cell), `health.json` (cells plus
//! their full alert streams), and `flight.json` (the first tripped cell's
//! flight-recorder dump, or the canonical empty dump). All alert
//! timestamps are the simulation clock, so every byte — serial or
//! parallel — reproduces; `scripts/bench_check.sh` gates on that.

use crate::common::{as_model, ensure_predictor, map_cells, pair_label, Options};
use abacus_core::AbacusConfig;
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use faults::{ArrivalBurst, FaultPlan, PredictorFault};
use gpu_sim::{GpuSpec, NoiseModel};
use serving::{run_colocation_observed, ColocationConfig, NodeOptions, PolicyKind};
use std::sync::Arc;
use telemetry::{FlightDump, HealthAlertKind, HealthConfig, SloConfig, Telemetry, WIDTH_CLASSES};
use workload::fork_seed;

/// Pinned Eq. 3 prediction-round charge, ms — same constant as the fault
/// sweep, so the study is bit-reproducible across machines and across the
/// serial/parallel paths.
const PREDICT_ROUND_MS: f64 = 0.08;

/// Arrival-burst onset, ms. Mirrors [`FaultPlan::at_intensity`]'s window;
/// the burn-rate detection latencies below are measured from this instant.
const BURST_ONSET_MS: f64 = 2_000.0;

/// Arrival-burst end, ms (mirrors [`FaultPlan::at_intensity`]).
const BURST_END_MS: f64 = 4_000.0;

/// Offered load for the study, QPS aggregate. Deliberately below the QoS
/// experiments' 50 QPS: detection latency is only meaningful from an
/// operating point whose healthy baseline sits *inside* the SLO budget —
/// at 50 QPS the fast-scale baseline already burns its 10% budget on its
/// own, and every cell would alarm before the fault onset.
const LOAD_QPS: f64 = 30.0;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    None,
    Bias,
    Burst,
    Full,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::None => "none",
            Kind::Bias => "bias",
            Kind::Burst => "burst",
            Kind::Full => "full",
        }
    }
}

/// One (fault component, intensity) study cell. Intensity 0 collapses to
/// the single healthy baseline: every component at intensity 0 is
/// [`FaultPlan::none`], so re-running it per kind would triple-count one
/// cell.
struct CellSpec {
    kind: Kind,
    intensity: f64,
}

const CELLS: [CellSpec; 7] = [
    CellSpec { kind: Kind::None, intensity: 0.0 },
    CellSpec { kind: Kind::Bias, intensity: 0.5 },
    CellSpec { kind: Kind::Bias, intensity: 1.0 },
    CellSpec { kind: Kind::Burst, intensity: 0.5 },
    CellSpec { kind: Kind::Burst, intensity: 1.0 },
    CellSpec { kind: Kind::Full, intensity: 0.5 },
    CellSpec { kind: Kind::Full, intensity: 1.0 },
];

/// The fault plan of one cell. The `bias`/`burst` arms take exactly the
/// matching component of [`FaultPlan::at_intensity`] (kept in sync with
/// that constructor) so the `full` rows read as their composition.
fn plan_for(spec: &CellSpec, seed: u64) -> FaultPlan {
    let i = spec.intensity;
    match spec.kind {
        Kind::None => FaultPlan::none(),
        Kind::Full => FaultPlan::at_intensity(seed, i),
        Kind::Bias => FaultPlan {
            seed,
            kernel: None,
            predictor: Some(PredictorFault::Bias { factor: 1.0 - 0.5 * i }),
            burst: None,
            degraded: Vec::new(),
        },
        Kind::Burst => FaultPlan {
            seed,
            kernel: None,
            predictor: None,
            burst: Some(ArrivalBurst {
                start_ms: BURST_ONSET_MS,
                end_ms: BURST_END_MS,
                extra_qps: 60.0 * i,
            }),
            degraded: Vec::new(),
        },
    }
}

struct Cell {
    rounds: usize,
    violation_ratio: f64,
    queue_p50_ms: f64,
    queue_p99_ms: f64,
    queue_p999_ms: f64,
    solo_samples: u64,
    solo_ewma_abs: f64,
    multi_ewma_abs: f64,
    /// First solo-class drift alarm (the online OOD finding), sim clock.
    solo_drift_ms: Option<f64>,
    /// First multi-way-class drift alarm (the injected-fault signal).
    multi_drift_ms: Option<f64>,
    first_burn_ms: Option<f64>,
    budget_exhausted_ms: Option<f64>,
    alerts: usize,
    alerts_json: String,
    flight_json: Option<String>,
    invariant_violations: usize,
}

fn opt_csv(v: Option<f64>) -> f64 {
    v.unwrap_or(-1.0)
}

fn opt_json(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "null".to_string(),
    }
}

fn opt_table(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.0}"),
        None => "-".to_string(),
    }
}

pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let models = [ModelId::ResNet50, ModelId::ResNet152];
    // Same pair and tag as the fault sweep: the cached predictor is shared.
    let mlp = ensure_predictor("faults_a100", &[models.to_vec()], &lib, &gpu, opts);

    let abacus = AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..AbacusConfig::default()
    };
    // One workload seed and one plan seed across the grid (dose-response
    // reading, as in the fault sweep). The horizon always covers the burst
    // window plus recovery, even at --fast.
    let cfg_seed = fork_seed(opts.seed, 0x8E00);
    let plan_seed = fork_seed(opts.seed, 0x8E17);
    let horizon_ms = opts.scale.horizon_ms().max(6_000.0);

    let results: Vec<Cell> = map_cells(opts.parallel, &CELLS, |spec| {
        let plan = plan_for(spec, plan_seed);
        let cfg = ColocationConfig {
            qps_per_service: LOAD_QPS / models.len() as f64,
            horizon_ms,
            seed: cfg_seed,
            small_inputs: false,
            abacus: abacus.clone(),
        };
        // SLO windows tuned to the study's per-service rate (~15 QPS): the
        // library defaults admit 20-sample windows, which alarm on the
        // marginal warm-up violation cluster every cell shares. Requiring
        // 30 samples per window (~2 s of queries) keeps the healthy
        // baseline quiet without delaying the burst signal materially.
        let mut tel = Telemetry::default();
        tel.enable_health(HealthConfig {
            slo: SloConfig {
                min_samples: 30,
                exhaust_min_samples: 80,
                ..SloConfig::default()
            },
            ..HealthConfig::default()
        });
        let out = run_colocation_observed(
            &models,
            PolicyKind::Abacus,
            Some(as_model(&mlp)),
            None,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            NodeOptions::default(),
            Some(&mut tel),
        );
        for violation in &out.invariant_violations {
            eprintln!(
                "[health] INVARIANT VIOLATION ({}@{}): {violation}",
                spec.kind.label(),
                spec.intensity
            );
        }
        let h = tel.health().expect("health monitors are enabled");
        let multi_drift_ms = (1..WIDTH_CLASSES)
            .filter_map(|c| h.drift().class(c).alarmed_at_ms)
            .min_by(f64::total_cmp);
        let first_burn_ms = h
            .alerts()
            .iter()
            .find(|a| matches!(a.kind, HealthAlertKind::BurnRate { .. }))
            .map(|a| a.at_ms);
        let budget_exhausted_ms = h
            .alerts()
            .iter()
            .find(|a| matches!(a.kind, HealthAlertKind::BudgetExhausted { .. }))
            .map(|a| a.at_ms);
        let alerts_json = format!(
            "[{}]",
            h.alerts()
                .iter()
                .map(|a| a.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        Cell {
            rounds: tel.ledger.rows().len(),
            violation_ratio: out.result.violation_ratio(),
            queue_p50_ms: h.queue_sketch().quantile(50.0),
            queue_p99_ms: h.queue_sketch().quantile(99.0),
            queue_p999_ms: h.queue_sketch().quantile(99.9),
            solo_samples: h.drift().class(0).samples,
            solo_ewma_abs: h.drift().class(0).ewma_abs,
            multi_ewma_abs: h.drift().class(1).ewma_abs,
            solo_drift_ms: h.drift().class(0).alarmed_at_ms,
            multi_drift_ms,
            first_burn_ms,
            budget_exhausted_ms,
            alerts: h.alerts().len(),
            alerts_json,
            flight_json: h.flight().dump().map(|d| d.to_json()),
            invariant_violations: out.invariant_violations.len(),
        }
    });

    let headers = [
        "cell",
        "intensity",
        "rounds",
        "violation_ratio",
        "queue_p50_ms",
        "queue_p99_ms",
        "queue_p999_ms",
        "solo_ewma_abs",
        "multi_ewma_abs",
        "solo_drift_ms",
        "multi_drift_ms",
        "first_burn_ms",
        "budget_exhausted_ms",
        "alerts",
    ];
    let mut csv = CsvWriter::create(opts.csv_path("health"), &headers).expect("csv");
    for (spec, c) in CELLS.iter().zip(&results) {
        csv.write_record(
            spec.kind.label(),
            &[
                spec.intensity,
                c.rounds as f64,
                c.violation_ratio,
                c.queue_p50_ms,
                c.queue_p99_ms,
                c.queue_p999_ms,
                c.solo_ewma_abs,
                c.multi_ewma_abs,
                opt_csv(c.solo_drift_ms),
                opt_csv(c.multi_drift_ms),
                opt_csv(c.first_burn_ms),
                opt_csv(c.budget_exhausted_ms),
                c.alerts as f64,
            ],
        )
        .expect("row");
    }
    csv.flush().expect("flush");

    let mut json = String::from("{\"cells\":[\n");
    for (i, (spec, c)) in CELLS.iter().zip(&results).enumerate() {
        json.push_str(&format!(
            "{{\"cell\":\"{}\",\"intensity\":{},\"rounds\":{},\"violation_ratio\":{},\"queue_p50_ms\":{},\"queue_p99_ms\":{},\"queue_p999_ms\":{},\"solo_ewma_abs\":{},\"multi_ewma_abs\":{},\"solo_drift_ms\":{},\"multi_drift_ms\":{},\"first_burn_ms\":{},\"budget_exhausted_ms\":{},\"alerts\":{}}}",
            spec.kind.label(),
            spec.intensity,
            c.rounds,
            c.violation_ratio,
            c.queue_p50_ms,
            c.queue_p99_ms,
            c.queue_p999_ms,
            c.solo_ewma_abs,
            c.multi_ewma_abs,
            opt_json(c.solo_drift_ms),
            opt_json(c.multi_drift_ms),
            opt_json(c.first_burn_ms),
            opt_json(c.budget_exhausted_ms),
            c.alerts_json,
        ));
        if i + 1 < results.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("]}\n");
    std::fs::write(opts.out_dir.join("health.json"), json).expect("health.json");

    let flight = results
        .iter()
        .find_map(|c| c.flight_json.clone())
        .unwrap_or_else(FlightDump::empty_json);
    std::fs::write(opts.out_dir.join("flight.json"), flight).expect("flight.json");

    println!(
        "Run-health study — detection latency of the drift and SLO burn monitors ({} pair, {LOAD_QPS} QPS aggregate, horizon {horizon_ms} ms)",
        pair_label(&models)
    );
    let mut table = Table::new(vec![
        "cell", "intensity", "viol", "q99 ms", "drift@ms", "lat ms", "burn@ms", "lat ms", "alerts",
    ]);
    let mut total_invariant_violations = 0usize;
    for (spec, c) in CELLS.iter().zip(&results) {
        total_invariant_violations += c.invariant_violations;
        // Drift latency from onset 0 (bias is live from the first round);
        // burn latency from the burst-window start.
        let drift_lat = match spec.kind {
            Kind::Bias | Kind::Full => c.multi_drift_ms,
            _ => None,
        };
        let burn_lat = match spec.kind {
            Kind::Burst | Kind::Full => c.first_burn_ms.map(|t| t - BURST_ONSET_MS),
            _ => None,
        };
        table.row(vec![
            spec.kind.label().to_string(),
            format!("{}", spec.intensity),
            format!("{:.3}", c.violation_ratio),
            format!("{:.2}", c.queue_p99_ms),
            opt_table(c.multi_drift_ms),
            opt_table(drift_lat),
            opt_table(c.first_burn_ms),
            opt_table(burn_lat),
            format!("{}", c.alerts),
        ]);
    }
    println!("{}", table.render());

    let base = &results[0];
    println!(
        "baseline OOD check: {} solo rounds at EWMA |err| {:.0}% vs 2-way {:.1}% — drift:solo {}",
        base.solo_samples,
        base.solo_ewma_abs * 100.0,
        base.multi_ewma_abs * 100.0,
        match base.solo_drift_ms {
            Some(t) => format!("alarmed at {t:.0} ms (solo-round out-of-distribution regime, detected online)"),
            None => "stayed quiet (no solo rounds reached warm-up)".to_string(),
        }
    );
    match results.iter().position(|c| c.flight_json.is_some()) {
        Some(i) => println!(
            "flight.json: dump from cell {}@{}",
            CELLS[i].kind.label(),
            CELLS[i].intensity
        ),
        None => println!("flight.json: no cell tripped the recorder"),
    }
    if total_invariant_violations > 0 {
        eprintln!(
            "[health] {total_invariant_violations} serving-invariant violations — see log above"
        );
        std::process::exit(1);
    }
    println!("serving invariants held in every cell");
}
