//! Figs. 14, 15, 16, 17 — pair-wise co-location studies.
//!
//! One experiment grid: 21 pairs × {FCFS, SJF, EDF, Abacus}, identical
//! workloads per row. Fig. 14 reports p99 normalised to the QoS target,
//! Fig. 15 the QoS violation ratio (drops counted), Fig. 17 the peak
//! throughput at saturating load, and Fig. 16 the Abacus p99 with minimum
//! inputs under tightened QoS.

use crate::common::{as_model, ensure_predictor, map_cells, pair_label, pinned_abacus_config, Options};
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::sampling::all_pairs;
use serving::{run_colocation, ColocationConfig, PolicyKind};
use std::sync::Arc;
use workload::fork_seed;

fn pair_sets() -> Vec<Vec<ModelId>> {
    all_pairs().iter().map(|p| p.to_vec()).collect()
}

/// Shared runner: returns per-pair per-policy results.
///
/// Every (pair, policy) cell is independent: the workload seed is derived
/// per *row* (so all policies of a pair face identical arrivals) and the
/// Abacus prediction-round latency is calibrated once and pinned, so the
/// cells can be fanned out over threads and still reproduce the serial
/// results byte for byte.
fn run_grid(
    opts: &Options,
    total_qps: f64,
    small_inputs: bool,
    policies: &[PolicyKind],
) -> Vec<(String, Vec<(PolicyKind, serving::ColocationResult)>)> {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let mlp = ensure_predictor("unified_a100", &pair_sets(), &lib, &gpu, opts);
    let abacus = pinned_abacus_config(&mlp, "unified_a100", opts);
    let pairs = all_pairs();
    let cells: Vec<(usize, PolicyKind)> = (0..pairs.len())
        .flat_map(|row| policies.iter().map(move |&p| (row, p)))
        .collect();
    let results = map_cells(opts.parallel, &cells, |&(row, policy)| {
        let pair = &pairs[row];
        let cfg = ColocationConfig {
            qps_per_service: total_qps / pair.len() as f64,
            horizon_ms: opts.scale.horizon_ms(),
            seed: fork_seed(opts.seed, row as u64),
            small_inputs,
            abacus: abacus.clone(),
        };
        let pred = (policy == PolicyKind::Abacus).then(|| as_model(&mlp));
        run_colocation(pair, policy, pred, &lib, &gpu, &noise, &cfg)
    });
    let mut out: Vec<(String, Vec<(PolicyKind, serving::ColocationResult)>)> = pairs
        .iter()
        .map(|p| (pair_label(p), Vec::with_capacity(policies.len())))
        .collect();
    for ((row, policy), result) in cells.into_iter().zip(results) {
        out[row].1.push((policy, result));
    }
    out
}

/// Figs. 14 + 15: QoS study at the unsaturating load.
pub fn run_qos(opts: &Options) {
    let grid = run_grid(opts, opts.qos_load_total(), false, &PolicyKind::ALL);
    let mut csv14 = CsvWriter::create(
        opts.csv_path("fig14"),
        &["pair", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut csv15 = CsvWriter::create(
        opts.csv_path("fig15"),
        &["pair", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut t14 = Table::new(vec!["pair", "FCFS", "SJF", "EDF", "Abacus"]);
    let mut t15 = t14.clone();
    let mut p99_sums = [0.0f64; 4];
    let mut viol_sums = [0.0f64; 4];
    for (label, row) in &grid {
        let p99: Vec<f64> = row.iter().map(|(_, r)| r.normalized_p99()).collect();
        let viol: Vec<f64> = row.iter().map(|(_, r)| r.violation_ratio()).collect();
        for i in 0..4 {
            p99_sums[i] += p99[i];
            viol_sums[i] += viol[i];
        }
        csv14.write_record(label, &p99).expect("row");
        csv15.write_record(label, &viol).expect("row");
        t14.row_f64(label.clone(), &p99, 2);
        t15.row_f64(label.clone(), &viol, 3);
    }
    csv14.flush().expect("flush");
    csv15.flush().expect("flush");
    let n = grid.len() as f64;
    println!("Fig. 14 — normalised 99%-ile latency (load {} QPS aggregate)", opts.qos_load_total());
    println!("{}", t14.render());
    println!(
        "Abacus p99 reduction vs FCFS/SJF/EDF: {:.1}% / {:.1}% / {:.1}%  (paper: 23.1 / 34.1 / 23.8)",
        100.0 * (1.0 - p99_sums[3] / p99_sums[0]),
        100.0 * (1.0 - p99_sums[3] / p99_sums[1]),
        100.0 * (1.0 - p99_sums[3] / p99_sums[2]),
    );
    println!("\nFig. 15 — QoS violation ratio (drops counted)");
    println!("{}", t15.render());
    println!(
        "mean violations FCFS/SJF/EDF/Abacus: {:.1}% / {:.1}% / {:.1}% / {:.1}%",
        100.0 * viol_sums[0] / n,
        100.0 * viol_sums[1] / n,
        100.0 * viol_sums[2] / n,
        100.0 * viol_sums[3] / n,
    );
    println!(
        "Abacus violation reduction vs FCFS/SJF/EDF: {:.1}% / {:.1}% / {:.1}%  (paper: 38.8 / 71.0 / 44.0)",
        100.0 * (1.0 - viol_sums[3] / viol_sums[0].max(1e-12)),
        100.0 * (1.0 - viol_sums[3] / viol_sums[1].max(1e-12)),
        100.0 * (1.0 - viol_sums[3] / viol_sums[2].max(1e-12)),
    );
    println!(
        "wrote {} and {}",
        opts.csv_path("fig14").display(),
        opts.csv_path("fig15").display()
    );
}

/// Fig. 16: small DNNs (minimum inputs, tightened QoS), Abacus only.
pub fn run_small(opts: &Options) {
    let grid = run_grid(opts, opts.qos_load_total(), true, &[PolicyKind::Abacus]);
    let mut csv = CsvWriter::create(opts.csv_path("fig16"), &["pair", "Abacus"]).expect("csv");
    let mut t = Table::new(vec!["pair", "Abacus p99 / QoS"]);
    let mut worst: f64 = 0.0;
    for (label, row) in &grid {
        let v = row[0].1.normalized_p99();
        worst = worst.max(v);
        csv.write_record(label, &[v]).expect("row");
        t.row_f64(label.clone(), &[v], 2);
    }
    csv.flush().expect("flush");
    println!("Fig. 16 — 99%-ile latency with minimum inputs, QoS = 2x min-input solo");
    println!("{}", t.render());
    println!(
        "worst pair: {worst:.2}x QoS (paper: all pairs at or below ~1.0, closer to target than Fig. 14)"
    );
    println!("wrote {}", opts.csv_path("fig16").display());
}

/// Fig. 17: peak throughput at saturating load.
pub fn run_peak(opts: &Options) {
    let grid = run_grid(opts, opts.peak_load_total(), false, &PolicyKind::ALL);
    let mut csv = CsvWriter::create(
        opts.csv_path("fig17"),
        &["pair", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut t = Table::new(vec!["pair", "FCFS", "SJF", "EDF", "Abacus"]);
    let mut sums = [0.0f64; 4];
    for (label, row) in &grid {
        let tput: Vec<f64> = row.iter().map(|(_, r)| r.completed_qps()).collect();
        for i in 0..4 {
            sums[i] += tput[i];
        }
        csv.write_record(label, &tput).expect("row");
        t.row_f64(label.clone(), &tput, 1);
    }
    csv.flush().expect("flush");
    println!(
        "Fig. 17 — peak throughput, completed queries/s (offered {} QPS aggregate)",
        opts.peak_load_total()
    );
    println!("{}", t.render());
    println!(
        "Abacus throughput gain vs FCFS/SJF/EDF: {:.1}% / {:.1}% / {:.1}%  (paper: 25.7 / 38.1 / 25.7)",
        100.0 * (sums[3] / sums[0] - 1.0),
        100.0 * (sums[3] / sums[1] - 1.0),
        100.0 * (sums[3] / sums[2] - 1.0),
    );
    println!("wrote {}", opts.csv_path("fig17").display());
}
