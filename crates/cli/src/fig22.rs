//! Fig. 22 — cluster-level serving: Abacus + Kubernetes vs Clockwork
//! replaying a MAF-like trace on 4 nodes × 4 V100 GPUs (§7.6).

use crate::common::{as_model, ensure_predictor, pinned_abacus_config, Options};
use abacus_metrics::{CsvWriter, ServiceStats};
use cluster::{
    build_timeline, cluster_workload, run_cluster, run_cluster_detailed, summarize,
    run_routed_cluster_on, AutoscalePolicy, ClusterConfig, ClusterSystem, NodePool, NodeSignals,
    PredictiveAutoscaler, RoutedClusterConfig,
};
use dnn_models::ModelLibrary;
use gpu_sim::{GpuSpec, MigProfile, NoiseModel};
use std::sync::Arc;
use workload::synthesize_maf_like;

/// Aggregate offered load at the plateau, queries/s across the cluster.
/// Chosen so the 16 simulated V100s run at high utilisation, mirroring the
/// paper's near-saturation replay.
fn plateau_qps(opts: &Options) -> f64 {
    match opts.scale {
        crate::common::Scale::Fast => 780.0,
        _ => 780.0,
    }
}

/// Run the cluster comparison and emit `results/fig22.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let v100 = GpuSpec::v100();
    let noise = NoiseModel::calibrated();
    let minutes = opts.scale.trace_minutes();
    let trace = synthesize_maf_like(minutes, plateau_qps(opts), opts.seed ^ 0x3A);
    let mut cfg = ClusterConfig::paper(trace.clone(), opts.seed);
    cfg.parallel = opts.parallel;

    let mlp = ensure_predictor(
        "unified_quad_v100",
        &[cfg.models.clone()],
        &lib,
        &v100,
        opts,
    );
    // Pin the per-round prediction latency so every per-GPU scheduler —
    // and every rerun — charges the identical Eq. 3 overhead.
    cfg.abacus = pinned_abacus_config(&mlp, "unified_quad_v100", opts);

    let (arrivals, inputs) = cluster_workload(&cfg, &lib);
    let arrival_reqs: Vec<u32> = inputs.iter().map(|i| i.batch).collect();
    eprintln!(
        "[fig22] replaying {minutes} min MAF-like trace, {} queries on {} GPUs...",
        arrivals.len(),
        cfg.total_gpus()
    );

    let t0 = std::time::Instant::now();
    let detailed = run_cluster_detailed(
        ClusterSystem::AbacusK8s,
        &cfg,
        &lib,
        &v100,
        &noise,
        Some(as_model(&mlp)),
    );
    let abacus = detailed.records.clone();
    eprintln!("[fig22] Abacus done in {:.1?}", t0.elapsed());
    let t0 = std::time::Instant::now();
    let clockwork = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &v100, &noise, None);
    eprintln!("[fig22] Clockwork done in {:.1?}", t0.elapsed());

    let tl_a = build_timeline(&arrivals, &arrival_reqs, &abacus, minutes);
    let tl_c = build_timeline(&arrivals, &arrival_reqs, &clockwork, minutes);

    let mut csv = CsvWriter::create(
        opts.csv_path("fig22"),
        &[
            "minute",
            "offered_rps",
            "abacus_rps",
            "clockwork_rps",
            "abacus_p99_ms",
            "clockwork_p99_ms",
            "abacus_avg_ms",
            "clockwork_avg_ms",
        ],
    )
    .expect("csv");
    for (a, c) in tl_a.iter().zip(&tl_c) {
        csv.write_record(
            &a.minute.to_string(),
            &[
                a.offered_rps,
                a.achieved_rps,
                c.achieved_rps,
                a.p99_ms,
                c.p99_ms,
                a.avg_ms,
                c.avg_ms,
            ],
        )
        .expect("row");
    }
    csv.flush().expect("flush");

    let warmup = (minutes / 6).max(1);
    let sa = summarize(&abacus, warmup, minutes);
    let sc = summarize(&clockwork, warmup, minutes);
    println!("Fig. 22 — cluster serving over a {minutes}-minute MAF-like trace, QoS 100 ms");
    println!(
        "  {:<10} {:>12} {:>10} {:>10} {:>8}",
        "system", "tput (r/s)", "p99 (ms)", "avg (ms)", "drops"
    );
    for (name, s) in [("Abacus", sa), ("Clockwork", sc)] {
        println!(
            "  {:<10} {:>12.0} {:>10.1} {:>10.1} {:>7.1}%",
            name,
            s.mean_rps,
            s.p99_ms,
            s.avg_ms,
            100.0 * s.drop_ratio
        );
    }
    println!(
        "  Abacus throughput vs Clockwork: {:+.1}%  (paper: +17.8%, from fewer drops)",
        100.0 * (sa.mean_rps / sc.mean_rps - 1.0)
    );
    println!("  paper shape: both p99 <= QoS; Clockwork p99 close to QoS; Abacus avg slightly higher");
    // §7.9 extension: measured per-GPU signals drive the autoscaler.
    let horizon = minutes as f64 * 60_000.0;
    let fleet: Vec<NodeSignals> = detailed
        .gpu_usage
        .iter()
        .map(|u| NodeSignals {
            busy_fraction: u.busy_fraction(horizon),
            violation_ratio: sa.drop_ratio,
            overlap_gain: u.overlap_gain(),
        })
        .collect();
    let busy = fleet.iter().map(|s| s.busy_fraction).sum::<f64>() / fleet.len() as f64;
    let gain = fleet.iter().map(|s| s.overlap_gain).sum::<f64>() / fleet.len() as f64;
    println!(
        "  fleet signals: mean busy {:.0}%, mean overlap gain {:.2}x -> autoscaler says {:?} (§7.9)",
        100.0 * busy,
        gain,
        AutoscalePolicy::default().decide_fleet(&fleet)
    );

    // Headroom-routed ingress over the same workload: the predicted-latency
    // router replaces round-robin + least-connections, on three fleets —
    // the paper's homogeneous 16×V100, a heterogeneous A100/V100/MIG mix of
    // the same width, and the V100 fleet under the predictive autoscaler
    // reading the diurnal trace one minute ahead of the clock.
    let mut routed_cfg = RoutedClusterConfig::paper(trace.clone(), opts.seed);
    routed_cfg.abacus = cfg.abacus.clone();
    routed_cfg.parallel = opts.parallel;
    let mut hetero_cfg = routed_cfg.clone();
    hetero_cfg.pools = vec![
        NodePool {
            name: "a100",
            gpus: 4,
            gpu: GpuSpec::a100(),
        },
        NodePool {
            name: "v100",
            gpus: 8,
            gpu: GpuSpec::v100(),
        },
        NodePool {
            name: "mig-4g",
            gpus: 4,
            gpu: GpuSpec::a100().mig_slice(MigProfile::FourG20Gb),
        },
    ];
    let mut auto_cfg = routed_cfg.clone();
    // ~49 qps/GPU saturates the 16-GPU fleet at the 780 qps plateau; sizing
    // for 70% utilisation keeps the plateau fully active while the ramp's
    // trough parks the surplus GPUs.
    auto_cfg.autoscale = Some(PredictiveAutoscaler::new(55.0, 4));
    let horizon_ms = minutes as f64 * 60_000.0;
    println!("  — headroom-routed ingress (same trace, same QoS) —");
    println!(
        "  {:<14} {:>12} {:>10} {:>10} {:>8} {:>9} {:>7} {:>6}",
        "fleet", "tput (r/s)", "p99 (ms)", "avg (ms)", "drops", "goodput", "shed", "spill"
    );
    let mut routed_tls = Vec::new();
    for (name, rcfg) in [
        ("v100x16", &routed_cfg),
        ("hetero", &hetero_cfg),
        ("autoscaled", &auto_cfg),
    ] {
        let t0 = std::time::Instant::now();
        let out = run_routed_cluster_on(
            rcfg,
            &lib,
            &noise,
            as_model(&mlp),
            None,
            None,
            &arrivals,
            &inputs,
        );
        let s = summarize(&out.records, warmup, minutes);
        let mut stats = ServiceStats::new();
        stats.record_all(&out.records);
        println!(
            "  {:<14} {:>12.0} {:>10.1} {:>10.1} {:>7.1}% {:>7.0}/s {:>7} {:>6}",
            name,
            s.mean_rps,
            s.p99_ms,
            s.avg_ms,
            100.0 * s.drop_ratio,
            stats.goodput_qps(horizon_ms),
            out.router.shed,
            out.router.spilled,
        );
        if out.autoscale.up_events + out.autoscale.down_events > 0 {
            println!(
                "  {:<14} mean active {:.1}/{} GPUs, {} up / {} down events (lead 60 s)",
                "",
                out.autoscale.mean_active_gpus,
                rcfg.total_gpus(),
                out.autoscale.up_events,
                out.autoscale.down_events,
            );
        }
        eprintln!("[fig22] routed fleet '{name}' done in {:.1?}", t0.elapsed());
        routed_tls.push(build_timeline(&arrivals, &arrival_reqs, &out.records, minutes));
    }
    let mut csv = CsvWriter::create(
        opts.csv_path("fig22_routed"),
        &[
            "minute",
            "offered_rps",
            "routed_rps",
            "hetero_rps",
            "autoscaled_rps",
            "routed_p99_ms",
            "hetero_p99_ms",
            "autoscaled_p99_ms",
        ],
    )
    .expect("csv");
    for (m, r) in routed_tls[0].iter().enumerate() {
        let (h, a) = (&routed_tls[1][m], &routed_tls[2][m]);
        csv.write_record(
            &m.to_string(),
            &[
                r.offered_rps,
                r.achieved_rps,
                h.achieved_rps,
                a.achieved_rps,
                r.p99_ms,
                h.p99_ms,
                a.p99_ms,
            ],
        )
        .expect("row");
    }
    csv.flush().expect("flush");
    println!("wrote {}", opts.csv_path("fig22").display());
    println!("wrote {}", opts.csv_path("fig22_routed").display());
}
