//! `faults` — QoS degradation under deterministic fault injection.
//!
//! Sweeps [`FaultPlan::at_intensity`] over a co-located pair for three
//! serving variants: FCFS, plain Abacus, and Abacus with its defensive
//! runtime enabled (adaptive safety margin, FCFS degradation on rolling
//! predictor error, per-query timeout). Every cell runs with the
//! serving-loop invariant checker wired in; a cell that violates any
//! invariant fails the command. The prediction-round latency is pinned to
//! a constant (never wall-clock calibrated), so the sweep — serial or
//! parallel — reproduces byte for byte; `scripts/bench_check.sh` gates on
//! exactly that.

use crate::common::{as_model, ensure_predictor, map_cells, pair_label, Options};
use abacus_core::AbacusConfig;
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use faults::FaultPlan;
use gpu_sim::{GpuSpec, NoiseModel};
use serving::{run_colocation_faulty, ColocationConfig, NodeOptions, PolicyKind};
use std::sync::Arc;
use workload::fork_seed;

/// Pinned Eq. 3 prediction-round charge, ms. A constant (not the usual
/// cached wall-clock calibration) so the fault sweep is bit-reproducible
/// across machines and across the serial/parallel paths.
const PREDICT_ROUND_MS: f64 = 0.08;

/// EWMA relative-error threshold past which defended Abacus falls back to
/// FCFS dispatch.
const FALLBACK_ERROR: f64 = 0.5;

/// Defended per-query timeout, × the query's QoS budget.
const TIMEOUT_FACTOR: f64 = 3.0;

const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    policy: PolicyKind,
    defended: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "FCFS",
        policy: PolicyKind::Fcfs,
        defended: false,
    },
    Variant {
        name: "Abacus",
        policy: PolicyKind::Abacus,
        defended: false,
    },
    Variant {
        name: "Abacus+def",
        policy: PolicyKind::Abacus,
        defended: true,
    },
];

struct Cell {
    violation_ratio: f64,
    timed_out: usize,
    degraded: bool,
    invariant_violations: usize,
}

pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let models = [ModelId::ResNet50, ModelId::ResNet152];
    let mlp = ensure_predictor("faults_a100", &[models.to_vec()], &lib, &gpu, opts);

    let abacus_plain = AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..AbacusConfig::default()
    };
    let abacus_defended = AbacusConfig {
        adaptive_margin: true,
        fcfs_fallback_error: Some(FALLBACK_ERROR),
        ..abacus_plain.clone()
    };
    // One workload seed and one plan seed for the whole grid: cells differ
    // only in fault intensity and serving variant, so the table reads as a
    // controlled dose-response curve.
    let cfg_seed = fork_seed(opts.seed, 0xFA00);
    let plan_seed = fork_seed(opts.seed, 0xFA17);

    let cells: Vec<(usize, usize)> = (0..INTENSITIES.len())
        .flat_map(|i| (0..VARIANTS.len()).map(move |v| (i, v)))
        .collect();
    let results: Vec<Cell> = map_cells(opts.parallel, &cells, |&(i, v)| {
        let variant = VARIANTS[v];
        let cfg = ColocationConfig {
            qps_per_service: opts.qos_load_total() / models.len() as f64,
            horizon_ms: opts.scale.horizon_ms(),
            seed: cfg_seed,
            small_inputs: false,
            abacus: if variant.defended {
                abacus_defended.clone()
            } else {
                abacus_plain.clone()
            },
        };
        let plan = FaultPlan::at_intensity(plan_seed, INTENSITIES[i]);
        let node_opts = NodeOptions {
            timeout_factor: variant.defended.then_some(TIMEOUT_FACTOR),
        };
        let pred = (variant.policy == PolicyKind::Abacus).then(|| as_model(&mlp));
        let out = run_colocation_faulty(
            &models,
            variant.policy,
            pred,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            node_opts,
        );
        for violation in &out.invariant_violations {
            eprintln!(
                "[faults] INVARIANT VIOLATION (intensity {}, {}): {violation}",
                INTENSITIES[i], variant.name
            );
        }
        Cell {
            violation_ratio: out.result.violation_ratio(),
            timed_out: out.result.all.timed_out(),
            degraded: out.degraded,
            invariant_violations: out.invariant_violations.len(),
        }
    });

    let headers = ["intensity", "FCFS", "Abacus", "Abacus+def"];
    let mut csv = CsvWriter::create(opts.csv_path("faults"), &headers).expect("csv");
    let mut table = Table::new(headers.to_vec());
    let mut total_invariant_violations = 0usize;
    for (i, &intensity) in INTENSITIES.iter().enumerate() {
        let row: Vec<&Cell> = (0..VARIANTS.len())
            .map(|v| &results[i * VARIANTS.len() + v])
            .collect();
        let ratios: Vec<f64> = row.iter().map(|c| c.violation_ratio).collect();
        total_invariant_violations += row.iter().map(|c| c.invariant_violations).sum::<usize>();
        csv.write_record(&format!("{intensity}"), &ratios)
            .expect("row");
        table.row_f64(format!("{intensity}"), &ratios, 3);
    }
    csv.flush().expect("flush");

    println!(
        "Fault sweep — QoS violation ratio vs fault intensity ({} pair, {} QPS aggregate)",
        pair_label(&models),
        opts.qos_load_total()
    );
    println!("{}", table.render());
    let degraded_at: Vec<String> = INTENSITIES
        .iter()
        .enumerate()
        .filter(|&(i, _)| results[i * VARIANTS.len() + 2].degraded)
        .map(|(_, x)| format!("{x}"))
        .collect();
    if degraded_at.is_empty() {
        println!("Abacus+def never fell back to FCFS dispatch");
    } else {
        println!(
            "Abacus+def fell back to FCFS dispatch at intensities: {}",
            degraded_at.join(", ")
        );
    }
    let timeouts: usize = results.iter().map(|c| c.timed_out).sum();
    println!("defensive per-query timeouts across the sweep: {timeouts}");
    if total_invariant_violations > 0 {
        eprintln!(
            "[faults] {total_invariant_violations} serving-invariant violations — see log above"
        );
        std::process::exit(1);
    }
    println!("serving invariants held in every cell");
}
