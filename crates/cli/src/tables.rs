//! Table 1, Table 2 and the §7.8 overhead report.

use crate::common::{ensure_predictor, Options};
use abacus_core::{AbacusConfig, AbacusScheduler, Scheduler};
use abacus_metrics::Table;
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, MigProfile};
use predictor::sampling::all_pairs;
use std::sync::Arc;

/// Table 1: the served model zoo with its input randomisation and the
/// simulated solo latencies / QoS targets that calibrate the experiments.
pub fn table1(_opts: &Options) {
    let lib = ModelLibrary::new();
    let gpu = GpuSpec::a100();
    let mut t = Table::new(vec![
        "model", "operators", "batch sizes", "seq lengths", "solo(max) ms", "QoS ms",
    ]);
    for m in ModelId::PAPER_MODELS {
        let g = lib.graph(m, m.max_input());
        t.row(vec![
            m.name().to_string(),
            g.len().to_string(),
            "4,8,16,32".to_string(),
            if m.is_nlp() { "8,16,32,64" } else { "-" }.to_string(),
            format!("{:.1}", lib.solo_ms(m, m.max_input(), &gpu)),
            format!("{:.1}", lib.qos_target_ms(m, &gpu)),
        ]);
    }
    println!("Table 1 — DNN models used for serving (simulated A100)\n{}", t.render());
}

/// Table 2: the (simulated) evaluation hardware.
pub fn table2(_opts: &Options) {
    let mut t = Table::new(vec!["GPU", "SMs", "eff. TFLOP/s", "eff. TB/s", "role"]);
    let rows: Vec<(GpuSpec, &str)> = vec![
        (GpuSpec::a100(), "single-GPU experiments (Figs. 3-21)"),
        (GpuSpec::v100(), "cluster experiment (Fig. 22)"),
        (GpuSpec::a100().mig_slice(MigProfile::OneG5Gb), "Fig. 20/21 full isolation"),
        (GpuSpec::a100().mig_slice(MigProfile::TwoG10Gb), "Fig. 20/21 pair-wise isolation"),
        (GpuSpec::a100().mig_slice(MigProfile::FourG20Gb), "Fig. 20/21 no isolation"),
    ];
    for (g, role) in rows {
        t.row(vec![
            g.name.clone(),
            g.sm_count.to_string(),
            format!("{:.1}", g.peak_flops / 1e12),
            format!("{:.2}", g.peak_bw / 1e12),
            role.to_string(),
        ]);
    }
    println!("Table 2 — evaluation specification (simulated; see DESIGN.md)\n{}", t.render());
}

/// §7.8: offline profiling budget, predictor footprint, online overheads.
pub fn overhead(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let sets: Vec<Vec<ModelId>> = all_pairs().iter().map(|p| p.to_vec()).collect();
    let mlp = ensure_predictor("unified_a100", &sets, &lib, &gpu, opts);

    println!("Overhead report (§7.8)");
    println!("  predictor parameters : {}", mlp.param_count());
    println!(
        "  predictor size       : {:.1} kB as stored f64 ({:.1} kB at the paper's f32)",
        mlp.size_bytes() as f64 / 1024.0,
        mlp.param_count() as f64 * 4.0 / 1024.0
    );
    println!("    paper reports      : ~14 kB");

    // Online scheduling: mean prediction rounds per decision on a busy
    // queue, plus the wall-clock latency of one decision on this host.
    let mut sched = AbacusScheduler::new(mlp.clone(), lib.clone(), AbacusConfig::default());
    let queue: Vec<abacus_core::Query> = ModelId::PAPER_MODELS
        .iter()
        .take(4)
        .enumerate()
        .map(|(i, &m)| {
            let input = m.max_input();
            abacus_core::Query::new(
                i as u64,
                m,
                input,
                0.0,
                lib.qos_target_ms(m, &gpu),
                lib.graph(m, input).len(),
            )
        })
        .collect();
    let t0 = std::time::Instant::now();
    let reps = 200;
    for _ in 0..reps {
        let _ = sched.decide(1.0, &queue);
    }
    let per_decision = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    println!(
        "  scheduling decision  : {:.3} ms wall-clock on this host ({:.1} prediction rounds avg)",
        per_decision,
        sched.mean_prediction_rounds()
    );
    println!("    paper reports      : ~0.26 ms overall prediction latency per decision");

    // Intermediate-result memory: execute a partially-scheduled group.
    let mut exec = abacus_core::SegmentalExecutor::new(
        gpu.clone(),
        gpu_sim::NoiseModel::disabled(),
        lib.clone(),
        1,
    );
    let spec = predictor::GroupSpec::new(
        vec![
            predictor::GroupEntry {
                model: ModelId::ResNet152,
                op_start: 0,
                op_end: 180,
                input: ModelId::ResNet152.max_input(),
            },
            predictor::GroupEntry {
                model: ModelId::Bert,
                op_start: 0,
                op_end: 80,
                input: ModelId::Bert.max_input(),
            },
        ],
        &lib,
    );
    let out = exec.execute(&spec);
    println!(
        "  intermediate results : {:.1} MB for two partially-processed queries",
        out.saved_bytes / 1e6
    );
    println!("    paper reports      : ~20 MB");
    println!(
        "  offline profiling    : {} samples x {} runs per pair at this scale (paper: 2000 x 100, ~2 h/pair)",
        opts.scale.samples_per_set(),
        opts.scale.runs_per_group()
    );
}
