//! Fig. 23 — latency of identifying an operator group vs number of search
//! ways (§7.7).
//!
//! This is the one experiment that is a *real measurement*, not a
//! simulation: the trained MLP runs on this host's CPU, and we time one
//! batched prediction round at 1–16 ways, plus a full multi-way scheduling
//! decision. The paper measures 0.066 ms at 1 way rising to ~0.088 ms at
//! ≥2 ways on a single core, and ~0.26 ms for a full decision.

use crate::common::{ensure_predictor, Options};
use abacus_metrics::CsvWriter;
use abacus_core::search::plan_group;
use abacus_core::Query;
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::GpuSpec;
use predictor::sampling::all_pairs;
use predictor::{GroupEntry, GroupSpec, LatencyModel};
use std::sync::Arc;

fn candidate_batch(lib: &ModelLibrary, ways: usize) -> Vec<Vec<f64>> {
    (0..ways)
        .map(|i| {
            let spec = GroupSpec::new(
                vec![
                    GroupEntry {
                        model: ModelId::ResNet152,
                        op_start: 0,
                        op_end: 363,
                        input: ModelId::ResNet152.max_input(),
                    },
                    GroupEntry {
                        model: ModelId::Bert,
                        op_start: 0,
                        op_end: 20 + 9 * i,
                        input: ModelId::Bert.max_input(),
                    },
                ],
                lib,
            );
            spec.features(lib)
        })
        .collect()
}

/// Median wall time of `f` over `reps` runs, milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Measure and emit `results/fig23.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let sets: Vec<Vec<ModelId>> = all_pairs().iter().map(|p| p.to_vec()).collect();
    let mlp = ensure_predictor("unified_a100", &sets, &lib, &gpu, opts);

    let mut csv = CsvWriter::create(
        opts.csv_path("fig23"),
        &["ways", "latency_ms", "scalar_ms", "speedup"],
    )
    .expect("csv");
    println!("Fig. 23 — one batched prediction round vs search ways (measured on this host)");
    for ways in 1..=16usize {
        let batch = candidate_batch(&lib, ways);
        let flat: Vec<f64> = batch.iter().flatten().copied().collect();
        let mut out = Vec::with_capacity(ways);
        let ms = time_ms(301, || {
            mlp.predict_into(&flat, ways, &mut out);
            std::hint::black_box(&out);
        });
        // The pre-batching per-sample loop, for the scalar-vs-batched gap.
        let scalar_ms = time_ms(301, || {
            for row in &batch {
                std::hint::black_box(mlp.predict_one_scalar(std::hint::black_box(row)));
            }
        });
        csv.write_record(&ways.to_string(), &[ms, scalar_ms, scalar_ms / ms])
            .expect("row");
        println!("  {ways:>2} ways: batched {ms:.4} ms, scalar {scalar_ms:.4} ms ({:.2}x)", scalar_ms / ms);
    }
    csv.flush().expect("flush");
    println!("  (paper: 0.066 ms at 1 way -> ~0.088 ms, flat beyond 2 ways)");

    // A full scheduling decision (the §6.3 "three predictions, 0.26 ms").
    let queries: Vec<Query> = [ModelId::ResNet152, ModelId::Bert, ModelId::InceptionV3]
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let input = m.max_input();
            Query::new(i as u64, m, input, 0.0, 100.0, lib.graph(m, input).len())
        })
        .collect();
    let refs: Vec<&Query> = queries.iter().collect();
    let model: Arc<dyn LatencyModel> = mlp;
    let ms = time_ms(301, || {
        let out = plan_group(&refs, 60.0, model.as_ref(), &lib, 4);
        std::hint::black_box(out);
    });
    println!("  full 4-way scheduling decision: {ms:.3} ms (paper: ~0.26 ms)");
    println!("wrote {}", opts.csv_path("fig23").display());
}
