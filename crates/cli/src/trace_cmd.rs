//! `abacus-repro trace` (extension) — record full telemetry of one Abacus
//! co-location run and lower it to artifacts:
//!
//! * `results/trace.json` — Chrome trace-event JSON (open in
//!   <https://ui.perfetto.dev> or `chrome://tracing`): per-service dispatch
//!   slices with queue spans, per-stream kernel slices with occupancy, and
//!   offered/achieved-load counter tracks;
//! * `results/ledger.csv` — the scheduler decision ledger, one row per
//!   round with predicted vs measured latency and critical-query headroom;
//! * `results/pred_error.csv` — the §5.2-style online prediction-error
//!   study over a seed sweep (the paper reports the MLP's ~0.6% mean error
//!   and a 4.53% std/mean determinism figure for the overlap itself).

use crate::common::{as_model, ensure_predictor, map_cells, Options};
use abacus_metrics::Table;
use cluster::{add_counter_tracks, build_timeline_bucketed};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use serving::{build_workload, run_colocation_traced, services_for, ColocationConfig, PolicyKind};
use std::sync::Arc;
use telemetry::export::{kernel_spans_csv, ledger_csv};
use telemetry::{ChromeTrace, Hist, PredictionErrorReport, Telemetry};
use workload::fork_seed;

/// Counter-track bucket width for the load overlay, ms.
const BUCKET_MS: f64 = 500.0;

/// Seeds in the prediction-error sweep.
const SWEEP_SEEDS: usize = 8;

/// Pinned Eq. 3 prediction-round charge, ms. A constant (not the usual
/// cached wall-clock calibration) so the exported trace and the
/// prediction-error CSVs are bit-reproducible across machines, across the
/// serial/parallel paths, and across fresh `--out` directories — `ci.sh`
/// byte-compares two independent runs.
const PREDICT_ROUND_MS: f64 = 0.08;

/// Run the telemetry study and emit `trace.json`, `ledger.csv`,
/// `kernel_spans.csv` and `pred_error.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let pair = [ModelId::ResNet152, ModelId::Bert];
    let mlp = ensure_predictor("ablation_res152_bert", &[pair.to_vec()], &lib, &gpu, opts);
    let abacus = abacus_core::AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..Default::default()
    };

    // --- One fully-traced run (kernel spans on) at a bounded horizon: the
    // per-kernel stream dominates the artifact size, so the trace view uses
    // a short window regardless of scale.
    let cfg = ColocationConfig {
        qps_per_service: opts.qos_load_total() / 2.0,
        horizon_ms: opts.scale.horizon_ms().min(2_500.0),
        seed: opts.seed,
        abacus: abacus.clone(),
        ..ColocationConfig::default()
    };
    let mut tel = Telemetry::with_kernel_trace();
    let (result, records) =
        run_colocation_traced(&pair, PolicyKind::Abacus, Some(as_model(&mlp)), &lib, &gpu, &noise, &cfg, &mut tel);

    let mut trace = ChromeTrace::new();
    let names: Vec<&str> = pair.iter().map(|m| m.name()).collect();
    trace.add_telemetry(&tel, &names);
    // Offered vs achieved load as counter tracks over the same window.
    let services = services_for(&pair, &lib, &gpu, cfg.small_inputs);
    let workload = build_workload(&services, &lib, &cfg);
    let requests: Vec<u32> = workload.inputs.iter().map(|i| i.batch).collect();
    let buckets = (cfg.horizon_ms / BUCKET_MS).ceil() as usize;
    let points = build_timeline_bucketed(&workload.arrivals, &requests, &records, buckets, BUCKET_MS);
    add_counter_tracks(&mut trace, &points, BUCKET_MS);
    // Registry counters and histogram digests join the same counter
    // process as end-of-run samples, so Perfetto shows the run's final
    // engine/scheduler totals next to the load overlay.
    trace.add_registry(&tel.registry, cfg.horizon_ms);
    let json_path = opts.out_dir.join("trace.json");
    trace.write_to(&json_path).expect("trace.json");
    ledger_csv(opts.csv_path("ledger"), &tel.ledger).expect("ledger.csv");

    println!(
        "Telemetry — Abacus on ({},{}) for {:.1} s at {} QPS aggregate",
        pair[0].name(),
        pair[1].name(),
        cfg.horizon_ms / 1000.0,
        opts.qos_load_total()
    );
    let mut counters = Table::new(vec!["counter", "value"]);
    for (name, v) in tel.registry.counter_rows() {
        counters.row(vec![name.to_string(), v.to_string()]);
    }
    println!("{}", counters.render());
    let mut hists = Table::new(vec!["histogram", "count", "mean", "p50<=", "p99<=", "max"]);
    for h in Hist::ALL {
        let hist = tel.registry.hist(h);
        hists.row_f64(
            h.name().to_string(),
            &[
                hist.count() as f64,
                hist.mean(),
                hist.quantile_bound(50.0),
                hist.quantile_bound(99.0),
                hist.max(),
            ],
            2,
        );
    }
    println!("{}", hists.render());
    println!(
        "{} trace events ({} query-lifecycle, {} kernel spans, {} ledger rounds) -> {}",
        trace.len(),
        tel.events().len(),
        tel.kernel_spans().len(),
        tel.ledger.len(),
        json_path.display()
    );
    println!(
        "queue delay p99 ({}, completed queries): {:.2} ms; violation ratio {:.3}",
        if opts.sketch { "sketch" } else { "exact" },
        if opts.sketch {
            result.all.queue_sketch_percentile(99.0)
        } else {
            result.all.queue_p99_ms()
        },
        result.violation_ratio()
    );
    if let Some(r) = tel.ledger.error_report_where(|row| row.entries.len() >= 2) {
        println!(
            "single-run prediction error, multi-way rounds ({}): mean {:+.2}%, |mean| {:.2}%, std {:.2}%",
            r.rounds,
            r.mean * 100.0,
            r.mean_abs * 100.0,
            r.std * 100.0
        );
    }
    if let Some(r) = tel.ledger.error_report_where(|row| row.entries.len() == 1) {
        println!(
            "                            solo rounds ({}): mean {:+.2}%, |mean| {:.2}%, std {:.2}%",
            r.rounds,
            r.mean * 100.0,
            r.mean_abs * 100.0,
            r.std * 100.0
        );
    }
    kernel_spans_csv(opts.csv_path("kernel_spans"), &crosscheck_spans(&tel)).expect("kernel_spans");

    // --- §5.2 prediction-error sweep: same deployment, independent seeds,
    // counters only (no kernel trace) so each cell stays cheap.
    let seeds: Vec<u64> = (0..SWEEP_SEEDS as u64).map(|i| fork_seed(opts.seed, i)).collect();
    let cells = map_cells(opts.parallel, &seeds, |&seed| {
        let cfg = ColocationConfig {
            qps_per_service: opts.qos_load_total() / 2.0,
            horizon_ms: 5_000.0,
            seed,
            abacus: abacus.clone(),
            ..ColocationConfig::default()
        };
        let mut tel = Telemetry::new();
        let _ = run_colocation_traced(&pair, PolicyKind::Abacus, Some(as_model(&mlp)), &lib, &gpu, &noise, &cfg, &mut tel);
        // Split errors by group width: the instance-based training samples
        // (§5.4) always include every co-located model, so solo rounds sit
        // outside the predictor's training distribution.
        let mut multi = Vec::new();
        let mut solo = Vec::new();
        for r in tel.ledger.rows() {
            if let Some(e) = r.rel_error() {
                if r.entries.len() >= 2 {
                    multi.push(e);
                } else {
                    solo.push(e);
                }
            }
        }
        (seed, multi, solo)
    });

    let mut csv = abacus_metrics::CsvWriter::create(
        opts.csv_path("pred_error"),
        &[
            "seed",
            "multi_rounds",
            "multi_mean_err",
            "multi_std_err",
            "multi_mean_abs_err",
            "solo_rounds",
            "solo_mean_abs_err",
        ],
    )
    .expect("csv");
    let mut table = Table::new(vec![
        "seed", "multi", "mean %", "std %", "|mean| %", "solo", "solo |mean| %",
    ]);
    let mut pooled_multi = Vec::new();
    let mut pooled_solo = Vec::new();
    for (seed, multi, solo) in &cells {
        let Some(r) = PredictionErrorReport::of(multi) else { continue };
        let solo_abs = PredictionErrorReport::of(solo).map_or(f64::NAN, |s| s.mean_abs);
        csv.write_record(
            &seed.to_string(),
            &[r.rounds as f64, r.mean, r.std, r.mean_abs, solo.len() as f64, solo_abs],
        )
        .expect("row");
        table.row_f64(
            seed.to_string(),
            &[
                r.rounds as f64,
                r.mean * 100.0,
                r.std * 100.0,
                r.mean_abs * 100.0,
                solo.len() as f64,
                solo_abs * 100.0,
            ],
            2,
        );
        pooled_multi.extend_from_slice(multi);
        pooled_solo.extend_from_slice(solo);
    }
    let all = PredictionErrorReport::of(&pooled_multi).expect("sweep produced no multi-way rounds");
    let solo_all = PredictionErrorReport::of(&pooled_solo).map_or(f64::NAN, |s| s.mean_abs);
    csv.write_record(
        "pooled",
        &[all.rounds as f64, all.mean, all.std, all.mean_abs, pooled_solo.len() as f64, solo_all],
    )
    .expect("row");
    csv.flush().expect("flush");
    table.row_f64(
        "pooled".to_string(),
        &[
            all.rounds as f64,
            all.mean * 100.0,
            all.std * 100.0,
            all.mean_abs * 100.0,
            pooled_solo.len() as f64,
            solo_all * 100.0,
        ],
        2,
    );
    println!("Online prediction error, {SWEEP_SEEDS}-seed sweep (ledger join):");
    println!("{}", table.render());
    println!(
        "paper §5.2 reference: the MLP's prediction error averages ~0.6% with a\n\
         4.53% std/mean for the deterministic overlap itself; the pooled multi-way\n\
         columns are the comparable online quantities. Solo rounds lie outside the\n\
         instance-based sampling distribution (§5.4 always samples every co-located\n\
         model), so their error is extrapolation, reported separately."
    );
}

/// The traced run's wall-clock kernel spans as engine-style spans for the
/// CSV lowering (stream/kernel ids survive; times are wall-clock ms).
fn crosscheck_spans(tel: &Telemetry) -> Vec<gpu_sim::KernelSpan> {
    tel.kernel_spans()
        .iter()
        .map(|k| gpu_sim::KernelSpan {
            stream: gpu_sim::StreamId(k.stream),
            kernel: k.kernel,
            start_ms: k.start_ms,
            end_ms: k.end_ms,
            occupancy: k.occupancy,
        })
        .collect()
}
