//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * **pipelining** — Abacus with and without pipelined scheduling (§6.3);
//! * **search ways** — end-to-end QoS as the multi-way width varies;
//! * **predictor** — Abacus driven by the MLP vs the linear-regression
//!   baseline vs a deliberately pessimistic sequential-sum estimate,
//!   showing why *precise* overlap-aware prediction is load-bearing.

use crate::common::{as_model, ensure_predictor, Options};
use abacus_core::AbacusConfig;
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{LatencyModel, LinearRegression};
use serving::{collect_dataset, run_colocation, ColocationConfig, PolicyKind, TrainerConfig};
use std::sync::Arc;

/// Pessimistic predictor: assumes no overlap at all (the Fig. 6a
/// sync-based world view) by scaling the MLP's prediction.
struct Pessimist {
    inner: Arc<dyn LatencyModel>,
    factor: f64,
}

impl LatencyModel for Pessimist {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.inner.predict_one(x) * self.factor
    }
    fn name(&self) -> &'static str {
        "sequential-pessimist"
    }
}

/// Run all ablations on the (Res152, Bert) pair and emit
/// `results/ablation.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let pair = [ModelId::ResNet152, ModelId::Bert];
    let sets = vec![pair.to_vec()];
    let mlp = ensure_predictor("ablation_res152_bert", &sets, &lib, &gpu, opts);

    let mut csv = CsvWriter::create(
        opts.csv_path("ablation"),
        &["variant", "p99_over_qos", "violation_ratio", "throughput_qps"],
    )
    .expect("csv");
    let mut table = Table::new(vec!["variant", "p99/QoS", "violations", "tput q/s"]);

    let base_cfg = ColocationConfig {
        qps_per_service: opts.qos_load_total() / 2.0,
        horizon_ms: opts.scale.horizon_ms(),
        seed: opts.seed,
        ..ColocationConfig::default()
    };

    let mut leg = |name: &str, predictor: Arc<dyn LatencyModel>, abacus: AbacusConfig| {
        let cfg = ColocationConfig {
            abacus,
            ..base_cfg.clone()
        };
        let r = run_colocation(&pair, PolicyKind::Abacus, Some(predictor), &lib, &gpu, &noise, &cfg);
        let row = [r.normalized_p99(), r.violation_ratio(), r.completed_qps()];
        csv.write_record(name, &row).expect("row");
        table.row_f64(name.to_string(), &row, 3);
    };

    // (a) pipelined vs non-pipelined scheduling.
    leg("mlp+pipelined (default)", as_model(&mlp), AbacusConfig::default());
    leg(
        "mlp, no pipelining",
        as_model(&mlp),
        AbacusConfig {
            pipelined: false,
            ..AbacusConfig::default()
        },
    );

    // (b) search-ways sweep.
    for ways in [1usize, 2, 8, 16] {
        leg(
            &format!("mlp, {ways}-way search"),
            as_model(&mlp),
            AbacusConfig {
                ways,
                ..AbacusConfig::default()
            },
        );
    }

    // (c) predictor quality: linear regression and the no-overlap
    // pessimist in place of the MLP.
    let data = collect_dataset(
        &pair,
        &lib,
        &gpu,
        &noise,
        &TrainerConfig {
            samples_per_set: opts.scale.samples_per_set(),
            runs_per_group: opts.scale.runs_per_group(),
            seed: opts.seed ^ 0xA8,
            ..TrainerConfig::default()
        },
        99,
    );
    let lr: Arc<dyn LatencyModel> = Arc::new(LinearRegression::fit(&data, 1e-3));
    leg("linear-regression predictor", lr, AbacusConfig::default());
    let pessimist: Arc<dyn LatencyModel> = Arc::new(Pessimist {
        inner: as_model(&mlp),
        factor: 1.8,
    });
    leg("no-overlap pessimist (Fig. 6a view)", pessimist, AbacusConfig::default());

    csv.flush().expect("flush");
    println!("Ablations on (Res152, Bert) at {} QPS aggregate", opts.qos_load_total());
    println!("{}", table.render());

    // (d) predictor precision under pressure: on the saturating VGG pair
    // at peak load, an imprecise (over-predicting) linear model packs
    // groups badly while the MLP's tight budgets hold QoS — the regime
    // where the paper's precision requirement is load-bearing.
    let vgg = [ModelId::Vgg16, ModelId::Vgg19];
    let vgg_sets = vec![vgg.to_vec()];
    let vgg_mlp = ensure_predictor("ablation_vgg16_vgg19", &vgg_sets, &lib, &gpu, opts);
    let vgg_data = collect_dataset(
        &vgg,
        &lib,
        &gpu,
        &noise,
        &TrainerConfig {
            samples_per_set: opts.scale.samples_per_set(),
            runs_per_group: opts.scale.runs_per_group(),
            seed: opts.seed ^ 0xA9,
            ..TrainerConfig::default()
        },
        98,
    );
    let vgg_lr: Arc<dyn LatencyModel> = Arc::new(LinearRegression::fit(&vgg_data, 1e-3));
    let peak_cfg = ColocationConfig {
        qps_per_service: opts.peak_load_total() * 0.45,
        horizon_ms: opts.scale.horizon_ms(),
        seed: opts.seed,
        ..ColocationConfig::default()
    };
    let mut table2 = Table::new(vec!["variant", "p99/QoS", "violations", "tput q/s"]);
    for (name, model) in [
        ("mlp predictor", as_model(&vgg_mlp)),
        ("linear-regression predictor", vgg_lr),
    ] {
        let r = run_colocation(
            &vgg,
            PolicyKind::Abacus,
            Some(model),
            &lib,
            &gpu,
            &noise,
            &peak_cfg,
        );
        let row = [r.normalized_p99(), r.violation_ratio(), r.completed_qps()];
        csv.write_record(&format!("vgg-peak: {name}"), &row).expect("row");
        table2.row_f64(name.to_string(), &row, 3);
    }
    csv.flush().expect("flush");
    println!(
        "Predictor precision under pressure — (VGG16, VGG19) at {} QPS aggregate:",
        (2.0 * peak_cfg.qps_per_service).round()
    );
    println!("{}", table2.render());

    // (e) tail-aware prediction (extension): a q90 pinball-loss duration
    // model certifies budgets against the latency *tail* instead of the
    // mean — fewer violations for a little throughput.
    let q90: Arc<dyn LatencyModel> = Arc::new(predictor::Mlp::train(
        &data,
        &predictor::MlpConfig {
            epochs: opts.scale.epochs(),
            quantile: Some(0.9),
            ..predictor::MlpConfig::default()
        },
    ));
    let mut table3 = Table::new(vec!["variant", "p99/QoS", "violations", "tput q/s"]);
    for (name, model) in [("mean MLP", as_model(&mlp)), ("q90 MLP (pinball loss)", q90)] {
        let r = run_colocation(
            &pair,
            PolicyKind::Abacus,
            Some(model),
            &lib,
            &gpu,
            &noise,
            &base_cfg,
        );
        let row = [r.normalized_p99(), r.violation_ratio(), r.completed_qps()];
        csv.write_record(&format!("tail-aware: {name}"), &row).expect("row");
        table3.row_f64(name.to_string(), &row, 3);
    }
    println!("Tail-aware prediction (extension) — (Res152, Bert):");
    println!("{}", table3.render());

    // (f) composition with compiler fusion (§2): Abacus on element-wise
    // fused graphs. The predictor is retrained on the fused library.
    let fused_lib = Arc::new(fused_library());
    let fused_sets = vec![pair.to_vec()];
    let (fused_mlp, _) = serving::train_unified(
        &fused_sets,
        &fused_lib,
        &gpu,
        &noise,
        &serving::TrainerConfig {
            samples_per_set: opts.scale.samples_per_set(),
            runs_per_group: opts.scale.runs_per_group(),
            seed: opts.seed ^ 0xF5,
            ..serving::TrainerConfig::default()
        },
    );
    let fused_model: Arc<dyn LatencyModel> = Arc::new(fused_mlp);
    let mut table4 = Table::new(vec!["variant", "p99/QoS", "violations", "tput q/s"]);
    for (name, library, model) in [
        ("unfused graphs", lib.clone(), as_model(&mlp)),
        ("fused graphs (Rammer/TensorRT-style)", fused_lib.clone(), fused_model),
    ] {
        let r = run_colocation(
            &pair,
            PolicyKind::Abacus,
            Some(model),
            &library,
            &gpu,
            &noise,
            &base_cfg,
        );
        let row = [r.normalized_p99(), r.violation_ratio(), r.completed_qps()];
        csv.write_record(&format!("fusion: {name}"), &row).expect("row");
        table4.row_f64(name.to_string(), &row, 3);
    }
    println!("Composition with operator fusion (§2 extension) — (Res152, Bert):");
    println!("{}", table4.render());
    csv.flush().expect("flush");
    println!("wrote {}", opts.csv_path("ablation").display());
}

/// A model library whose graphs went through the element-wise fusion pass.
fn fused_library() -> ModelLibrary {
    // Rebuild every (model, input) graph and fuse it. ModelLibrary has no
    // mutation API, so construct through the same instantiation path.
    ModelLibrary::new_with(|graph| dnn_models::fuse_elementwise(&graph))
}
