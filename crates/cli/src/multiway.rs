//! Figs. 18 + 19 — triplet- and quadruplet-wise deployments (§7.4).

use crate::common::{as_model, ensure_predictor, map_cells, pair_label, pinned_abacus_config, Options};
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::sampling::paper_multiway_sets;
use serving::{run_colocation, ColocationConfig, PolicyKind};
use std::sync::Arc;
use workload::fork_seed;

/// Run both figures: p99 at the QoS load (Fig. 18) and peak throughput at
/// the saturating load (Fig. 19).
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let sets: Vec<Vec<ModelId>> = paper_multiway_sets();
    let mlp = ensure_predictor("unified_multiway_a100", &sets, &lib, &gpu, opts);
    let abacus = pinned_abacus_config(&mlp, "unified_multiway_a100", opts);

    let mut csv18 = CsvWriter::create(
        opts.csv_path("fig18"),
        &["set", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut csv19 = CsvWriter::create(
        opts.csv_path("fig19"),
        &["set", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut t18 = Table::new(vec!["set", "FCFS", "SJF", "EDF", "Abacus"]);
    let mut t19 = t18.clone();
    // Aggregates split by deployment size for the paper's per-size claims:
    // per-policy p99s, violation rates, throughputs, and the set count.
    type SizeAgg = ([f64; 4], [f64; 4], [f64; 4], usize);
    let mut agg: std::collections::HashMap<usize, SizeAgg> = std::collections::HashMap::new();

    // One cell per (set, load, policy): all independent, with the workload
    // seed derived per set so every load/policy of a set faces the same
    // arrival process — safe to fan out without changing the results.
    let loads = [opts.qos_load_total(), opts.peak_load_total()];
    let cells: Vec<(usize, usize, PolicyKind)> = (0..sets.len())
        .flat_map(|row| {
            (0..loads.len()).flat_map(move |li| PolicyKind::ALL.into_iter().map(move |p| (row, li, p)))
        })
        .collect();
    let results = map_cells(opts.parallel, &cells, |&(row, li, policy)| {
        let set = &sets[row];
        let cfg = ColocationConfig {
            qps_per_service: loads[li] / set.len() as f64,
            horizon_ms: opts.scale.horizon_ms(),
            seed: fork_seed(opts.seed, row as u64),
            abacus: abacus.clone(),
            ..ColocationConfig::default()
        };
        let pred = (policy == PolicyKind::Abacus).then(|| as_model(&mlp));
        run_colocation(set, policy, pred, &lib, &gpu, &noise, &cfg)
    });
    let mut by_cell = cells.iter().zip(results);

    for set in &sets {
        let label = pair_label(set);
        let mut p99 = Vec::new();
        let mut viol = Vec::new();
        let mut tput = Vec::new();
        for (_total_qps, out_p99, out_tput) in
            [(loads[0], true, false), (loads[1], false, true)]
        {
            for _p in PolicyKind::ALL {
                let (_, r) = by_cell.next().expect("cell results cover the grid");
                if out_p99 {
                    p99.push(r.normalized_p99());
                    viol.push(r.violation_ratio());
                }
                if out_tput {
                    tput.push(r.completed_qps());
                }
            }
        }
        csv18.write_record(&label, &p99).expect("row");
        csv19.write_record(&label, &tput).expect("row");
        t18.row_f64(label.clone(), &p99, 2);
        t19.row_f64(label.clone(), &tput, 1);
        let e = agg
            .entry(set.len())
            .or_insert(([0.0; 4], [0.0; 4], [0.0; 4], 0));
        for i in 0..4 {
            e.0[i] += p99[i];
            e.1[i] += viol[i];
            e.2[i] += tput[i];
        }
        e.3 += 1;
    }
    csv18.flush().expect("flush");
    csv19.flush().expect("flush");
    println!("Fig. 18 — normalised p99, triplet/quadruplet deployments");
    println!("{}", t18.render());
    println!("Fig. 19 — peak throughput (completed queries/s)");
    println!("{}", t19.render());
    for (k, kind, paper) in [
        (3usize, "triplet", "p99 -21.3/-35.3/-20.8%, tput +51.0/+72.3/+57.0%"),
        (4, "quadruplet", "p99 -16.1/-34.3/-21.1%, tput +38.4/+53.9/+63.4%"),
    ] {
        if let Some((p99s, _viols, tputs, _n)) = agg.get(&k) {
            println!(
                "{kind}: Abacus p99 {:+.1}/{:+.1}/{:+.1}% and throughput {:+.1}/{:+.1}/{:+.1}% vs FCFS/SJF/EDF (paper: {paper})",
                100.0 * (p99s[3] / p99s[0] - 1.0),
                100.0 * (p99s[3] / p99s[1] - 1.0),
                100.0 * (p99s[3] / p99s[2] - 1.0),
                100.0 * (tputs[3] / tputs[0] - 1.0),
                100.0 * (tputs[3] / tputs[1] - 1.0),
                100.0 * (tputs[3] / tputs[2] - 1.0),
            );
        }
    }
    println!(
        "wrote {} and {}",
        opts.csv_path("fig18").display(),
        opts.csv_path("fig19").display()
    );
}
