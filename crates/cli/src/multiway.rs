//! Figs. 18 + 19 — triplet- and quadruplet-wise deployments (§7.4).

use crate::common::{as_model, ensure_predictor, pair_label, Options};
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::sampling::paper_multiway_sets;
use serving::{run_colocation, ColocationConfig, PolicyKind};
use std::sync::Arc;

/// Run both figures: p99 at the QoS load (Fig. 18) and peak throughput at
/// the saturating load (Fig. 19).
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let sets: Vec<Vec<ModelId>> = paper_multiway_sets();
    let mlp = ensure_predictor("unified_multiway_a100", &sets, &lib, &gpu, opts);

    let mut csv18 = CsvWriter::create(
        opts.csv_path("fig18"),
        &["set", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut csv19 = CsvWriter::create(
        opts.csv_path("fig19"),
        &["set", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut t18 = Table::new(vec!["set", "FCFS", "SJF", "EDF", "Abacus"]);
    let mut t19 = t18.clone();
    // Aggregates split by deployment size for the paper's per-size claims.
    let mut agg: std::collections::HashMap<usize, ([f64; 4], [f64; 4], [f64; 4], usize)> =
        std::collections::HashMap::new();

    for set in &sets {
        let label = pair_label(set);
        let mut p99 = Vec::new();
        let mut viol = Vec::new();
        let mut tput = Vec::new();
        for (total_qps, out_p99, out_tput) in [
            (opts.qos_load_total(), true, false),
            (opts.peak_load_total(), false, true),
        ] {
            let cfg = ColocationConfig {
                qps_per_service: total_qps / set.len() as f64,
                horizon_ms: opts.scale.horizon_ms(),
                seed: opts.seed,
                ..ColocationConfig::default()
            };
            for p in PolicyKind::ALL {
                let pred = (p == PolicyKind::Abacus).then(|| as_model(&mlp));
                let r = run_colocation(set, p, pred, &lib, &gpu, &noise, &cfg);
                if out_p99 {
                    p99.push(r.normalized_p99());
                    viol.push(r.violation_ratio());
                }
                if out_tput {
                    tput.push(r.completed_qps());
                }
            }
        }
        csv18.write_record(&label, &p99).expect("row");
        csv19.write_record(&label, &tput).expect("row");
        t18.row_f64(label.clone(), &p99, 2);
        t19.row_f64(label.clone(), &tput, 1);
        let e = agg
            .entry(set.len())
            .or_insert(([0.0; 4], [0.0; 4], [0.0; 4], 0));
        for i in 0..4 {
            e.0[i] += p99[i];
            e.1[i] += viol[i];
            e.2[i] += tput[i];
        }
        e.3 += 1;
    }
    csv18.flush().expect("flush");
    csv19.flush().expect("flush");
    println!("Fig. 18 — normalised p99, triplet/quadruplet deployments");
    println!("{}", t18.render());
    println!("Fig. 19 — peak throughput (completed queries/s)");
    println!("{}", t19.render());
    for (k, kind, paper) in [
        (3usize, "triplet", "p99 -21.3/-35.3/-20.8%, tput +51.0/+72.3/+57.0%"),
        (4, "quadruplet", "p99 -16.1/-34.3/-21.1%, tput +38.4/+53.9/+63.4%"),
    ] {
        if let Some((p99s, _viols, tputs, _n)) = agg.get(&k) {
            println!(
                "{kind}: Abacus p99 {:+.1}/{:+.1}/{:+.1}% and throughput {:+.1}/{:+.1}/{:+.1}% vs FCFS/SJF/EDF (paper: {paper})",
                100.0 * (p99s[3] / p99s[0] - 1.0),
                100.0 * (p99s[3] / p99s[1] - 1.0),
                100.0 * (p99s[3] / p99s[2] - 1.0),
                100.0 * (tputs[3] / tputs[0] - 1.0),
                100.0 * (tputs[3] / tputs[1] - 1.0),
                100.0 * (tputs[3] / tputs[2] - 1.0),
            );
        }
    }
    println!(
        "wrote {} and {}",
        opts.csv_path("fig18").display(),
        opts.csv_path("fig19").display()
    );
}
