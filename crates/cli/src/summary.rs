//! Headline summary (§1 / §8): QoS-violation reduction and throughput
//! improvement vs the state-of-the-art baselines, aggregated from the
//! already-generated figure CSVs.

use crate::common::Options;
use std::path::Path;

/// Parse a figure CSV of shape `label, FCFS, SJF, EDF, Abacus`.
fn read_policy_csv(path: &Path) -> Option<Vec<[f64; 4]>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 5 {
            continue;
        }
        let mut row = [0.0; 4];
        for i in 0..4 {
            row[i] = cells[cells.len() - 4 + i].parse().ok()?;
        }
        rows.push(row);
    }
    Some(rows)
}

fn column_sums(rows: &[[f64; 4]]) -> [f64; 4] {
    let mut s = [0.0; 4];
    for r in rows {
        for i in 0..4 {
            s[i] += r[i];
        }
    }
    s
}

/// Print the headline aggregates. Requires `fig15`, `fig17` (and uses
/// `fig18`/`fig19` when present).
pub fn run(opts: &Options) {
    let Some(viol) = read_policy_csv(&opts.csv_path("fig15")) else {
        eprintln!("missing {}; run `abacus-repro fig14` first", opts.csv_path("fig15").display());
        return;
    };
    let Some(tput) = read_policy_csv(&opts.csv_path("fig17")) else {
        eprintln!("missing {}; run `abacus-repro fig17` first", opts.csv_path("fig17").display());
        return;
    };
    let mut viol_all = viol;
    let mut tput_all = tput;
    if let Some(v18) = read_policy_csv(&opts.csv_path("fig18")) {
        // Fig. 18 stores p99, not violations; skip. Fig. 19 is throughput.
        drop(v18);
    }
    if let Some(t19) = read_policy_csv(&opts.csv_path("fig19")) {
        tput_all.extend(t19);
    }
    let vs = column_sums(&viol_all);
    let ts = column_sums(&tput_all);
    // "Compared with state-of-the-art solutions": average the reduction
    // across the three baselines, as the abstract's 51.3% / 29.8% do.
    let viol_red: f64 = (0..3).map(|i| 1.0 - vs[3] / vs[i].max(1e-12)).sum::<f64>() / 3.0;
    let tput_gain: f64 = (0..3).map(|i| ts[3] / ts[i].max(1e-12) - 1.0).sum::<f64>() / 3.0;
    println!("Headline summary (abstract / §8)");
    println!(
        "  QoS violation reduction vs baselines (avg): {:.1}%   (paper: 51.3%)",
        100.0 * viol_red
    );
    println!(
        "  peak throughput improvement vs baselines (avg): {:.1}%   (paper: 29.8%)",
        100.0 * tput_gain
    );
    println!(
        "  per-baseline violation reduction FCFS/SJF/EDF: {:.1}% / {:.1}% / {:.1}%",
        100.0 * (1.0 - vs[3] / vs[0].max(1e-12)),
        100.0 * (1.0 - vs[3] / vs[1].max(1e-12)),
        100.0 * (1.0 - vs[3] / vs[2].max(1e-12)),
    );
    println!(
        "  per-baseline throughput gain FCFS/SJF/EDF: {:.1}% / {:.1}% / {:.1}%",
        100.0 * (ts[3] / ts[0] - 1.0),
        100.0 * (ts[3] / ts[1] - 1.0),
        100.0 * (ts[3] / ts[2] - 1.0),
    );
    viol_all.clear();
}
