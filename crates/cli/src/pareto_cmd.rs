//! `pareto` — violation rate vs throughput under uncertainty-aware
//! certification (extension of the Fig. 14/15 study).
//!
//! Two certification regimes compete on the same co-located pair and the
//! same offered load:
//!
//! - **fixed margin**: the paper's Eq. 2 check against the *mean*
//!   prediction padded by a hand-tuned safety margin, swept over several
//!   `margin_ms` settings;
//! - **conformal**: the Eq. 2 check against the calibrated split-conformal
//!   upper bound, swept over miscoverage levels α ∈ {0.10, 0.05, 0.01}.
//!
//! Each arm runs fault-free and under the PR 4 half-intensity fault plan,
//! so the sweep also shows how the two regimes degrade when the predictor
//! is actively sabotaged. The prediction-round latency is pinned to a
//! constant so the sweep — serial or parallel — reproduces byte for byte;
//! `scripts/bench_check.sh` gates on exactly that.
//!
//! A second table decomposes the certified interval width by group width
//! (solo vs 2-way), quantifying the PR 5 finding that solo rounds are the
//! predictor's out-of-distribution tail and therefore earn the widest
//! certified intervals.

use crate::common::{as_model, ensure_certified, map_cells, pair_label, Options};
use abacus_core::AbacusConfig;
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use faults::FaultPlan;
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{sample_groups, width_of_row, LatencyModel, Mlp};
use serving::{run_colocation_certified, ColocationConfig, NodeOptions, PolicyKind};
use std::sync::Arc;
use workload::fork_seed;

/// Pinned Eq. 3 prediction-round charge, ms (see `faults_cmd`).
const PREDICT_ROUND_MS: f64 = 0.08;

/// Fixed-margin baseline sweep: `margin_ms` settings around the default
/// 0.3 ms, from reckless to paranoid.
const MARGINS_MS: [f64; 5] = [0.0, 0.15, 0.3, 0.6, 1.2];

/// Conformal sweep: miscoverage levels (certified bound is the
/// `1 - alpha` quantile plus the per-stratum calibration correction).
const ALPHAS: [f64; 3] = [0.10, 0.05, 0.01];

/// Fault doses: clean serving and the half-intensity PR 4 plan.
const INTENSITIES: [f64; 2] = [0.0, 0.5];

#[derive(Clone)]
enum Arm {
    Margin(f64),
    Conformal(f64),
}

impl Arm {
    fn label(&self) -> String {
        match self {
            Arm::Margin(m) => format!("margin:{m}ms"),
            Arm::Conformal(a) => format!("conformal:a={a}"),
        }
    }
}

struct Cell {
    violation_ratio: f64,
    goodput_rps: f64,
    completed: usize,
    dropped: usize,
    invariant_violations: usize,
}

pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let models = [ModelId::ResNet50, ModelId::ResNet152];
    // Train over the pair *and* each singleton: the serving loop emits
    // solo rounds whenever the queue holds one query, so the calibration
    // strata need width-1 scores too (PR 5's width-split finding).
    let sets = vec![models.to_vec(), vec![models[0]], vec![models[1]]];
    let (mean, certifier) = ensure_certified("pareto_a100", &sets, &lib, &gpu, opts, ALPHAS[0]);

    let arms: Vec<Arm> = MARGINS_MS
        .iter()
        .map(|&m| Arm::Margin(m))
        .chain(ALPHAS.iter().map(|&a| Arm::Conformal(a)))
        .collect();
    let cfg_seed = fork_seed(opts.seed, 0x9A2E);
    let plan_seed = fork_seed(opts.seed, 0xFA17);

    let cells: Vec<(usize, usize)> = (0..INTENSITIES.len())
        .flat_map(|i| (0..arms.len()).map(move |a| (i, a)))
        .collect();
    let results: Vec<Cell> = map_cells(opts.parallel, &cells, |&(i, a)| {
        let arm = &arms[a];
        let abacus = match arm {
            Arm::Margin(m) => AbacusConfig {
                predict_round_ms: Some(PREDICT_ROUND_MS),
                margin_ms: *m,
                ..AbacusConfig::default()
            },
            Arm::Conformal(_) => AbacusConfig {
                predict_round_ms: Some(PREDICT_ROUND_MS),
                conformal: true,
                ..AbacusConfig::default()
            },
        };
        let cert: Option<Arc<dyn LatencyModel>> = match arm {
            Arm::Margin(_) => None,
            Arm::Conformal(alpha) => Some(Arc::new(certifier.with_alpha(*alpha))),
        };
        let cfg = ColocationConfig {
            qps_per_service: opts.qos_load_total() / models.len() as f64,
            horizon_ms: opts.scale.horizon_ms(),
            seed: cfg_seed,
            small_inputs: false,
            abacus,
        };
        let plan = FaultPlan::at_intensity(plan_seed, INTENSITIES[i]);
        let out = run_colocation_certified(
            &models,
            PolicyKind::Abacus,
            Some(as_model(&mean)),
            cert,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            NodeOptions::default(),
        );
        for violation in &out.invariant_violations {
            eprintln!(
                "[pareto] INVARIANT VIOLATION (intensity {}, {}): {violation}",
                INTENSITIES[i],
                arm.label()
            );
        }
        Cell {
            violation_ratio: out.result.violation_ratio(),
            goodput_rps: out.result.all.goodput_rps(cfg.horizon_ms),
            completed: out.result.all.completed(),
            dropped: out.result.all.dropped(),
            invariant_violations: out.invariant_violations.len(),
        }
    });

    let headers = [
        "arm",
        "intensity",
        "violation_ratio",
        "goodput_rps",
        "completed",
        "dropped",
    ];
    let mut csv = CsvWriter::create(opts.csv_path("pareto"), &headers).expect("csv");
    let mut table = Table::new(vec![
        "arm",
        "intensity",
        "viol_ratio",
        "goodput_rps",
        "completed",
        "dropped",
    ]);
    let mut total_invariant_violations = 0usize;
    for (k, &(i, a)) in cells.iter().enumerate() {
        let c = &results[k];
        total_invariant_violations += c.invariant_violations;
        let vals = [
            INTENSITIES[i],
            c.violation_ratio,
            c.goodput_rps,
            c.completed as f64,
            c.dropped as f64,
        ];
        csv.write_record(&arms[a].label(), &vals).expect("row");
        table.row_f64(arms[a].label(), &vals, 3);
    }
    csv.flush().expect("flush");

    println!(
        "Pareto sweep — QoS violation ratio vs goodput, fixed margin vs conformal ({} pair, {} QPS aggregate)",
        pair_label(&models),
        opts.qos_load_total()
    );
    println!("{}", table.render());

    // Interval-width anatomy: certified width (upper bound minus mean
    // prediction) per group width, over a deterministic group sample —
    // solo rounds from each singleton set, 2-way rounds from the pair.
    // Two stacks: the deployed one (trained on pair + singletons) and a
    // pairs-only stack, reproducing the PR 5 width-split finding — solo
    // rounds are the pairs-trained predictor's out-of-distribution tail,
    // so the pairs-only certifier prices them at much wider intervals.
    let (pair_mean, pair_cert) =
        ensure_certified("pareto_pair_a100", &[models.to_vec()], &lib, &gpu, opts, ALPHAS[0]);
    let mut specs = sample_groups(&models, 400, &lib, fork_seed(opts.seed, 0xD1));
    for (i, &m) in models.iter().enumerate() {
        specs.extend(sample_groups(&[m], 200, &lib, fork_seed(opts.seed, 0xD2 + i as u64)));
    }
    let stacks: [(&str, &Mlp, &predictor::ConformalModel); 2] = [
        ("pair+solo", &mean, &certifier),
        ("pair-only", &pair_mean, &pair_cert),
    ];
    let wheaders = ["stack/width", "mean_interval_ms", "relative_width", "samples"];
    let mut wcsv = CsvWriter::create(opts.csv_path("pareto_width"), &wheaders).expect("csv");
    let mut wtable = Table::new(wheaders.to_vec());
    println!(
        "Certified interval width by group width (alpha = {}):",
        ALPHAS[0]
    );
    for (name, m, cert) in stacks {
        let mut sum = std::collections::BTreeMap::<usize, (f64, f64, usize)>::new();
        for s in &specs {
            let x = s.features(&lib);
            let w = width_of_row(&x);
            let mean_ms = m.predict_one(&x);
            let width_ms = cert.predict_one(&x) - mean_ms;
            let e = sum.entry(w).or_insert((0.0, 0.0, 0));
            e.0 += width_ms;
            e.1 += width_ms / mean_ms;
            e.2 += 1;
        }
        for (w, (total, rel, n)) in &sum {
            let vals = [total / *n as f64, rel / *n as f64, *n as f64];
            let label = format!("{name}/w{w}");
            wcsv.write_record(&label, &vals).expect("row");
            wtable.row_f64(label, &vals, 3);
        }
    }
    wcsv.flush().expect("flush");
    println!("{}", wtable.render());

    if total_invariant_violations > 0 {
        eprintln!(
            "[pareto] {total_invariant_violations} serving-invariant violations — see log above"
        );
        std::process::exit(1);
    }
    println!("serving invariants held in every cell");
}
