//! Fig. 10 — prediction errors of LR, SVM and MLP, per pair and unified,
//! plus the MLP cross-validation bar.

use crate::common::{pair_label, Options};
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{
    eval, sampling::all_pairs, Dataset, LinearRegression, LinearSvr, Mlp, MlpConfig, SvrConfig,
};
use serving::{collect_dataset, TrainerConfig};
use std::sync::Arc;
use workload::SeededRng;

fn fit_and_eval(train: &Dataset, test: &Dataset, epochs: usize) -> (f64, f64, f64) {
    let lr = LinearRegression::fit(train, 1e-3);
    let svr = LinearSvr::fit(train, &SvrConfig::default());
    let mlp = Mlp::train(
        train,
        &MlpConfig {
            epochs,
            ..MlpConfig::default()
        },
    );
    (
        eval::mape(&lr, test),
        eval::mape(&svr, test),
        eval::mape(&mlp, test),
    )
}

/// Run the predictor comparison and emit `results/fig10.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let tcfg = TrainerConfig {
        samples_per_set: opts.scale.samples_per_set(),
        runs_per_group: opts.scale.runs_per_group(),
        seed: opts.seed,
        ..TrainerConfig::default()
    };
    let epochs = opts.scale.epochs();

    let mut csv = CsvWriter::create(
        opts.csv_path("fig10"),
        &["combination", "lr_mape", "svm_mape", "mlp_mape"],
    )
    .expect("csv");
    let mut table = Table::new(vec!["combination", "LR", "SVM", "MLP"]);
    let mut rng = SeededRng::new(opts.seed);

    let mut pooled = Dataset::new();
    let mut sums = [0.0f64; 3];
    let pairs = all_pairs();
    for (i, pair) in pairs.iter().enumerate() {
        let data = collect_dataset(pair, &lib, &gpu, &noise, &tcfg, i as u64);
        let (train, test) = data.split(0.8, &mut rng);
        let (lr, svm, mlp) = fit_and_eval(&train, &test, epochs);
        sums[0] += lr;
        sums[1] += svm;
        sums[2] += mlp;
        let label = pair_label(pair);
        csv.write_record(&label, &[lr, svm, mlp]).expect("row");
        table.row_f64(label, &[lr, svm, mlp], 3);
        pooled.extend(data);
    }
    let n = pairs.len() as f64;
    println!(
        "Fig. 10 — per-pair mean MAPE: LR {:.1}% SVM {:.1}% MLP {:.1}%  (paper: 23.5% / 21.5% / 5.5%)",
        100.0 * sums[0] / n,
        100.0 * sums[1] / n,
        100.0 * sums[2] / n
    );

    // Unified ("all") model over every pair.
    let (train, test) = pooled.split(0.8, &mut rng);
    let (lr_all, svm_all, mlp_all) = fit_and_eval(&train, &test, epochs);
    csv.write_record("all", &[lr_all, svm_all, mlp_all]).expect("row");
    table.row_f64("all", &[lr_all, svm_all, mlp_all], 3);
    println!(
        "  unified model: LR {:.1}% SVM {:.1}% MLP {:.1}%  (paper: 30.1% / 29.2% / 5.7%)",
        100.0 * lr_all,
        100.0 * svm_all,
        100.0 * mlp_all
    );

    // §5.5's extension: the unified model also predicts triplet- and
    // quadruplet-wise groups (paper: 4.9% and 6.4%).
    for (label, set) in [
        (
            "triplet (Res101,Res152,Bert)",
            vec![ModelId::ResNet101, ModelId::ResNet152, ModelId::Bert],
        ),
        (
            "quadruplet (Res101,Res152,VGG19,Bert)",
            vec![
                ModelId::ResNet101,
                ModelId::ResNet152,
                ModelId::Vgg19,
                ModelId::Bert,
            ],
        ),
    ] {
        let data = collect_dataset(&set, &lib, &gpu, &noise, &tcfg, 0xBEEF ^ set.len() as u64);
        let (train, test) = data.split(0.8, &mut rng);
        let mlp = Mlp::train(
            &train,
            &MlpConfig {
                epochs,
                ..MlpConfig::default()
            },
        );
        let err = eval::mape(&mlp, &test);
        csv.write_record(label, &[f64::NAN, f64::NAN, err]).expect("row");
        table.row(vec![label.into(), "-".into(), "-".into(), format!("{err:.3}")]);
        println!(
            "  {label}: MLP MAPE {:.1}% (paper: {})",
            100.0 * err,
            if set.len() == 3 { "4.9%" } else { "6.4%" }
        );
    }

    // Cross-validation of the unified MLP (fewer epochs to bound runtime).
    let cv = eval::kfold_mape(&pooled, 5, opts.seed ^ 0xCF, |tr| {
        Mlp::train(
            tr,
            &MlpConfig {
                epochs: (epochs / 2).max(20),
                ..MlpConfig::default()
            },
        )
    });
    csv.write_record("cross_validation", &[f64::NAN, f64::NAN, cv])
        .expect("row");
    table.row(vec![
        "cross-validation".into(),
        "-".into(),
        "-".into(),
        format!("{cv:.3}"),
    ]);
    println!("  5-fold cross-validation MLP MAPE: {:.1}%", 100.0 * cv);

    csv.flush().expect("flush");
    println!("{}", table.render());
    println!("wrote {}", opts.csv_path("fig10").display());
}
