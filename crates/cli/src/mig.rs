//! Figs. 20 + 21 / Table 3 — MIG isolation vs Abacus co-location (§7.5).
//!
//! Four services (Res101, Res152, VGG19, Bert) are deployed three ways on
//! one A100: fully isolated (4 × `MIG 1g.5gb`, one model per instance),
//! pair-wise isolated (2 × `MIG 2g.10gb`, three possible pairings), and
//! not isolated (1 × `MIG 4g.20gb`, quadruplet deployment). QoS targets
//! remain calibrated to the full A100, which is the paper's point: full
//! isolation starves the big models of compute and blows through QoS, while
//! Abacus's flexible co-location on bigger slices does not.

use crate::common::{as_model, ensure_predictor, map_cells, pair_label, pinned_abacus_config, Options};
use abacus_metrics::{CsvWriter, ServiceStats, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, MigProfile, NoiseModel};
use serving::{run_with_services, ColocationConfig, PolicyKind, ServiceSpec};
use std::sync::Arc;

/// One deployment case: groups of models, each group on its own instance.
struct MigCase {
    label: String,
    profile: MigProfile,
    groups: Vec<Vec<ModelId>>,
}

fn cases() -> Vec<MigCase> {
    use ModelId::*;
    vec![
        MigCase {
            label: "Res101+Res152+VGG19+Bert".into(),
            profile: MigProfile::OneG5Gb,
            groups: vec![vec![ResNet101], vec![ResNet152], vec![Vgg19], vec![Bert]],
        },
        MigCase {
            label: "(Res101,Bert)+(Res152,VGG19)".into(),
            profile: MigProfile::TwoG10Gb,
            groups: vec![vec![ResNet101, Bert], vec![ResNet152, Vgg19]],
        },
        MigCase {
            label: "(Res101,Res152)+(VGG19,Bert)".into(),
            profile: MigProfile::TwoG10Gb,
            groups: vec![vec![ResNet101, ResNet152], vec![Vgg19, Bert]],
        },
        MigCase {
            label: "(Res101,VGG19)+(Res152,Bert)".into(),
            profile: MigProfile::TwoG10Gb,
            groups: vec![vec![ResNet101, Vgg19], vec![ResNet152, Bert]],
        },
        MigCase {
            label: "(Res101,Res152,VGG19,Bert)".into(),
            profile: MigProfile::FourG20Gb,
            groups: vec![vec![ResNet101, ResNet152, Vgg19, Bert]],
        },
    ]
}

/// Run Figs. 20 + 21 and emit their CSVs.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let a100 = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    // One predictor per MIG slice geometry (the duration model is
    // hardware-specific). Singleton sets on the 1g slice let Abacus's drop
    // logic run even without co-location.
    let all_cases = cases();
    let mut csv20 = CsvWriter::create(
        opts.csv_path("fig20"),
        &["case", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut csv21 = CsvWriter::create(
        opts.csv_path("fig21"),
        &["case", "FCFS", "SJF", "EDF", "Abacus"],
    )
    .expect("csv");
    let mut t20 = Table::new(vec!["case", "FCFS", "SJF", "EDF", "Abacus"]);
    let mut t21 = t20.clone();
    let mut tviol = t20.clone();

    // QoS targets always from the full A100.
    let qos_of = |m: ModelId| lib.qos_target_ms(m, &a100);
    let mean_qos: f64 =
        all_cases[0].groups.iter().flatten().map(|&m| qos_of(m)).sum::<f64>() / 4.0;

    // Train every slice geometry's predictor up front (the disk cache is
    // not safe to populate from concurrent cells), then fan the
    // independent (case, policy, load, group) runs out over threads.
    let prepared: Vec<_> = all_cases
        .iter()
        .map(|case| {
            let slice = a100.mig_slice(case.profile);
            let tag = format!("mig_{}", case.profile.name().replace([' ', '.'], "_"));
            let mlp = ensure_predictor(&tag, &case.groups.clone(), &lib, &slice, opts);
            let abacus = pinned_abacus_config(&mlp, &tag, opts);
            (slice, mlp, abacus)
        })
        .collect();
    let loads = [0.6 * opts.qos_load_total(), 0.6 * opts.peak_load_total()];
    let cells: Vec<(usize, usize, usize, usize)> = all_cases
        .iter()
        .enumerate()
        .flat_map(|(ci, case)| {
            (0..PolicyKind::ALL.len()).flat_map(move |pi| {
                (0..loads.len())
                    .flat_map(move |li| (0..case.groups.len()).map(move |gi| (ci, pi, li, gi)))
            })
        })
        .collect();
    let results = map_cells(opts.parallel, &cells, |&(ci, pi, li, gi)| {
        let case = &all_cases[ci];
        let (slice, mlp, abacus) = &prepared[ci];
        let policy = PolicyKind::ALL[pi];
        let services: Vec<ServiceSpec> = case.groups[gi]
            .iter()
            .map(|&m| ServiceSpec {
                model: m,
                qos_ms: qos_of(m),
            })
            .collect();
        let cfg = ColocationConfig {
            qps_per_service: loads[li] / 4.0,
            horizon_ms: opts.scale.horizon_ms(),
            seed: opts.seed ^ (gi as u64) << 8,
            abacus: abacus.clone(),
            ..ColocationConfig::default()
        };
        let pred = (policy == PolicyKind::Abacus).then(|| as_model(mlp));
        run_with_services(&services, policy, pred, &lib, slice, &noise, &cfg)
    });
    let mut by_cell = cells.iter().zip(results);

    for case in &all_cases {
        let mut row20 = Vec::new();
        let mut row21 = Vec::new();
        for _policy in PolicyKind::ALL {
            // Fig. 20 at the QoS load; Fig. 21 at the saturating load.
            // Our simulated MIG slices retain less relative capacity than
            // the paper's testbed (see EXPERIMENTS.md), so the MIG study
            // runs at 60% of the single-GPU loads to stay in the same
            // utilisation regime the paper reports.
            for out in [&mut row20, &mut row21] {
                let mut pooled = ServiceStats::new();
                let mut completed = 0.0;
                for _gi in 0..case.groups.len() {
                    let (_, r) = by_cell.next().expect("cell results cover the grid");
                    completed += r.completed_qps();
                    for s in &r.per_service {
                        pooled.extend_from(s);
                    }
                }
                out.push((pooled, completed));
            }
        }
        let p99s: Vec<f64> = row20
            .iter()
            .map(|(s, _)| s.p99_latency() / mean_qos)
            .collect();
        let viols: Vec<f64> = row20.iter().map(|(s, _)| s.violation_ratio()).collect();
        let tputs: Vec<f64> = row21.iter().map(|(_, c)| *c).collect();
        tviol.row_f64(case.label.clone(), &viols, 3);
        csv20.write_record(&case.label, &p99s).expect("row");
        csv21.write_record(&case.label, &tputs).expect("row");
        t20.row_f64(case.label.clone(), &p99s, 2);
        t21.row_f64(case.label.clone(), &tputs, 1);
    }
    csv20.flush().expect("flush");
    csv21.flush().expect("flush");
    println!(
        "Table 3 — MIG profiles: {}",
        [MigProfile::OneG5Gb, MigProfile::TwoG10Gb, MigProfile::FourG20Gb]
            .map(|p| format!(
                "{} = {:.0}% SMs / {:.0}% mem",
                p.name(),
                100.0 * p.sm_fraction(),
                100.0 * p.bw_fraction()
            ))
            .join("; ")
    );
    println!("Fig. 20 — normalised p99 with MIG deployments (QoS from the full A100)");
    println!("{}", t20.render());
    println!("QoS violation ratios at the Fig. 20 load (drops counted):");
    println!("{}", tviol.render());
    println!("Fig. 21 — peak throughput with MIG deployments (completed queries/s)");
    println!("{}", t21.render());
    println!("paper shape: full isolation >> QoS target; quad on 4g.20gb ≈ pair-wise on 2x 2g.10gb");
    println!(
        "wrote {} and {}",
        opts.csv_path("fig20").display(),
        opts.csv_path("fig21").display()
    );
}

/// The pair label helper keeps figure ordering consistent.
#[allow(dead_code)]
fn label_of(models: &[ModelId]) -> String {
    pair_label(models)
}
