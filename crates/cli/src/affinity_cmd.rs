//! §7.8 deployment planning — measure every pair's overlap affinity under
//! peak load and plan the service groups Abacus would actually deploy
//! together ("co-location like (VGG16, VGG19) can be avoided by analyzing
//! the profiling data").

use crate::common::Options;
use abacus_metrics::{CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{peak_affinity, plan_service_groups, PairAffinity, NO_OVERLAP_GAIN};

/// Run the affinity survey and emit `results/affinity.csv`.
pub fn run(opts: &Options) {
    let lib = ModelLibrary::new();
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let samples = (opts.scale.samples_per_set() / 10).max(50);
    let runs = opts.scale.runs_per_group().min(5);

    let mut csv = CsvWriter::create(opts.csv_path("affinity"), &["pair", "overlap_gain"])
        .expect("csv");
    let mut table = Table::new(vec!["pair", "peak overlap gain", "deployable"]);
    let mut affinities: Vec<PairAffinity> = Vec::new();
    for (i, pair) in predictor::all_pairs().into_iter().enumerate() {
        let a = peak_affinity(pair, &lib, &gpu, &noise, samples, runs, opts.seed ^ i as u64);
        let label = crate::common::pair_label(&pair);
        csv.write_record(&label, &[a.gain]).expect("row");
        table.row(vec![
            label,
            format!("{:.3}", a.gain),
            if a.gain >= NO_OVERLAP_GAIN { "yes" } else { "no (sequential-equivalent)" }.into(),
        ]);
        affinities.push(a);
    }
    csv.flush().expect("flush");
    println!(
        "Peak-load overlap affinity per pair (threshold {NO_OVERLAP_GAIN}; §7.8's deployment analysis)"
    );
    println!("{}", table.render());

    for k in [2usize, 4] {
        let groups = plan_service_groups(&ModelId::PAPER_MODELS, &affinities, k);
        let rendered: Vec<String> = groups
            .iter()
            .map(|g| crate::common::pair_label(g))
            .collect();
        println!("service groups of size ≤ {k}: {}", rendered.join("  "));
    }
    println!(
        "paper: '(VGG16, VGG19) can be avoided by analyzing the profiling data' — check the groups above"
    );
    println!("wrote {}", opts.csv_path("affinity").display());
}
