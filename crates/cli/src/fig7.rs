//! Fig. 7 / §5.2 — latency determinism of operator groups.
//!
//! Samples operator groups over all 21 pairs, measures each many times, and
//! reports the CDFs of the mean end-to-end latency and of the run-to-run
//! standard deviation, plus the §5.2 headline statistics (average std,
//! 90%-ile std, std/mean ratio).

use crate::common::Options;
use abacus_metrics::{percentile, Cdf, CsvWriter};
use dnn_models::ModelLibrary;
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::sampling::all_pairs;
use serving::{collect_profiles, TrainerConfig};
use std::sync::Arc;

/// Run the determinism study and emit `results/fig7.csv`.
pub fn run(opts: &Options) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let cfg = TrainerConfig {
        samples_per_set: opts.scale.samples_per_set(),
        runs_per_group: opts.scale.runs_per_group().max(10),
        seed: opts.seed,
        ..TrainerConfig::default()
    };

    let mut means = Vec::new();
    let mut stds = Vec::new();
    for (i, pair) in all_pairs().iter().enumerate() {
        for p in collect_profiles(pair, &lib, &gpu, &noise, &cfg, i as u64) {
            means.push(p.mean_ms);
            stds.push(p.std_ms);
        }
    }
    let n = means.len();
    let mean_e2e = abacus_metrics::mean(&means);
    let p90_e2e = percentile(&means, 90.0);
    let mean_std = abacus_metrics::mean(&stds);
    let p90_std = percentile(&stds, 90.0);
    let ratios: Vec<f64> = means
        .iter()
        .zip(&stds)
        .map(|(m, s)| s / m.max(1e-9))
        .collect();

    println!("Fig. 7 / §5.2 — determinism of {n} operator groups x {} runs", cfg.runs_per_group);
    println!("  mean group latency : {mean_e2e:.1} ms   (paper: 15.9 ms)");
    println!("  90%-ile latency    : {p90_e2e:.1} ms   (paper: 25.8 ms)");
    println!("  average std        : {mean_std:.2} ms   (paper: 0.65 ms)");
    println!("  90%-ile std        : {p90_std:.2} ms   (paper: 1.58 ms)");
    println!(
        "  mean std/mean      : {:.2}%   (paper: 4.53%)",
        100.0 * abacus_metrics::mean(&ratios)
    );

    let mut csv = CsvWriter::create(
        opts.csv_path("fig7"),
        &["series", "quantile", "value_ms"],
    )
    .expect("csv");
    for (name, data) in [("e2e", &means), ("std", &stds)] {
        let cdf = Cdf::new(data);
        for (v, q) in cdf.curve(60) {
            csv.write_row(vec![name.into(), format!("{q}"), format!("{v}")])
                .expect("row");
        }
    }
    csv.flush().expect("flush");
    println!("wrote {}", opts.csv_path("fig7").display());
}
