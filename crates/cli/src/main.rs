//! `abacus-repro` — regenerates every table and figure of the paper.
//!
//! Usage: `abacus-repro <experiment> [--fast|--medium|--full] [--seed N]
//! [--out DIR] [--retrain]`
//!
//! Experiments: `table1 table2 fig3 fig7 fig10 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20 fig21 fig22 fig23 overhead ablation summary all`.
//! CSV series land in `results/` (override with `--out`); a human-readable
//! rendition of each figure prints to stdout together with the paper's
//! reference numbers.

mod ablation;
mod affinity_cmd;
mod analysis;
mod common;
mod fig10;
mod faults_cmd;
mod fig22;
mod fig23;
mod fig3;
mod fig7;
mod health_cmd;
mod mig;
mod multiway;
mod pairwise;
mod pareto_cmd;
mod summary;
mod tables;
mod trace_cmd;

use common::{ensure_out_dir, parse_options};

const USAGE: &str = "usage: abacus-repro <experiment> [options]

experiments:
  table1    model zoo (Table 1)          fig17    peak throughput, 21 pairs
  table2    hardware spec (Table 2)      fig18    p99, triplets/quadruplets
  fig3      MPS free-overlap tail        fig19    throughput, triplets/quads
  fig7      operator-group determinism   fig20    MIG isolation, p99
  fig10     LR/SVM/MLP prediction error  fig21    MIG isolation, throughput
  fig14     normalised p99, 21 pairs     fig22    cluster vs Clockwork
  fig15     QoS violations, 21 pairs     fig23    multi-way search latency
  fig16     small-DNN p99 (Abacus)       overhead §7.8 footprints
  ablation  design-choice ablations      summary  abstract headline numbers
  analysis  latency anatomy + overlap trace (extension)
  affinity  §7.8 co-location affinity survey + service-group planning
  faults    QoS violations vs fault intensity + invariant check (extension)
  pareto    violation rate vs throughput: fixed margin vs conformal (extension)
  trace     telemetry: Perfetto trace, decision ledger, §5.2 error sweep
  health    run-health monitors: drift/SLO-burn detection latency (extension)
  all       everything above, in order

options:
  --fast | --medium | --full   experiment scale (default: --medium)
  --seed N                     master seed (default: 2021)
  --out DIR                    output directory (default: results/)
  --retrain                    ignore cached predictor models
  --sketch                     report queue-delay percentiles from the
                               streaming quantile sketch instead of the
                               exact per-query pool";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    ensure_out_dir(&opts.out_dir);
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "table1" => tables::table1(&opts),
        "table2" => tables::table2(&opts),
        "fig3" => fig3::run(&opts),
        "fig7" => fig7::run(&opts),
        "fig10" => fig10::run(&opts),
        "fig14" | "fig15" => pairwise::run_qos(&opts),
        "fig16" => pairwise::run_small(&opts),
        "fig17" => pairwise::run_peak(&opts),
        "fig18" | "fig19" => multiway::run(&opts),
        "fig20" | "fig21" => mig::run(&opts),
        "fig22" => fig22::run(&opts),
        "fig23" => fig23::run(&opts),
        "overhead" => tables::overhead(&opts),
        "ablation" => ablation::run(&opts),
        "affinity" => affinity_cmd::run(&opts),
        "analysis" => analysis::run(&opts),
        "faults" => faults_cmd::run(&opts),
        "pareto" => pareto_cmd::run(&opts),
        "trace" => trace_cmd::run(&opts),
        "health" => health_cmd::run(&opts),
        "summary" => summary::run(&opts),
        "all" => {
            tables::table1(&opts);
            tables::table2(&opts);
            fig3::run(&opts);
            fig7::run(&opts);
            fig10::run(&opts);
            pairwise::run_qos(&opts);
            pairwise::run_small(&opts);
            pairwise::run_peak(&opts);
            multiway::run(&opts);
            mig::run(&opts);
            fig22::run(&opts);
            fig23::run(&opts);
            tables::overhead(&opts);
            ablation::run(&opts);
            affinity_cmd::run(&opts);
            analysis::run(&opts);
            faults_cmd::run(&opts);
            pareto_cmd::run(&opts);
            trace_cmd::run(&opts);
            health_cmd::run(&opts);
            summary::run(&opts);
        }
        other => {
            eprintln!("unknown experiment '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    eprintln!("[{cmd}] finished in {:.1?}", t0.elapsed());
}
