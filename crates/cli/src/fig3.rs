//! Fig. 3 — latency CDF of ResNet-152 under MPS free overlap against each
//! co-runner.

use crate::common::Options;
use abacus_metrics::{Cdf, CsvWriter, Table};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::GpuSpec;
use serving::{mps_victim_latencies, victim_solo_ms, MpsConfig};

/// The six co-runners of Fig. 3 (Table 1's models except the victim).
fn corunners() -> Vec<ModelId> {
    ModelId::PAPER_MODELS
        .into_iter()
        .filter(|&m| m != ModelId::ResNet152)
        .collect()
}

/// Run the experiment and emit `results/fig3.csv` + a console table.
pub fn run(opts: &Options) {
    let lib = ModelLibrary::new();
    let gpu = GpuSpec::a100();
    let horizon = opts.scale.horizon_ms().max(10_000.0);
    let mut csv = CsvWriter::create(
        opts.csv_path("fig3"),
        &["corunner", "quantile", "latency_ms"],
    )
    .expect("csv");
    let mut table = Table::new(vec!["corunner", "p50", "p90", "p99", "max"]);

    let base = MpsConfig {
        victim: ModelId::ResNet152,
        victim_input: QueryInput::new(32, 1),
        antagonist: ModelId::ResNet50,
        antagonist_qps: 35.0,
        horizon_ms: horizon,
        seed: opts.seed,
    };
    let solo = victim_solo_ms(&base, &lib, &gpu);
    println!(
        "Fig. 3 — ResNet-152 (bs 32) latency under MPS free overlap (solo = {solo:.1} ms; paper: 24 ms solo, tail up to 241 ms)"
    );
    for co in corunners() {
        let cfg = MpsConfig {
            antagonist: co,
            ..base.clone()
        };
        let lat = mps_victim_latencies(&cfg, &lib, &gpu);
        let cdf = Cdf::new(&lat);
        for (v, q) in cdf.curve(40) {
            csv.write_row(vec![co.name().into(), format!("{q}"), format!("{v}")])
                .expect("csv row");
        }
        table.row(vec![
            co.name().to_string(),
            format!("{:.1}", cdf.value_at(0.5)),
            format!("{:.1}", cdf.value_at(0.9)),
            format!("{:.1}", cdf.value_at(0.99)),
            format!("{:.1}", cdf.value_at(1.0)),
        ]);
    }
    csv.flush().expect("csv flush");
    println!("{}", table.render());
    println!("wrote {}", opts.csv_path("fig3").display());
}
