//! Shared plumbing for the experiment subcommands: scale presets, cached
//! predictor training, and output helpers.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{persist, ConformalModel, LatencyModel, Mlp, MlpConfig};
use serving::{train_certified, train_unified, TrainerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI-friendly).
    Fast,
    /// Default: minutes, paper-shaped results.
    Medium,
    /// Paper-scale sampling (tens of minutes on one core).
    Full,
}

impl Scale {
    /// Operator-group samples per co-location set for predictor training.
    pub fn samples_per_set(self) -> usize {
        match self {
            Scale::Fast => 300,
            Scale::Medium => 1_500,
            Scale::Full => 2_000,
        }
    }

    /// Profiling repetitions per group (paper: 100).
    pub fn runs_per_group(self) -> usize {
        match self {
            Scale::Fast => 3,
            Scale::Medium => 5,
            Scale::Full => 100,
        }
    }

    /// Serving horizon per (pair, policy) leg, ms.
    pub fn horizon_ms(self) -> f64 {
        match self {
            Scale::Fast => 5_000.0,
            Scale::Medium => 20_000.0,
            Scale::Full => 60_000.0,
        }
    }

    /// Cluster trace length, minutes (paper: 120).
    pub fn trace_minutes(self) -> usize {
        match self {
            Scale::Fast => 6,
            Scale::Medium => 24,
            Scale::Full => 120,
        }
    }

    /// MLP training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Fast => 40,
            Scale::Medium => 150,
            Scale::Full => 200,
        }
    }
}

/// Parsed global options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Scale preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs and cached models.
    pub out_dir: PathBuf,
    /// Force predictor retraining even if a cached model exists.
    pub retrain: bool,
    /// Fan independent experiment cells out over threads. Cell results —
    /// and therefore the CSVs — are byte-identical to the serial order;
    /// `--serial` exists for demonstrating exactly that.
    pub parallel: bool,
    /// Report queue-delay percentiles from the streaming quantile sketch
    /// instead of the exact kept-every-delay pool (`--sketch`; bounded
    /// memory, within `QuantileSketch::RELATIVE_ERROR` of exact).
    pub sketch: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Medium,
            seed: 2021,
            out_dir: PathBuf::from("results"),
            retrain: false,
            parallel: true,
            sketch: false,
        }
    }
}

impl Options {
    /// Path of a result CSV.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }

    /// Offered load for the QoS experiments: 50 QPS aggregate per GPU
    /// (the paper's "load of 50 queries-per-second", which it notes "does
    /// not saturate the GPU").
    pub fn qos_load_total(&self) -> f64 {
        50.0
    }

    /// Offered load for the peak-throughput experiments: 100 QPS aggregate.
    pub fn peak_load_total(&self) -> f64 {
        100.0
    }

    /// Trainer configuration for this scale.
    pub fn trainer_config(&self) -> TrainerConfig {
        TrainerConfig {
            samples_per_set: self.scale.samples_per_set(),
            runs_per_group: self.scale.runs_per_group(),
            mlp: MlpConfig {
                epochs: self.scale.epochs(),
                ..MlpConfig::default()
            },
            seed: self.seed ^ 0xAB,
        }
    }
}

/// Parse `[scale] [--seed N] [--out DIR] [--retrain] [--serial] [--sketch]`
/// style arguments.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => opts.scale = Scale::Fast,
            "--medium" => opts.scale = Scale::Medium,
            "--full" => opts.scale = Scale::Full,
            "--retrain" => opts.retrain = true,
            "--serial" => opts.parallel = false,
            "--sketch" => opts.sketch = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out_dir = PathBuf::from(v);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Cache path of the unified duration model for `tag` at the current
/// scale. The key includes the GPU tag and scale, so A100, MIG and V100
/// predictors coexist under `results/models/`; the `.round_ms` calibration
/// sidecar lives next to it (see [`predictor::persist::round_ms_path`]).
pub fn model_path(tag: &str, opts: &Options) -> PathBuf {
    opts.out_dir
        .join("models")
        .join(format!("{tag}_{:?}.mlp", opts.scale).to_lowercase())
}

/// Train (or load from cache) the unified duration model for `sets` on
/// `gpu`. A missing, truncated or corrupt cache file degrades to a
/// retrain, never to a failed run.
pub fn ensure_predictor(
    tag: &str,
    sets: &[Vec<ModelId>],
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    opts: &Options,
) -> Arc<Mlp> {
    let path = model_path(tag, opts);
    let train = || {
        eprintln!(
            "[predictor] training unified model '{tag}' over {} sets ({} samples x {} runs each)...",
            sets.len(),
            opts.scale.samples_per_set(),
            opts.scale.runs_per_group()
        );
        let t0 = std::time::Instant::now();
        let (mlp, data) =
            train_unified(sets, lib, gpu, &NoiseModel::calibrated(), &opts.trainer_config());
        let mut rng = workload::SeededRng::new(1);
        let (_, test) = data.split(0.9, &mut rng);
        let err = predictor::eval::mape(&mlp, &test);
        eprintln!(
            "[predictor] trained in {:.1?}; held-out MAPE {:.1}% ({} samples)",
            t0.elapsed(),
            err * 100.0,
            data.len()
        );
        mlp
    };
    let (mlp, cached) = if opts.retrain {
        (train(), false)
    } else {
        persist::load_or_else(&path, train)
    };
    if cached {
        eprintln!("[predictor] loaded cached model {}", path.display());
    } else if let Err(e) = persist::save(&mlp, &path) {
        eprintln!("[predictor] warning: could not cache model: {e}");
    }
    Arc::new(mlp)
}

/// Upcast helper.
pub fn as_model(mlp: &Arc<Mlp>) -> Arc<dyn LatencyModel> {
    mlp.clone()
}

/// Cache path of the conformal certifier artifact for `tag` at the
/// current scale, next to the mean model under `results/models/`.
pub fn conformal_path(tag: &str, opts: &Options) -> PathBuf {
    opts.out_dir
        .join("models")
        .join(format!("{tag}_{:?}.conformal", opts.scale).to_lowercase())
}

/// Train (or load from cache) the *certified* predictor stack for `sets`:
/// the unified mean model plus the split-conformal upper-bound model.
/// The two artifacts cache separately but train in one pass (the mean
/// model of [`train_certified`] is bit-identical to [`train_unified`]'s,
/// so the plain `.mlp` cache stays valid for every other experiment).
/// Corrupt or missing caches degrade to a retrain, never to a failed run.
pub fn ensure_certified(
    tag: &str,
    sets: &[Vec<ModelId>],
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    opts: &Options,
    alpha: f64,
) -> (Arc<Mlp>, Arc<ConformalModel>) {
    let mpath = model_path(tag, opts);
    let cpath = conformal_path(tag, opts);
    if !opts.retrain {
        if let (Ok(mean), Ok(cert)) = (persist::load(&mpath), persist::load_conformal(&cpath)) {
            eprintln!(
                "[predictor] loaded cached certified stack {} + {}",
                mpath.display(),
                cpath.display()
            );
            return (Arc::new(mean), Arc::new(cert.with_alpha(alpha)));
        }
    }
    eprintln!(
        "[predictor] training certified stack '{tag}' over {} sets ({} samples x {} runs each)...",
        sets.len(),
        opts.scale.samples_per_set(),
        opts.scale.runs_per_group()
    );
    let t0 = std::time::Instant::now();
    let trained = train_certified(
        sets,
        lib,
        gpu,
        &NoiseModel::calibrated(),
        &opts.trainer_config(),
        alpha,
    );
    eprintln!("[predictor] certified stack trained in {:.1?}", t0.elapsed());
    if let Err(e) = persist::save(&trained.mean, &mpath) {
        eprintln!("[predictor] warning: could not cache mean model: {e}");
    }
    if let Err(e) = persist::save_conformal(&trained.certifier, &cpath) {
        eprintln!("[predictor] warning: could not cache certifier: {e}");
    }
    (Arc::new(trained.mean), Arc::new(trained.certifier))
}

/// Map `f` over experiment cells, fanned out over threads when
/// `parallel` — output order always matches input order, and because every
/// cell derives its own seed, the results are identical either way.
///
/// `--parallel` is downgraded to the plain serial loop when fanning out
/// cannot help ([`rayon::worth_fanning_out`]): a single-core host, or
/// fewer than two cells. The fan-out machinery degrades to a serial loop
/// in those cases anyway, so this only removes its overhead — results are
/// identical by construction (see DESIGN.md §7).
pub fn map_cells<T: Sync, R: Send>(
    parallel: bool,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if parallel && rayon::worth_fanning_out(items.len()) {
        use rayon::prelude::*;
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

/// An [`abacus_core::AbacusConfig`] whose prediction-round latency is
/// calibrated *once* against `model` and pinned. The default config
/// re-measures it from the wall clock inside every scheduler instance,
/// which would make each Abacus cell's timing — and hence the CSVs —
/// irreproducible across runs and between the serial and parallel sweep
/// paths. The calibrated value is cached on disk next to the predictor
/// (keyed by `tag` and scale, honouring `--retrain`), so *reruns* of an
/// experiment — serial or parallel — charge the identical Eq. 3 overhead
/// and reproduce the CSVs byte for byte.
pub fn pinned_abacus_config(
    model: &Arc<Mlp>,
    tag: &str,
    opts: &Options,
) -> abacus_core::AbacusConfig {
    let cfg = abacus_core::AbacusConfig::default();
    let path = model_path(tag, opts);
    if !opts.retrain {
        if let Some(round_ms) = persist::load_round_ms(&path) {
            return abacus_core::AbacusConfig {
                predict_round_ms: Some(round_ms),
                ..cfg
            };
        }
    }
    let round_ms = abacus_core::calibrate_predict_round_ms(model.as_ref(), cfg.ways);
    if let Err(e) = persist::save_round_ms(&path, round_ms) {
        eprintln!("[predictor] warning: could not cache round latency: {e}");
    }
    abacus_core::AbacusConfig {
        predict_round_ms: Some(round_ms),
        ..cfg
    }
}

/// Pretty-print a pair label the way the paper's figures do.
pub fn pair_label(models: &[ModelId]) -> String {
    let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    format!("({})", names.join(","))
}

/// Ensure the output directory exists.
pub fn ensure_out_dir(path: &Path) {
    std::fs::create_dir_all(path).expect("cannot create output directory");
}
