//! Golden decision-stream tests (DESIGN.md §12).
//!
//! The per-round decision hot path — incremental `(deadline, id)` order
//! index, arena-backed scratch, recycled entry buffers — must be
//! *bit-identical* to the pre-overhaul controller it replaced. Two layers
//! pin that:
//!
//! 1. [`RefController`] embeds the pre-overhaul `AbacusScheduler::decide`
//!    verbatim (fresh `Vec<&Query>` collect + per-round headroom sort +
//!    retain passes + `sorted.remove(0)` drop loop). The search layer it
//!    calls ([`plan_group`]) is itself pinned bit-for-bit against its own
//!    pre-refactor reference in `search.rs`. A fixed-seed churned replay
//!    asserts equal [`RoundDecision`] streams round by round.
//! 2. Property tests over grid-quantised random queues assert that the
//!    incremental order (admit/retire hooks driven) and the full re-sort
//!    fallback (hooks skipped → rebuild) decide identically — including
//!    empty queues, headroom ties, expired queries, and all-infeasible
//!    rounds under a frozen or NaN predictor.
//!
//! Arrival/QoS values are grid-quantised (multiples of 2.5 ms): subtracting
//! `now` from grid values is exact in f64, so the former headroom sort and
//! the deadline order cannot diverge by rounding — the §12 order-key
//! invariance contract these tests pin.

use abacus_core::{
    plan_group, AbacusConfig, AbacusScheduler, PlannedGroup, Query, RoundDecision, Scheduler,
    SearchResult,
};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use predictor::features::SLOT_WIDTH;
use predictor::{LatencyModel, MAX_COLOCATED, MODEL_SLOT_BASE};
use proptest::prelude::*;
use std::sync::Arc;

const PREDICT_ROUND_MS: f64 = 0.09;

/// Synthetic monotone duration model: per-slot cost proportional to the
/// normalised operator span (same fixture the scheduler unit tests use).
struct SpanModel;

impl LatencyModel for SpanModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut total: f64 = 0.0;
        for slot in 0..MAX_COLOCATED {
            let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
            total += (x[base + 1] - x[base]) * 10.0;
        }
        total
    }
    fn name(&self) -> &'static str {
        "span"
    }
}

/// A predictor frozen at a constant (possibly NaN / absurdly high):
/// misprediction injection's worst case — every round is infeasible.
struct FrozenModel(f64);

impl LatencyModel for FrozenModel {
    fn predict_one(&self, _: &[f64]) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "frozen"
    }
}

/// The pre-overhaul controller, embedded verbatim: per-round headroom sort
/// of a fresh `Vec<&Query>`, expiry and §6.1 per-model retain passes, and
/// the §6.2 `sorted.remove(0)` drop loop, with the Eq. 3 pipelined
/// overhead account.
struct RefController {
    model: Arc<dyn LatencyModel>,
    lib: Arc<ModelLibrary>,
    cfg: AbacusConfig,
    hide_window_ms: f64,
}

impl RefController {
    fn new(model: Arc<dyn LatencyModel>, lib: Arc<ModelLibrary>, cfg: AbacusConfig) -> Self {
        assert!(
            cfg.predict_round_ms.is_some(),
            "golden runs pin the prediction-round latency"
        );
        Self {
            model,
            lib,
            cfg,
            hide_window_ms: 0.0,
        }
    }

    fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision {
        let mut dropped = Vec::new();
        // Sort by headroom ascending (Eq. 2); ties by id for determinism.
        let mut sorted: Vec<&Query> = queue.iter().collect();
        sorted.sort_by(|a, b| {
            a.headroom_ms(now_ms)
                .total_cmp(&b.headroom_ms(now_ms))
                .then(a.id.cmp(&b.id))
        });
        // Expired queries can never meet QoS: drop outright.
        sorted.retain(|q| {
            if q.headroom_ms(now_ms) < 0.0 {
                dropped.push(q.id);
                false
            } else {
                true
            }
        });
        // §6.1: only the least-headroom query of each model is eligible.
        let mut seen_models = 0u32;
        sorted.retain(|q| {
            let bit = 1u32 << q.model.index();
            if seen_models & bit != 0 {
                false
            } else {
                seen_models |= bit;
                true
            }
        });

        let mut prediction_rounds = 0usize;
        let mut planned: Option<PlannedGroup> = None;
        let margin_frac = self.cfg.margin_frac;
        while !sorted.is_empty() {
            let budget =
                (sorted[0].headroom_ms(now_ms) - self.cfg.margin_ms) / (1.0 + margin_frac);
            match plan_group(&sorted, budget, self.model.as_ref(), &self.lib, self.cfg.ways) {
                SearchResult::Planned(mut p) => {
                    prediction_rounds += p.prediction_rounds;
                    p.prediction_rounds = prediction_rounds;
                    planned = Some(p);
                    break;
                }
                SearchResult::Infeasible {
                    prediction_rounds: r,
                } => {
                    prediction_rounds += r;
                    dropped.push(sorted[0].id);
                    sorted.remove(0);
                }
            }
        }

        let search_ms = self.cfg.base_overhead_ms
            + prediction_rounds as f64 * self.cfg.predict_round_ms.unwrap();
        let overhead_ms = if self.cfg.pipelined {
            let charged = (search_ms - self.hide_window_ms).max(0.0);
            self.hide_window_ms = 0.0;
            charged
        } else {
            search_ms
        };
        RoundDecision {
            dropped,
            group: planned,
            overhead_ms,
        }
    }

    fn on_group_complete(&mut self, duration_ms: f64) {
        self.hide_window_ms = duration_ms;
    }
}

fn config() -> AbacusConfig {
    AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..AbacusConfig::default()
    }
}

fn lib() -> Arc<ModelLibrary> {
    Arc::new(ModelLibrary::new())
}

fn query(lib: &ModelLibrary, id: u64, model: ModelId, arrival: f64, qos: f64) -> Query {
    let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
    let n = lib.graph(model, input).len();
    Query::new(id, model, input, arrival, qos, n)
}

/// Grid-quantised query from small integer knobs: arrivals and QoS are
/// multiples of 2.5 ms, so headroom subtraction is exact (see module doc).
fn grid_query(
    lib: &ModelLibrary,
    id: u64,
    model_idx: usize,
    arrival_step: usize,
    qos_step: usize,
    progress: f64,
) -> Query {
    let model = ModelId::ALL[model_idx % ModelId::ALL.len()];
    let mut q = query(
        lib,
        id,
        model,
        arrival_step as f64 * 2.5,
        qos_step as f64 * 2.5,
    );
    let next_op = ((q.n_ops - 1) as f64 * progress) as usize;
    q.advance_to(next_op);
    q
}

/// Replay a fixed-seed churned workload through the live scheduler (hooks
/// driven, so every round takes the incremental path) and the embedded
/// pre-overhaul controller, asserting bit-identical decision streams.
#[test]
fn golden_stream_matches_embedded_pre_overhaul_controller() {
    let lib = lib();
    let mut opt = AbacusScheduler::new(Arc::new(SpanModel), lib.clone(), config());
    let mut reference = RefController::new(Arc::new(SpanModel), lib.clone(), config());

    const QOS_MS: [f64; 4] = [40.0, 60.0, 90.0, 140.0];
    let mut state = 2021u64;
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut queue: Vec<Query> = Vec::new();
    let mut next_id = 0u64;
    let mut now = 0.0f64;
    let mut decision = RoundDecision::idle();
    let mut planned_rounds = 0u64;

    for round in 0..3_000 {
        // Refill to a 16-deep queue; same-round admits share `arrival = now`
        // so headroom ties are broken by id in both orderings.
        while queue.len() < 16 {
            let m = ModelId::ALL[(rand() as usize) % ModelId::ALL.len()];
            let qos = QOS_MS[(rand() as usize) % QOS_MS.len()];
            let q = query(&lib, next_id, m, now, qos);
            next_id += 1;
            opt.on_admit(&q);
            queue.push(q);
        }

        let want = reference.decide(now, &queue);
        opt.decide_into(now, &queue, &mut decision);
        assert_eq!(decision, want, "decision diverged at round {round}");

        for &id in &decision.dropped {
            let pos = queue.iter().position(|q| q.id == id).unwrap();
            opt.on_retire(&queue[pos]);
            queue.swap_remove(pos);
        }
        now += decision.overhead_ms;
        if let Some(g) = decision.group.as_ref() {
            planned_rounds += 1;
            let duration = g.predicted_ms.max(0.05);
            for e in &g.entries {
                let pos = queue.iter().position(|q| q.id == e.query_id).unwrap();
                queue[pos].mark_started(now);
                queue[pos].advance_to(e.op_end);
                if queue[pos].is_complete() {
                    opt.on_retire(&queue[pos]);
                    queue.swap_remove(pos);
                }
            }
            now += duration;
            opt.on_group_complete(duration);
            reference.on_group_complete(duration);
        } else {
            now += 0.1;
        }
    }

    assert!(planned_rounds > 1_000, "workload planned {planned_rounds} groups");
    // The hooks were driven every round: the order index never rebuilt.
    let stats = opt.decision_stats();
    assert_eq!(stats.full_rebuilds, 0, "incremental path never used");
    assert_eq!(stats.incremental_rounds, 3_000);
    assert!(stats.order_peak_len >= 16);
    assert!(stats.scratch_peak >= 16);
}

/// Decide one round three ways — incremental order (hooks driven), full
/// rebuild (hooks skipped), embedded pre-overhaul controller — and demand
/// identical decisions. Proves order-key invariance: the `(deadline, id)`
/// index is the same permutation as the per-round headroom sort.
fn assert_three_way_identical(
    lib: &Arc<ModelLibrary>,
    model: impl Fn() -> Arc<dyn LatencyModel>,
    queue: &[Query],
    now: f64,
) -> RoundDecision {
    let mut incremental = AbacusScheduler::new(model(), lib.clone(), config());
    for q in queue {
        incremental.on_admit(q);
    }
    let mut rebuild = AbacusScheduler::new(model(), lib.clone(), config());
    let mut reference = RefController::new(model(), lib.clone(), config());

    let inc = incremental.decide(now, queue);
    let reb = rebuild.decide(now, queue);
    let want = reference.decide(now, queue);
    assert_eq!(inc, want, "incremental order diverged from pre-overhaul");
    assert_eq!(reb, want, "rebuild path diverged from pre-overhaul");
    if !queue.is_empty() {
        assert_eq!(incremental.decision_stats().incremental_rounds, 1);
        assert_eq!(rebuild.decision_stats().full_rebuilds, 1);
    }
    inc
}

fn span_model() -> Arc<dyn LatencyModel> {
    Arc::new(SpanModel)
}

#[test]
fn empty_queue_decides_idle_on_every_path() {
    let lib = lib();
    let d = assert_three_way_identical(&lib, span_model, &[], 0.0);
    assert!(d.group.is_none());
    assert!(d.dropped.is_empty());
}

#[test]
fn headroom_ties_break_by_id_on_every_path() {
    let lib = lib();
    // Identical (arrival, qos) across distinct models: pure id tie-break.
    let queue: Vec<Query> = (0..6)
        .map(|i| query(&lib, 10 + i, ModelId::ALL[i as usize], 0.0, 50.0))
        .collect();
    let d = assert_three_way_identical(&lib, span_model, &queue, 5.0);
    let g = d.group.expect("ties still plan");
    assert_eq!(g.entries[0].query_id, 10);
}

#[test]
fn all_infeasible_rounds_drop_identically() {
    let lib = lib();
    let queue: Vec<Query> = (0..5)
        .map(|i| query(&lib, i, ModelId::ALL[i as usize], 0.0, 50.0))
        .collect();
    // Frozen far above every budget: every head is infeasible in turn.
    let d = assert_three_way_identical(&lib, || Arc::new(FrozenModel(1e9)), &queue, 0.0);
    assert!(d.group.is_none());
    assert_eq!(d.dropped.len(), queue.len());
    // NaN predictions must take the same drop path, not plan NaN groups.
    let d = assert_three_way_identical(&lib, || Arc::new(FrozenModel(f64::NAN)), &queue, 0.0);
    assert!(d.group.is_none());
    assert_eq!(d.dropped.len(), queue.len());
}

#[test]
fn expired_queries_drop_identically() {
    let lib = lib();
    let queue = vec![
        query(&lib, 1, ModelId::ResNet50, 0.0, 10.0), // expired at now = 50
        query(&lib, 2, ModelId::Bert, 45.0, 60.0),
    ];
    let d = assert_three_way_identical(&lib, span_model, &queue, 50.0);
    assert_eq!(d.dropped, vec![1]);
    assert!(d.group.is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random grid-quantised queues (duplicate models, partial progress,
    /// expired members, dense ties): the incremental order, the rebuild
    /// fallback and the embedded pre-overhaul controller agree bit-for-bit.
    #[test]
    fn random_queues_decide_identically(
        specs in proptest::collection::vec(
            (0usize..8, 0usize..12, 1usize..40, 0.0f64..0.95),
            0..24,
        ),
        now_step in 0usize..16,
    ) {
        let lib = lib();
        let queue: Vec<Query> = specs
            .iter()
            .enumerate()
            .map(|(i, &(m, arr, qos, progress))| {
                grid_query(&lib, i as u64, m, arr, qos, progress)
            })
            .collect();
        let now = now_step as f64 * 2.5;

        let mut incremental = AbacusScheduler::new(span_model(), lib.clone(), config());
        for q in &queue {
            incremental.on_admit(q);
        }
        let mut rebuild = AbacusScheduler::new(span_model(), lib.clone(), config());
        let mut reference = RefController::new(span_model(), lib.clone(), config());

        let inc = incremental.decide(now, &queue);
        let reb = rebuild.decide(now, &queue);
        let want = reference.decide(now, &queue);
        prop_assert_eq!(&inc, &want, "incremental vs pre-overhaul");
        prop_assert_eq!(&reb, &want, "rebuild vs pre-overhaul");
    }

    /// Non-pipelined configs and every search width: the overhead account
    /// and probe sequences stay identical across the three paths.
    #[test]
    fn config_variants_decide_identically(
        specs in proptest::collection::vec(
            (0usize..8, 0usize..6, 4usize..40, 0.0f64..0.9),
            1..12,
        ),
        ways in 1usize..6,
        pipelined_bit in 0usize..2,
    ) {
        let pipelined = pipelined_bit == 1;
        let lib = lib();
        let queue: Vec<Query> = specs
            .iter()
            .enumerate()
            .map(|(i, &(m, arr, qos, progress))| {
                grid_query(&lib, i as u64, m, arr, qos, progress)
            })
            .collect();
        let cfg = AbacusConfig {
            ways,
            pipelined,
            predict_round_ms: Some(PREDICT_ROUND_MS),
            ..AbacusConfig::default()
        };

        let mut incremental = AbacusScheduler::new(span_model(), lib.clone(), cfg.clone());
        for q in &queue {
            incremental.on_admit(q);
        }
        let mut reference = RefController::new(span_model(), lib.clone(), cfg);

        let inc = incremental.decide(2.5, &queue);
        let want = reference.decide(2.5, &queue);
        prop_assert_eq!(&inc, &want);
    }
}
