//! Steady-state allocation pin for the decision hot path (DESIGN.md §12).
//!
//! The arena-backed `DecisionScratch` and the recycled planned-entry
//! buffer exist so that once every buffer has reached steady-state
//! capacity, a `decide_into` round performs **zero heap allocations**.
//! This test pins that with a counting global allocator: warm the
//! scheduler up (first rounds grow the arenas), then assert the
//! allocation counter does not move across thousands of further rounds.
//!
//! The counter is **per-thread** (const-initialised TLS, so the counting
//! path itself never allocates): the libtest harness thread runs
//! concurrently with the test thread and allocates at its own pace
//! (stdout locking, test-timing bookkeeping), so a process-global counter
//! is intermittently perturbed by a couple of harness allocations mid-
//! measurement. Only allocations made *by the measuring thread* count.

use abacus_core::{AbacusConfig, AbacusScheduler, Query, RoundDecision, Scheduler};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use predictor::features::SLOT_WIDTH;
use predictor::{LatencyModel, MAX_COLOCATED, MODEL_SLOT_BASE};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

/// System allocator wrapper that counts every allocation on the calling
/// thread.
struct CountingAlloc;

std::thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations made by the calling thread so far (other threads' activity
/// is invisible).
fn thread_allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: TLS may be mid-teardown when late allocations happen.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

struct SpanModel;

impl LatencyModel for SpanModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut total: f64 = 0.0;
        for slot in 0..MAX_COLOCATED {
            let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
            total += (x[base + 1] - x[base]) * 10.0;
        }
        total
    }
    fn name(&self) -> &'static str {
        "span"
    }
}

#[test]
fn steady_state_decide_round_allocates_nothing() {
    let lib = Arc::new(ModelLibrary::new());
    let mut sched = AbacusScheduler::new(
        Arc::new(SpanModel),
        lib.clone(),
        AbacusConfig {
            predict_round_ms: Some(0.09),
            ..AbacusConfig::default()
        },
    );
    // A 16-deep queue over all models: the round filters it to one
    // candidate per model, plans a group, and drops nothing.
    let queue: Vec<Query> = (0..16u64)
        .map(|i| {
            let m = ModelId::ALL[i as usize % ModelId::ALL.len()];
            let input = QueryInput::new(8, if m.is_nlp() { 16 } else { 1 });
            let n = lib.graph(m, input).len();
            Query::new(i, m, input, 0.0, 40.0 + 10.0 * (i % 4) as f64, n)
        })
        .collect();
    for q in &queue {
        sched.on_admit(q);
    }

    // Warmup: grows ranks/candidates/search arenas and the entry buffer to
    // steady-state capacity, and cycles the entry buffer through the
    // caller-held decision and back.
    let mut decision = RoundDecision::idle();
    for _ in 0..16 {
        sched.decide_into(5.0, &queue, &mut decision);
    }
    assert!(decision.group.is_some(), "fixture must exercise the planned path");

    let before = thread_allocs();
    for _ in 0..4_096 {
        sched.decide_into(5.0, &queue, &mut decision);
        std::hint::black_box(&decision);
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state decide rounds must not allocate"
    );

    // The planless path (everything expired) must also be allocation-free
    // once its drop list has reached capacity.
    for _ in 0..16 {
        sched.decide_into(1e6, &queue, &mut decision);
    }
    assert!(decision.group.is_none());
    let before = thread_allocs();
    for _ in 0..4_096 {
        sched.decide_into(1e6, &queue, &mut decision);
        std::hint::black_box(&decision);
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state planless rounds must not allocate"
    );
}
