//! In-flight query state and headroom arithmetic (Eq. 2–3).

use dnn_models::{ModelId, QueryInput};

/// A user query being served: one DNN inference request with a QoS target,
/// processed as a sequence of operators that may span several scheduling
/// rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Unique id within the experiment.
    pub id: u64,
    /// Which service the query belongs to.
    pub model: ModelId,
    /// Concrete input (batch size, sequence length).
    pub input: QueryInput,
    /// Arrival timestamp, ms.
    pub arrival_ms: f64,
    /// QoS target as a latency budget from arrival, ms.
    pub qos_ms: f64,
    /// Index of the next operator to execute (operators before it are done).
    pub next_op: usize,
    /// Total operators in the query's graph.
    pub n_ops: usize,
    /// When the query's first operator group started executing, if it has
    /// started (for the §3.3 queueing-delay breakdown).
    pub first_start_ms: Option<f64>,
}

impl Query {
    /// Create a fresh (unprocessed) query.
    pub fn new(
        id: u64,
        model: ModelId,
        input: QueryInput,
        arrival_ms: f64,
        qos_ms: f64,
        n_ops: usize,
    ) -> Self {
        assert!(n_ops > 0, "a query must have operators");
        Self {
            id,
            model,
            input,
            arrival_ms,
            qos_ms,
            next_op: 0,
            n_ops,
            first_start_ms: None,
        }
    }

    /// Record when the query first started executing (idempotent).
    pub fn mark_started(&mut self, t_ms: f64) {
        if self.first_start_ms.is_none() {
            self.first_start_ms = Some(t_ms);
        }
    }

    /// Time spent queueing before the first operator ran; `None` until the
    /// query has started.
    pub fn queue_ms(&self) -> Option<f64> {
        self.first_start_ms.map(|t| t - self.arrival_ms)
    }

    /// Absolute deadline, ms.
    pub fn deadline_ms(&self) -> f64 {
        self.arrival_ms + self.qos_ms
    }

    /// Eq. 2: QoS headroom at `now` — the QoS target minus everything that
    /// has already elapsed (queueing, data transfer, completed operators are
    /// all contained in `now − arrival`). Negative when the deadline has
    /// passed.
    pub fn headroom_ms(&self, now_ms: f64) -> f64 {
        self.qos_ms - (now_ms - self.arrival_ms)
    }

    /// Eq. 3: the headroom available to a group being *planned* while the
    /// current group (predicted to last `predict_lat_ms`) is still
    /// executing.
    pub fn schedule_headroom_ms(&self, now_ms: f64, predict_lat_ms: f64) -> f64 {
        self.headroom_ms(now_ms) - predict_lat_ms
    }

    /// Routing-time headroom: what would remain of the QoS budget if the
    /// query were placed on a node that frees up `wait_ms` from now and
    /// then serves it in `predict_lat_ms`. This is Eq. 2 extended by the
    /// candidate node's queueing estimate — the score the cluster router
    /// maximises over nodes. Negative means the node is predicted to miss
    /// the deadline.
    pub fn routing_headroom_ms(&self, now_ms: f64, wait_ms: f64, predict_lat_ms: f64) -> f64 {
        self.headroom_ms(now_ms) - wait_ms - predict_lat_ms
    }

    /// Operators not yet executed.
    pub fn remaining_ops(&self) -> usize {
        self.n_ops - self.next_op
    }

    /// True once every operator has run.
    pub fn is_complete(&self) -> bool {
        self.next_op >= self.n_ops
    }

    /// Record that operators `[next_op, up_to)` have been executed.
    ///
    /// # Panics
    /// Panics if `up_to` moves backwards or beyond the graph.
    pub fn advance_to(&mut self, up_to: usize) {
        assert!(
            up_to >= self.next_op && up_to <= self.n_ops,
            "invalid progress {} -> {up_to} of {}",
            self.next_op,
            self.n_ops
        );
        self.next_op = up_to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::QueryInput;

    fn q() -> Query {
        Query::new(1, ModelId::ResNet50, QueryInput::new(8, 1), 100.0, 50.0, 10)
    }

    #[test]
    fn headroom_decreases_with_time() {
        let q = q();
        assert_eq!(q.headroom_ms(100.0), 50.0);
        assert_eq!(q.headroom_ms(130.0), 20.0);
        assert!(q.headroom_ms(151.0) < 0.0);
        assert_eq!(q.deadline_ms(), 150.0);
    }

    #[test]
    fn schedule_headroom_subtracts_inflight_prediction() {
        let q = q();
        // Eq. 3: planning during a 15 ms in-flight group.
        assert_eq!(q.schedule_headroom_ms(120.0, 15.0), 50.0 - 20.0 - 15.0);
    }

    #[test]
    fn routing_headroom_charges_wait_and_service() {
        let q = q();
        // 50 ms budget − 10 elapsed − 12 node wait − 20 predicted service.
        assert_eq!(q.routing_headroom_ms(110.0, 12.0, 20.0), 8.0);
        // An idle node is pure Eq. 3.
        assert_eq!(
            q.routing_headroom_ms(110.0, 0.0, 20.0),
            q.schedule_headroom_ms(110.0, 20.0)
        );
        assert!(q.routing_headroom_ms(110.0, 30.0, 20.0) < 0.0);
    }

    #[test]
    fn progress_tracking() {
        let mut q = q();
        assert_eq!(q.remaining_ops(), 10);
        q.advance_to(4);
        assert_eq!(q.remaining_ops(), 6);
        assert!(!q.is_complete());
        q.advance_to(10);
        assert!(q.is_complete());
    }

    #[test]
    fn queue_time_tracking() {
        let mut q = q();
        assert_eq!(q.queue_ms(), None);
        q.mark_started(112.0);
        assert_eq!(q.queue_ms(), Some(12.0));
        // Idempotent: later rounds do not move the first start.
        q.mark_started(140.0);
        assert_eq!(q.queue_ms(), Some(12.0));
    }

    #[test]
    #[should_panic(expected = "invalid progress")]
    fn progress_cannot_regress() {
        let mut q = q();
        q.advance_to(5);
        q.advance_to(3);
    }
}
