//! The Abacus runtime system (§4–§6 of the paper).
//!
//! This crate is the paper's primary contribution: a framework-level
//! runtime that co-locates multiple DNN services on one GPU by issuing
//! *deterministic operator groups* sized each round so that an
//! overlap-aware latency predictor certifies the QoS of the query with the
//! least headroom.
//!
//! * [`query`] — in-flight query state and the Eq. 2/3 headroom arithmetic;
//! * [`search`] — the multi-way search over operator-group candidates
//!   (§6.2–6.3, Fig. 12);
//! * [`abacus`] — the headroom-based query controller with pipelined
//!   scheduling and the drop mechanism;
//! * [`executor`] — the flexible segmental model executor (§6.1, Fig. 11)
//!   that runs groups exclusively on the (simulated) GPU and manages
//!   intermediate results for partially-processed queries;
//! * [`baselines`] — the FCFS / SJF / EDF sequential policies the paper
//!   compares against (the per-GPU behaviour of Nexus and Clockwork);
//! * [`scheduler`] — the trait tying any of the above to a serving node.

pub mod abacus;
pub mod baselines;
pub mod executor;
pub mod group;
pub mod order;
pub mod query;
pub mod scheduler;
pub mod search;

pub use abacus::{
    calibrate_predict_round_ms, AbacusConfig, AbacusScheduler, FALLBACK_BARREN_ROUNDS,
};
pub use baselines::{BaselinePolicy, BaselineScheduler, SJF_PREDICT_MS};
pub use executor::{ExecOutcome, SegmentalExecutor, GROUP_SYNC_MS, SAVE_RESTORE_MS};
pub use group::{PlannedEntry, PlannedGroup};
pub use order::{order_key, OrderIndex};
pub use query::Query;
pub use scheduler::{DecisionStats, RoundDecision, Scheduler};
pub use search::{plan_group, plan_group_core, PlanOutcome, SearchBuffers, SearchResult};
