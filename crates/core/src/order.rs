//! Incremental maintenance of the ascending-headroom round order.
//!
//! Eq. 2 headroom, `headroom_ms(now) = qos − (now − arrival)`, shifts every
//! query by the same `now`, so the ascending-headroom order the controller
//! sorts by each round (abacus.rs) is fixed by the now-independent deadline
//! `arrival + qos` with ties broken by id. [`OrderIndex`] keys a persistent
//! sorted index on exactly that `(deadline, id)` pair and maintains it on
//! admit/retire instead of re-sorting the whole queue every round.
//!
//! The per-round entry point is [`OrderIndex::resolve_ranks`]: it maps the
//! node's (arbitrarily-ordered, swap_remove-shuffled) queue through the
//! index and yields the sorted permutation. The resolution doubles as an
//! exact consistency check — every queue element must hit a distinct index
//! entry and the lengths must match, which proves the index holds precisely
//! the queue's `(key, id)` set. Any miss (a caller that skipped the
//! [`crate::Scheduler::on_admit`]/[`crate::Scheduler::on_retire`] hooks, or
//! a desync) reports `false` and the controller falls back to
//! [`OrderIndex::rebuild`], whose output is by construction the same
//! permutation a full per-round sort would have produced.
//!
//! Tie-break contract (DESIGN.md §12): the canonical round order is
//! ascending `(deadline_ms(), id)` under `f64::total_cmp`. This matches the
//! former per-round `headroom_ms(now)` sort whenever the subtraction of
//! `now` preserves distinctness — the golden decision-stream tests and the
//! grid-quantised property tests pin that equivalence on every workload the
//! repo runs.

use crate::query::Query;

/// One indexed query: its now-independent order key and id, plus the last
/// queue position it resolved at — a pure accelerator, validated against
/// the live queue on every use before it is trusted.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderEntry {
    key: f64,
    id: u64,
    pos_hint: usize,
}

/// The canonical order key of `q`: its absolute deadline. Now-independent,
/// unchanged by operator progress (`advance_to`) and by `mark_started`, so
/// the index only needs admit/retire maintenance.
#[inline]
pub fn order_key(q: &Query) -> f64 {
    q.deadline_ms()
}

/// A persistent sorted-by-`(key, id)` index over the node queue.
#[derive(Debug, Default)]
pub struct OrderIndex {
    entries: Vec<OrderEntry>,
    peak_len: usize,
    /// Reused position bitmask backing [`Self::resolve_ranks`]'s
    /// injectivity check (one bit per queue slot).
    seen: Vec<u64>,
}

impl OrderIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binary-search the rank of `(key, id)` in the sorted entries.
    fn rank_of(&self, key: f64, id: u64) -> Result<usize, usize> {
        self.entries
            .binary_search_by(|e| e.key.total_cmp(&key).then(e.id.cmp(&id)))
    }

    /// Admit `q` into the order (O(log n) search + one memmove).
    pub fn insert(&mut self, q: &Query) {
        let key = order_key(q);
        match self.rank_of(key, q.id) {
            Ok(_) => debug_assert!(false, "duplicate admit of query {}", q.id),
            // The queue position is unknown at admit time; the first
            // resolution's rescue scan fills the hint in.
            Err(at) => self.entries.insert(
                at,
                OrderEntry {
                    key,
                    id: q.id,
                    pos_hint: usize::MAX,
                },
            ),
        }
        self.peak_len = self.peak_len.max(self.entries.len());
    }

    /// Remove `q` on drop/retire/timeout. An id the index does not hold is
    /// ignored; the next [`Self::resolve_ranks`] then fails and rebuilds.
    pub fn remove(&mut self, q: &Query) {
        if let Ok(at) = self.rank_of(order_key(q), q.id) {
            self.entries.remove(at);
        }
    }

    /// Indexed query count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deepest the index has ever been (telemetry).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drop every entry (the queue was torn down externally).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuild the index from `queue` and emit the sorted queue positions
    /// into `ranks` — exactly the permutation a full `(key, id)` sort of
    /// the queue produces, well-defined even for degenerate duplicate ids.
    pub fn rebuild(&mut self, queue: &[Query], ranks: &mut Vec<usize>) {
        ranks.clear();
        ranks.extend(0..queue.len());
        ranks.sort_unstable_by(|&a, &b| {
            order_key(&queue[a])
                .total_cmp(&order_key(&queue[b]))
                .then(queue[a].id.cmp(&queue[b].id))
        });
        self.entries.clear();
        self.entries.extend(ranks.iter().map(|&p| OrderEntry {
            key: order_key(&queue[p]),
            id: queue[p].id,
            pos_hint: p,
        }));
        self.peak_len = self.peak_len.max(self.entries.len());
    }

    /// Resolve `queue` through the index. On success `ranks[r]` is the
    /// queue position of the `r`-th query in ascending `(key, id)` order.
    ///
    /// Doubles as the exact consistency check: success requires equal
    /// lengths and every index entry landing on a distinct queue position
    /// with matching key bits — an injective map between equal-size sets,
    /// i.e. the index holds precisely the queue's `(key, id)` set. Returns
    /// `false` (with `ranks` unusable) on any mismatch; the caller
    /// rebuilds. `&mut self` only refreshes the position hints — the
    /// logical index is untouched.
    pub fn resolve_ranks(&mut self, queue: &[Query], ranks: &mut Vec<usize>) -> bool {
        ranks.clear();
        if self.entries.len() != queue.len() {
            return false;
        }
        self.seen.clear();
        self.seen.resize(queue.len().div_ceil(64), 0);
        ranks.reserve(queue.len());
        for e in &mut self.entries {
            // Queue positions only move around a swap_remove, so the
            // position this entry resolved at last round is almost always
            // still right — validate id and key bits before trusting it.
            let pos = 'find: {
                if let Some(q) = queue.get(e.pos_hint) {
                    if q.id == e.id && order_key(q).to_bits() == e.key.to_bits() {
                        break 'find e.pos_hint;
                    }
                }
                // Stale hint (fresh admit, or the query a swap_remove
                // relocated): rescue scan by id, then remember the spot.
                let Some(pos) = queue.iter().position(|q| q.id == e.id) else {
                    return false;
                };
                if order_key(&queue[pos]).to_bits() != e.key.to_bits() {
                    return false;
                }
                e.pos_hint = pos;
                break 'find pos;
            };
            let (word, bit) = (pos / 64, 1u64 << (pos % 64));
            if self.seen[word] & bit != 0 {
                return false;
            }
            self.seen[word] |= bit;
            ranks.push(pos);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};

    fn q(id: u64, arrival: f64, qos: f64) -> Query {
        Query::new(id, ModelId::ResNet50, QueryInput::new(8, 1), arrival, qos, 10)
    }

    /// The reference permutation: a full sort by `(deadline, id)`.
    fn full_sort(queue: &[Query]) -> Vec<usize> {
        let mut ranks: Vec<usize> = (0..queue.len()).collect();
        ranks.sort_by(|&a, &b| {
            queue[a]
                .deadline_ms()
                .total_cmp(&queue[b].deadline_ms())
                .then(queue[a].id.cmp(&queue[b].id))
        });
        ranks
    }

    #[test]
    fn incremental_matches_full_sort_through_churn() {
        let mut idx = OrderIndex::new();
        let mut queue: Vec<Query> = Vec::new();
        let mut ranks = Vec::new();
        // Deterministic admit/retire churn with ties and swap_remove holes.
        let mut state = 0x9E37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for step in 0..400u64 {
            if queue.len() < 3 || next() % 3 != 0 {
                let arrival = (next() % 50) as f64; // dense: plenty of ties
                let quer = q(step, arrival, (next() % 4) as f64 * 10.0 + 5.0);
                idx.insert(&quer);
                queue.push(quer);
            } else {
                let pos = (next() as usize) % queue.len();
                idx.remove(&queue[pos]);
                queue.swap_remove(pos);
            }
            assert!(idx.resolve_ranks(&queue, &mut ranks), "desync at step {step}");
            assert_eq!(ranks, full_sort(&queue), "order diverged at step {step}");
        }
        assert!(idx.peak_len() >= queue.len());
    }

    #[test]
    fn resolve_fails_on_desync_and_rebuild_recovers() {
        let mut idx = OrderIndex::new();
        let queue = vec![q(1, 0.0, 50.0), q(2, 10.0, 20.0), q(3, 5.0, 25.0)];
        let mut ranks = Vec::new();
        // Hooks never driven: resolution must refuse, rebuild must match.
        assert!(!idx.resolve_ranks(&queue, &mut ranks));
        idx.rebuild(&queue, &mut ranks);
        assert_eq!(ranks, full_sort(&queue));
        assert!(idx.resolve_ranks(&queue, &mut ranks));
        // Stale entry (missed retire): length mismatch refuses.
        let shorter = &queue[..2];
        assert!(!idx.resolve_ranks(shorter, &mut ranks));
        // Swapped-in query the index never saw: lookup miss refuses.
        let mut swapped = queue.clone();
        swapped[2] = q(9, 1.0, 1.0);
        assert!(!idx.resolve_ranks(&swapped, &mut ranks));
    }

    #[test]
    fn empty_queue_resolves_trivially() {
        let mut idx = OrderIndex::new();
        let mut ranks = vec![7usize];
        assert!(idx.resolve_ranks(&[], &mut ranks));
        assert!(ranks.is_empty());
    }

    #[test]
    fn equal_deadlines_order_by_id() {
        let mut idx = OrderIndex::new();
        // Same deadline via different (arrival, qos) splits.
        let queue = vec![q(5, 10.0, 20.0), q(2, 0.0, 30.0), q(9, 30.0, 0.0)];
        for quer in &queue {
            idx.insert(quer);
        }
        let mut ranks = Vec::new();
        assert!(idx.resolve_ranks(&queue, &mut ranks));
        let ids: Vec<u64> = ranks.iter().map(|&p| queue[p].id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
