//! The Abacus headroom-based query controller (§4, §6).
//!
//! Each round:
//!
//! 1. sort active queries by QoS headroom, ascending (Eq. 2);
//! 2. drop any query that is already past its deadline, and any head query
//!    whose remaining operators alone are predicted not to fit in its
//!    headroom (§6.2's drop mechanism — continuing would violate this *and*
//!    later queries);
//! 3. run the multi-way search ([`crate::search`]) to form the largest
//!    operator group that the latency predictor certifies against the head
//!    query's headroom;
//! 4. account for scheduling latency: with pipelined scheduling (§6.3,
//!    Fig. 13) the search overlaps the previous group's execution and costs
//!    nothing on the critical path unless the GPU was idle; the
//!    non-pipelined ablation charges it every round.

use crate::query::Query;
use crate::scheduler::{RoundDecision, Scheduler};
use crate::search::{plan_group, SearchResult};
use dnn_models::ModelLibrary;
use predictor::LatencyModel;
use std::sync::Arc;

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AbacusConfig {
    /// Search ways `m` of the multi-way search (Fig. 23; default 4).
    pub ways: usize,
    /// Latency of one batched prediction round, ms (Fig. 23 measures
    /// 0.066–0.088 ms on one core; §6.3 reports ≈ 0.26 ms for a full
    /// scheduling decision of ≈ 3 rounds).
    pub predict_round_ms: f64,
    /// Fixed controller bookkeeping per round (sorting, headroom math), ms.
    pub base_overhead_ms: f64,
    /// Whether scheduling is pipelined with execution (§6.3). Disable for
    /// the ablation bench.
    pub pipelined: bool,
    /// Fixed safety margin subtracted from the head query's headroom, ms.
    pub margin_ms: f64,
    /// Relative safety margin: the budget is additionally divided by
    /// `1 + margin_frac`, absorbing the predictor's *proportional* error
    /// tail (the §5.2 noise is multiplicative, so a fixed margin alone
    /// under-protects long groups).
    pub margin_frac: f64,
}

impl Default for AbacusConfig {
    fn default() -> Self {
        Self {
            ways: 4,
            predict_round_ms: 0.09,
            base_overhead_ms: 0.02,
            pipelined: true,
            margin_ms: 0.3,
            margin_frac: 0.05,
        }
    }
}

/// The Abacus scheduler.
pub struct AbacusScheduler {
    model: Arc<dyn LatencyModel>,
    lib: Arc<ModelLibrary>,
    cfg: AbacusConfig,
    /// Duration of the previously executed group: the window pipelined
    /// scheduling can hide search latency in.
    hide_window_ms: f64,
    /// Cumulative prediction rounds (for the overhead report).
    total_prediction_rounds: u64,
    /// Cumulative scheduling rounds.
    total_rounds: u64,
}

impl AbacusScheduler {
    /// Create a controller using `model` as the overlap-aware latency
    /// predictor.
    pub fn new(model: Arc<dyn LatencyModel>, lib: Arc<ModelLibrary>, cfg: AbacusConfig) -> Self {
        assert!(cfg.ways >= 1);
        Self {
            model,
            lib,
            cfg,
            hide_window_ms: 0.0,
            total_prediction_rounds: 0,
            total_rounds: 0,
        }
    }

    /// Average prediction rounds per scheduling decision so far.
    pub fn mean_prediction_rounds(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.total_prediction_rounds as f64 / self.total_rounds as f64
    }

    /// The active configuration.
    pub fn config(&self) -> &AbacusConfig {
        &self.cfg
    }
}

impl Scheduler for AbacusScheduler {
    fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision {
        let mut dropped = Vec::new();
        // Sort by headroom ascending (Eq. 2); ties by id for determinism.
        let mut sorted: Vec<&Query> = queue.iter().collect();
        sorted.sort_by(|a, b| {
            a.headroom_ms(now_ms)
                .total_cmp(&b.headroom_ms(now_ms))
                .then(a.id.cmp(&b.id))
        });
        // Expired queries can never meet QoS: drop outright.
        sorted.retain(|q| {
            if q.headroom_ms(now_ms) < 0.0 {
                dropped.push(q.id);
                false
            } else {
                true
            }
        });
        // Each service is a single process handling one query at a time
        // (§6.1): only the least-headroom query of each model is eligible
        // this round; later queries of the same service wait behind it.
        let mut seen_models = 0u32;
        sorted.retain(|q| {
            let bit = 1u32 << q.model.index();
            if seen_models & bit != 0 {
                false
            } else {
                seen_models |= bit;
                true
            }
        });

        let mut prediction_rounds = 0usize;
        let mut planned = None;
        while !sorted.is_empty() {
            let budget = (sorted[0].headroom_ms(now_ms) - self.cfg.margin_ms)
                / (1.0 + self.cfg.margin_frac);
            match plan_group(&sorted, budget, self.model.as_ref(), &self.lib, self.cfg.ways) {
                SearchResult::Planned(mut p) => {
                    prediction_rounds += p.prediction_rounds;
                    p.prediction_rounds = prediction_rounds;
                    planned = Some(p);
                    break;
                }
                SearchResult::Infeasible {
                    prediction_rounds: r,
                } => {
                    // §6.2: keeping the head query would violate its QoS and
                    // delay everyone behind it — drop it and retry.
                    prediction_rounds += r;
                    dropped.push(sorted[0].id);
                    sorted.remove(0);
                }
            }
        }

        self.total_rounds += 1;
        self.total_prediction_rounds += prediction_rounds as u64;
        let search_ms =
            self.cfg.base_overhead_ms + prediction_rounds as f64 * self.cfg.predict_round_ms;
        let overhead_ms = if self.cfg.pipelined {
            // The search for this round ran while the previous group was
            // still executing (Fig. 13); only the part that did not fit in
            // that window lands on the critical path.
            let charged = (search_ms - self.hide_window_ms).max(0.0);
            self.hide_window_ms = 0.0;
            charged
        } else {
            search_ms
        };

        RoundDecision {
            dropped,
            group: planned,
            overhead_ms,
        }
    }

    fn on_group_complete(&mut self, duration_ms: f64) {
        self.hide_window_ms = duration_ms;
    }

    fn name(&self) -> &'static str {
        "Abacus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};
    use predictor::features::SLOT_WIDTH;
    use predictor::MAX_COLOCATED;

    /// Synthetic monotone duration model (same as the search tests).
    struct SpanModel;
    impl LatencyModel for SpanModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            let mut total: f64 = 0.0;
            for slot in 0..MAX_COLOCATED {
                let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                total += (x[base + 1] - x[base]) * 10.0;
            }
            total
        }
        fn name(&self) -> &'static str {
            "span"
        }
    }

    fn scheduler(pipelined: bool) -> AbacusScheduler {
        AbacusScheduler::new(
            Arc::new(SpanModel),
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                pipelined,
                ..AbacusConfig::default()
            },
        )
    }

    fn query(id: u64, model: ModelId, arrival: f64, qos: f64) -> Query {
        let lib = ModelLibrary::new();
        let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
        let n = lib.graph(model, input).len();
        Query::new(id, model, input, arrival, qos, n)
    }

    #[test]
    fn guarantees_least_headroom_query_first() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 30.0), // least headroom
        ];
        let d = s.decide(5.0, &queue);
        let g = d.group.unwrap();
        // Head entry is the Bert query, fully scheduled.
        assert_eq!(g.entries[0].query_id, 2);
        assert_eq!(g.entries[0].op_end, queue[1].n_ops);
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn infeasible_head_dropped_then_rest_scheduled() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            // 5 ms of headroom left but needs 10 ms: must be dropped.
            query(2, ModelId::Vgg19, 0.0, 25.0),
        ];
        let d = s.decide(20.0, &queue);
        assert_eq!(d.dropped, vec![2]);
        let g = d.group.unwrap();
        assert_eq!(g.entries[0].query_id, 1);
    }

    #[test]
    fn expired_queries_dropped_without_search() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 10.0)];
        let d = s.decide(50.0, &queue);
        assert_eq!(d.dropped, vec![1]);
        assert!(d.group.is_none());
    }

    #[test]
    fn pipelining_hides_search_cost() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        // Cold start (idle GPU): full cost charged.
        let cold = s.decide(0.0, &queue);
        assert!(cold.overhead_ms > 0.0);
        // After a 20 ms group, the next search hides completely.
        s.on_group_complete(20.0);
        let warm = s.decide(25.0, &queue);
        assert_eq!(warm.overhead_ms, 0.0);
    }

    #[test]
    fn non_pipelined_always_charges() {
        let mut s = scheduler(false);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        s.on_group_complete(20.0);
        let d = s.decide(25.0, &queue);
        assert!(d.overhead_ms > 0.0);
    }

    #[test]
    fn empty_queue_idles() {
        let mut s = scheduler(true);
        let d = s.decide(0.0, &[]);
        assert!(d.group.is_none());
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn prediction_round_statistics_accumulate() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 60.0),
        ];
        let _ = s.decide(0.0, &queue);
        assert!(s.mean_prediction_rounds() >= 1.0);
    }
}
