//! The Abacus headroom-based query controller (§4, §6).
//!
//! Each round:
//!
//! 1. sort active queries by QoS headroom, ascending (Eq. 2);
//! 2. drop any query that is already past its deadline, and any head query
//!    whose remaining operators alone are predicted not to fit in its
//!    headroom (§6.2's drop mechanism — continuing would violate this *and*
//!    later queries);
//! 3. run the multi-way search ([`crate::search`]) to form the largest
//!    operator group that the latency predictor certifies against the head
//!    query's headroom;
//! 4. account for scheduling latency: with pipelined scheduling (§6.3,
//!    Fig. 13) the search overlaps the previous group's execution and costs
//!    nothing on the critical path unless the GPU was idle; the
//!    non-pipelined ablation charges it every round.

use crate::query::Query;
use crate::scheduler::{RoundDecision, Scheduler};
use crate::search::{plan_group, SearchResult};
use dnn_models::ModelLibrary;
use predictor::{LatencyModel, FEATURE_DIM};
use std::sync::Arc;
use std::time::Instant;

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AbacusConfig {
    /// Search ways `m` of the multi-way search (Fig. 23; default 4).
    pub ways: usize,
    /// Latency of one batched prediction round, ms. `None` (the default)
    /// measures it at controller startup by timing real prediction rounds
    /// against the supplied model ([`calibrate_predict_round_ms`]) — the
    /// paper's Fig. 23 measures 0.066–0.088 ms on one core, and §6.3
    /// reports ≈ 0.26 ms for a full scheduling decision of ≈ 3 rounds, but
    /// the true figure depends on the predictor and host, so a hard-coded
    /// constant mis-charges the pipelined-scheduling account (Eq. 3).
    pub predict_round_ms: Option<f64>,
    /// Fixed controller bookkeeping per round (sorting, headroom math), ms.
    pub base_overhead_ms: f64,
    /// Whether scheduling is pipelined with execution (§6.3). Disable for
    /// the ablation bench.
    pub pipelined: bool,
    /// Fixed safety margin subtracted from the head query's headroom, ms.
    pub margin_ms: f64,
    /// Relative safety margin: the budget is additionally divided by
    /// `1 + margin_frac`, absorbing the predictor's *proportional* error
    /// tail (the §5.2 noise is multiplicative, so a fixed margin alone
    /// under-protects long groups).
    pub margin_frac: f64,
}

impl Default for AbacusConfig {
    fn default() -> Self {
        Self {
            ways: 4,
            predict_round_ms: None,
            base_overhead_ms: 0.02,
            pipelined: true,
            margin_ms: 0.3,
            margin_frac: 0.05,
        }
    }
}

/// Measure the wall-clock latency of one batched prediction round of
/// `model` at batch size `ways`, in milliseconds.
///
/// Runs a short warmup (filling caches and, for the MLP engine, its
/// thread-local workspace), then times 101 real `predict_into` rounds on
/// synthetic Fig. 8-shaped feature rows and takes the median — robust to
/// scheduler preemption spikes in either direction. The result is clamped
/// to `[1e-4, 1.0]` ms so a pathological measurement can never zero out or
/// dominate the Eq. 3 scheduling account.
pub fn calibrate_predict_round_ms(model: &dyn LatencyModel, ways: usize) -> f64 {
    let ways = ways.max(1);
    // Deterministic synthetic rows in [0, 1): forward-pass cost does not
    // depend on the feature values, only on the shape.
    let mut xs = vec![0.0; ways * FEATURE_DIM];
    for (i, v) in xs.iter_mut().enumerate() {
        *v = (i % 7) as f64 / 7.0;
    }
    let mut out = Vec::with_capacity(ways);
    for _ in 0..16 {
        model.predict_into(&xs, ways, &mut out);
        std::hint::black_box(&out);
    }
    let mut samples: Vec<f64> = (0..101)
        .map(|_| {
            let t = Instant::now();
            model.predict_into(&xs, ways, &mut out);
            std::hint::black_box(&out);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2].clamp(1e-4, 1.0)
}

/// The Abacus scheduler.
pub struct AbacusScheduler {
    model: Arc<dyn LatencyModel>,
    lib: Arc<ModelLibrary>,
    cfg: AbacusConfig,
    /// Resolved per-round prediction latency: `cfg.predict_round_ms` or the
    /// startup calibration.
    predict_round_ms: f64,
    /// Duration of the previously executed group: the window pipelined
    /// scheduling can hide search latency in.
    hide_window_ms: f64,
    /// Cumulative prediction rounds (for the overhead report).
    total_prediction_rounds: u64,
    /// Cumulative scheduling rounds.
    total_rounds: u64,
}

impl AbacusScheduler {
    /// Create a controller using `model` as the overlap-aware latency
    /// predictor.
    pub fn new(model: Arc<dyn LatencyModel>, lib: Arc<ModelLibrary>, cfg: AbacusConfig) -> Self {
        assert!(cfg.ways >= 1);
        let predict_round_ms = cfg
            .predict_round_ms
            .unwrap_or_else(|| calibrate_predict_round_ms(model.as_ref(), cfg.ways));
        Self {
            model,
            lib,
            cfg,
            predict_round_ms,
            hide_window_ms: 0.0,
            total_prediction_rounds: 0,
            total_rounds: 0,
        }
    }

    /// The per-round prediction latency the Eq. 3 account charges:
    /// configured, or measured at startup.
    pub fn predict_round_ms(&self) -> f64 {
        self.predict_round_ms
    }

    /// Average prediction rounds per scheduling decision so far.
    pub fn mean_prediction_rounds(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.total_prediction_rounds as f64 / self.total_rounds as f64
    }

    /// The active configuration.
    pub fn config(&self) -> &AbacusConfig {
        &self.cfg
    }
}

impl Scheduler for AbacusScheduler {
    fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision {
        let mut dropped = Vec::new();
        // Sort by headroom ascending (Eq. 2); ties by id for determinism.
        let mut sorted: Vec<&Query> = queue.iter().collect();
        sorted.sort_by(|a, b| {
            a.headroom_ms(now_ms)
                .total_cmp(&b.headroom_ms(now_ms))
                .then(a.id.cmp(&b.id))
        });
        // Expired queries can never meet QoS: drop outright.
        sorted.retain(|q| {
            if q.headroom_ms(now_ms) < 0.0 {
                dropped.push(q.id);
                false
            } else {
                true
            }
        });
        // Each service is a single process handling one query at a time
        // (§6.1): only the least-headroom query of each model is eligible
        // this round; later queries of the same service wait behind it.
        let mut seen_models = 0u32;
        sorted.retain(|q| {
            let bit = 1u32 << q.model.index();
            if seen_models & bit != 0 {
                false
            } else {
                seen_models |= bit;
                true
            }
        });

        let mut prediction_rounds = 0usize;
        let mut planned = None;
        while !sorted.is_empty() {
            let budget = (sorted[0].headroom_ms(now_ms) - self.cfg.margin_ms)
                / (1.0 + self.cfg.margin_frac);
            match plan_group(&sorted, budget, self.model.as_ref(), &self.lib, self.cfg.ways) {
                SearchResult::Planned(mut p) => {
                    prediction_rounds += p.prediction_rounds;
                    p.prediction_rounds = prediction_rounds;
                    planned = Some(p);
                    break;
                }
                SearchResult::Infeasible {
                    prediction_rounds: r,
                } => {
                    // §6.2: keeping the head query would violate its QoS and
                    // delay everyone behind it — drop it and retry.
                    prediction_rounds += r;
                    dropped.push(sorted[0].id);
                    sorted.remove(0);
                }
            }
        }

        self.total_rounds += 1;
        self.total_prediction_rounds += prediction_rounds as u64;
        let search_ms =
            self.cfg.base_overhead_ms + prediction_rounds as f64 * self.predict_round_ms;
        let overhead_ms = if self.cfg.pipelined {
            // The search for this round ran while the previous group was
            // still executing (Fig. 13); only the part that did not fit in
            // that window lands on the critical path.
            let charged = (search_ms - self.hide_window_ms).max(0.0);
            self.hide_window_ms = 0.0;
            charged
        } else {
            search_ms
        };

        RoundDecision {
            dropped,
            group: planned,
            overhead_ms,
        }
    }

    fn on_group_complete(&mut self, duration_ms: f64) {
        self.hide_window_ms = duration_ms;
    }

    fn name(&self) -> &'static str {
        "Abacus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};
    use predictor::features::SLOT_WIDTH;
    use predictor::MAX_COLOCATED;

    /// Synthetic monotone duration model (same as the search tests).
    struct SpanModel;
    impl LatencyModel for SpanModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            let mut total: f64 = 0.0;
            for slot in 0..MAX_COLOCATED {
                let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                total += (x[base + 1] - x[base]) * 10.0;
            }
            total
        }
        fn name(&self) -> &'static str {
            "span"
        }
    }

    fn scheduler(pipelined: bool) -> AbacusScheduler {
        AbacusScheduler::new(
            Arc::new(SpanModel),
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                pipelined,
                ..AbacusConfig::default()
            },
        )
    }

    fn query(id: u64, model: ModelId, arrival: f64, qos: f64) -> Query {
        let lib = ModelLibrary::new();
        let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
        let n = lib.graph(model, input).len();
        Query::new(id, model, input, arrival, qos, n)
    }

    #[test]
    fn guarantees_least_headroom_query_first() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 30.0), // least headroom
        ];
        let d = s.decide(5.0, &queue);
        let g = d.group.unwrap();
        // Head entry is the Bert query, fully scheduled.
        assert_eq!(g.entries[0].query_id, 2);
        assert_eq!(g.entries[0].op_end, queue[1].n_ops);
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn infeasible_head_dropped_then_rest_scheduled() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            // 5 ms of headroom left but needs 10 ms: must be dropped.
            query(2, ModelId::Vgg19, 0.0, 25.0),
        ];
        let d = s.decide(20.0, &queue);
        assert_eq!(d.dropped, vec![2]);
        let g = d.group.unwrap();
        assert_eq!(g.entries[0].query_id, 1);
    }

    #[test]
    fn expired_queries_dropped_without_search() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 10.0)];
        let d = s.decide(50.0, &queue);
        assert_eq!(d.dropped, vec![1]);
        assert!(d.group.is_none());
    }

    #[test]
    fn pipelining_hides_search_cost() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        // Cold start (idle GPU): full cost charged.
        let cold = s.decide(0.0, &queue);
        assert!(cold.overhead_ms > 0.0);
        // After a 20 ms group, the next search hides completely.
        s.on_group_complete(20.0);
        let warm = s.decide(25.0, &queue);
        assert_eq!(warm.overhead_ms, 0.0);
    }

    #[test]
    fn non_pipelined_always_charges() {
        let mut s = scheduler(false);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        s.on_group_complete(20.0);
        let d = s.decide(25.0, &queue);
        assert!(d.overhead_ms > 0.0);
    }

    #[test]
    fn empty_queue_idles() {
        let mut s = scheduler(true);
        let d = s.decide(0.0, &[]);
        assert!(d.group.is_none());
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn calibration_is_bounded_and_finite() {
        let ms = calibrate_predict_round_ms(&SpanModel, 4);
        assert!(ms.is_finite());
        assert!((1e-4..=1.0).contains(&ms), "calibrated {ms} ms");
    }

    #[test]
    fn default_config_calibrates_at_startup() {
        let s = scheduler(true);
        assert!(s.config().predict_round_ms.is_none());
        assert!((1e-4..=1.0).contains(&s.predict_round_ms()));
    }

    #[test]
    fn explicit_round_latency_is_respected() {
        let s = AbacusScheduler::new(
            Arc::new(SpanModel),
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                predict_round_ms: Some(0.25),
                ..AbacusConfig::default()
            },
        );
        assert_eq!(s.predict_round_ms(), 0.25);
    }

    #[test]
    fn prediction_round_statistics_accumulate() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 60.0),
        ];
        let _ = s.decide(0.0, &queue);
        assert!(s.mean_prediction_rounds() >= 1.0);
    }
}
