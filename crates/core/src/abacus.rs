//! The Abacus headroom-based query controller (§4, §6).
//!
//! Each round:
//!
//! 1. sort active queries by QoS headroom, ascending (Eq. 2);
//! 2. drop any query that is already past its deadline, and any head query
//!    whose remaining operators alone are predicted not to fit in its
//!    headroom (§6.2's drop mechanism — continuing would violate this *and*
//!    later queries);
//! 3. run the multi-way search ([`crate::search`]) to form the largest
//!    operator group that the latency predictor certifies against the head
//!    query's headroom;
//! 4. account for scheduling latency: with pipelined scheduling (§6.3,
//!    Fig. 13) the search overlaps the previous group's execution and costs
//!    nothing on the critical path unless the GPU was idle; the
//!    non-pipelined ablation charges it every round.

use crate::group::{PlannedEntry, PlannedGroup};
use crate::order::OrderIndex;
use crate::query::Query;
use crate::scheduler::{DecisionStats, RoundDecision, Scheduler};
use crate::search::{plan_group_core, PlanOutcome, SearchBuffers};
use dnn_models::ModelLibrary;
use predictor::{encode_features_with_ops, GroupEntry, LatencyModel, FEATURE_DIM};
use std::sync::Arc;
use std::time::Instant;

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AbacusConfig {
    /// Search ways `m` of the multi-way search (Fig. 23; default 4).
    pub ways: usize,
    /// Latency of one batched prediction round, ms. `None` (the default)
    /// measures it at controller startup by timing real prediction rounds
    /// against the supplied model ([`calibrate_predict_round_ms`]) — the
    /// paper's Fig. 23 measures 0.066–0.088 ms on one core, and §6.3
    /// reports ≈ 0.26 ms for a full scheduling decision of ≈ 3 rounds, but
    /// the true figure depends on the predictor and host, so a hard-coded
    /// constant mis-charges the pipelined-scheduling account (Eq. 3).
    pub predict_round_ms: Option<f64>,
    /// Fixed controller bookkeeping per round (sorting, headroom math), ms.
    pub base_overhead_ms: f64,
    /// Whether scheduling is pipelined with execution (§6.3). Disable for
    /// the ablation bench.
    pub pipelined: bool,
    /// Fixed safety margin subtracted from the head query's headroom, ms.
    pub margin_ms: f64,
    /// Relative safety margin: the budget is additionally divided by
    /// `1 + margin_frac`, absorbing the predictor's *proportional* error
    /// tail (the §5.2 noise is multiplicative, so a fixed margin alone
    /// under-protects long groups).
    pub margin_frac: f64,
    /// Opt-in (default off) safety-margin autotuner: adds the rolling
    /// under-prediction bias ([`AbacusScheduler::rolling_error`], floored
    /// at zero — over-prediction is already conservative) on top of
    /// `margin_frac`, so a drifting predictor automatically gets a wider
    /// §6.2 margin instead of certifying groups it can no longer predict.
    /// Off by default — with it off the controller is bit-identical to the
    /// pre-fault-layer behaviour.
    pub adaptive_margin: bool,
    /// Opt-in (default off) conformal QoS certification: when a certifier
    /// model has been supplied ([`AbacusScheduler::with_certifier`]) and
    /// this flag is set, Eq. 2 feasibility is certified against the
    /// certifier's calibrated upper bound over the **raw** headroom —
    /// `margin_ms`/`margin_frac` are not applied, because the conformal
    /// interval already absorbs the predictor's error tail at the
    /// configured coverage level. Off (the default), or without a
    /// certifier, the controller is bit-identical to the mean + margin
    /// behaviour.
    pub conformal: bool,
    /// Opt-in graceful degradation: when the rolling under-prediction bias
    /// exceeds this threshold — or [`FALLBACK_BARREN_ROUNDS`] consecutive
    /// rounds drop queries without planning anything (total predictor
    /// failure leaves no completions to measure error on) — the controller
    /// permanently falls back to FCFS dispatch: one query at a time, no
    /// predictions trusted, the baseline drop mechanism retained. `None`
    /// (the default) never degrades.
    pub fcfs_fallback_error: Option<f64>,
}

/// Consecutive planless-with-drops rounds before [`AbacusConfig::fcfs_fallback_error`]
/// trips even without error samples (a frozen-high predictor drops every
/// query as infeasible, so the error EWMA alone would never observe it).
pub const FALLBACK_BARREN_ROUNDS: u32 = 8;

/// EWMA smoothing factor of the rolling under-prediction bias.
const ERR_EWMA_ALPHA: f64 = 0.2;

/// Denominator floor for the relative-error samples, ms. Serving plans
/// many sub-millisecond remainder groups whose *relative* error is huge
/// while their absolute error is irrelevant; without the floor those
/// samples dominate the EWMA and a healthy predictor reads as broken.
const ERR_MIN_DURATION_MS: f64 = 1.0;

/// Error samples required before [`AbacusConfig::fcfs_fallback_error`] may
/// trip: one unlucky first group must not latch permanent degradation.
pub const ERR_WARMUP_SAMPLES: u32 = 5;

impl Default for AbacusConfig {
    fn default() -> Self {
        Self {
            ways: 4,
            predict_round_ms: None,
            base_overhead_ms: 0.02,
            pipelined: true,
            margin_ms: 0.3,
            margin_frac: 0.05,
            adaptive_margin: false,
            conformal: false,
            fcfs_fallback_error: None,
        }
    }
}

/// Measure the wall-clock latency of one batched prediction round of
/// `model` at batch size `ways`, in milliseconds.
///
/// Runs a short warmup (filling caches and, for the MLP engine, its
/// thread-local workspace), then times 101 real `predict_into` rounds on
/// synthetic Fig. 8-shaped feature rows and takes the median — robust to
/// scheduler preemption spikes in either direction. The result is clamped
/// to `[1e-4, 1.0]` ms so a pathological measurement can never zero out or
/// dominate the Eq. 3 scheduling account.
pub fn calibrate_predict_round_ms(model: &dyn LatencyModel, ways: usize) -> f64 {
    let ways = ways.max(1);
    // Deterministic synthetic rows in [0, 1): forward-pass cost does not
    // depend on the feature values, only on the shape.
    let mut xs = vec![0.0; ways * FEATURE_DIM];
    for (i, v) in xs.iter_mut().enumerate() {
        *v = (i % 7) as f64 / 7.0;
    }
    let mut out = Vec::with_capacity(ways);
    for _ in 0..16 {
        model.predict_into(&xs, ways, &mut out);
        std::hint::black_box(&out);
    }
    let mut samples: Vec<f64> = (0..101)
        .map(|_| {
            let t = Instant::now();
            model.predict_into(&xs, ways, &mut out);
            std::hint::black_box(&out);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2].clamp(1e-4, 1.0)
}

/// The Abacus scheduler.
pub struct AbacusScheduler {
    model: Arc<dyn LatencyModel>,
    /// Calibrated upper-bound model for conformal certification
    /// ([`AbacusConfig::conformal`]); `None` keeps mean + margin planning.
    certifier: Option<Arc<dyn LatencyModel>>,
    lib: Arc<ModelLibrary>,
    cfg: AbacusConfig,
    /// Resolved per-round prediction latency: `cfg.predict_round_ms` or the
    /// startup calibration.
    predict_round_ms: f64,
    /// Duration of the previously executed group: the window pipelined
    /// scheduling can hide search latency in.
    hide_window_ms: f64,
    /// Cumulative prediction rounds (for the overhead report).
    total_prediction_rounds: u64,
    /// Cumulative scheduling rounds.
    total_rounds: u64,
    /// Predicted duration of the in-flight group, paired with the observed
    /// duration in [`Scheduler::on_group_complete`] to track error.
    last_predicted_ms: Option<f64>,
    /// Rolling EWMA of the signed under-prediction bias
    /// (observed − predicted) / observed; `None` until the first completed
    /// group.
    err_ewma: Option<f64>,
    /// Error samples absorbed by the EWMA (fallback warmup gate).
    err_samples: u32,
    /// Consecutive rounds that dropped queries without planning a group.
    barren_rounds: u32,
    /// Latched FCFS fallback (see [`AbacusConfig::fcfs_fallback_error`]).
    degraded: bool,
    /// Incrementally-maintained `(deadline, id)` order over the node queue,
    /// fed by the [`Scheduler::on_admit`]/[`Scheduler::on_retire`] hooks.
    order: OrderIndex,
    /// Arena-backed per-round scratch; see [`DecisionScratch`].
    scratch: DecisionScratch,
    /// Cumulative decision-layer health counters.
    stats: DecisionStats,
}

/// Round-scoped scratch owned by the scheduler. Every buffer is reused
/// across rounds, so once capacities reach steady state a `decide_into`
/// round performs zero heap allocations (pinned by the counting-allocator
/// test in `tests/decision_alloc.rs`).
struct DecisionScratch {
    /// [`OrderIndex::resolve_ranks`] output: rank → queue position.
    ranks: Vec<usize>,
    /// Eligible queue positions in round order, after the expiry drop and
    /// the §6.1 per-model least-headroom head filter.
    candidates: Vec<usize>,
    /// Multi-way search working set (entry prefix, feature rows feeding
    /// `predict_into`, prediction output, probe points).
    search: SearchBuffers,
    /// Planned-entry buffer parked here whenever a round plans no group;
    /// otherwise it travels to the caller inside the decision and comes
    /// back through `out.group` next round.
    spare_entries: Vec<PlannedEntry>,
    /// Conformal-mode re-encode buffers: the planned group's entries as
    /// [`GroupEntry`]s, their operator counts, and one Fig. 8 feature row
    /// for the mean-model forward. Untouched outside conformal mode.
    cert_entries: Vec<GroupEntry>,
    cert_ops: Vec<usize>,
    cert_features: Vec<f64>,
}

impl DecisionScratch {
    fn new(ways: usize) -> Self {
        Self {
            ranks: Vec::new(),
            candidates: Vec::new(),
            search: SearchBuffers::new(ways),
            spare_entries: Vec::new(),
            cert_entries: Vec::new(),
            cert_ops: Vec::new(),
            cert_features: vec![0.0; FEATURE_DIM],
        }
    }
}

impl AbacusScheduler {
    /// Create a controller using `model` as the overlap-aware latency
    /// predictor.
    pub fn new(model: Arc<dyn LatencyModel>, lib: Arc<ModelLibrary>, cfg: AbacusConfig) -> Self {
        Self::with_certifier(model, None, lib, cfg)
    }

    /// Create a controller with an optional conformal certifier: when
    /// `certifier` is supplied **and** [`AbacusConfig::conformal`] is set,
    /// groups are certified against the certifier's calibrated upper bound
    /// over the raw headroom (no safety margin), while `model` keeps
    /// producing the mean `predicted_ms` the telemetry ledger and the
    /// error EWMA are defined on. With `certifier == None` or the flag
    /// off, behaviour is bit-identical to [`AbacusScheduler::new`].
    pub fn with_certifier(
        model: Arc<dyn LatencyModel>,
        certifier: Option<Arc<dyn LatencyModel>>,
        lib: Arc<ModelLibrary>,
        cfg: AbacusConfig,
    ) -> Self {
        assert!(cfg.ways >= 1);
        let predict_round_ms = cfg
            .predict_round_ms
            .unwrap_or_else(|| calibrate_predict_round_ms(model.as_ref(), cfg.ways));
        let scratch = DecisionScratch::new(cfg.ways);
        Self {
            model,
            certifier,
            lib,
            cfg,
            predict_round_ms,
            hide_window_ms: 0.0,
            total_prediction_rounds: 0,
            total_rounds: 0,
            last_predicted_ms: None,
            err_ewma: None,
            err_samples: 0,
            barren_rounds: 0,
            degraded: false,
            order: OrderIndex::new(),
            scratch,
            stats: DecisionStats::default(),
        }
    }

    /// The per-round prediction latency the Eq. 3 account charges:
    /// configured, or measured at startup.
    pub fn predict_round_ms(&self) -> f64 {
        self.predict_round_ms
    }

    /// Average prediction rounds per scheduling decision so far.
    pub fn mean_prediction_rounds(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.total_prediction_rounds as f64 / self.total_rounds as f64
    }

    /// The active configuration.
    pub fn config(&self) -> &AbacusConfig {
        &self.cfg
    }

    /// Rolling under-prediction bias, EWMA of signed
    /// (observed − predicted) / observed; 0 until the first group
    /// completes. Positive means groups run longer than predicted — the
    /// direction that breaks QoS planning; negative (over-prediction) is
    /// merely conservative. The healthy predictor's over- and
    /// under-predictions largely cancel here, so this separates predictor
    /// faults far better than an absolute-error EWMA.
    pub fn rolling_error(&self) -> f64 {
        self.err_ewma.unwrap_or(0.0)
    }

    /// True once the controller has fallen back to FCFS dispatch.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The relative margin currently in force: the configured
    /// `margin_frac`, widened by the rolling under-prediction bias when
    /// the autotuner is on. The bias is floored at zero (over-prediction
    /// needs no extra margin) and the sum capped at 1.0 — a 2× safety
    /// divisor — so a pathological error estimate cannot zero out the
    /// budget entirely.
    pub fn effective_margin_frac(&self) -> f64 {
        if self.cfg.adaptive_margin {
            (self.cfg.margin_frac + self.rolling_error().max(0.0)).min(1.0)
        } else {
            self.cfg.margin_frac
        }
    }

    /// Mean-model prediction for an already-planned group: resolve the
    /// planned entries against the queue, encode one Fig. 8 feature row
    /// and run a single mean forward. Conformal mode plans against the
    /// certifier's upper bound, but `predicted_ms` — what the telemetry
    /// ledger joins on and the error EWMA is defined against — stays the
    /// mean model's estimate.
    fn mean_of_plan(&mut self, entries: &[PlannedEntry], queue: &[Query]) -> f64 {
        let scratch = &mut self.scratch;
        scratch.cert_entries.clear();
        scratch.cert_ops.clear();
        for e in entries {
            let q = queue
                .iter()
                .find(|q| q.id == e.query_id)
                .expect("planned query present in queue");
            scratch.cert_entries.push(GroupEntry {
                model: q.model,
                op_start: e.op_start,
                op_end: e.op_end,
                input: q.input,
            });
            scratch.cert_ops.push(q.n_ops);
        }
        encode_features_with_ops(
            &scratch.cert_entries,
            &scratch.cert_ops,
            &mut scratch.cert_features[..FEATURE_DIM],
        );
        self.model.predict_one(&scratch.cert_features[..FEATURE_DIM])
    }

    /// FCFS degradation dispatch: earliest arrival runs alone, no
    /// predictions consulted, the baseline drop mechanism retained.
    /// `entries_buf` is the recycled entry buffer `decide_into` took from
    /// the caller's decision.
    fn decide_degraded_into(
        &mut self,
        now_ms: f64,
        queue: &[Query],
        out: &mut RoundDecision,
        mut entries_buf: Vec<PlannedEntry>,
    ) {
        let mut head: Option<&Query> = None;
        for q in queue {
            if q.headroom_ms(now_ms) < 0.0 {
                out.dropped.push(q.id);
            } else if head.is_none_or(|h| {
                q.arrival_ms < h.arrival_ms || (q.arrival_ms == h.arrival_ms && q.id < h.id)
            }) {
                head = Some(q);
            }
        }
        self.total_rounds += 1;
        // No prediction backs this dispatch; don't feed it to the error EWMA.
        self.last_predicted_ms = None;
        out.overhead_ms = self.cfg.base_overhead_ms;
        match head {
            Some(q) => {
                entries_buf.push(PlannedEntry {
                    query_id: q.id,
                    op_start: q.next_op,
                    op_end: q.n_ops,
                });
                out.group = Some(PlannedGroup {
                    entries: entries_buf,
                    predicted_ms: 0.0,
                    prediction_rounds: 0,
                    upper_ms: None,
                });
            }
            None => self.scratch.spare_entries = entries_buf,
        }
    }
}

impl Scheduler for AbacusScheduler {
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision) {
        out.dropped.clear();
        out.overhead_ms = 0.0;
        // Recycle the planned-entry buffer: from the caller's previous
        // decision if it kept one, else from the spare parked here.
        let mut entries_buf = match out.group.take() {
            Some(g) => g.entries,
            None => std::mem::take(&mut self.scratch.spare_entries),
        };
        entries_buf.clear();
        if self.degraded {
            return self.decide_degraded_into(now_ms, queue, out, entries_buf);
        }
        let margin_ms = self.cfg.margin_ms;
        let margin_frac = self.effective_margin_frac();
        let ways = self.cfg.ways;
        // Conformal certification: plan against the certifier's calibrated
        // upper bound over the *raw* headroom — the interval already holds
        // the error tail, so no margin is stacked on top.
        let certifying = self.cfg.conformal && self.certifier.is_some();
        let planning_model: &dyn LatencyModel = match &self.certifier {
            Some(c) if certifying => c.as_ref(),
            _ => self.model.as_ref(),
        };

        // Ascending `(deadline, id)` ranks — the same permutation the
        // former per-round headroom sort produced (the order key is
        // now-independent; DESIGN.md §12). Incremental when the node drove
        // the admit/retire hooks; full rebuild otherwise.
        let DecisionScratch {
            ranks, candidates, search, ..
        } = &mut self.scratch;
        if self.order.resolve_ranks(queue, ranks) {
            self.stats.incremental_rounds += 1;
        } else {
            self.order.rebuild(queue, ranks);
            self.stats.full_rebuilds += 1;
        }
        self.stats.scratch_peak = self.stats.scratch_peak.max(ranks.len());

        // One pass in round order: expired queries can never meet QoS —
        // drop outright (Eq. 2 test per element, exactly as the former
        // retain). Then, since each service is a single process handling
        // one query at a time (§6.1), keep only the least-headroom head of
        // each model; later queries of the same service wait behind it.
        candidates.clear();
        let mut seen_models = 0u32;
        for &pos in ranks.iter() {
            let q = &queue[pos];
            if q.headroom_ms(now_ms) < 0.0 {
                out.dropped.push(q.id);
                continue;
            }
            let bit = 1u32 << q.model.index();
            if seen_models & bit == 0 {
                seen_models |= bit;
                candidates.push(pos);
            }
        }

        let mut prediction_rounds = 0usize;
        let mut planned_pred: Option<f64> = None;
        let mut start = 0usize;
        while start < candidates.len() {
            let cands = &candidates[start..];
            let head = &queue[cands[0]];
            let budget = if certifying {
                head.headroom_ms(now_ms)
            } else {
                (head.headroom_ms(now_ms) - margin_ms) / (1.0 + margin_frac)
            };
            match plan_group_core(
                |i| &queue[cands[i]],
                cands.len(),
                budget,
                planning_model,
                &self.lib,
                ways,
                search,
                &mut entries_buf,
            ) {
                PlanOutcome::Planned {
                    predicted_ms,
                    prediction_rounds: r,
                } => {
                    prediction_rounds += r;
                    planned_pred = Some(predicted_ms);
                    break;
                }
                PlanOutcome::Infeasible {
                    prediction_rounds: r,
                } => {
                    // §6.2: keeping the head query would violate its QoS and
                    // delay everyone behind it — drop it and retry.
                    prediction_rounds += r;
                    out.dropped.push(head.id);
                    start += 1;
                }
            }
        }

        // Track the in-flight prediction for error accounting, and count
        // barren rounds (drops but no plan) — the fallback trigger a
        // totally-failed predictor leaves when no group ever completes.
        self.last_predicted_ms = planned_pred;
        if planned_pred.is_some() {
            self.barren_rounds = 0;
        } else if !out.dropped.is_empty() {
            self.barren_rounds += 1;
            if self.cfg.fcfs_fallback_error.is_some()
                && self.barren_rounds >= FALLBACK_BARREN_ROUNDS
            {
                self.degraded = true;
            }
        }

        self.total_rounds += 1;
        self.total_prediction_rounds += prediction_rounds as u64;
        let search_ms =
            self.cfg.base_overhead_ms + prediction_rounds as f64 * self.predict_round_ms;
        out.overhead_ms = if self.cfg.pipelined {
            // The search for this round ran while the previous group was
            // still executing (Fig. 13); only the part that did not fit in
            // that window lands on the critical path.
            let charged = (search_ms - self.hide_window_ms).max(0.0);
            self.hide_window_ms = 0.0;
            charged
        } else {
            search_ms
        };
        match planned_pred {
            Some(predicted_ms) => {
                let (predicted_ms, upper_ms) = if certifying {
                    // The search certified against the upper bound; report
                    // the mean model's estimate as `predicted_ms` so the
                    // ledger join and the error EWMA keep their semantics.
                    let mean = self.mean_of_plan(&entries_buf, queue);
                    self.last_predicted_ms = Some(mean);
                    (mean, Some(predicted_ms))
                } else {
                    (predicted_ms, None)
                };
                out.group = Some(PlannedGroup {
                    entries: entries_buf,
                    predicted_ms,
                    prediction_rounds,
                    upper_ms,
                });
            }
            None => self.scratch.spare_entries = entries_buf,
        }
    }

    fn on_admit(&mut self, q: &Query) {
        self.order.insert(q);
    }

    fn on_retire(&mut self, q: &Query) {
        self.order.remove(q);
    }

    fn decision_stats(&self) -> DecisionStats {
        DecisionStats {
            order_peak_len: self.order.peak_len(),
            ..self.stats
        }
    }

    fn on_group_complete(&mut self, duration_ms: f64) {
        self.hide_window_ms = duration_ms;
        if let Some(pred) = self.last_predicted_ms.take() {
            if pred.is_finite() && duration_ms > 0.0 {
                // Signed under-prediction bias, not absolute error: the
                // healthy model's over- and under-predictions largely
                // cancel, while a failing predictor errs consistently low —
                // the one direction that breaks QoS planning. Absolute
                // error cannot separate the two (the healthy serving-time
                // EWMA already sits near 0.45 on out-of-distribution group
                // shapes).
                let err = (duration_ms - pred) / duration_ms.max(ERR_MIN_DURATION_MS);
                self.err_ewma = Some(match self.err_ewma {
                    Some(e) => (1.0 - ERR_EWMA_ALPHA) * e + ERR_EWMA_ALPHA * err,
                    None => err,
                });
                self.err_samples += 1;
            }
        }
        if let Some(threshold) = self.cfg.fcfs_fallback_error {
            if self.err_samples >= ERR_WARMUP_SAMPLES && self.rolling_error() > threshold {
                self.degraded = true;
            }
        }
    }

    fn name(&self) -> &'static str {
        "Abacus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};
    use predictor::features::SLOT_WIDTH;
    use predictor::MAX_COLOCATED;

    /// Synthetic monotone duration model (same as the search tests).
    struct SpanModel;
    impl LatencyModel for SpanModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            let mut total: f64 = 0.0;
            for slot in 0..MAX_COLOCATED {
                let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                total += (x[base + 1] - x[base]) * 10.0;
            }
            total
        }
        fn name(&self) -> &'static str {
            "span"
        }
    }

    fn scheduler(pipelined: bool) -> AbacusScheduler {
        AbacusScheduler::new(
            Arc::new(SpanModel),
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                pipelined,
                ..AbacusConfig::default()
            },
        )
    }

    fn query(id: u64, model: ModelId, arrival: f64, qos: f64) -> Query {
        let lib = ModelLibrary::new();
        let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
        let n = lib.graph(model, input).len();
        Query::new(id, model, input, arrival, qos, n)
    }

    #[test]
    fn guarantees_least_headroom_query_first() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 30.0), // least headroom
        ];
        let d = s.decide(5.0, &queue);
        let g = d.group.unwrap();
        // Head entry is the Bert query, fully scheduled.
        assert_eq!(g.entries[0].query_id, 2);
        assert_eq!(g.entries[0].op_end, queue[1].n_ops);
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn infeasible_head_dropped_then_rest_scheduled() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            // 5 ms of headroom left but needs 10 ms: must be dropped.
            query(2, ModelId::Vgg19, 0.0, 25.0),
        ];
        let d = s.decide(20.0, &queue);
        assert_eq!(d.dropped, vec![2]);
        let g = d.group.unwrap();
        assert_eq!(g.entries[0].query_id, 1);
    }

    #[test]
    fn expired_queries_dropped_without_search() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 10.0)];
        let d = s.decide(50.0, &queue);
        assert_eq!(d.dropped, vec![1]);
        assert!(d.group.is_none());
    }

    #[test]
    fn pipelining_hides_search_cost() {
        let mut s = scheduler(true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        // Cold start (idle GPU): full cost charged.
        let cold = s.decide(0.0, &queue);
        assert!(cold.overhead_ms > 0.0);
        // After a 20 ms group, the next search hides completely.
        s.on_group_complete(20.0);
        let warm = s.decide(25.0, &queue);
        assert_eq!(warm.overhead_ms, 0.0);
    }

    #[test]
    fn non_pipelined_always_charges() {
        let mut s = scheduler(false);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        s.on_group_complete(20.0);
        let d = s.decide(25.0, &queue);
        assert!(d.overhead_ms > 0.0);
    }

    #[test]
    fn empty_queue_idles() {
        let mut s = scheduler(true);
        let d = s.decide(0.0, &[]);
        assert!(d.group.is_none());
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn calibration_is_bounded_and_finite() {
        let ms = calibrate_predict_round_ms(&SpanModel, 4);
        assert!(ms.is_finite());
        assert!((1e-4..=1.0).contains(&ms), "calibrated {ms} ms");
    }

    #[test]
    fn default_config_calibrates_at_startup() {
        let s = scheduler(true);
        assert!(s.config().predict_round_ms.is_none());
        assert!((1e-4..=1.0).contains(&s.predict_round_ms()));
    }

    #[test]
    fn explicit_round_latency_is_respected() {
        let s = AbacusScheduler::new(
            Arc::new(SpanModel),
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                predict_round_ms: Some(0.25),
                ..AbacusConfig::default()
            },
        );
        assert_eq!(s.predict_round_ms(), 0.25);
    }

    /// A predictor frozen at a constant — misprediction injection's worst
    /// case (total failure).
    struct FrozenModel(f64);
    impl LatencyModel for FrozenModel {
        fn predict_one(&self, _: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "frozen"
        }
    }

    fn defended(fallback: Option<f64>, adaptive: bool, model: Arc<dyn LatencyModel>) -> AbacusScheduler {
        AbacusScheduler::new(
            model,
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                predict_round_ms: Some(0.08),
                adaptive_margin: adaptive,
                fcfs_fallback_error: fallback,
                ..AbacusConfig::default()
            },
        )
    }

    #[test]
    fn rolling_error_tracks_misprediction() {
        let mut s = defended(None, false, Arc::new(SpanModel));
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        let d = s.decide(0.0, &queue);
        let predicted = d.group.unwrap().predicted_ms;
        // Group ran 3x longer than predicted.
        s.on_group_complete(predicted * 3.0);
        let err = s.rolling_error();
        assert!((err - 2.0 / 3.0).abs() < 1e-9, "err {err}");
    }

    #[test]
    fn adaptive_margin_widens_with_error() {
        let mut s = defended(None, true, Arc::new(SpanModel));
        assert_eq!(s.effective_margin_frac(), s.config().margin_frac);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        let d = s.decide(0.0, &queue);
        s.on_group_complete(d.group.unwrap().predicted_ms * 2.0);
        assert!(s.effective_margin_frac() > s.config().margin_frac);
        // Off by default: same history, fixed margin.
        let mut fixed = defended(None, false, Arc::new(SpanModel));
        let d = fixed.decide(0.0, &queue);
        fixed.on_group_complete(d.group.unwrap().predicted_ms * 2.0);
        assert_eq!(fixed.effective_margin_frac(), fixed.config().margin_frac);
    }

    #[test]
    fn error_threshold_trips_fcfs_fallback() {
        let mut s = defended(Some(0.5), false, Arc::new(SpanModel));
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 5.0, 100.0),
        ];
        // Sustained 90% error: the warmup gate holds the trigger for the
        // first ERR_WARMUP_SAMPLES groups, then the threshold latches.
        for sample in 0..ERR_WARMUP_SAMPLES {
            assert!(!s.is_degraded(), "degraded during warmup at sample {sample}");
            let d = s.decide(0.0, &queue);
            s.on_group_complete(d.group.unwrap().predicted_ms * 10.0);
        }
        assert!(s.is_degraded());
        // Degraded dispatch is FCFS: earliest arrival, alone, whole query.
        let d = s.decide(10.0, &queue);
        let g = d.group.unwrap();
        assert_eq!(g.entries.len(), 1);
        assert_eq!(g.entries[0].query_id, 1);
        assert_eq!(g.entries[0].op_end, queue[0].n_ops);
        assert_eq!(g.prediction_rounds, 0);
        // The baseline drop mechanism is retained while degraded.
        let d = s.decide(500.0, &queue);
        assert_eq!(d.dropped, vec![1, 2]);
        assert!(d.group.is_none());
    }

    #[test]
    fn barren_rounds_trip_fallback_under_total_predictor_failure() {
        // A predictor frozen far above every budget drops every query as
        // infeasible — no group ever completes, so the error EWMA alone
        // would never trip. The barren-round counter must.
        let mut s = defended(Some(0.5), false, Arc::new(FrozenModel(1e7)));
        for round in 0..FALLBACK_BARREN_ROUNDS {
            assert!(!s.is_degraded(), "degraded too early at round {round}");
            let queue = vec![query(u64::from(round) + 1, ModelId::ResNet50, 0.0, 100.0)];
            let d = s.decide(0.0, &queue);
            assert!(d.group.is_none());
            assert_eq!(d.dropped.len(), 1);
        }
        assert!(s.is_degraded());
        // Once degraded the frozen predictor is ignored: queries run.
        let queue = vec![query(99, ModelId::ResNet50, 0.0, 100.0)];
        assert!(s.decide(0.0, &queue).group.is_some());
    }

    #[test]
    fn fallback_disabled_never_degrades() {
        let mut s = defended(None, false, Arc::new(FrozenModel(1e7)));
        for round in 0..(FALLBACK_BARREN_ROUNDS * 2) {
            let queue = vec![query(u64::from(round) + 1, ModelId::ResNet50, 0.0, 100.0)];
            let _ = s.decide(0.0, &queue);
        }
        assert!(!s.is_degraded());
    }

    fn conformal(certifier: Option<Arc<dyn LatencyModel>>, enabled: bool) -> AbacusScheduler {
        AbacusScheduler::with_certifier(
            Arc::new(SpanModel),
            certifier,
            Arc::new(ModelLibrary::new()),
            AbacusConfig {
                predict_round_ms: Some(0.08),
                conformal: enabled,
                ..AbacusConfig::default()
            },
        )
    }

    #[test]
    fn conformal_mode_plans_against_certifier_and_reports_mean() {
        // Certifier = mean × 1.5 (a constant-width interval): planning uses
        // the inflated bound, but `predicted_ms` stays the mean estimate.
        let certifier: Arc<dyn LatencyModel> =
            Arc::new(predictor::DeratedModel::new(Arc::new(SpanModel), 1.5));
        let mut s = conformal(Some(certifier), true);
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 100.0)];
        let d = s.decide(5.0, &queue);
        let g = d.group.unwrap();
        let upper = g.upper_ms.expect("certified bound recorded");
        assert!(
            (upper - g.predicted_ms * 1.5).abs() < 1e-9,
            "upper {upper} vs mean {}",
            g.predicted_ms
        );
    }

    #[test]
    fn conformal_budget_is_raw_headroom() {
        // ResNet50 costs 10 ms solo under SpanModel. With 10.2 ms headroom
        // the fixed-margin budget (10.2 − 0.3)/1.05 ≈ 9.43 drops the query;
        // an exact certifier over the raw headroom certifies it (10 ≤ 10.2).
        let queue = vec![query(1, ModelId::ResNet50, 0.0, 10.2)];
        let mut margined = conformal(None, false);
        let d = margined.decide(0.0, &queue);
        assert_eq!(d.dropped, vec![1]);
        assert!(d.group.is_none());
        let mut certified = conformal(Some(Arc::new(SpanModel)), true);
        let d = certified.decide(0.0, &queue);
        assert!(d.dropped.is_empty());
        let g = d.group.unwrap();
        assert!(g.upper_ms.unwrap() <= 10.2);
    }

    #[test]
    fn certifier_without_flag_is_inert() {
        // A supplied certifier with the flag off — and the flag on without
        // a certifier — must both decide bit-identically to the plain
        // controller, with no certified bound recorded.
        let wild: Arc<dyn LatencyModel> =
            Arc::new(predictor::DeratedModel::new(Arc::new(SpanModel), 50.0));
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 30.0),
        ];
        let mut plain = conformal(None, false);
        let mut flag_off = conformal(Some(wild), false);
        let mut no_certifier = conformal(None, true);
        let want = plain.decide(5.0, &queue);
        assert_eq!(flag_off.decide(5.0, &queue), want);
        assert_eq!(no_certifier.decide(5.0, &queue), want);
        assert_eq!(want.group.as_ref().unwrap().upper_ms, None);
    }

    #[test]
    fn prediction_round_statistics_accumulate() {
        let mut s = scheduler(true);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 100.0),
            query(2, ModelId::Bert, 0.0, 60.0),
        ];
        let _ = s.decide(0.0, &queue);
        assert!(s.mean_prediction_rounds() >= 1.0);
    }
}
