//! Sequential baseline schedulers: FCFS, SJF, EDF (§2, §7.1).
//!
//! These are the per-GPU policies of Nexus and Clockwork: one query runs
//! exclusively at a time, so operator overlap never happens and latency is
//! trivially predictable. All three use the query-drop mechanism the paper
//! grants them for fairness: a queued query whose elapsed time already
//! exceeds its QoS target is dropped instead of executed.
//!
//! SJF additionally needs a duration estimate *before* dispatching, and —
//! unlike Abacus — cannot hide that prediction latency behind execution
//! (§7.2 discusses this as the reason SJF trails even FCFS/EDF).

use crate::group::{PlannedEntry, PlannedGroup};
use crate::query::Query;
use crate::scheduler::{RoundDecision, Scheduler};
use dnn_models::ModelLibrary;
use gpu_sim::GpuSpec;
use std::cmp::Ordering;
use std::sync::Arc;

/// Latency SJF pays per *queued query* per dispatch to estimate durations
/// (one un-batched predictor call each; §5.1 measures 0.1 ms per duration
/// prediction in real systems). Unlike
/// Abacus, SJF cannot hide this behind execution (§7.2), so at high load the
/// cost scales with queue depth and lands on the critical path.
pub const SJF_PREDICT_MS: f64 = 0.1;

/// Which sequential order the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePolicy {
    /// First come, first served.
    Fcfs,
    /// Shortest (remaining solo) job first.
    Sjf,
    /// Earliest deadline first.
    Edf,
}

impl BaselinePolicy {
    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            BaselinePolicy::Fcfs => "FCFS",
            BaselinePolicy::Sjf => "SJF",
            BaselinePolicy::Edf => "EDF",
        }
    }
}

/// A sequential baseline scheduler.
#[derive(Debug, Clone)]
pub struct BaselineScheduler {
    policy: BaselinePolicy,
    lib: Arc<ModelLibrary>,
    gpu: GpuSpec,
    /// Planned-entry buffer parked here whenever a round plans no group;
    /// otherwise it cycles through the caller's decision (same scratch
    /// lifecycle as the Abacus controller's `DecisionScratch`).
    spare_entries: Vec<PlannedEntry>,
}

impl BaselineScheduler {
    /// Create a baseline of the given flavour for `gpu`.
    pub fn new(policy: BaselinePolicy, lib: Arc<ModelLibrary>, gpu: GpuSpec) -> Self {
        Self {
            policy,
            lib,
            gpu,
            spare_entries: Vec::new(),
        }
    }

    /// Estimated remaining solo latency of `q` (profiled solo run, as Nexus
    /// and Clockwork keep per-model latency profiles).
    fn remaining_solo_ms(&self, q: &Query) -> f64 {
        self.lib
            .graph(q.model, q.input)
            .solo_ms_range(&self.gpu, q.next_op, q.n_ops)
    }
}

impl Scheduler for BaselineScheduler {
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision) {
        out.dropped.clear();
        out.overhead_ms = 0.0;
        let mut entries_buf = match out.group.take() {
            Some(g) => g.entries,
            None => std::mem::take(&mut self.spare_entries),
        };
        entries_buf.clear();
        // One pass: the query-drop mechanism evicts anything already past
        // its QoS target, the rest compete on the policy key. The former
        // per-policy `min_by` comparator never returned `Equal` (the id
        // tie-break is total over distinct ids), so its minimum is unique
        // and this strictly-less scan selects the identical query.
        let mut alive = 0usize;
        let mut chosen: Option<(f64, u64, usize)> = None;
        for (pos, q) in queue.iter().enumerate() {
            if q.headroom_ms(now_ms) < 0.0 {
                out.dropped.push(q.id);
                continue;
            }
            alive += 1;
            let key = match self.policy {
                BaselinePolicy::Fcfs => q.arrival_ms,
                BaselinePolicy::Sjf => self.remaining_solo_ms(q),
                BaselinePolicy::Edf => q.deadline_ms(),
            };
            let better = match chosen {
                None => true,
                Some((best_key, best_id, _)) => {
                    key.total_cmp(&best_key).then(q.id.cmp(&best_id)) == Ordering::Less
                }
            };
            if better {
                chosen = Some((key, q.id, pos));
            }
        }
        match chosen {
            Some((_, _, pos)) => {
                let q = &queue[pos];
                entries_buf.push(PlannedEntry {
                    query_id: q.id,
                    op_start: q.next_op,
                    op_end: q.n_ops,
                });
                out.group = Some(PlannedGroup {
                    entries: entries_buf,
                    predicted_ms: self.remaining_solo_ms(q),
                    prediction_rounds: usize::from(self.policy == BaselinePolicy::Sjf),
                    upper_ms: None,
                });
                if self.policy == BaselinePolicy::Sjf {
                    // SJF's duration estimation sits on the critical path:
                    // one prediction per queued candidate, every dispatch.
                    out.overhead_ms = alive as f64 * SJF_PREDICT_MS;
                }
            }
            None => self.spare_entries = entries_buf,
        }
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};

    fn mk(policy: BaselinePolicy) -> BaselineScheduler {
        BaselineScheduler::new(policy, Arc::new(ModelLibrary::new()), GpuSpec::a100())
    }

    fn query(id: u64, model: ModelId, arrival: f64, qos: f64) -> Query {
        let lib = ModelLibrary::new();
        let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
        let n = lib.graph(model, input).len();
        Query::new(id, model, input, arrival, qos, n)
    }

    #[test]
    fn fcfs_picks_earliest_arrival() {
        let mut s = mk(BaselinePolicy::Fcfs);
        let queue = vec![
            query(1, ModelId::Vgg19, 5.0, 100.0),
            query(2, ModelId::ResNet50, 1.0, 100.0),
        ];
        let d = s.decide(10.0, &queue);
        assert_eq!(d.group.unwrap().entries[0].query_id, 2);
        assert_eq!(d.overhead_ms, 0.0);
    }

    #[test]
    fn sjf_picks_shortest_and_pays_prediction() {
        let mut s = mk(BaselinePolicy::Sjf);
        let queue = vec![
            query(1, ModelId::Vgg19, 0.0, 100.0),
            query(2, ModelId::ResNet50, 0.0, 100.0),
        ];
        let d = s.decide(1.0, &queue);
        let g = d.group.unwrap();
        assert_eq!(g.entries[0].query_id, 2); // ResNet50 is shorter
        assert_eq!(d.overhead_ms, 2.0 * SJF_PREDICT_MS);
        assert!(g.predicted_ms > 0.0);
    }

    #[test]
    fn edf_picks_earliest_deadline() {
        let mut s = mk(BaselinePolicy::Edf);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 80.0),  // deadline 80
            query(2, ModelId::ResNet101, 10.0, 40.0), // deadline 50
        ];
        let d = s.decide(15.0, &queue);
        assert_eq!(d.group.unwrap().entries[0].query_id, 2);
    }

    #[test]
    fn expired_queries_are_dropped() {
        let mut s = mk(BaselinePolicy::Fcfs);
        let queue = vec![
            query(1, ModelId::ResNet50, 0.0, 20.0), // expired at t=30
            query(2, ModelId::ResNet50, 25.0, 20.0),
        ];
        let d = s.decide(30.0, &queue);
        assert_eq!(d.dropped, vec![1]);
        assert_eq!(d.group.unwrap().entries[0].query_id, 2);
    }

    #[test]
    fn whole_remaining_query_is_scheduled() {
        let mut s = mk(BaselinePolicy::Edf);
        let mut q = query(1, ModelId::ResNet101, 0.0, 100.0);
        q.advance_to(100);
        let d = s.decide(1.0, &[q.clone()]);
        let e = d.group.unwrap().entries[0];
        assert_eq!(e.op_start, 100);
        assert_eq!(e.op_end, q.n_ops);
    }

    #[test]
    fn empty_queue_is_idle() {
        let mut s = mk(BaselinePolicy::Fcfs);
        let d = s.decide(0.0, &[]);
        assert!(d.group.is_none());
        assert!(d.dropped.is_empty());
    }
}
