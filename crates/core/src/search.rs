//! Multi-way search for the optimal operator group (§6.2–6.3, Fig. 12).
//!
//! Given the active queries sorted by QoS headroom (ascending), the search:
//!
//! 1. puts **all** remaining operators of the head query (least headroom)
//!    into the candidate group — this round guarantees *its* QoS;
//! 2. **level 1 — across queries**: finds how many of the next queries fit
//!    *fully* alongside it, probing candidates in batches of `ways`
//!    predictions (the paper's "search between queries in three ways");
//! 3. **level 2 — within the first query that did not fit fully**: an
//!    m-ary search over its operator count finds the longest prefix that
//!    still fits (the paper's "search between op 1–5 in three ways inside
//!    q1").
//!
//! Every batch of ≤ `ways` predictions is one *prediction round*; Fig. 23
//! measures the per-round latency, and §6.3 observes most decisions finish
//! within three rounds. If even the head query alone cannot fit in its
//! headroom the search reports [`SearchResult::Infeasible`] and the
//! controller drops it (§6.2's drop mechanism).

use crate::group::{PlannedEntry, PlannedGroup};
use crate::query::Query;
use dnn_models::ModelLibrary;
use predictor::features::SLOT_WIDTH;
use predictor::{
    encode_features_with_ops, feature_slot_of, GroupEntry, LatencyModel, FEATURE_DIM,
    MAX_COLOCATED, MODEL_SLOT_BASE,
};

/// Result of one group search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchResult {
    /// A feasible group was found.
    Planned(PlannedGroup),
    /// The head query alone exceeds the budget; it should be dropped.
    Infeasible {
        /// Prediction rounds spent discovering this.
        prediction_rounds: usize,
    },
}

/// Outcome of one [`plan_group_core`] call. On `Planned` the caller's
/// entry buffer holds the group's planned entries; on `Infeasible` it is
/// left empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanOutcome {
    /// A feasible group was written into the caller's entry buffer.
    Planned {
        /// Predicted duration of the planned group, ms.
        predicted_ms: f64,
        /// Prediction rounds spent by this search.
        prediction_rounds: usize,
    },
    /// The head query alone exceeds the budget; it should be dropped.
    Infeasible {
        /// Prediction rounds spent discovering this.
        prediction_rounds: usize,
    },
}

/// Reusable buffers for one search: candidate entries, one
/// `ways × FEATURE_DIM` feature matrix fed straight to
/// [`LatencyModel::predict_into`], the prediction output, and the level-2
/// probe points. A scheduler owns one and reuses it across every round
/// ([`plan_group_core`]); the one-shot [`plan_group`] wrapper allocates a
/// fresh set per call. Either way the per-probe path allocates nothing.
pub struct SearchBuffers {
    entries: Vec<GroupEntry>,
    /// Per-entry operator counts, parallel to `entries` — each is the
    /// query's own `n_ops`, so candidate encoding never looks a graph up.
    ops: Vec<usize>,
    features: Vec<f64>,
    preds: Vec<f64>,
    probes: Vec<usize>,
}

impl SearchBuffers {
    /// Buffers sized for an `m = ways` search.
    pub fn new(ways: usize) -> Self {
        let rows = ways.max(MAX_COLOCATED);
        Self {
            entries: Vec::with_capacity(MAX_COLOCATED),
            ops: Vec::with_capacity(MAX_COLOCATED),
            features: vec![0.0; rows * FEATURE_DIM],
            preds: Vec::with_capacity(rows),
            probes: Vec::with_capacity(ways),
        }
    }
}

/// The `GroupEntry` scheduling all remaining operators of `q`.
fn full_entry(q: &Query) -> GroupEntry {
    GroupEntry {
        model: q.model,
        op_start: q.next_op,
        op_end: q.n_ops,
        input: q.input,
    }
}

/// Run the multi-way search (one-shot wrapper over [`plan_group_core`]).
///
/// `queries` must be sorted by headroom ascending, contain 1 to any number
/// of incomplete queries with pairwise-distinct models, and `budget_ms` is
/// the schedulable headroom of `queries[0]`.
pub fn plan_group(
    queries: &[&Query],
    budget_ms: f64,
    model: &dyn LatencyModel,
    lib: &ModelLibrary,
    ways: usize,
) -> SearchResult {
    let mut bufs = SearchBuffers::new(ways);
    let mut entries = Vec::new();
    match plan_group_core(
        |i| queries[i],
        queries.len(),
        budget_ms,
        model,
        lib,
        ways,
        &mut bufs,
        &mut entries,
    ) {
        PlanOutcome::Planned {
            predicted_ms,
            prediction_rounds,
        } => SearchResult::Planned(PlannedGroup {
            entries,
            predicted_ms,
            prediction_rounds,
            upper_ms: None,
        }),
        PlanOutcome::Infeasible { prediction_rounds } => {
            SearchResult::Infeasible { prediction_rounds }
        }
    }
}

/// The multi-way search against caller-owned buffers: probe sequence,
/// round counts and plans are bit-identical to [`plan_group`], but the
/// candidate list is accessed through `get(0..n)` (so a scheduler can feed
/// its order-index ranks without materialising a `Vec<&Query>`) and the
/// planned entries are written into `entries_out` (cleared first). Nothing
/// is allocated once `bufs`/`entries_out` have reached steady-state
/// capacity.
#[allow(clippy::too_many_arguments)]
pub fn plan_group_core<'q, F: Fn(usize) -> &'q Query>(
    get: F,
    n: usize,
    budget_ms: f64,
    model: &dyn LatencyModel,
    lib: &ModelLibrary,
    ways: usize,
    bufs: &mut SearchBuffers,
    entries_out: &mut Vec<PlannedEntry>,
) -> PlanOutcome {
    assert!(n >= 1, "need at least one query");
    assert!(ways >= 1, "need at least one search way");
    debug_assert!((0..n).all(|i| !get(i).is_complete()));
    // Each query's `n_ops` is its instantiated graph's operator count
    // (`Query::new` contract) — what feature normalisation divides by.
    debug_assert!((0..n).all(|i| {
        let q = get(i);
        q.n_ops == lib.graph(q.model, q.input).len()
    }));
    debug_assert!(bufs.features.len() >= ways.max(MAX_COLOCATED) * FEATURE_DIM);
    entries_out.clear();
    bufs.entries.clear();
    bufs.ops.clear();
    let mut rounds = 0;

    // Level 1: head alone, then head + 1 full, + 2 full, ... probed in
    // batches of `ways` (at most MAX_COLOCATED candidates exist). Each
    // candidate j extends candidate j-1 by one full entry; the shared
    // prefix lives in `bufs.entries` and each candidate is encoded into
    // its own row of the feature matrix.
    let max_full = (n - 1).min(MAX_COLOCATED - 1);
    let mut level1 = [0.0f64; MAX_COLOCATED];
    {
        let mut next = 0usize; // next candidate index to encode
        let mut done = 0usize; // candidates already predicted
        while done <= max_full {
            let mut rows = 0;
            while next <= max_full && rows < ways {
                let q = get(next);
                bufs.entries.push(full_entry(q));
                bufs.ops.push(q.n_ops);
                encode_features_with_ops(
                    &bufs.entries,
                    &bufs.ops,
                    &mut bufs.features[rows * FEATURE_DIM..(rows + 1) * FEATURE_DIM],
                );
                next += 1;
                rows += 1;
            }
            rounds += 1;
            model.predict_into(&bufs.features[..rows * FEATURE_DIM], rows, &mut bufs.preds);
            level1[done..done + rows].copy_from_slice(&bufs.preds);
            done += rows;
        }
    }
    // The explicit NaN arms treat a non-finite prediction (a faulted or
    // broken model) or a NaN budget as infeasible instead of silently
    // planning the head with `predicted_ms = NaN` (`NaN > x` is false).
    if level1[0].is_nan() || budget_ms.is_nan() || level1[0] > budget_ms {
        return PlanOutcome::Infeasible {
            prediction_rounds: rounds,
        };
    }
    // Largest prefix of full inclusions that fits.
    let mut best_full = 0;
    let mut best_pred = level1[0];
    for (j, &p) in level1.iter().enumerate().take(max_full + 1).skip(1) {
        if p <= budget_ms {
            best_full = j;
            best_pred = p;
        } else {
            break;
        }
    }

    // Level 2: m-ary search inside the first query that did not fit fully.
    // Group membership is now fixed (head + best_full full entries + one
    // partial entry); only the partial entry's op_end differs between
    // probes. Encode the shared prefix once into row 0, then per probe
    // copy the template and patch the single normalised op_end feature.
    let mut partial_ops = 0;
    if best_full < max_full {
        let next_q = get(best_full + 1);
        let rem = next_q.remaining_ops();

        bufs.entries.truncate(best_full + 1);
        bufs.ops.truncate(best_full + 1);
        let mut partial = full_entry(next_q);
        partial.op_end = partial.op_start; // placeholder; patched per probe
        bufs.entries.push(partial);
        bufs.ops.push(next_q.n_ops);
        let template_base = {
            let (template, rest) = bufs.features.split_at_mut(FEATURE_DIM);
            encode_features_with_ops(&bufs.entries, &bufs.ops, template);
            // Rows 1.. start as copies of the template.
            for row in rest.chunks_exact_mut(FEATURE_DIM) {
                row.copy_from_slice(template);
            }
            MODEL_SLOT_BASE + feature_slot_of(&bufs.entries, next_q.model) * SLOT_WIDTH
        };
        let n_ops_norm = next_q.n_ops as f64;

        // c = 0 is feasible (it is `best_full`); c = rem is known infeasible.
        let mut lo = 0usize;
        let mut hi = rem;
        let mut lo_pred = best_pred;
        while hi - lo > 1 {
            // `ways` probe points evenly spaced in (lo, hi).
            let span = hi - lo;
            bufs.probes.clear();
            bufs.probes.extend(
                (1..=ways)
                    .map(|i| lo + (span * i) / (ways + 1))
                    .filter(|&c| c > lo && c < hi),
            );
            bufs.probes.dedup();
            if bufs.probes.is_empty() {
                bufs.probes.push(lo + span / 2);
            }
            // Patch only the partial slot's op_end feature per probe.
            for (row, &c) in bufs.probes.iter().enumerate() {
                bufs.features[row * FEATURE_DIM + template_base + 1] =
                    (next_q.next_op + c) as f64 / n_ops_norm;
            }
            let rows = bufs.probes.len();
            rounds += 1;
            model.predict_into(&bufs.features[..rows * FEATURE_DIM], rows, &mut bufs.preds);
            // Narrow to the widest feasible probe.
            let mut new_lo = lo;
            let mut new_lo_pred = lo_pred;
            let mut new_hi = hi;
            for (&c, &p) in bufs.probes.iter().zip(&bufs.preds) {
                if p <= budget_ms {
                    if c > new_lo {
                        new_lo = c;
                        new_lo_pred = p;
                    }
                } else if c < new_hi {
                    new_hi = c;
                }
            }
            if new_lo == lo && new_hi == hi {
                // No progress possible (flat predictions); stop.
                break;
            }
            lo = new_lo;
            lo_pred = new_lo_pred;
            hi = new_hi.max(lo + 1);
        }
        partial_ops = lo;
        best_pred = lo_pred;
    }

    entries_out.extend((0..=best_full).map(|i| {
        let q = get(i);
        PlannedEntry {
            query_id: q.id,
            op_start: q.next_op,
            op_end: q.n_ops,
        }
    }));
    if partial_ops > 0 {
        let q = get(best_full + 1);
        entries_out.push(PlannedEntry {
            query_id: q.id,
            op_start: q.next_op,
            op_end: q.next_op + partial_ops,
        });
    }
    PlanOutcome::Planned {
        predicted_ms: best_pred,
        prediction_rounds: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, ModelLibrary, QueryInput};
    use predictor::features::SLOT_WIDTH;

    /// A synthetic monotone duration model: per-slot cost proportional to
    /// the normalised operator span, as if all operators were equal.
    struct SpanModel {
        ms_per_unit_span: f64,
    }

    impl LatencyModel for SpanModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            let mut total: f64 = 0.0;
            for slot in 0..MAX_COLOCATED {
                let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                total += (x[base + 1] - x[base]) * self.ms_per_unit_span;
            }
            total
        }
        fn name(&self) -> &'static str {
            "span"
        }
    }

    fn lib() -> ModelLibrary {
        ModelLibrary::new()
    }

    fn query(id: u64, model: ModelId, next_op: usize) -> Query {
        let lib = lib();
        let input = QueryInput::new(8, if model.is_nlp() { 16 } else { 1 });
        let n = lib.graph(model, input).len();
        let mut q = Query::new(id, model, input, 0.0, 100.0, n);
        q.advance_to(next_op);
        q
    }

    #[test]
    fn head_always_fully_included() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 30);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        // Remaining span of q0: (125-30)/125 * 10 = 7.6 ms < 8.
        match plan_group(&[&q0], 8.0, &model, &lib, 4) {
            SearchResult::Planned(p) => {
                assert_eq!(p.entries.len(), 1);
                assert_eq!(p.entries[0].op_start, 30);
                assert_eq!(p.entries[0].op_end, 125);
                assert!(p.predicted_ms <= 8.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_head_is_reported() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 0);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        // Full span = 10 ms > 5 ms budget.
        assert!(matches!(
            plan_group(&[&q0], 5.0, &model, &lib, 4),
            SearchResult::Infeasible { .. }
        ));
    }

    #[test]
    fn level1_adds_whole_queries_in_headroom_order() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 0);
        let q1 = query(1, ModelId::Bert, 0);
        let q2 = query(2, ModelId::Vgg16, 0);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        // Budget 25 ms: q0 (10) + q1 (10) fit; q2 (10) does not fit fully,
        // so its prefix is added partially.
        match plan_group(&[&q0, &q1, &q2], 25.0, &model, &lib, 4) {
            SearchResult::Planned(p) => {
                assert!(p.entries.len() >= 2);
                assert_eq!(p.entries[0].query_id, 0);
                assert_eq!(p.entries[1].query_id, 1);
                assert_eq!(p.entries[1].op_end, q1.n_ops);
                if let Some(e2) = p.entries.get(2) {
                    // Partial prefix of VGG16 (36 ops): ~half fits.
                    assert_eq!(e2.query_id, 2);
                    assert!(e2.op_end < q2.n_ops);
                    let frac = e2.len() as f64 / q2.n_ops as f64;
                    assert!((0.3..0.6).contains(&frac), "frac {frac}");
                }
                assert!(p.predicted_ms <= 25.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_prefix_maximised_by_mary_search() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 100); // small remaining span
        let q1 = query(1, ModelId::ResNet152, 0); // 363 ops to slice
        let model = SpanModel { ms_per_unit_span: 10.0 };
        // q0 remaining: 25/125*10 = 2 ms. Budget 7 ms -> 5 ms for q1:
        // 5 ms = 0.5 span = ~181 ops.
        match plan_group(&[&q0, &q1], 7.0, &model, &lib, 4) {
            SearchResult::Planned(p) => {
                assert_eq!(p.entries.len(), 2);
                let ops = p.entries[1].len();
                assert!((170..=182).contains(&ops), "ops {ops}");
                assert!(p.predicted_ms <= 7.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nan_prediction_is_infeasible_not_planned() {
        // Regression: `level1[0] > budget` is false for NaN, which used to
        // plan the head query with `predicted_ms = NaN`. A NaN-emitting
        // model must instead report infeasibility (the §6.2 drop path).
        struct NanModel;
        impl LatencyModel for NanModel {
            fn predict_one(&self, _: &[f64]) -> f64 {
                f64::NAN
            }
            fn name(&self) -> &'static str {
                "nan"
            }
        }
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 0);
        assert!(matches!(
            plan_group(&[&q0], 100.0, &NanModel, &lib, 4),
            SearchResult::Infeasible { .. }
        ));
        // Mixed case: NaN only past the head keeps the head-only plan and
        // a finite prediction.
        struct NanBeyondHead;
        impl LatencyModel for NanBeyondHead {
            fn predict_one(&self, x: &[f64]) -> f64 {
                let mut slots = 0;
                for slot in 0..MAX_COLOCATED {
                    let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                    if x[base + 1] - x[base] > 0.0 {
                        slots += 1;
                    }
                }
                if slots > 1 {
                    f64::NAN
                } else {
                    5.0
                }
            }
            fn name(&self) -> &'static str {
                "nan-beyond-head"
            }
        }
        let q1 = query(1, ModelId::Bert, 0);
        match plan_group(&[&q0, &q1], 100.0, &NanBeyondHead, &lib, 4) {
            SearchResult::Planned(p) => {
                assert_eq!(p.entries.len(), 1);
                assert!(p.predicted_ms.is_finite());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nan_budget_is_infeasible() {
        // A NaN budget (poisoned headroom) must drop, not plan.
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 0);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        assert!(matches!(
            plan_group(&[&q0], f64::NAN, &model, &lib, 4),
            SearchResult::Infeasible { .. }
        ));
    }

    #[test]
    fn more_ways_never_reduces_quality() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 100);
        let q1 = query(1, ModelId::ResNet152, 0);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        let ops_of = |ways| match plan_group(&[&q0, &q1], 7.0, &model, &lib, ways) {
            SearchResult::Planned(p) => p.entries[1].len(),
            _ => panic!(),
        };
        let one = ops_of(1);
        let four = ops_of(4);
        let sixteen = ops_of(16);
        assert!(four >= one.saturating_sub(2), "1-way {one} 4-way {four}");
        assert!(sixteen + 2 >= four, "4-way {four} 16-way {sixteen}");
    }

    #[test]
    fn more_ways_fewer_rounds() {
        let lib = lib();
        let q0 = query(0, ModelId::ResNet50, 100);
        let q1 = query(1, ModelId::ResNet152, 0);
        let model = SpanModel { ms_per_unit_span: 10.0 };
        let rounds_of = |ways| match plan_group(&[&q0, &q1], 7.0, &model, &lib, ways) {
            SearchResult::Planned(p) => p.prediction_rounds,
            _ => panic!(),
        };
        assert!(rounds_of(8) <= rounds_of(2));
    }

    /// The pre-refactor search, kept verbatim as a golden reference: it
    /// materialises a fresh `GroupSpec` and feature `Vec` per probe. The
    /// buffered hot path must report byte-identical plans and round counts.
    mod reference {
        use super::super::*;
        use predictor::GroupSpec;

        fn candidate_spec(
            queries: &[&Query],
            full: usize,
            partial_ops: usize,
            lib: &ModelLibrary,
        ) -> GroupSpec {
            let mut entries: Vec<GroupEntry> = Vec::with_capacity(full + 2);
            for q in &queries[..=full] {
                entries.push(GroupEntry {
                    model: q.model,
                    op_start: q.next_op,
                    op_end: q.n_ops,
                    input: q.input,
                });
            }
            if partial_ops > 0 {
                let q = queries[full + 1];
                entries.push(GroupEntry {
                    model: q.model,
                    op_start: q.next_op,
                    op_end: q.next_op + partial_ops,
                    input: q.input,
                });
            }
            GroupSpec::new(entries, lib)
        }

        fn predict_batch(
            specs: &[GroupSpec],
            model: &dyn LatencyModel,
            lib: &ModelLibrary,
            rounds: &mut usize,
        ) -> Vec<f64> {
            *rounds += 1;
            let xs: Vec<Vec<f64>> = specs.iter().map(|s| s.features(lib)).collect();
            model.predict_batch(&xs)
        }

        pub fn plan_group(
            queries: &[&Query],
            budget_ms: f64,
            model: &dyn LatencyModel,
            lib: &ModelLibrary,
            ways: usize,
        ) -> SearchResult {
            assert!(!queries.is_empty(), "need at least one query");
            assert!(ways >= 1, "need at least one search way");
            let mut rounds = 0;

            let max_full = (queries.len() - 1).min(MAX_COLOCATED - 1);
            let candidates: Vec<GroupSpec> = (0..=max_full)
                .map(|j| candidate_spec(queries, j, 0, lib))
                .collect();
            let mut level1 = Vec::with_capacity(candidates.len());
            for chunk in candidates.chunks(ways.max(1)) {
                level1.extend(predict_batch(chunk, model, lib, &mut rounds));
            }
            if level1[0] > budget_ms {
                return SearchResult::Infeasible {
                    prediction_rounds: rounds,
                };
            }
            let mut best_full = 0;
            let mut best_pred = level1[0];
            for (j, &p) in level1.iter().enumerate().skip(1) {
                if p <= budget_ms {
                    best_full = j;
                    best_pred = p;
                } else {
                    break;
                }
            }

            let mut partial_ops = 0;
            if best_full < max_full {
                let next_q = queries[best_full + 1];
                let rem = next_q.remaining_ops();
                let mut lo = 0usize;
                let mut hi = rem;
                let mut lo_pred = best_pred;
                while hi - lo > 1 {
                    let span = hi - lo;
                    let mut probes: Vec<usize> = (1..=ways)
                        .map(|i| lo + (span * i) / (ways + 1))
                        .filter(|&c| c > lo && c < hi)
                        .collect();
                    probes.dedup();
                    if probes.is_empty() {
                        probes.push(lo + span / 2);
                    }
                    let specs: Vec<GroupSpec> = probes
                        .iter()
                        .map(|&c| candidate_spec(queries, best_full, c, lib))
                        .collect();
                    let preds = predict_batch(&specs, model, lib, &mut rounds);
                    let mut new_lo = lo;
                    let mut new_lo_pred = lo_pred;
                    let mut new_hi = hi;
                    for (&c, &p) in probes.iter().zip(&preds) {
                        if p <= budget_ms {
                            if c > new_lo {
                                new_lo = c;
                                new_lo_pred = p;
                            }
                        } else if c < new_hi {
                            new_hi = c;
                        }
                    }
                    if new_lo == lo && new_hi == hi {
                        break;
                    }
                    lo = new_lo;
                    lo_pred = new_lo_pred;
                    hi = new_hi.max(lo + 1);
                }
                partial_ops = lo;
                best_pred = lo_pred;
            }

            let mut entries: Vec<PlannedEntry> = queries[..=best_full]
                .iter()
                .map(|q| PlannedEntry {
                    query_id: q.id,
                    op_start: q.next_op,
                    op_end: q.n_ops,
                })
                .collect();
            if partial_ops > 0 {
                let q = queries[best_full + 1];
                entries.push(PlannedEntry {
                    query_id: q.id,
                    op_start: q.next_op,
                    op_end: q.next_op + partial_ops,
                });
            }
            SearchResult::Planned(PlannedGroup {
                entries,
                predicted_ms: best_pred,
                prediction_rounds: rounds,
                upper_ms: None,
            })
        }
    }

    #[test]
    fn golden_matches_prerefactor_reference() {
        let lib = lib();
        let fixtures: Vec<Vec<Query>> = vec![
            vec![query(0, ModelId::ResNet50, 30)],
            vec![query(0, ModelId::ResNet50, 0)],
            vec![query(0, ModelId::ResNet50, 100), query(1, ModelId::ResNet152, 0)],
            vec![
                query(0, ModelId::ResNet50, 0),
                query(1, ModelId::Bert, 0),
                query(2, ModelId::Vgg16, 0),
            ],
            vec![
                query(0, ModelId::ResNet50, 0),
                query(1, ModelId::ResNet101, 0),
                query(2, ModelId::ResNet152, 0),
                query(3, ModelId::Bert, 0),
                query(4, ModelId::Vgg16, 0),
            ],
        ];
        let budgets = [2.0, 5.0, 7.0, 25.0, 100.0];
        for qs in &fixtures {
            let refs: Vec<&Query> = qs.iter().collect();
            for &budget in &budgets {
                for ways in [1usize, 2, 3, 4, 8, 16] {
                    for unit in [0.5, 10.0] {
                        let model = SpanModel { ms_per_unit_span: unit };
                        let got = plan_group(&refs, budget, &model, &lib, ways);
                        let want = reference::plan_group(&refs, budget, &model, &lib, ways);
                        assert_eq!(
                            got, want,
                            "divergence: {} queries, budget {budget}, ways {ways}, unit {unit}",
                            refs.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn at_most_four_queries_in_group() {
        let lib = lib();
        let qs = [
            query(0, ModelId::ResNet50, 0),
            query(1, ModelId::ResNet101, 0),
            query(2, ModelId::ResNet152, 0),
            query(3, ModelId::Bert, 0),
            query(4, ModelId::Vgg16, 0),
        ];
        let refs: Vec<&Query> = qs.iter().collect();
        let model = SpanModel { ms_per_unit_span: 0.001 }; // everything fits
        match plan_group(&refs, 100.0, &model, &lib, 4) {
            SearchResult::Planned(p) => assert_eq!(p.entries.len(), MAX_COLOCATED),
            other => panic!("{other:?}"),
        }
    }
}
