//! The scheduling interface shared by Abacus and the sequential baselines.
//!
//! A serving node calls [`Scheduler::decide`] whenever the GPU becomes
//! free; the scheduler may drop queries (the query-drop mechanism §7.1
//! enables for every policy) and proposes at most one operator group to
//! execute. The node reports the executed group's duration back through
//! [`Scheduler::on_group_complete`], which is how Abacus knows how much
//! search latency the pipelined scheduling of §6.3 was able to hide.

use crate::group::PlannedGroup;
use crate::query::Query;

/// The outcome of one scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDecision {
    /// Ids of queries dropped this round (the serving loop removes them and
    /// records them as QoS violations).
    pub dropped: Vec<u64>,
    /// The group to execute next, if any query remains.
    pub group: Option<PlannedGroup>,
    /// Host-side scheduling latency charged before the group starts, ms.
    pub overhead_ms: f64,
}

impl RoundDecision {
    /// An idle decision (empty queue).
    pub fn idle() -> Self {
        Self {
            dropped: Vec::new(),
            group: None,
            overhead_ms: 0.0,
        }
    }
}

/// A per-GPU scheduling policy.
pub trait Scheduler: Send {
    /// Decide what to run next. `queue` holds every incomplete, undropped
    /// query; the scheduler must reference queries by id and must not
    /// assume any ordering.
    fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision;

    /// Observe the duration of the group that just finished executing.
    fn on_group_complete(&mut self, _duration_ms: f64) {}

    /// Display name (figure labels).
    fn name(&self) -> &'static str;
}
