//! The scheduling interface shared by Abacus and the sequential baselines.
//!
//! A serving node calls [`Scheduler::decide`] whenever the GPU becomes
//! free; the scheduler may drop queries (the query-drop mechanism §7.1
//! enables for every policy) and proposes at most one operator group to
//! execute. The node reports the executed group's duration back through
//! [`Scheduler::on_group_complete`], which is how Abacus knows how much
//! search latency the pipelined scheduling of §6.3 was able to hide.

use crate::group::PlannedGroup;
use crate::query::Query;

/// The outcome of one scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDecision {
    /// Ids of queries dropped this round (the serving loop removes them and
    /// records them as QoS violations).
    pub dropped: Vec<u64>,
    /// The group to execute next, if any query remains.
    pub group: Option<PlannedGroup>,
    /// Host-side scheduling latency charged before the group starts, ms.
    pub overhead_ms: f64,
}

impl RoundDecision {
    /// An idle decision (empty queue).
    pub fn idle() -> Self {
        Self {
            dropped: Vec::new(),
            group: None,
            overhead_ms: 0.0,
        }
    }
}

/// Decision-layer health counters, surfaced through telemetry. Peaks are
/// high-water marks over the scheduler's lifetime; round counts are
/// cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Deepest the incremental order index has ever been.
    pub order_peak_len: usize,
    /// Peak per-round scratch footprint (rank slots resolved in one round).
    pub scratch_peak: usize,
    /// Rounds served off the incrementally-maintained order.
    pub incremental_rounds: u64,
    /// Rounds that fell back to a full order rebuild (admit/retire hooks
    /// not driven, or an index desync was detected).
    pub full_rebuilds: u64,
}

/// A per-GPU scheduling policy.
///
/// Implementors must override at least one of [`Scheduler::decide`] /
/// [`Scheduler::decide_into`]; the defaults delegate to each other.
pub trait Scheduler: Send {
    /// Decide what to run next. `queue` holds every incomplete, undropped
    /// query; the scheduler must reference queries by id and must not
    /// assume any ordering.
    fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision {
        let mut out = RoundDecision::idle();
        self.decide_into(now_ms, queue, &mut out);
        out
    }

    /// Allocation-free variant of [`Scheduler::decide`]: write the decision
    /// into `out`, reusing its buffers. The serving loop keeps one
    /// `RoundDecision` alive across rounds and the scheduler recycles the
    /// planned group's entry vector through it, so a steady-state round
    /// allocates nothing.
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision) {
        *out = self.decide(now_ms, queue);
    }

    /// Observe a query entering the node queue (order-maintenance hook;
    /// optional — a scheduler that never sees it just re-derives order per
    /// round).
    fn on_admit(&mut self, _q: &Query) {}

    /// Observe a query leaving the node queue for any reason (completion,
    /// drop, timeout, eviction), called just before removal.
    fn on_retire(&mut self, _q: &Query) {}

    /// Observe the duration of the group that just finished executing.
    fn on_group_complete(&mut self, _duration_ms: f64) {}

    /// Decision-layer health snapshot (telemetry; default all-zero).
    fn decision_stats(&self) -> DecisionStats {
        DecisionStats::default()
    }

    /// Display name (figure labels).
    fn name(&self) -> &'static str;
}
