//! The flexible segmental model executor (§6.1, Fig. 11).
//!
//! Executes one operator schedule group at a time, exclusively — the
//! property that makes the overlap deterministic. Each participating query
//! runs its operator range on its own stream (its own process in the real
//! system); the executor synchronises once per group before replying, saves
//! intermediate activations for partially-processed queries and restores
//! them when a query resumes in a later round.
//!
//! In this reproduction the GPU is `gpu-sim`; the executor adds the
//! host-side costs the paper discusses: one synchronisation per group (no
//! more than sequential execution pays per query, §6.3) and a small
//! save/restore charge per partial query (§7.8's ≈ 20 MB of intermediate
//! state).

use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::{
    run_group, Engine, GpuSpec, KernelDesc, KernelFaultSpec, NoiseModel, RunningKernel,
    StreamCompletion,
};
use predictor::GroupSpec;
use std::collections::HashMap;
use std::sync::Arc;
use workload::fork_seed;

/// One GPU synchronisation + reply, charged per executed group, ms.
pub const GROUP_SYNC_MS: f64 = 0.05;

/// Save (or restore) of one query's intermediate activations, ms.
pub const SAVE_RESTORE_MS: f64 = 0.02;

/// Outcome of executing one operator group.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Total wall time of the round, ms (kernels + sync + save/restore).
    /// Every query in the group — completed or partial — is occupied for
    /// this long: results return only after the group-level sync.
    pub duration_ms: f64,
    /// Per-entry kernel-stream completion offsets (before sync), ms.
    pub stream_ms: Vec<f64>,
    /// Bytes of intermediate activations held for partially-processed
    /// queries after this round (the §7.8 memory-overhead figure).
    pub saved_bytes: f64,
}

/// The segmental executor: owns the GPU and the run-to-run noise stream.
///
/// Holds one persistent [`Engine`] that is [`Engine::reset`] (not rebuilt)
/// per group, and lowers every entry through the library's memoised kernel
/// cache — the serving inner loop allocates nothing per group in the
/// steady state.
#[derive(Debug, Clone)]
pub struct SegmentalExecutor {
    engine: Engine,
    lib: Arc<ModelLibrary>,
    seed: u64,
    rounds: u64,
    /// Cumulative GPU busy time across executed groups, ms. Fault-spike
    /// windows are expressed on this clock (the engine's own clock resets
    /// to zero every group).
    busy_ms: f64,
    /// Cumulative kernel-level engine events across executed groups (the
    /// engine's own counter resets every group).
    events: u64,
    /// Cumulative fault-spike activations across executed groups.
    fault_spikes: u64,
    /// Element-wise peaks of the engine's per-group core stats
    /// ([`gpu_sim::EngineCoreStats`]) across executed groups — the
    /// engine's own peaks reset with it every group.
    core_stats: gpu_sim::EngineCoreStats,
    /// Reused completion buffer for [`Engine::completions_into`].
    completions: Vec<StreamCompletion>,
    /// Memoised [`RunningKernel::profile`] rows per `(model, input)`,
    /// parallel to the library's cached kernel lowering. The executor's GPU
    /// is fixed at construction, so a profile row is computed once and
    /// replayed for every later group — the engine then skips its
    /// per-kernel-start profile evaluation (bit-identical; the profile is a
    /// pure function of kernel and GPU).
    profiles: HashMap<(ModelId, QueryInput), Vec<RunningKernel>>,
}

impl SegmentalExecutor {
    /// Create an executor on `gpu` with the given noise model and seed.
    pub fn new(gpu: GpuSpec, noise: NoiseModel, lib: Arc<ModelLibrary>, seed: u64) -> Self {
        Self {
            engine: Engine::new(gpu, noise, 0),
            lib,
            seed,
            rounds: 0,
            busy_ms: 0.0,
            events: 0,
            fault_spikes: 0,
            core_stats: gpu_sim::EngineCoreStats::default(),
            completions: Vec::new(),
            profiles: HashMap::new(),
        }
    }

    /// Install (or clear) a kernel latency-spike fault spec. The spike
    /// window is interpreted on the executor's cumulative busy-time clock,
    /// not per-group engine time.
    pub fn set_kernel_faults(&mut self, spec: Option<KernelFaultSpec>) {
        self.engine.set_kernel_faults(spec);
    }

    /// Cumulative GPU busy time across all executed groups, ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Cumulative kernel-level engine events across all executed groups.
    pub fn engine_events(&self) -> u64 {
        self.events
    }

    /// Cumulative fault-spike activations across all executed groups.
    pub fn fault_spikes(&self) -> u64 {
        self.fault_spikes
    }

    /// Element-wise peaks of the engine core's health stats (deepest
    /// running set, deepest arrival backlog, fullest calendar bucket)
    /// across all executed groups.
    pub fn engine_core_stats(&self) -> gpu_sim::EngineCoreStats {
        self.core_stats
    }

    /// Record each group's per-kernel execution spans (engine-local time;
    /// read them back with [`SegmentalExecutor::kernel_trace`] after each
    /// `execute`). Enable before the first group.
    pub fn enable_kernel_trace(&mut self) {
        self.engine.enable_trace();
    }

    /// The most recent group's kernel spans, in completion order (empty
    /// unless kernel tracing was enabled). Spans are on the engine's
    /// group-local clock, starting at zero each group.
    pub fn kernel_trace(&self) -> &[gpu_sim::KernelSpan] {
        self.engine.trace()
    }

    /// The GPU this executor drives.
    pub fn gpu(&self) -> &GpuSpec {
        self.engine.gpu()
    }

    /// The model library used to lower operator ranges.
    pub fn library(&self) -> &Arc<ModelLibrary> {
        &self.lib
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Execute one operator group exclusively and return its timing.
    pub fn execute(&mut self, spec: &GroupSpec) -> ExecOutcome {
        let run_seed = fork_seed(self.seed, self.rounds);
        self.rounds += 1;
        self.engine.reset(run_seed);
        self.engine.set_fault_time_base(self.busy_ms);
        for e in &spec.entries {
            let profiles = self
                .profiles
                .entry((e.model, e.input))
                .or_insert_with(|| {
                    self.lib
                        .kernels(e.model, e.input)
                        .iter()
                        .map(|k| RunningKernel::profile(k, self.engine.gpu()))
                        .collect()
                });
            self.engine.add_stream_slice_profiled(
                self.lib.kernels_range(e.model, e.input, e.op_start, e.op_end),
                &profiles[e.op_start..e.op_end],
                0.0,
            );
        }
        self.engine.run_until_idle();
        self.engine.completions_into(&mut self.completions);
        let mut min_start = f64::INFINITY;
        let mut max_end = 0.0f64;
        for c in &self.completions {
            min_start = min_start.min(c.start_ms);
            max_end = max_end.max(c.end_ms);
        }
        let total_ms = if self.completions.is_empty() {
            0.0
        } else {
            max_end - min_start
        };
        self.busy_ms += total_ms;
        self.events += self.engine.events();
        self.fault_spikes += self.engine.fault_spikes();
        self.core_stats.merge_peaks(&self.engine.core_stats());
        // Save/restore bookkeeping for partial queries.
        let mut overhead = GROUP_SYNC_MS;
        let mut saved_bytes = 0.0;
        for e in &spec.entries {
            let graph = self.lib.graph(e.model, e.input);
            if e.op_start > 0 {
                overhead += SAVE_RESTORE_MS; // restore at round start
            }
            if e.op_end < graph.len() {
                overhead += SAVE_RESTORE_MS; // save at round end
                // The activation crossing the segment boundary: estimate
                // as the boundary operator's output traffic share.
                saved_bytes += graph.ops[e.op_end - 1].bytes / 3.0;
            }
        }
        ExecOutcome {
            duration_ms: total_ms + overhead,
            stream_ms: self.completions.iter().map(|c| c.end_ms - c.start_ms).collect(),
            saved_bytes,
        }
    }

    /// Noise-free duration of a group — used by tests and the oracle
    /// ablation (never by the controller, which must use the predictor).
    pub fn expected_duration_ms(&self, spec: &GroupSpec) -> f64 {
        let streams: Vec<&[KernelDesc]> = spec
            .entries
            .iter()
            .map(|e| self.lib.kernels_range(e.model, e.input, e.op_start, e.op_end))
            .collect();
        run_group(self.engine.gpu(), &NoiseModel::disabled(), 0, &streams).total_ms + GROUP_SYNC_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, QueryInput};
    use predictor::GroupEntry;

    fn setup() -> (SegmentalExecutor, Arc<ModelLibrary>) {
        let lib = Arc::new(ModelLibrary::new());
        (
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::disabled(), lib.clone(), 1),
            lib,
        )
    }

    fn entry(model: ModelId, s: usize, e: usize) -> GroupEntry {
        GroupEntry {
            model,
            op_start: s,
            op_end: e,
            input: QueryInput::new(8, if model.is_nlp() { 16 } else { 1 }),
        }
    }

    #[test]
    fn full_query_has_no_save_restore() {
        let (mut ex, lib) = setup();
        let spec = GroupSpec::new(vec![entry(ModelId::ResNet50, 0, 125)], &lib);
        let out = ex.execute(&spec);
        assert_eq!(out.saved_bytes, 0.0);
        let solo = lib
            .graph(ModelId::ResNet50, QueryInput::new(8, 1))
            .solo_ms(ex.gpu());
        assert!((out.duration_ms - solo - GROUP_SYNC_MS).abs() < 1e-9);
    }

    #[test]
    fn partial_query_pays_save_and_saves_bytes() {
        let (mut ex, lib) = setup();
        let spec = GroupSpec::new(vec![entry(ModelId::ResNet50, 0, 60)], &lib);
        let out = ex.execute(&spec);
        assert!(out.saved_bytes > 0.0);
        let solo = lib
            .graph(ModelId::ResNet50, QueryInput::new(8, 1))
            .solo_ms_range(ex.gpu(), 0, 60);
        assert!((out.duration_ms - solo - GROUP_SYNC_MS - SAVE_RESTORE_MS).abs() < 1e-9);
    }

    #[test]
    fn resumed_query_pays_restore() {
        let (mut ex, lib) = setup();
        let spec = GroupSpec::new(vec![entry(ModelId::ResNet50, 60, 125)], &lib);
        let out = ex.execute(&spec);
        assert_eq!(out.saved_bytes, 0.0); // completes, nothing kept
        let solo = lib
            .graph(ModelId::ResNet50, QueryInput::new(8, 1))
            .solo_ms_range(ex.gpu(), 60, 125);
        assert!((out.duration_ms - solo - GROUP_SYNC_MS - SAVE_RESTORE_MS).abs() < 1e-9);
    }

    #[test]
    fn overlapped_group_duration_below_sequential() {
        let (mut ex, lib) = setup();
        let spec = GroupSpec::new(
            vec![entry(ModelId::ResNet50, 0, 125), entry(ModelId::Bert, 0, 173)],
            &lib,
        );
        let seq = spec.sequential_ms(&lib, ex.gpu());
        let out = ex.execute(&spec);
        assert!(out.duration_ms < seq, "{} vs {seq}", out.duration_ms);
        assert_eq!(out.stream_ms.len(), 2);
    }

    #[test]
    fn noisy_executor_is_deterministic_per_round_sequence() {
        let lib = Arc::new(ModelLibrary::new());
        let mk = || {
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::calibrated(), lib.clone(), 9)
        };
        let spec = GroupSpec::new(vec![entry(ModelId::Vgg16, 0, 21)], &lib);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..3 {
            assert_eq!(a.execute(&spec), b.execute(&spec));
        }
        // Different rounds draw different noise.
        let mut c = mk();
        let r1 = c.execute(&spec);
        let r2 = c.execute(&spec);
        assert_ne!(r1.duration_ms, r2.duration_ms);
    }

    #[test]
    fn fault_window_spans_groups_on_cumulative_clock() {
        // Two identical groups; the spike window covers only the span of
        // the *second* group on the cumulative busy-time clock, so the
        // first group must run clean even though engine time restarts at
        // zero each round.
        let lib = Arc::new(ModelLibrary::new());
        let spec = GroupSpec::new(vec![entry(ModelId::ResNet50, 0, 125)], &lib);
        let mut clean =
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::disabled(), lib.clone(), 1);
        let base = clean.execute(&spec);
        let first_busy = clean.busy_ms();

        let mut faulty =
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::disabled(), lib.clone(), 1);
        faulty.set_kernel_faults(Some(KernelFaultSpec {
            seed: 7,
            window_start_ms: first_busy,
            window_end_ms: f64::INFINITY,
            prob: 1.0,
            factor: 2.0,
        }));
        let g1 = faulty.execute(&spec);
        let g2 = faulty.execute(&spec);
        assert_eq!(g1, base, "window starts after group 1 — group 1 clean");
        assert!(
            (g2.duration_ms - GROUP_SYNC_MS - 2.0 * (base.duration_ms - GROUP_SYNC_MS)).abs()
                < 1e-9,
            "group 2 fully inside window scales by the spike factor: {} vs {}",
            g2.duration_ms,
            base.duration_ms
        );
    }

    #[test]
    fn silent_fault_spec_is_bit_identical() {
        let lib = Arc::new(ModelLibrary::new());
        let spec = GroupSpec::new(
            vec![entry(ModelId::ResNet50, 0, 125), entry(ModelId::Bert, 0, 173)],
            &lib,
        );
        let mut plain =
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::calibrated(), lib.clone(), 5);
        let mut silent =
            SegmentalExecutor::new(GpuSpec::a100(), NoiseModel::calibrated(), lib.clone(), 5);
        silent.set_kernel_faults(Some(KernelFaultSpec::always(3, 0.0, 10.0)));
        for _ in 0..3 {
            assert_eq!(plain.execute(&spec), silent.execute(&spec));
        }
    }

    #[test]
    fn intermediate_footprint_is_modest() {
        // §7.8: ~20 MB of intermediate results. One partial CV query at a
        // layer boundary should hold single-digit-MB to tens-of-MB state.
        let (mut ex, lib) = setup();
        let spec = GroupSpec::new(
            vec![GroupEntry {
                model: ModelId::ResNet152,
                op_start: 0,
                op_end: 180,
                input: QueryInput::new(32, 1),
            }],
            &lib,
        );
        let out = ex.execute(&spec);
        let mb = out.saved_bytes / 1e6;
        assert!((0.5..80.0).contains(&mb), "saved {mb} MB");
    }
}
