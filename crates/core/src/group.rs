//! Planned operator schedule groups.
//!
//! A [`PlannedGroup`] is the controller's output for one scheduling round:
//! which queries run, over which operator ranges, and the predicted
//! duration used for the QoS decision. It converts to the predictor's
//! [`GroupSpec`] for feature encoding and to kernel streams for execution.

use crate::query::Query;
use dnn_models::ModelLibrary;
use predictor::{GroupEntry, GroupSpec};

/// One query's share of a planned group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedEntry {
    /// Id of the query (resolved against the serving queue).
    pub query_id: u64,
    /// First operator to run (the query's current `next_op`).
    pub op_start: usize,
    /// One past the last operator to run.
    pub op_end: usize,
}

impl PlannedEntry {
    /// Number of operators scheduled.
    pub fn len(&self) -> usize {
        self.op_end - self.op_start
    }

    /// True when no operators are scheduled.
    pub fn is_empty(&self) -> bool {
        self.op_end == self.op_start
    }
}

/// The controller's decision for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedGroup {
    /// Entries, one per participating query.
    pub entries: Vec<PlannedEntry>,
    /// Predicted group duration (ms) from the latency model.
    pub predicted_ms: f64,
    /// How many batched prediction rounds the search used (for overhead
    /// accounting, Fig. 23).
    pub prediction_rounds: usize,
    /// Calibrated upper bound (ms) the round was certified against, when
    /// the controller ran in conformal-certification mode; `None` for
    /// mean + safety-margin rounds. Kept as an `Option` (not a NaN
    /// sentinel) so derived `PartialEq` stays total — the golden
    /// decision-stream tests compare whole decisions.
    pub upper_ms: Option<f64>,
}

impl PlannedGroup {
    /// Build the predictor's [`GroupSpec`] for this plan.
    ///
    /// `resolve` maps a query id to its [`Query`] (the queue lookup).
    pub fn to_spec<'a>(
        &self,
        resolve: impl Fn(u64) -> &'a Query,
        lib: &ModelLibrary,
    ) -> GroupSpec {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let q = resolve(e.query_id);
                GroupEntry {
                    model: q.model,
                    op_start: e.op_start,
                    op_end: e.op_end,
                    input: q.input,
                }
            })
            .collect();
        GroupSpec::new(entries, lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::{ModelId, ModelLibrary, QueryInput};

    #[test]
    fn to_spec_resolves_queries() {
        let lib = ModelLibrary::new();
        let q1 = Query::new(10, ModelId::ResNet50, QueryInput::new(8, 1), 0.0, 50.0, 125);
        let q2 = Query::new(11, ModelId::Bert, QueryInput::new(4, 16), 0.0, 30.0, 173);
        let plan = PlannedGroup {
            entries: vec![
                PlannedEntry { query_id: 10, op_start: 0, op_end: 125 },
                PlannedEntry { query_id: 11, op_start: 5, op_end: 60 },
            ],
            predicted_ms: 12.0,
            prediction_rounds: 2,
            upper_ms: None,
        };
        let spec = plan.to_spec(|id| if id == 10 { &q1 } else { &q2 }, &lib);
        assert_eq!(spec.entries.len(), 2);
        assert_eq!(spec.entries[1].op_start, 5);
        assert_eq!(spec.entries[0].model, ModelId::ResNet50);
    }

    #[test]
    fn entry_len() {
        let e = PlannedEntry { query_id: 0, op_start: 3, op_end: 9 };
        assert_eq!(e.len(), 6);
        assert!(!e.is_empty());
    }
}
