//! Workload primitives for the Abacus reproduction.
//!
//! This crate provides the *statistical* side of the evaluation:
//! deterministic seeded RNG plumbing, the distribution samplers the paper
//! relies on (Poisson arrivals via exponential inter-arrival times,
//! lognormal noise for the GPU simulator), open-loop arrival processes, and
//! the synthetic Microsoft-Azure-Functions-like rate trace used by the
//! cluster experiment (Fig. 22).
//!
//! Everything is seeded explicitly: given the same seed, every experiment in
//! the repository is bit-reproducible.

pub mod arrivals;
pub mod dist;
pub mod rng;
pub mod trace;

pub use arrivals::{merge_arrivals, Arrival, PoissonProcess};
pub use dist::{Exponential, LogNormal, Normal, UniformChoice};
pub use rng::{fork_seed, SeededRng};
pub use trace::{synthesize_maf_like, RateTrace};
