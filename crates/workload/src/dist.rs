//! Distribution samplers used across the evaluation.
//!
//! The paper's load generator draws query arrivals from a Poisson process
//! (exponential inter-arrival times), picks batch sizes / sequence lengths
//! uniformly from Table 1, and the GPU simulator applies lognormal
//! multiplicative noise to reproduce the latency determinism statistics of
//! §5.2. These samplers are implemented here rather than pulling in
//! `rand_distr` (see DESIGN.md §5).

use crate::rng::SeededRng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson-process inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create a sampler with the given rate (events per unit time).
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "rate must be positive");
        Self { lambda }
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw one sample via inverse transform.
    #[inline]
    pub fn sample(&self, rng: &mut SeededRng) -> f64 {
        // 1 - U in (0, 1] avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.lambda
    }
}

/// Normal distribution `N(mean, std^2)` via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a sampler. `std` must be non-negative and finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "std must be non-negative");
        Self { mean, std }
    }

    /// Draw one sample.
    #[inline]
    pub fn sample(&self, rng: &mut SeededRng) -> f64 {
        self.mean + self.std * rng.normal()
    }
}

/// Lognormal distribution: `exp(N(mu, sigma^2))`.
///
/// The GPU simulator uses `LogNormal::noise(sigma)` — a unit-median
/// multiplicative jitter — to model run-to-run latency variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Unit-median multiplicative noise with the given log-scale `sigma`.
    pub fn noise(sigma: f64) -> Self {
        Self::new(0.0, sigma)
    }

    /// Draw one sample.
    #[inline]
    pub fn sample(&self, rng: &mut SeededRng) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
}

/// Uniform choice over a fixed, non-empty set of values.
///
/// Models Table 1's input randomisation: batch size ∈ {4, 8, 16, 32} and
/// BERT sequence length ∈ {8, 16, 32, 64}.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformChoice<T: Copy> {
    values: Vec<T>,
}

impl<T: Copy> UniformChoice<T> {
    /// Create a chooser over `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn new(values: impl Into<Vec<T>>) -> Self {
        let values = values.into();
        assert!(!values.is_empty(), "choice set must be non-empty");
        Self { values }
    }

    /// The underlying choice set.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Draw one value uniformly.
    #[inline]
    pub fn sample(&self, rng: &mut SeededRng) -> T {
        *rng.choose(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SeededRng::new(1);
        let d = Exponential::new(4.0);
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let mean = mean_of(&samples);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SeededRng::new(2);
        let d = Normal::new(10.0, 2.0);
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let mean = mean_of(&samples);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_noise_has_unit_median() {
        let mut rng = SeededRng::new(3);
        let d = LogNormal::noise(0.04);
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
        // 4% log-sigma means nearly all mass within ±20%.
        assert!(samples.iter().all(|&x| x > 0.8 && x < 1.25));
    }

    #[test]
    fn uniform_choice_hits_every_value() {
        let mut rng = SeededRng::new(4);
        let c = UniformChoice::new(vec![4u32, 8, 16, 32]);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let v = c.sample(&mut rng);
            let idx = c.values().iter().position(|&x| x == v).unwrap();
            counts[idx] += 1;
        }
        for &n in &counts {
            assert!(n > 800, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_choice_panics() {
        let _ = UniformChoice::<u32>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Exponential::new(0.0);
    }
}
