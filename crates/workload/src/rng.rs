//! Seeded RNG plumbing.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed.
//! [`SeededRng`] wraps `rand::rngs::StdRng` so downstream crates never reach
//! for entropy-based constructors, and [`fork_seed`] derives independent
//! child seeds from a parent seed plus a label, which keeps parallel
//! experiment legs statistically independent while staying reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator with convenience samplers.
///
/// Wraps [`StdRng`] seeded from a `u64`. All simulation randomness in the
/// workspace flows through this type.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a slice. Panics on empty input.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Derive an independent child seed from `(parent, label)`.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix: child
/// streams for distinct labels never collide for a fixed parent.
pub fn fork_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(label)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_seed_distinct_labels() {
        let s = 7;
        let children: Vec<u64> = (0..64).map(|l| fork_seed(s, l)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), children.len());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let x = r.range_f64(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn index_covers_all_buckets() {
        let mut r = SeededRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
