//! Time-varying rate traces.
//!
//! Fig. 22 of the paper replays two hours of the Microsoft Azure Functions
//! (MAF) production trace against a 16-GPU cluster. The production trace is
//! not redistributable, so [`synthesize_maf_like`] builds a trace with the
//! same qualitative features reported for MAF workloads (diurnal ramp,
//! sustained plateau, short bursts, heavy minute-to-minute jitter); see
//! DESIGN.md §1 for the substitution rationale. [`RateTrace`] turns any
//! per-minute rate series into a concrete arrival stream via a piecewise
//! homogeneous Poisson process.

use crate::arrivals::Arrival;
use crate::dist::Exponential;
use crate::rng::SeededRng;

/// A bucketed offered-load trace (queries per second, one entry per
/// bucket). [`RateTrace::new`] builds the paper's per-minute form;
/// [`RateTrace::with_bucket_ms`] supports sub-minute buckets for burst
/// replays (e.g. the cluster ingress bench's ~1s 100x-volume spike).
#[derive(Debug, Clone, PartialEq)]
pub struct RateTrace {
    qps_per_bucket: Vec<f64>,
    bucket_ms: f64,
}

impl RateTrace {
    /// Build a trace from explicit per-minute QPS values.
    ///
    /// # Panics
    /// Panics if any rate is negative or non-finite.
    pub fn new(qps_per_minute: Vec<f64>) -> Self {
        Self::with_bucket_ms(qps_per_minute, 60_000.0)
    }

    /// Build a trace with an explicit bucket duration in milliseconds.
    ///
    /// # Panics
    /// Panics if any rate is negative/non-finite or the bucket is not a
    /// positive finite duration.
    pub fn with_bucket_ms(qps_per_bucket: Vec<f64>, bucket_ms: f64) -> Self {
        assert!(
            qps_per_bucket.iter().all(|&q| q >= 0.0 && q.is_finite()),
            "rates must be non-negative"
        );
        assert!(
            bucket_ms.is_finite() && bucket_ms > 0.0,
            "bucket must be a positive duration"
        );
        Self {
            qps_per_bucket,
            bucket_ms,
        }
    }

    /// Bucket duration in milliseconds (60 000 for [`RateTrace::new`]).
    pub fn bucket_ms(&self) -> f64 {
        self.bucket_ms
    }

    /// Number of rate buckets.
    pub fn buckets(&self) -> usize {
        self.qps_per_bucket.len()
    }

    /// Offered load at absolute time `t_ms`, clamped to the final bucket
    /// past the horizon (zero for an empty trace).
    pub fn qps_at_ms(&self, t_ms: f64) -> f64 {
        if self.qps_per_bucket.is_empty() {
            return 0.0;
        }
        let b = ((t_ms.max(0.0) / self.bucket_ms) as usize).min(self.qps_per_bucket.len() - 1);
        self.qps_per_bucket[b]
    }

    /// Number of buckets covered (minutes for [`RateTrace::new`] traces).
    pub fn minutes(&self) -> usize {
        self.qps_per_bucket.len()
    }

    /// Total duration in milliseconds.
    pub fn horizon_ms(&self) -> f64 {
        self.buckets() as f64 * self.bucket_ms
    }

    /// Offered load during bucket `m` (QPS; minute `m` for per-minute
    /// traces).
    pub fn qps_at_minute(&self, m: usize) -> f64 {
        self.qps_per_bucket[m]
    }

    /// Per-bucket rates as a slice.
    pub fn rates(&self) -> &[f64] {
        &self.qps_per_bucket
    }

    /// Scale every rate by `factor` (e.g. to split a cluster trace across
    /// nodes or calibrate to simulated capacity).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        Self {
            qps_per_bucket: self.qps_per_bucket.iter().map(|q| q * factor).collect(),
            bucket_ms: self.bucket_ms,
        }
    }

    /// Realise the trace as arrivals for service `service`: a piecewise
    /// homogeneous Poisson process, rate held constant within each minute.
    pub fn generate(&self, service: usize, rng: &mut SeededRng) -> Vec<Arrival> {
        let mut out = Vec::new();
        for (m, &qps) in self.qps_per_bucket.iter().enumerate() {
            if qps <= 0.0 {
                continue;
            }
            let start = m as f64 * self.bucket_ms;
            let end = start + self.bucket_ms;
            let inter = Exponential::new(qps / 1000.0);
            let mut t = start;
            loop {
                t += inter.sample(rng);
                if t >= end {
                    break;
                }
                out.push(Arrival { service, at_ms: t });
            }
        }
        out
    }
}

/// Synthesize a MAF-like per-minute trace.
///
/// Shape: a baseline load that ramps up over the first quarter of the trace
/// (diurnal rise), holds a plateau with slow sinusoidal drift, and overlays
/// (a) per-minute lognormal-ish jitter and (b) occasional multi-minute
/// bursts, mirroring the burstiness of serverless invocation traces.
///
/// * `minutes` — trace length (the paper replays 120 minutes)
/// * `peak_qps` — plateau offered load
/// * `seed` — RNG seed
pub fn synthesize_maf_like(minutes: usize, peak_qps: f64, seed: u64) -> RateTrace {
    assert!(peak_qps > 0.0);
    let mut rng = SeededRng::new(seed);
    let ramp = (minutes / 4).max(1);
    let mut rates = Vec::with_capacity(minutes);
    let mut burst_left = 0usize;
    let mut burst_gain = 1.0;
    for m in 0..minutes {
        // Diurnal ramp to the plateau, then gentle drift.
        let base = if m < ramp {
            0.55 + 0.45 * (m as f64 / ramp as f64)
        } else {
            1.0 + 0.06 * ((m as f64 / 17.0).sin())
        };
        // Bursts: ~5% chance per minute to start a 2–5 minute burst of
        // 15–35% extra load.
        if burst_left == 0 && rng.bool(0.05) {
            burst_left = 2 + rng.index(4);
            burst_gain = 1.15 + 0.20 * rng.f64();
        }
        let burst = if burst_left > 0 {
            burst_left -= 1;
            burst_gain
        } else {
            1.0
        };
        // Minute-to-minute jitter of roughly ±6%.
        let jitter = 1.0 + 0.06 * rng.normal();
        rates.push((peak_qps * base * burst * jitter).max(0.0));
    }
    RateTrace::new(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maf_trace_shape() {
        let t = synthesize_maf_like(120, 100.0, 7);
        assert_eq!(t.minutes(), 120);
        // Ramp: early load clearly below plateau.
        let early: f64 = t.rates()[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = t.rates()[60..120].iter().sum::<f64>() / 60.0;
        assert!(early < 0.85 * late, "early {early} late {late}");
        // Plateau sits near peak_qps.
        assert!((late - 100.0).abs() < 15.0, "late {late}");
    }

    #[test]
    fn trace_generation_matches_rates() {
        let t = RateTrace::new(vec![10.0, 100.0]);
        let mut rng = SeededRng::new(8);
        // Average over repeats to dampen Poisson noise.
        let mut counts = [0usize; 2];
        for rep in 0..20 {
            let mut r = SeededRng::new(8 + rep);
            for a in t.generate(0, &mut r) {
                let minute = (a.at_ms / 60_000.0) as usize;
                counts[minute] += 1;
            }
        }
        let per_min0 = counts[0] as f64 / 20.0;
        let per_min1 = counts[1] as f64 / 20.0;
        assert!((per_min0 - 600.0).abs() < 80.0, "min0 {per_min0}");
        assert!((per_min1 - 6000.0).abs() < 300.0, "min1 {per_min1}");
        let _ = rng.f64();
    }

    #[test]
    fn zero_rate_minute_generates_nothing() {
        let t = RateTrace::new(vec![0.0, 0.0]);
        let mut rng = SeededRng::new(9);
        assert!(t.generate(0, &mut rng).is_empty());
    }

    #[test]
    fn scaled_trace() {
        let t = RateTrace::new(vec![10.0, 20.0]).scaled(0.5);
        assert_eq!(t.rates(), &[5.0, 10.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = synthesize_maf_like(60, 50.0, 1);
        let b = synthesize_maf_like(60, 50.0, 1);
        assert_eq!(a, b);
    }
}
