//! Open-loop arrival processes.
//!
//! The paper submits queries at a fixed offered load (50 QPS for the QoS
//! experiments, 100 QPS for peak throughput) with Poisson inter-arrival
//! times. [`PoissonProcess`] generates those timestamps; [`merge_arrivals`]
//! interleaves the per-service streams into the single time-ordered stream a
//! serving node consumes.

use crate::dist::Exponential;
use crate::rng::SeededRng;

/// One query arrival: which service it belongs to and when it arrives (ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Index of the service (position in the co-location set).
    pub service: usize,
    /// Arrival timestamp in milliseconds since experiment start.
    pub at_ms: f64,
}

/// Homogeneous Poisson arrival process for a single service.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    inter: Exponential,
    service: usize,
}

impl PoissonProcess {
    /// Create a process producing `qps` arrivals per second on average for
    /// service index `service`.
    pub fn new(service: usize, qps: f64) -> Self {
        assert!(qps > 0.0, "offered load must be positive");
        // Internal clock is milliseconds, so the rate is per-ms.
        Self {
            inter: Exponential::new(qps / 1000.0),
            service,
        }
    }

    /// Generate all arrivals in `[0, horizon_ms)`.
    pub fn generate(&self, horizon_ms: f64, rng: &mut SeededRng) -> Vec<Arrival> {
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += self.inter.sample(rng);
            if t >= horizon_ms {
                break;
            }
            out.push(Arrival {
                service: self.service,
                at_ms: t,
            });
        }
        out
    }
}

/// Merge several per-service arrival streams into one stream sorted by time.
///
/// Ties (which are measure-zero for continuous arrivals, but can be produced
/// by synthetic traces) are broken by service index so the result is fully
/// deterministic.
pub fn merge_arrivals(streams: Vec<Vec<Arrival>>) -> Vec<Arrival> {
    let mut merged: Vec<Arrival> = streams.into_iter().flatten().collect();
    merged.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms).then(a.service.cmp(&b.service)));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = SeededRng::new(10);
        let p = PoissonProcess::new(0, 50.0);
        let horizon = 60_000.0; // 60 s
        let arrivals = p.generate(horizon, &mut rng);
        let rate = arrivals.len() as f64 / 60.0;
        assert!((rate - 50.0).abs() < 3.0, "rate {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut rng = SeededRng::new(11);
        let p = PoissonProcess::new(2, 20.0);
        let arrivals = p.generate(5_000.0, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        assert!(arrivals.iter().all(|a| a.at_ms < 5_000.0 && a.at_ms > 0.0));
        assert!(arrivals.iter().all(|a| a.service == 2));
    }

    #[test]
    fn merge_is_globally_sorted() {
        let mut rng = SeededRng::new(12);
        let streams: Vec<Vec<Arrival>> = (0..4)
            .map(|s| PoissonProcess::new(s, 25.0).generate(10_000.0, &mut rng))
            .collect();
        let total: usize = streams.iter().map(Vec::len).sum();
        let merged = merge_arrivals(streams);
        assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
    }

    #[test]
    fn empty_merge_is_empty() {
        assert!(merge_arrivals(vec![]).is_empty());
        assert!(merge_arrivals(vec![vec![], vec![]]).is_empty());
    }
}
