//! Single-GPU serving simulation.
//!
//! An open-loop discrete-event loop: queries arrive on a merged Poisson
//! stream, wait in the node's queue, and are executed in operator groups
//! proposed by a [`Scheduler`] (Abacus or a sequential baseline) on the
//! [`SegmentalExecutor`]. The executor runs one group at a time — the
//! exclusivity that makes Abacus's operator overlap deterministic — and
//! queries that complete in a group all return at the group's final sync.
//!
//! Output is one [`QueryRecord`] per query, from which every §7.2–7.5
//! figure is computed.

use abacus_core::{Query, Scheduler, SegmentalExecutor};
use abacus_metrics::{QueryOutcome, QueryRecord};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use workload::Arrival;

/// A deployed service: the model plus its QoS target on this node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// The model this service runs.
    pub model: ModelId,
    /// Latency budget per query, ms.
    pub qos_ms: f64,
}

/// The workload handed to one node: arrivals (service index ↦
/// `services[i]`) with per-query inputs drawn in advance.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWorkload {
    /// Time-sorted arrivals.
    pub arrivals: Vec<Arrival>,
    /// Inputs, parallel to `arrivals`.
    pub inputs: Vec<QueryInput>,
}

impl NodeWorkload {
    /// Validate lengths and ordering.
    pub fn new(arrivals: Vec<Arrival>, inputs: Vec<QueryInput>) -> Self {
        assert_eq!(arrivals.len(), inputs.len());
        debug_assert!(arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        Self { arrivals, inputs }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the workload carries no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Run one node to completion: all arrivals admitted, the queue drained.
///
/// Returns one record per query, in completion/drop order.
pub fn simulate_node(
    scheduler: &mut dyn Scheduler,
    executor: &mut SegmentalExecutor,
    lib: &ModelLibrary,
    services: &[ServiceSpec],
    workload: &NodeWorkload,
) -> Vec<QueryRecord> {
    let mut records = Vec::with_capacity(workload.len());
    let mut queue: Vec<Query> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    let admit = |queue: &mut Vec<Query>, next_arrival: &mut usize, now: f64| {
        while *next_arrival < workload.len() && workload.arrivals[*next_arrival].at_ms <= now {
            let a = workload.arrivals[*next_arrival];
            let input = workload.inputs[*next_arrival];
            let svc = services[a.service];
            let n_ops = lib.graph(svc.model, input).len();
            queue.push(Query::new(
                *next_arrival as u64,
                svc.model,
                input,
                a.at_ms,
                svc.qos_ms,
                n_ops,
            ));
            *next_arrival += 1;
        }
    };

    loop {
        admit(&mut queue, &mut next_arrival, now);
        if queue.is_empty() {
            match workload.arrivals.get(next_arrival) {
                Some(a) => {
                    now = a.at_ms;
                    continue;
                }
                None => break,
            }
        }

        let decision = scheduler.decide(now, &queue);
        for id in &decision.dropped {
            let pos = queue
                .iter()
                .position(|q| q.id == *id)
                .expect("scheduler dropped an unknown query");
            let q = queue.swap_remove(pos);
            records.push(QueryRecord {
                service: service_index(services, q.model),
                arrival_ms: q.arrival_ms,
                latency_ms: now - q.arrival_ms,
                qos_ms: q.qos_ms,
                outcome: QueryOutcome::Dropped,
                requests: q.input.batch,
                queue_ms: q.queue_ms().unwrap_or(now - q.arrival_ms),
            });
        }
        let Some(group) = decision.group else {
            // Everything present was dropped; take the next arrival.
            continue;
        };
        now += decision.overhead_ms;
        for e in &group.entries {
            let pos = queue.iter().position(|q| q.id == e.query_id).unwrap();
            queue[pos].mark_started(now);
        }
        let spec = group.to_spec(
            |id| {
                queue
                    .iter()
                    .find(|q| q.id == id)
                    .expect("group references an unknown query")
            },
            lib,
        );
        let out = executor.execute(&spec);
        now += out.duration_ms;
        scheduler.on_group_complete(out.duration_ms);
        for e in &group.entries {
            let pos = queue.iter().position(|q| q.id == e.query_id).unwrap();
            queue[pos].advance_to(e.op_end);
            if queue[pos].is_complete() {
                let q = queue.swap_remove(pos);
                records.push(QueryRecord {
                    service: service_index(services, q.model),
                    arrival_ms: q.arrival_ms,
                    latency_ms: now - q.arrival_ms,
                    qos_ms: q.qos_ms,
                    outcome: QueryOutcome::Completed,
                    requests: q.input.batch,
                    queue_ms: q.queue_ms().unwrap_or(0.0),
                });
            }
        }
    }
    records
}

fn service_index(services: &[ServiceSpec], model: ModelId) -> usize {
    services
        .iter()
        .position(|s| s.model == model)
        .expect("model not deployed on this node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_core::{
        AbacusConfig, AbacusScheduler, BaselinePolicy, BaselineScheduler, SegmentalExecutor,
    };
    use gpu_sim::{GpuSpec, NoiseModel};
    use predictor::LatencyModel;
    use std::sync::Arc;
    use workload::{merge_arrivals, PoissonProcess, SeededRng};

    fn lib() -> Arc<ModelLibrary> {
        Arc::new(ModelLibrary::new())
    }

    fn mk_workload(
        services: &[ServiceSpec],
        qps: f64,
        horizon: f64,
        lib: &ModelLibrary,
        seed: u64,
    ) -> NodeWorkload {
        let mut rng = SeededRng::new(seed);
        let streams: Vec<_> = (0..services.len())
            .map(|s| PoissonProcess::new(s, qps).generate(horizon, &mut rng))
            .collect();
        let arrivals = merge_arrivals(streams);
        let inputs = arrivals
            .iter()
            .map(|a| lib.random_input(services[a.service].model, &mut rng))
            .collect();
        NodeWorkload::new(arrivals, inputs)
    }

    fn services(models: &[ModelId], lib: &ModelLibrary, gpu: &GpuSpec) -> Vec<ServiceSpec> {
        models
            .iter()
            .map(|&m| ServiceSpec {
                model: m,
                qos_ms: lib.qos_target_ms(m, gpu),
            })
            .collect()
    }

    #[test]
    fn fcfs_under_light_load_meets_qos() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50, ModelId::ResNet101], &lib, &gpu);
        let wl = mk_workload(&svcs, 5.0, 5_000.0, &lib, 1);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Fcfs, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 2);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let met = records.iter().filter(|r| r.met_qos()).count();
        assert!(met * 10 >= records.len() * 9, "{met}/{}", records.len());
    }

    #[test]
    fn every_query_is_accounted_exactly_once() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::Vgg16, ModelId::Vgg19], &lib, &gpu);
        let wl = mk_workload(&svcs, 40.0, 3_000.0, &lib, 2);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Edf, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::calibrated(), lib.clone(), 3);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
    }

    /// A cheap stand-in predictor: sequential sum of solo latencies
    /// (pessimistic, so QoS always holds; exercises the full Abacus path).
    struct SeqModel {
        lib: Arc<ModelLibrary>,
        gpu: GpuSpec,
    }
    impl LatencyModel for SeqModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            // Decode spans from the Fig. 8 layout; weight by each model's
            // max-input solo latency as a crude per-op cost.
            let mut total = 0.0;
            let mut slot = 0;
            for (idx, m) in ModelId::ALL.into_iter().enumerate() {
                if x[idx] > 0.5 {
                    let base = predictor::MODEL_SLOT_BASE + slot * 4;
                    let span = x[base + 1] - x[base];
                    let solo = self.lib.solo_ms(m, m.max_input(), &self.gpu);
                    total += span * solo;
                    slot += 1;
                }
            }
            total
        }
        fn name(&self) -> &'static str {
            "seq"
        }
    }

    #[test]
    fn abacus_node_runs_and_meets_qos_under_light_load() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50, ModelId::Bert], &lib, &gpu);
        let wl = mk_workload(&svcs, 10.0, 5_000.0, &lib, 4);
        let model = Arc::new(SeqModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        let mut sched = AbacusScheduler::new(model, lib.clone(), AbacusConfig::default());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::calibrated(), lib.clone(), 5);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let violations = records.iter().filter(|r| !r.met_qos()).count();
        assert!(
            violations * 20 <= records.len(),
            "{violations}/{}",
            records.len()
        );
    }

    #[test]
    fn overload_drops_rather_than_stalls() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        // Absurd load on a heavy pair: the drop mechanism must keep the
        // queue draining and every query accounted.
        let svcs = services(&[ModelId::Vgg16, ModelId::Vgg19], &lib, &gpu);
        let wl = mk_workload(&svcs, 120.0, 2_000.0, &lib, 6);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Fcfs, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 7);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let dropped = records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Dropped)
            .count();
        assert!(dropped > 0);
    }

    #[test]
    fn empty_workload_is_fine() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50], &lib, &gpu);
        let wl = NodeWorkload::new(vec![], vec![]);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Sjf, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 8);
        assert!(simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl).is_empty());
    }
}
