//! Single-GPU serving simulation.
//!
//! An open-loop discrete-event loop: queries arrive on a merged Poisson
//! stream, wait in the node's queue, and are executed in operator groups
//! proposed by a [`Scheduler`] (Abacus or a sequential baseline) on the
//! [`SegmentalExecutor`]. The executor runs one group at a time — the
//! exclusivity that makes Abacus's operator overlap deterministic — and
//! queries that complete in a group all return at the group's final sync.
//!
//! Output is one [`QueryRecord`] per query, from which every §7.2–7.5
//! figure is computed.

use crate::invariants::InvariantChecker;
use abacus_core::{Query, RoundDecision, Scheduler, SegmentalExecutor};
use abacus_metrics::{QueryOutcome, QueryRecord};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use telemetry::{Counter, Hist, LedgerEntry, RoundEntry, Telemetry};
use workload::Arrival;

/// A deployed service: the model plus its QoS target on this node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// The model this service runs.
    pub model: ModelId,
    /// Latency budget per query, ms.
    pub qos_ms: f64,
}

/// The workload handed to one node: arrivals (service index ↦
/// `services[i]`) with per-query inputs drawn in advance.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWorkload {
    /// Time-sorted arrivals.
    pub arrivals: Vec<Arrival>,
    /// Inputs, parallel to `arrivals`.
    pub inputs: Vec<QueryInput>,
}

impl NodeWorkload {
    /// Validate lengths and ordering.
    pub fn new(arrivals: Vec<Arrival>, inputs: Vec<QueryInput>) -> Self {
        assert_eq!(arrivals.len(), inputs.len());
        debug_assert!(arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        Self { arrivals, inputs }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the workload carries no queries.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Defensive-runtime knobs for the serving loop (all off by default —
/// [`simulate_node`] with defaults is byte-identical to the undefended
/// loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeOptions {
    /// Evict queries whose sojourn exceeds `factor × qos_ms` as
    /// [`QueryOutcome::TimedOut`]. A stuck query (e.g. starved by a fault
    /// storm) is then bounded instead of occupying the queue forever.
    pub timeout_factor: Option<f64>,
}

/// Run one node to completion: all arrivals admitted, the queue drained.
///
/// Returns one record per query, in completion/drop order.
pub fn simulate_node(
    scheduler: &mut dyn Scheduler,
    executor: &mut SegmentalExecutor,
    lib: &ModelLibrary,
    services: &[ServiceSpec],
    workload: &NodeWorkload,
) -> Vec<QueryRecord> {
    simulate_node_checked(
        scheduler,
        executor,
        lib,
        services,
        workload,
        NodeOptions::default(),
        None,
    )
}

/// [`simulate_node`] with defensive options and optional invariant
/// checking.
///
/// Differences from the plain loop (beyond `opts`): a scheduler that drops
/// an unknown query id is recorded as an invariant violation instead of a
/// panic, and a scheduler that makes no progress on a non-empty queue (no
/// drop, no group, no pending arrival to advance to) trips a livelock
/// guard that force-evicts the oldest query rather than spinning forever.
pub fn simulate_node_checked(
    scheduler: &mut dyn Scheduler,
    executor: &mut SegmentalExecutor,
    lib: &ModelLibrary,
    services: &[ServiceSpec],
    workload: &NodeWorkload,
    opts: NodeOptions,
    checker: Option<&mut InvariantChecker>,
) -> Vec<QueryRecord> {
    simulate_node_instrumented(scheduler, executor, lib, services, workload, opts, checker, None)
}

/// [`simulate_node_checked`] with opt-in telemetry.
///
/// With `telemetry: None` this is the exact loop the un-instrumented entry
/// points run — no telemetry branch mutates simulation state, so results
/// are byte-identical (the golden-checksum tests pin this). With
/// `Some(t)`, the run's query-lifecycle events, scheduler decision ledger
/// and counters are recorded into `t`; when `t` asks for kernel traces the
/// caller must also have called [`SegmentalExecutor::enable_kernel_trace`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_node_instrumented(
    scheduler: &mut dyn Scheduler,
    executor: &mut SegmentalExecutor,
    lib: &ModelLibrary,
    services: &[ServiceSpec],
    workload: &NodeWorkload,
    opts: NodeOptions,
    mut checker: Option<&mut InvariantChecker>,
    mut telemetry: Option<&mut Telemetry>,
) -> Vec<QueryRecord> {
    let mut records = Vec::with_capacity(workload.len());
    let mut queue: Vec<Query> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    let admit = |queue: &mut Vec<Query>, next_arrival: &mut usize, now: f64| {
        while *next_arrival < workload.len() && workload.arrivals[*next_arrival].at_ms <= now {
            let a = workload.arrivals[*next_arrival];
            let input = workload.inputs[*next_arrival];
            let svc = services[a.service];
            let n_ops = lib.graph(svc.model, input).len();
            queue.push(Query::new(
                *next_arrival as u64,
                svc.model,
                input,
                a.at_ms,
                svc.qos_ms,
                n_ops,
            ));
            *next_arrival += 1;
        }
    };

    // Retire `queue[pos]` with `outcome` at `now`. Notifies the scheduler
    // first so its incremental order index stays in sync with the queue.
    #[allow(clippy::too_many_arguments)]
    fn retire(
        queue: &mut Vec<Query>,
        pos: usize,
        outcome: QueryOutcome,
        now: f64,
        services: &[ServiceSpec],
        scheduler: &mut dyn Scheduler,
        records: &mut Vec<QueryRecord>,
        checker: &mut Option<&mut InvariantChecker>,
        telemetry: &mut Option<&mut Telemetry>,
    ) {
        scheduler.on_retire(&queue[pos]);
        let q = queue.swap_remove(pos);
        if let Some(c) = checker.as_deref_mut() {
            c.on_terminal(q.id, outcome, now);
        }
        let service = service_index(services, q.model);
        let queue_ms = q.queue_ms().unwrap_or(if outcome == QueryOutcome::Completed {
            0.0
        } else {
            now - q.arrival_ms
        });
        if let Some(t) = telemetry.as_deref_mut() {
            t.on_retire(q.id, now, service, outcome, now - q.arrival_ms, queue_ms);
        }
        records.push(QueryRecord {
            service,
            arrival_ms: q.arrival_ms,
            latency_ms: now - q.arrival_ms,
            qos_ms: q.qos_ms,
            outcome,
            requests: q.input.batch,
            queue_ms,
        });
    }

    let mut round: u64 = 0;
    // Round-persistent buffers: the decision is written in place each round
    // (the scheduler recycles the planned-entry vector through it), and the
    // timeout / ledger scratch vectors are reused across rounds.
    let mut decision = RoundDecision::idle();
    let mut expired_ids: Vec<u64> = Vec::new();
    let mut entry_pos: Vec<usize> = Vec::new();
    loop {
        let first_new = next_arrival;
        admit(&mut queue, &mut next_arrival, now);
        for q in &queue[queue.len() - (next_arrival - first_new)..] {
            scheduler.on_admit(q);
        }
        if let Some(c) = checker.as_deref_mut() {
            for i in first_new..next_arrival {
                c.on_issue(i as u64, workload.arrivals[i].at_ms);
            }
        }
        if let Some(t) = telemetry.as_deref_mut() {
            for i in first_new..next_arrival {
                let a = workload.arrivals[i];
                let svc = services[a.service];
                t.on_arrive(i as u64, a.at_ms, a.service, svc.model, svc.qos_ms);
            }
        }
        // Defensive per-query timeout: bound the sojourn of queries the
        // scheduler can neither serve nor bring itself to drop.
        if let Some(factor) = opts.timeout_factor {
            // One pass collects every expired query; retiring in ascending
            // id order reproduces exactly what the former per-expiry
            // `filter().min_by_key()` rescan emitted (the predicate is
            // per-query, so retiring one cannot un-expire another).
            expired_ids.clear();
            expired_ids.extend(
                queue
                    .iter()
                    .filter(|q| now - q.arrival_ms > factor * q.qos_ms)
                    .map(|q| q.id),
            );
            expired_ids.sort_unstable();
            for &id in &expired_ids {
                let pos = queue
                    .iter()
                    .position(|q| q.id == id)
                    .expect("expired query vanished from queue");
                retire(
                    &mut queue,
                    pos,
                    QueryOutcome::TimedOut,
                    now,
                    services,
                    scheduler,
                    &mut records,
                    &mut checker,
                    &mut telemetry,
                );
            }
        }
        if queue.is_empty() {
            match workload.arrivals.get(next_arrival) {
                Some(a) => {
                    now = a.at_ms;
                    continue;
                }
                None => break,
            }
        }

        scheduler.decide_into(now, &queue, &mut decision);
        round += 1;
        if let Some(t) = telemetry.as_deref_mut() {
            t.registry.inc(Counter::SchedRounds);
            let stats = scheduler.decision_stats();
            t.registry
                .set(Counter::DecisionOrderPeak, stats.order_peak_len as u64);
            t.registry
                .set(Counter::DecisionScratchPeak, stats.scratch_peak as u64);
            t.registry
                .set(Counter::DecisionIncrementalRounds, stats.incremental_rounds);
            t.registry
                .set(Counter::DecisionFullRebuilds, stats.full_rebuilds);
            // Ledger rows only for rounds that made progress — idle probes
            // of an unservable queue would otherwise dominate the ledger.
            if decision.group.is_some() || !decision.dropped.is_empty() {
                let upper_ms = decision
                    .group
                    .as_ref()
                    .and_then(|g| g.upper_ms)
                    .unwrap_or(f64::NAN);
                let (entries, predicted_ms, prediction_rounds, headroom) = match &decision.group {
                    Some(g) => {
                        // Resolve each entry's queue position once; the row
                        // build and the critical-headroom fold below share
                        // the resolved positions instead of re-running a
                        // `find` over the queue per entry per use.
                        entry_pos.clear();
                        entry_pos.extend(g.entries.iter().map(|e| {
                            queue
                                .iter()
                                .position(|q| q.id == e.query_id)
                                .expect("planned entry references an unknown query")
                        }));
                        let entries: Vec<LedgerEntry> = g
                            .entries
                            .iter()
                            .zip(&entry_pos)
                            .map(|(e, &pos)| LedgerEntry {
                                query: e.query_id,
                                model: queue[pos].model,
                                op_start: e.op_start,
                                op_end: e.op_end,
                            })
                            .collect();
                        let headroom = entry_pos
                            .iter()
                            .map(|&pos| queue[pos].headroom_ms(now) - decision.overhead_ms)
                            .min_by(f64::total_cmp)
                            .unwrap_or(f64::NAN);
                        let predicted = if g.predicted_ms > 0.0 {
                            g.predicted_ms
                        } else {
                            f64::NAN
                        };
                        (entries, predicted, g.prediction_rounds, headroom)
                    }
                    None => (Vec::new(), f64::NAN, 0, f64::NAN),
                };
                t.ledger.push(RoundEntry {
                    round,
                    at_ms: now,
                    queue_len: queue.len(),
                    dropped: decision.dropped.len(),
                    overhead_ms: decision.overhead_ms,
                    prediction_rounds,
                    entries,
                    predicted_ms,
                    upper_ms,
                    critical_headroom_ms: headroom,
                    exec_start_ms: f64::NAN,
                    actual_ms: f64::NAN,
                    actual_exec_ms: f64::NAN,
                });
            }
        }
        let retired_any = !decision.dropped.is_empty();
        for id in &decision.dropped {
            match queue.iter().position(|q| q.id == *id) {
                Some(pos) => retire(
                    &mut queue,
                    pos,
                    QueryOutcome::Dropped,
                    now,
                    services,
                    scheduler,
                    &mut records,
                    &mut checker,
                    &mut telemetry,
                ),
                None => {
                    debug_assert!(false, "scheduler dropped unknown query {id}");
                    if let Some(c) = checker.as_deref_mut() {
                        c.on_unknown_drop(*id, now);
                    }
                }
            }
        }
        let Some(group) = decision.group.as_ref() else {
            if retired_any || queue.is_empty() {
                // Progress was made (or everything present was retired);
                // take the next arrival.
                continue;
            }
            if let Some(a) = workload.arrivals.get(next_arrival) {
                if a.at_ms > now {
                    // Idle until new work arrives.
                    now = a.at_ms;
                    continue;
                }
            }
            // Livelock: non-empty queue, nothing scheduled, nothing
            // dropped, no future arrival to advance to. Force-evict the
            // oldest query so the loop terminates, and flag it.
            if let Some(c) = checker.as_deref_mut() {
                c.on_stall(now, queue.len());
            }
            let pos = queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.arrival_ms
                        .total_cmp(&b.arrival_ms)
                        .then(a.id.cmp(&b.id))
                })
                .map(|(pos, _)| pos)
                .expect("queue checked non-empty");
            retire(
                &mut queue,
                pos,
                QueryOutcome::TimedOut,
                now,
                services,
                scheduler,
                &mut records,
                &mut checker,
                &mut telemetry,
            );
            continue;
        };
        now += decision.overhead_ms;
        for e in &group.entries {
            let pos = queue.iter().position(|q| q.id == e.query_id).unwrap();
            queue[pos].mark_started(now);
        }
        let spec = group.to_spec(
            |id| {
                queue
                    .iter()
                    .find(|q| q.id == id)
                    .expect("group references an unknown query")
            },
            lib,
        );
        let exec_start = now;
        if let Some(t) = telemetry.as_deref_mut() {
            for e in &group.entries {
                t.on_dispatch(e.query_id, exec_start, round, e.op_start, e.op_end);
            }
        }
        let out = executor.execute(&spec);
        now += out.duration_ms;
        if let Some(c) = checker.as_deref_mut() {
            c.on_group(exec_start, out.duration_ms, &out.stream_ms);
        }
        if let Some(t) = telemetry.as_deref_mut() {
            // The predictor estimates kernel time (the longest stream), not
            // the host-side sync/save overheads — join both against the row.
            let kernel_ms = out.stream_ms.iter().fold(0.0f64, |a, &b| a.max(b));
            t.registry.inc(Counter::GroupsExecuted);
            t.registry.add(Counter::PredictionRounds, group.prediction_rounds as u64);
            t.registry.observe(Hist::SearchRounds, group.prediction_rounds as f64);
            t.registry.observe(Hist::GroupWays, group.entries.len() as f64);
            t.registry.observe(Hist::GroupDurationMs, out.duration_ms);
            t.registry.set(Counter::EngineEvents, executor.engine_events());
            t.registry.set(Counter::FaultSpikes, executor.fault_spikes());
            let core = executor.engine_core_stats();
            t.registry.set(Counter::EngineMaxActive, core.max_active as u64);
            t.registry.set(Counter::EnginePendingPeak, core.pending_peak as u64);
            t.registry
                .set(Counter::EngineCalendarPeakBucket, core.calendar_peak_bucket as u64);
            if let Some(w) = t.predictor_ways() {
                for _ in 0..group.prediction_rounds {
                    t.registry.observe(Hist::PredictorBatch, w as f64);
                }
            }
            if t.kernel_trace_enabled() {
                for s in executor.kernel_trace() {
                    t.on_kernel_span(round, exec_start, s);
                }
            }
            // Joins the ledger row and, with health monitors on, snapshots
            // the engine counters set above into the flight recorder.
            t.on_round_complete(round, exec_start, out.duration_ms, kernel_ms);
        }
        scheduler.on_group_complete(out.duration_ms);
        for e in &group.entries {
            let pos = queue.iter().position(|q| q.id == e.query_id).unwrap();
            queue[pos].advance_to(e.op_end);
            if queue[pos].is_complete() {
                retire(
                    &mut queue,
                    pos,
                    QueryOutcome::Completed,
                    now,
                    services,
                    scheduler,
                    &mut records,
                    &mut checker,
                    &mut telemetry,
                );
            }
        }
    }
    if let Some(c) = checker {
        c.finish();
    }
    records
}

fn service_index(services: &[ServiceSpec], model: ModelId) -> usize {
    services
        .iter()
        .position(|s| s.model == model)
        .expect("model not deployed on this node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_core::{
        AbacusConfig, AbacusScheduler, BaselinePolicy, BaselineScheduler, SegmentalExecutor,
    };
    use gpu_sim::{GpuSpec, NoiseModel};
    use predictor::LatencyModel;
    use std::sync::Arc;
    use workload::{merge_arrivals, PoissonProcess, SeededRng};

    fn lib() -> Arc<ModelLibrary> {
        Arc::new(ModelLibrary::new())
    }

    fn mk_workload(
        services: &[ServiceSpec],
        qps: f64,
        horizon: f64,
        lib: &ModelLibrary,
        seed: u64,
    ) -> NodeWorkload {
        let mut rng = SeededRng::new(seed);
        let streams: Vec<_> = (0..services.len())
            .map(|s| PoissonProcess::new(s, qps).generate(horizon, &mut rng))
            .collect();
        let arrivals = merge_arrivals(streams);
        let inputs = arrivals
            .iter()
            .map(|a| lib.random_input(services[a.service].model, &mut rng))
            .collect();
        NodeWorkload::new(arrivals, inputs)
    }

    fn services(models: &[ModelId], lib: &ModelLibrary, gpu: &GpuSpec) -> Vec<ServiceSpec> {
        models
            .iter()
            .map(|&m| ServiceSpec {
                model: m,
                qos_ms: lib.qos_target_ms(m, gpu),
            })
            .collect()
    }

    #[test]
    fn fcfs_under_light_load_meets_qos() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50, ModelId::ResNet101], &lib, &gpu);
        let wl = mk_workload(&svcs, 5.0, 5_000.0, &lib, 1);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Fcfs, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 2);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let met = records.iter().filter(|r| r.met_qos()).count();
        assert!(met * 10 >= records.len() * 9, "{met}/{}", records.len());
    }

    #[test]
    fn every_query_is_accounted_exactly_once() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::Vgg16, ModelId::Vgg19], &lib, &gpu);
        let wl = mk_workload(&svcs, 40.0, 3_000.0, &lib, 2);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Edf, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::calibrated(), lib.clone(), 3);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
    }

    /// A cheap stand-in predictor: sequential sum of solo latencies
    /// (pessimistic, so QoS always holds; exercises the full Abacus path).
    struct SeqModel {
        lib: Arc<ModelLibrary>,
        gpu: GpuSpec,
    }
    impl LatencyModel for SeqModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            // Decode spans from the Fig. 8 layout; weight by each model's
            // max-input solo latency as a crude per-op cost.
            let mut total = 0.0;
            let mut slot = 0;
            for (idx, m) in ModelId::ALL.into_iter().enumerate() {
                if x[idx] > 0.5 {
                    let base = predictor::MODEL_SLOT_BASE + slot * 4;
                    let span = x[base + 1] - x[base];
                    let solo = self.lib.solo_ms(m, m.max_input(), &self.gpu);
                    total += span * solo;
                    slot += 1;
                }
            }
            total
        }
        fn name(&self) -> &'static str {
            "seq"
        }
    }

    #[test]
    fn abacus_node_runs_and_meets_qos_under_light_load() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50, ModelId::Bert], &lib, &gpu);
        let wl = mk_workload(&svcs, 10.0, 5_000.0, &lib, 4);
        let model = Arc::new(SeqModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        let mut sched = AbacusScheduler::new(model, lib.clone(), AbacusConfig::default());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::calibrated(), lib.clone(), 5);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let violations = records.iter().filter(|r| !r.met_qos()).count();
        assert!(
            violations * 20 <= records.len(),
            "{violations}/{}",
            records.len()
        );
    }

    #[test]
    fn overload_drops_rather_than_stalls() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        // Absurd load on a heavy pair: the drop mechanism must keep the
        // queue draining and every query accounted.
        let svcs = services(&[ModelId::Vgg16, ModelId::Vgg19], &lib, &gpu);
        let wl = mk_workload(&svcs, 120.0, 2_000.0, &lib, 6);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Fcfs, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 7);
        let records = simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl);
        assert_eq!(records.len(), wl.len());
        let dropped = records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Dropped)
            .count();
        assert!(dropped > 0);
    }

    #[test]
    fn timeout_bounds_sojourn_and_counts_as_timed_out() {
        use crate::invariants::InvariantChecker;
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::Vgg16, ModelId::Vgg19], &lib, &gpu);
        let wl = mk_workload(&svcs, 120.0, 2_000.0, &lib, 6);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Fcfs, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 7);
        let mut checker = InvariantChecker::new();
        let records = simulate_node_checked(
            &mut sched,
            &mut exec,
            &lib,
            &svcs,
            &wl,
            NodeOptions {
                timeout_factor: Some(1.0),
            },
            Some(&mut checker),
        );
        assert_eq!(records.len(), wl.len());
        assert_eq!(checker.report(), Ok(()));
        let timed_out = records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::TimedOut)
            .count();
        assert!(timed_out > 0, "overload with timeout must evict");
        // Every timed-out query's sojourn indeed exceeded its budget.
        assert!(records
            .iter()
            .filter(|r| r.outcome == QueryOutcome::TimedOut)
            .all(|r| r.latency_ms > r.qos_ms));
    }

    /// A scheduler that never drops and never plans: the old loop would
    /// spin on it forever; the livelock guard must terminate and flag it.
    struct StallScheduler;
    impl abacus_core::Scheduler for StallScheduler {
        fn decide(&mut self, _now_ms: f64, _queue: &[Query]) -> abacus_core::RoundDecision {
            abacus_core::RoundDecision {
                dropped: vec![],
                group: None,
                overhead_ms: 0.0,
            }
        }
        fn on_group_complete(&mut self, _duration_ms: f64) {}
        fn name(&self) -> &'static str {
            "stall"
        }
    }

    #[test]
    fn livelock_guard_terminates_and_flags_stalled_scheduler() {
        use crate::invariants::InvariantChecker;
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50], &lib, &gpu);
        let wl = mk_workload(&svcs, 10.0, 500.0, &lib, 9);
        assert!(!wl.is_empty());
        let mut sched = StallScheduler;
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 1);
        let mut checker = InvariantChecker::new();
        let records = simulate_node_checked(
            &mut sched,
            &mut exec,
            &lib,
            &svcs,
            &wl,
            NodeOptions::default(),
            Some(&mut checker),
        );
        // Terminates (would previously livelock) with every query
        // force-evicted and the stall recorded as a violation.
        assert_eq!(records.len(), wl.len());
        assert!(records.iter().all(|r| r.outcome == QueryOutcome::TimedOut));
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.contains("livelock guard")));
    }

    #[test]
    fn empty_workload_is_fine() {
        let lib = lib();
        let gpu = GpuSpec::a100();
        let svcs = services(&[ModelId::ResNet50], &lib, &gpu);
        let wl = NodeWorkload::new(vec![], vec![]);
        let mut sched = BaselineScheduler::new(BaselinePolicy::Sjf, lib.clone(), gpu.clone());
        let mut exec = SegmentalExecutor::new(gpu, NoiseModel::disabled(), lib.clone(), 8);
        assert!(simulate_node(&mut sched, &mut exec, &lib, &svcs, &wl).is_empty());
    }
}
