//! Experiment drivers for the §7.2–7.5 single-GPU studies.
//!
//! [`run_colocation`] deploys a co-location set on one GPU under a chosen
//! policy and offered load, and aggregates the per-query records into the
//! statistics the paper's figures report. The workload (arrival times and
//! query inputs) is derived solely from the experiment seed, so the four
//! policies of a figure row are compared on *identical* query streams.

use crate::invariants::InvariantChecker;
use crate::node::{
    simulate_node_checked, simulate_node_instrumented, NodeOptions, NodeWorkload, ServiceSpec,
};
use abacus_core::{
    AbacusConfig, AbacusScheduler, BaselinePolicy, BaselineScheduler, Scheduler,
    SegmentalExecutor,
};
use abacus_metrics::{QueryRecord, ServiceStats};
use dnn_models::{ModelId, ModelLibrary};
use faults::{burst_arrivals, burst_input_rng, FaultPlan};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use std::sync::Arc;
use telemetry::Telemetry;
use workload::{fork_seed, merge_arrivals, PoissonProcess, SeededRng};

/// The four policies compared throughout §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// First come, first served (Nexus/Clockwork default).
    Fcfs,
    /// Shortest job first.
    Sjf,
    /// Earliest deadline first.
    Edf,
    /// The paper's system.
    Abacus,
}

impl PolicyKind {
    /// All policies in the paper's figure order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fcfs,
        PolicyKind::Sjf,
        PolicyKind::Edf,
        PolicyKind::Abacus,
    ];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Sjf => "SJF",
            PolicyKind::Edf => "EDF",
            PolicyKind::Abacus => "Abacus",
        }
    }
}

/// One co-location experiment's knobs.
#[derive(Debug, Clone)]
pub struct ColocationConfig {
    /// Offered load per service, queries per second (50 for the QoS
    /// studies, 100 for peak throughput).
    pub qps_per_service: f64,
    /// Measurement horizon, ms.
    pub horizon_ms: f64,
    /// Experiment seed (drives arrivals, inputs, and execution noise).
    pub seed: u64,
    /// Fig. 16 mode: pin every query to the model's minimum input and
    /// tighten QoS to 2× the minimum-input solo latency.
    pub small_inputs: bool,
    /// Abacus controller configuration.
    pub abacus: AbacusConfig,
}

impl Default for ColocationConfig {
    fn default() -> Self {
        Self {
            qps_per_service: 50.0,
            horizon_ms: 30_000.0,
            seed: 2021,
            small_inputs: false,
            abacus: AbacusConfig::default(),
        }
    }
}

/// Aggregated outcome of one (co-location set, policy) run.
#[derive(Debug, Clone)]
pub struct ColocationResult {
    /// Stats per service, in deployment order.
    pub per_service: Vec<ServiceStats>,
    /// Pooled stats over every query of the run.
    pub all: ServiceStats,
    /// The horizon used (for throughput normalisation).
    pub horizon_ms: f64,
    /// Per-service QoS targets, ms.
    pub qos_ms: Vec<f64>,
}

impl ColocationResult {
    /// Pooled p99 normalised to the *mean* QoS target (the paper's Fig. 14
    /// normalises each pair's latency to its QoS target).
    pub fn normalized_p99(&self) -> f64 {
        let mean_qos = self.qos_ms.iter().sum::<f64>() / self.qos_ms.len() as f64;
        self.all.p99_latency() / mean_qos
    }

    /// Pooled QoS violation ratio (drops count, Fig. 15).
    pub fn violation_ratio(&self) -> f64 {
        self.all.violation_ratio()
    }

    /// Goodput in queries/s (completions within QoS).
    pub fn goodput_qps(&self) -> f64 {
        self.all.goodput_qps(self.horizon_ms)
    }

    /// Peak throughput in completed queries/s (Fig. 17 convention).
    pub fn completed_qps(&self) -> f64 {
        self.all.completed_qps(self.horizon_ms)
    }
}

/// Build the deterministic workload for a deployment.
pub fn build_workload(
    services: &[ServiceSpec],
    lib: &ModelLibrary,
    cfg: &ColocationConfig,
) -> NodeWorkload {
    let mut rng = SeededRng::new(fork_seed(cfg.seed, 0x77));
    let streams: Vec<_> = (0..services.len())
        .map(|s| PoissonProcess::new(s, cfg.qps_per_service).generate(cfg.horizon_ms, &mut rng))
        .collect();
    let arrivals = merge_arrivals(streams);
    let inputs = arrivals
        .iter()
        .map(|a| {
            let model = services[a.service].model;
            if cfg.small_inputs {
                model.min_input()
            } else {
                lib.random_input(model, &mut rng)
            }
        })
        .collect();
    NodeWorkload::new(arrivals, inputs)
}

/// Resolve the deployment's services with their QoS targets on `gpu`.
pub fn services_for(
    models: &[ModelId],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    small_inputs: bool,
) -> Vec<ServiceSpec> {
    models
        .iter()
        .map(|&m| ServiceSpec {
            model: m,
            qos_ms: if small_inputs {
                lib.qos_target_small_ms(m, gpu)
            } else {
                lib.qos_target_ms(m, gpu)
            },
        })
        .collect()
}

/// Run one co-location experiment.
///
/// `predictor` is required for [`PolicyKind::Abacus`] and ignored
/// otherwise.
pub fn run_colocation(
    models: &[ModelId],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
) -> ColocationResult {
    let services = services_for(models, lib, gpu, cfg.small_inputs);
    run_with_services(&services, policy, predictor, lib, gpu, noise, cfg)
}

/// Run one co-location experiment with explicitly-specified services.
///
/// The MIG study (Figs. 20–21) needs this: QoS targets stay calibrated to
/// the *full* A100 while the services execute on a slower MIG slice.
pub fn run_with_services(
    services: &[ServiceSpec],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
) -> ColocationResult {
    let workload = build_workload(services, lib, cfg);
    let mut scheduler = make_scheduler(policy, predictor, lib, gpu, cfg);
    let mut executor = SegmentalExecutor::new(
        gpu.clone(),
        noise.clone(),
        lib.clone(),
        fork_seed(cfg.seed, 0xE0),
    );
    let records = simulate_node_checked(
        scheduler.as_mut(),
        &mut executor,
        lib,
        services,
        &workload,
        NodeOptions::default(),
        None,
    );
    aggregate(&records, services, cfg)
}

/// Build the scheduler a policy runs under (the same construction every
/// driver uses). `predictor` is required for [`PolicyKind::Abacus`].
pub fn make_scheduler(
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    cfg: &ColocationConfig,
) -> Box<dyn Scheduler> {
    match policy {
        PolicyKind::Fcfs => Box::new(BaselineScheduler::new(
            BaselinePolicy::Fcfs,
            lib.clone(),
            gpu.clone(),
        )),
        PolicyKind::Sjf => Box::new(BaselineScheduler::new(
            BaselinePolicy::Sjf,
            lib.clone(),
            gpu.clone(),
        )),
        PolicyKind::Edf => Box::new(BaselineScheduler::new(
            BaselinePolicy::Edf,
            lib.clone(),
            gpu.clone(),
        )),
        PolicyKind::Abacus => Box::new(AbacusScheduler::new(
            predictor.expect("Abacus needs a latency predictor"),
            lib.clone(),
            cfg.abacus.clone(),
        )),
    }
}

/// [`run_colocation`] with full telemetry recorded into `telemetry`.
///
/// Identical workload, scheduler and executor seeding to the plain driver —
/// the returned [`ColocationResult`] and records are bit-identical to
/// [`run_colocation`]'s for the same inputs; only the observations differ.
/// Also returns the raw per-query records (the telemetry event stream joins
/// against them by query id).
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_traced(
    models: &[ModelId],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
    telemetry: &mut Telemetry,
) -> (ColocationResult, Vec<QueryRecord>) {
    let services = services_for(models, lib, gpu, cfg.small_inputs);
    let workload = build_workload(&services, lib, cfg);
    if policy == PolicyKind::Abacus {
        telemetry.set_predictor_ways(cfg.abacus.ways);
    }
    let mut scheduler = make_scheduler(policy, predictor, lib, gpu, cfg);
    let mut executor = SegmentalExecutor::new(
        gpu.clone(),
        noise.clone(),
        lib.clone(),
        fork_seed(cfg.seed, 0xE0),
    );
    if telemetry.kernel_trace_enabled() {
        executor.enable_kernel_trace();
    }
    let records = simulate_node_instrumented(
        scheduler.as_mut(),
        &mut executor,
        lib,
        &services,
        &workload,
        NodeOptions::default(),
        None,
        Some(telemetry),
    );
    let result = aggregate(&records, &services, cfg);
    (result, records)
}

fn aggregate(
    records: &[QueryRecord],
    services: &[ServiceSpec],
    cfg: &ColocationConfig,
) -> ColocationResult {
    let mut per_service: Vec<ServiceStats> = services.iter().map(|_| ServiceStats::new()).collect();
    let mut all = ServiceStats::new();
    for r in records {
        per_service[r.service].record(r);
        all.record(r);
    }
    ColocationResult {
        per_service,
        all,
        horizon_ms: cfg.horizon_ms,
        qos_ms: services.iter().map(|s| s.qos_ms).collect(),
    }
}

/// The deterministic workload for a deployment with a [`FaultPlan`]'s
/// arrival burst merged in.
///
/// The base workload's RNG draws are untouched — the burst arrivals and
/// their inputs come from streams forked off the *plan* seed, then the two
/// time-sorted streams are merged stably by `(at_ms, service)` with the
/// base stream winning ties. A plan without a burst returns exactly
/// [`build_workload`]'s output.
pub fn build_faulty_workload(
    services: &[ServiceSpec],
    lib: &ModelLibrary,
    cfg: &ColocationConfig,
    plan: &FaultPlan,
) -> NodeWorkload {
    let base = build_workload(services, lib, cfg);
    let Some(burst) = plan.burst else {
        return base;
    };
    let extra = burst_arrivals(&burst, services.len(), plan.seed);
    if extra.is_empty() {
        return base;
    }
    let mut rng = burst_input_rng(plan.seed);
    let extra_inputs: Vec<_> = extra
        .iter()
        .map(|a| {
            let model = services[a.service].model;
            if cfg.small_inputs {
                model.min_input()
            } else {
                lib.random_input(model, &mut rng)
            }
        })
        .collect();
    let mut pairs: Vec<_> = base
        .arrivals
        .into_iter()
        .zip(base.inputs)
        .chain(extra.into_iter().zip(extra_inputs))
        .collect();
    pairs.sort_by(|a, b| a.0.at_ms.total_cmp(&b.0.at_ms).then(a.0.service.cmp(&b.0.service)));
    let (arrivals, inputs) = pairs.into_iter().unzip();
    NodeWorkload::new(arrivals, inputs)
}

/// Outcome of one fault-injected co-location run.
#[derive(Debug, Clone)]
pub struct FaultRunOutcome {
    /// Aggregated statistics (same shape as the no-fault driver's).
    pub result: ColocationResult,
    /// Raw per-query records, for golden-trace comparisons.
    pub records: Vec<QueryRecord>,
    /// Serving-loop invariant violations detected during the run
    /// (empty = every invariant held).
    pub invariant_violations: Vec<String>,
    /// Whether the Abacus controller degraded to FCFS dispatch
    /// (always `false` for baseline policies).
    pub degraded: bool,
}

/// [`run_colocation`] under a [`FaultPlan`], with the serving-loop
/// invariant checker wired in and optional defensive [`NodeOptions`].
///
/// With `FaultPlan::none()` and default options this is bit-identical to
/// [`run_colocation`] (pinned by the golden no-fault test).
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_faulty(
    models: &[ModelId],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
    plan: &FaultPlan,
    opts: NodeOptions,
) -> FaultRunOutcome {
    run_colocation_certified(models, policy, predictor, None, lib, gpu, noise, cfg, plan, opts)
}

/// [`run_colocation_faulty`] with an optional conformal certifier wired
/// into the Abacus controller ([`AbacusScheduler::with_certifier`]). With
/// `certifier == None` — or `cfg.abacus.conformal` off — this is the exact
/// same run, bit for bit; [`run_colocation_faulty`] delegates here.
///
/// Fault plans wrap only the *mean* predictor (the certifier calibrates a
/// bound over the healthy model's behaviour; a faulted mean feeding the
/// ledger/EWMA is precisely the failure mode the PR 4 defenses watch).
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_certified(
    models: &[ModelId],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    certifier: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
    plan: &FaultPlan,
    opts: NodeOptions,
) -> FaultRunOutcome {
    run_colocation_observed(
        models, policy, predictor, certifier, lib, gpu, noise, cfg, plan, opts, None,
    )
}

/// [`run_colocation_certified`] with opt-in telemetry — the entry point the
/// run-health studies use to watch a fault plan's effect *online* (drift
/// detectors and SLO burn monitors ride inside the `Telemetry`).
///
/// With `telemetry: None` this is the exact same run, bit for bit:
/// [`run_colocation_certified`] delegates here, and the simulation loop's
/// disabled-telemetry path is pinned byte-identical by the golden checksum
/// tests.
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_observed(
    models: &[ModelId],
    policy: PolicyKind,
    predictor: Option<Arc<dyn LatencyModel>>,
    certifier: Option<Arc<dyn LatencyModel>>,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &ColocationConfig,
    plan: &FaultPlan,
    opts: NodeOptions,
    mut telemetry: Option<&mut Telemetry>,
) -> FaultRunOutcome {
    let services = services_for(models, lib, gpu, cfg.small_inputs);
    let workload = build_faulty_workload(&services, lib, cfg, plan);
    let mut executor = SegmentalExecutor::new(
        gpu.clone(),
        noise.clone(),
        lib.clone(),
        fork_seed(cfg.seed, 0xE0),
    );
    executor.set_kernel_faults(plan.kernel_fault_spec());
    if let Some(t) = telemetry.as_deref_mut() {
        if t.kernel_trace_enabled() {
            executor.enable_kernel_trace();
        }
    }
    let mut checker = InvariantChecker::new();

    let (records, degraded) = match policy {
        PolicyKind::Abacus => {
            if let Some(t) = telemetry.as_deref_mut() {
                t.set_predictor_ways(cfg.abacus.ways);
            }
            let model =
                plan.wrap_predictor(predictor.expect("Abacus needs a latency predictor"));
            let mut sched =
                AbacusScheduler::with_certifier(model, certifier, lib.clone(), cfg.abacus.clone());
            let records = simulate_node_instrumented(
                &mut sched,
                &mut executor,
                lib,
                &services,
                &workload,
                opts,
                Some(&mut checker),
                telemetry,
            );
            (records, sched.is_degraded())
        }
        baseline => {
            let kind = match baseline {
                PolicyKind::Fcfs => BaselinePolicy::Fcfs,
                PolicyKind::Sjf => BaselinePolicy::Sjf,
                PolicyKind::Edf => BaselinePolicy::Edf,
                PolicyKind::Abacus => unreachable!("handled above"),
            };
            let mut sched = BaselineScheduler::new(kind, lib.clone(), gpu.clone());
            let records = simulate_node_instrumented(
                &mut sched,
                &mut executor,
                lib,
                &services,
                &workload,
                opts,
                Some(&mut checker),
                telemetry,
            );
            (records, false)
        }
    };
    let result = aggregate(&records, &services, cfg);
    FaultRunOutcome {
        result,
        records,
        invariant_violations: checker.violations().to_vec(),
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_unified, TrainerConfig};

    fn setup() -> (Arc<ModelLibrary>, GpuSpec, NoiseModel) {
        (
            Arc::new(ModelLibrary::new()),
            GpuSpec::a100(),
            NoiseModel::calibrated(),
        )
    }

    fn small_cfg() -> ColocationConfig {
        ColocationConfig {
            qps_per_service: 40.0,
            horizon_ms: 6_000.0,
            seed: 3,
            ..ColocationConfig::default()
        }
    }

    #[test]
    fn abacus_beats_fcfs_on_overlap_friendly_pair() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::ResNet152];
        let (mlp, _) = train_unified(
            &[models.to_vec()],
            &lib,
            &gpu,
            &noise,
            &TrainerConfig {
                samples_per_set: 600,
                runs_per_group: 3,
                ..TrainerConfig::fast()
            },
        );
        let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);
        let cfg = small_cfg();
        let fcfs = run_colocation(&models, PolicyKind::Fcfs, None, &lib, &gpu, &noise, &cfg);
        let abacus = run_colocation(
            &models,
            PolicyKind::Abacus,
            Some(mlp),
            &lib,
            &gpu,
            &noise,
            &cfg,
        );
        // Same total queries (identical workload).
        assert_eq!(fcfs.all.total(), abacus.all.total());
        assert!(
            abacus.goodput_qps() >= fcfs.goodput_qps() * 0.98,
            "abacus {} vs fcfs {}",
            abacus.goodput_qps(),
            fcfs.goodput_qps()
        );
        assert!(
            abacus.violation_ratio() <= fcfs.violation_ratio() + 0.02,
            "abacus {} vs fcfs {}",
            abacus.violation_ratio(),
            fcfs.violation_ratio()
        );
    }

    #[test]
    fn policies_see_identical_workloads() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::Bert];
        let cfg = small_cfg();
        let a = run_colocation(&models, PolicyKind::Fcfs, None, &lib, &gpu, &noise, &cfg);
        let b = run_colocation(&models, PolicyKind::Edf, None, &lib, &gpu, &noise, &cfg);
        assert_eq!(a.all.total(), b.all.total());
    }

    #[test]
    fn small_input_mode_tightens_qos() {
        let (lib, gpu, _) = setup();
        let normal = services_for(&[ModelId::ResNet101], &lib, &gpu, false);
        let small = services_for(&[ModelId::ResNet101], &lib, &gpu, true);
        assert!(small[0].qos_ms < normal[0].qos_ms);
    }

    #[test]
    fn faulty_runner_with_none_plan_matches_plain_runner() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::Bert];
        let cfg = small_cfg();
        let plain = run_colocation(&models, PolicyKind::Edf, None, &lib, &gpu, &noise, &cfg);
        let faulty = run_colocation_faulty(
            &models,
            PolicyKind::Edf,
            None,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &faults::FaultPlan::none(),
            crate::node::NodeOptions::default(),
        );
        assert!(faulty.invariant_violations.is_empty());
        assert!(!faulty.degraded);
        assert_eq!(faulty.result.all.total(), plain.all.total());
        assert_eq!(faulty.result.all.p99_latency(), plain.all.p99_latency());
        assert_eq!(faulty.result.violation_ratio(), plain.violation_ratio());
    }

    #[test]
    fn faulty_run_holds_invariants_and_grows_workload() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::ResNet101];
        let cfg = small_cfg();
        let plan = faults::FaultPlan::at_intensity(11, 0.6);
        let services = services_for(&models, &lib, &gpu, cfg.small_inputs);
        let base = build_workload(&services, &lib, &cfg);
        let bursty = build_faulty_workload(&services, &lib, &cfg, &plan);
        assert!(bursty.len() > base.len(), "burst must add arrivals");
        // Base draws are a subsequence: injection never reshuffles them.
        let mut base_iter = base.arrivals.iter().zip(&base.inputs).peekable();
        for pair in bursty.arrivals.iter().zip(&bursty.inputs) {
            if base_iter.peek() == Some(&pair) {
                base_iter.next();
            }
        }
        assert!(base_iter.peek().is_none(), "base workload perturbed");

        let out = run_colocation_faulty(
            &models,
            PolicyKind::Fcfs,
            None,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            crate::node::NodeOptions {
                timeout_factor: Some(4.0),
            },
        );
        assert_eq!(
            out.invariant_violations,
            Vec::<String>::new(),
            "faults must not break serving invariants"
        );
        assert_eq!(out.result.all.total(), bursty.len());
    }

    #[test]
    fn certified_runner_without_certifier_matches_faulty_runner() {
        // `run_colocation_certified(…, None, …)` and a supplied certifier
        // with the conformal flag off must both reproduce the plain faulty
        // runner bit for bit.
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::Bert];
        let mut cfg = small_cfg();
        // Pin the per-round prediction latency: startup calibration is
        // wall-clock-measured, so unpinned Abacus runs are not repeatable.
        cfg.abacus.predict_round_ms = Some(0.08);
        let (mlp, _) = crate::trainer::train_unified(
            &[models.to_vec()],
            &lib,
            &gpu,
            &noise,
            &TrainerConfig::fast(),
        );
        let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);
        let run = |certifier: Option<Arc<dyn LatencyModel>>| {
            run_colocation_certified(
                &models,
                PolicyKind::Abacus,
                Some(mlp.clone()),
                certifier,
                &lib,
                &gpu,
                &noise,
                &cfg,
                &faults::FaultPlan::none(),
                crate::node::NodeOptions::default(),
            )
        };
        let plain = run_colocation_faulty(
            &models,
            PolicyKind::Abacus,
            Some(mlp.clone()),
            &lib,
            &gpu,
            &noise,
            &cfg,
            &faults::FaultPlan::none(),
            crate::node::NodeOptions::default(),
        );
        assert_eq!(run(None).records, plain.records);
        // Flag off: an attached certifier must be inert.
        assert!(!cfg.abacus.conformal);
        assert_eq!(run(Some(mlp.clone())).records, plain.records);
    }

    #[test]
    fn conformal_certification_changes_planning_when_enabled() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::ResNet50, ModelId::ResNet152];
        let mut cfg = small_cfg();
        cfg.abacus.conformal = true;
        let certified = crate::trainer::train_certified(
            &[models.to_vec()],
            &lib,
            &gpu,
            &noise,
            &TrainerConfig::fast(),
            0.05,
        );
        let mean: Arc<dyn LatencyModel> = Arc::new(certified.mean);
        let upper: Arc<dyn LatencyModel> = Arc::new(certified.certifier);
        let out = run_colocation_certified(
            &models,
            PolicyKind::Abacus,
            Some(mean),
            Some(upper),
            &lib,
            &gpu,
            &noise,
            &cfg,
            &faults::FaultPlan::none(),
            crate::node::NodeOptions::default(),
        );
        assert!(out.invariant_violations.is_empty());
        assert!(!out.degraded);
        assert!(out.result.all.total() > 0);
        // Certified planning still serves the workload usefully.
        assert!(out.result.violation_ratio() < 0.5);
    }

    #[test]
    fn results_are_reproducible() {
        let (lib, gpu, noise) = setup();
        let models = [ModelId::InceptionV3, ModelId::Vgg16];
        let cfg = small_cfg();
        let a = run_colocation(&models, PolicyKind::Edf, None, &lib, &gpu, &noise, &cfg);
        let b = run_colocation(&models, PolicyKind::Edf, None, &lib, &gpu, &noise, &cfg);
        assert_eq!(a.all.p99_latency(), b.all.p99_latency());
        assert_eq!(a.all.total(), b.all.total());
    }
}
