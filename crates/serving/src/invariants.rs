//! Serving-loop invariant checking.
//!
//! The fault-injection layer deliberately breaks the assumptions the
//! scheduler plans under; the [`InvariantChecker`] asserts that whatever a
//! `FaultPlan` does, the *serving loop itself* stays sound:
//!
//! * **Exclusive occupancy** — executed groups never overlap in time: the
//!   GPU runs one group at a time, faults or not. A retired query can
//!   therefore never have occupied the GPU during another group's window.
//! * **Event-clock consistency** — each group's wall duration is at least
//!   its longest kernel stream (the engine's event clock can only be
//!   stretched by sync/save-restore overhead, never compressed).
//! * **Exactly-once accounting** — every issued query gets exactly one
//!   terminal record (completed, dropped, or timed out); a dropped query is
//!   never later reported completed; terminal timestamps never precede
//!   arrival.
//! * **Conservation** — at the end of a run,
//!   `completed + dropped + timed_out == issued`.
//!
//! The checker *collects* violations rather than panicking, so property
//! tests can assert `report().is_ok()` over randomly-drawn fault plans and
//! print every failure at once.

use abacus_metrics::QueryOutcome;
use std::collections::BTreeMap;

/// Comparison slack for time arithmetic, ms.
const EPS_MS: f64 = 1e-9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    Completed,
    Dropped,
    TimedOut,
}

/// Collects serving-loop invariant violations over one node run.
///
/// Wire it through `simulate_node_checked`; call [`finish`] after the loop
/// drains and inspect [`report`].
///
/// [`finish`]: InvariantChecker::finish
/// [`report`]: InvariantChecker::report
#[derive(Debug, Default)]
pub struct InvariantChecker {
    /// Issued query id → arrival time.
    issued: BTreeMap<u64, f64>,
    /// Terminal record per query id.
    terminal: BTreeMap<u64, Terminal>,
    /// End of the previous group's occupancy window, ms.
    last_group_end_ms: f64,
    /// Groups observed.
    rounds: u64,
    violations: Vec<String>,
    finished: bool,
}

impl InvariantChecker {
    /// Fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A query entered the node's queue.
    pub fn on_issue(&mut self, id: u64, arrival_ms: f64) {
        if self.issued.insert(id, arrival_ms).is_some() {
            self.violations.push(format!("query {id} issued twice"));
        }
    }

    /// A query reached a terminal state (`Completed`, `Dropped`, or
    /// `TimedOut`) at `now_ms`.
    pub fn on_terminal(&mut self, id: u64, outcome: QueryOutcome, now_ms: f64) {
        let t = match outcome {
            QueryOutcome::Completed => Terminal::Completed,
            QueryOutcome::Dropped => Terminal::Dropped,
            QueryOutcome::TimedOut => Terminal::TimedOut,
        };
        match self.issued.get(&id) {
            None => self
                .violations
                .push(format!("query {id} retired ({t:?}) but was never issued")),
            Some(&arrival_ms) => {
                if now_ms < arrival_ms - EPS_MS {
                    self.violations.push(format!(
                        "query {id} retired at {now_ms} before its arrival at {arrival_ms}"
                    ));
                }
            }
        }
        if let Some(prev) = self.terminal.insert(id, t) {
            self.violations.push(format!(
                "query {id} retired twice: {prev:?} then {t:?} \
                 (a dropped query must never be reported completed)"
            ));
        }
    }

    /// An operator group executed, occupying the GPU over
    /// `[start_ms, start_ms + duration_ms)`; `stream_ms` are the group's
    /// per-stream kernel spans from the engine.
    pub fn on_group(&mut self, start_ms: f64, duration_ms: f64, stream_ms: &[f64]) {
        self.rounds += 1;
        let r = self.rounds;
        if !(start_ms.is_finite() && duration_ms.is_finite()) || duration_ms < 0.0 {
            self.violations.push(format!(
                "group {r}: non-finite or negative occupancy ({start_ms}, {duration_ms})"
            ));
            return;
        }
        if start_ms < self.last_group_end_ms - EPS_MS {
            self.violations.push(format!(
                "group {r} starts at {start_ms} inside the previous group's window \
                 (ends {}) — exclusive occupancy violated",
                self.last_group_end_ms
            ));
        }
        let longest = stream_ms.iter().copied().fold(0.0f64, f64::max);
        if duration_ms + EPS_MS < longest {
            self.violations.push(format!(
                "group {r}: wall duration {duration_ms} shorter than its longest \
                 kernel stream {longest} — engine event clock inconsistent"
            ));
        }
        self.last_group_end_ms = start_ms + duration_ms;
    }

    /// The serving loop failed to make progress (no drop, no group, no
    /// pending arrival) and had to force an eviction.
    pub fn on_stall(&mut self, now_ms: f64, queue_len: usize) {
        self.violations.push(format!(
            "scheduler made no progress at {now_ms} on a non-empty queue \
             ({queue_len} waiting) — livelock guard fired"
        ));
    }

    /// The scheduler dropped a query id that is not in the queue.
    pub fn on_unknown_drop(&mut self, id: u64, now_ms: f64) {
        self.violations
            .push(format!("scheduler dropped unknown query {id} at {now_ms}"));
    }

    /// Close the run: check conservation (`completed + dropped + timed_out
    /// == issued`) and that no issued query is left without a terminal
    /// record.
    pub fn finish(&mut self) {
        self.finished = true;
        for (&id, &arrival_ms) in &self.issued {
            if !self.terminal.contains_key(&id) {
                self.violations.push(format!(
                    "query {id} (arrived {arrival_ms}) was issued but never retired"
                ));
            }
        }
        let (mut completed, mut dropped, mut timed_out) = (0usize, 0usize, 0usize);
        for t in self.terminal.values() {
            match t {
                Terminal::Completed => completed += 1,
                Terminal::Dropped => dropped += 1,
                Terminal::TimedOut => timed_out += 1,
            }
        }
        if completed + dropped + timed_out != self.issued.len() {
            self.violations.push(format!(
                "conservation broken: {completed} completed + {dropped} dropped + \
                 {timed_out} timed out != {} issued",
                self.issued.len()
            ));
        }
    }

    /// Queries issued so far.
    pub fn issued(&self) -> usize {
        self.issued.len()
    }

    /// Groups observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// All violations collected so far, in detection order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// `Ok(())` when no invariant was violated, else every violation.
    ///
    /// Panics if called before [`InvariantChecker::finish`] — the
    /// conservation checks only run there, and a green report that skipped
    /// them would be vacuous.
    pub fn report(&self) -> Result<(), &[String]> {
        assert!(self.finished, "report() called before finish()");
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(&self.violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(mut c: InvariantChecker) -> InvariantChecker {
        c.finish();
        c
    }

    #[test]
    fn clean_run_reports_ok() {
        let mut c = InvariantChecker::new();
        c.on_issue(0, 0.0);
        c.on_issue(1, 1.0);
        c.on_group(2.0, 5.0, &[4.0, 3.0]);
        c.on_terminal(0, QueryOutcome::Completed, 7.0);
        c.on_group(7.5, 2.0, &[1.5]);
        c.on_terminal(1, QueryOutcome::Dropped, 9.5);
        let c = finished(c);
        assert_eq!(c.report(), Ok(()));
        assert_eq!(c.issued(), 2);
        assert_eq!(c.rounds(), 2);
    }

    #[test]
    fn overlapping_groups_are_flagged() {
        let mut c = InvariantChecker::new();
        c.on_group(0.0, 10.0, &[]);
        c.on_group(5.0, 3.0, &[]); // starts inside the first window
        let c = finished(c);
        assert!(c.violations().iter().any(|v| v.contains("exclusive occupancy")));
    }

    #[test]
    fn group_shorter_than_longest_stream_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_group(0.0, 2.0, &[3.0, 1.0]);
        let c = finished(c);
        assert!(c.violations().iter().any(|v| v.contains("event clock")));
    }

    #[test]
    fn dropped_then_completed_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_issue(7, 0.0);
        c.on_terminal(7, QueryOutcome::Dropped, 1.0);
        c.on_terminal(7, QueryOutcome::Completed, 2.0);
        let c = finished(c);
        assert!(c.violations().iter().any(|v| v.contains("retired twice")));
    }

    #[test]
    fn unretired_query_breaks_conservation() {
        let mut c = InvariantChecker::new();
        c.on_issue(3, 0.0);
        let c = finished(c);
        assert!(c.report().is_err());
        assert!(c.violations().iter().any(|v| v.contains("never retired")));
    }

    #[test]
    fn retire_before_arrival_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_issue(1, 100.0);
        c.on_terminal(1, QueryOutcome::TimedOut, 50.0);
        let c = finished(c);
        assert!(c.violations().iter().any(|v| v.contains("before its arrival")));
    }

    #[test]
    #[should_panic(expected = "before finish")]
    fn report_requires_finish() {
        let _ = InvariantChecker::new().report();
    }
}
