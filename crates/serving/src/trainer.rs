//! Offline predictor training for a deployment (§5.4–5.5).
//!
//! Given the co-location sets a node will serve, this module runs the
//! paper's offline pipeline: instance-based sampling of operator groups,
//! profiling on the GPU simulator, and MLP training. One *unified* model is
//! trained across all sets — §5.5 shows per-pair models buy almost nothing
//! (5.5% vs 5.7% error), and §4 highlights the single-model design.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{profile_groups, sample_groups, Dataset, Mlp, MlpConfig, ProfiledGroup};
use workload::fork_seed;

/// Configuration of the offline phase.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Operator groups sampled per co-location set (paper: 2 000 per pair).
    pub samples_per_set: usize,
    /// Measurement repetitions per group (paper: 100).
    pub runs_per_group: usize,
    /// MLP hyper-parameters.
    pub mlp: MlpConfig,
    /// Seed for sampling and profiling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            samples_per_set: 2_000,
            runs_per_group: 10,
            mlp: MlpConfig::default(),
            seed: 0xAB,
        }
    }
}

impl TrainerConfig {
    /// Small configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            samples_per_set: 200,
            runs_per_group: 3,
            mlp: MlpConfig::fast(),
            seed: 0xAB,
        }
    }
}

/// Sample and profile one co-location set.
pub fn collect_profiles(
    set: &[ModelId],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
    label: u64,
) -> Vec<ProfiledGroup> {
    let specs = sample_groups(set, cfg.samples_per_set, lib, fork_seed(cfg.seed, label));
    profile_groups(
        &specs,
        lib,
        gpu,
        noise,
        fork_seed(cfg.seed, label ^ 0xFFFF),
        cfg.runs_per_group,
    )
}

/// Sample, profile and encode one co-location set as a dataset.
pub fn collect_dataset(
    set: &[ModelId],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
    label: u64,
) -> Dataset {
    Dataset::from_profiles(&collect_profiles(set, lib, gpu, noise, cfg, label), lib)
}

/// Train the unified duration model over all given co-location sets.
///
/// Returns the trained MLP together with the pooled dataset (so callers can
/// hold out a test split or run cross-validation).
pub fn train_unified(
    sets: &[Vec<ModelId>],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
) -> (Mlp, Dataset) {
    assert!(!sets.is_empty());
    let mut data = Dataset::new();
    for (i, set) in sets.iter().enumerate() {
        data.extend(collect_dataset(set, lib, gpu, noise, cfg, i as u64));
    }
    let mlp = Mlp::train(&data, &cfg.mlp);
    (mlp, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictor::{eval, LatencyModel};
    use workload::SeededRng;

    #[test]
    fn unified_training_reaches_useful_accuracy() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let noise = NoiseModel::calibrated();
        let sets = vec![
            vec![ModelId::ResNet50, ModelId::Bert],
            vec![ModelId::ResNet50, ModelId::Vgg16],
        ];
        let cfg = TrainerConfig {
            samples_per_set: 400,
            runs_per_group: 3,
            mlp: MlpConfig {
                epochs: 80,
                ..MlpConfig::default()
            },
            seed: 5,
        };
        let (mlp, data) = train_unified(&sets, &lib, &gpu, &noise, &cfg);
        let mut rng = SeededRng::new(1);
        let (_, test) = data.split(0.8, &mut rng);
        let err = eval::mape(&mlp, &test);
        // Paper-grade is ~5%; at this tiny sample budget 12% is plenty to
        // prove the pipeline works.
        assert!(err < 0.12, "mape {err}");
        let _ = mlp.name();
    }

    #[test]
    fn collect_dataset_has_expected_size() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let d = collect_dataset(
            &[ModelId::InceptionV3, ModelId::Vgg19],
            &lib,
            &gpu,
            &NoiseModel::calibrated(),
            &TrainerConfig::fast(),
            0,
        );
        assert_eq!(d.len(), TrainerConfig::fast().samples_per_set);
        assert_eq!(d.dim(), predictor::FEATURE_DIM);
        assert!(d.y.iter().all(|&y| y > 0.0));
    }
}
