//! Offline predictor training for a deployment (§5.4–5.5).
//!
//! Given the co-location sets a node will serve, this module runs the
//! paper's offline pipeline: instance-based sampling of operator groups,
//! profiling on the GPU simulator, and MLP training. One *unified* model is
//! trained across all sets — §5.5 shows per-pair models buy almost nothing
//! (5.5% vs 5.7% error), and §4 highlights the single-model design.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{
    profile_group, profile_groups, sample_groups, ConformalModel, Dataset, GroupSpec, Mlp,
    MlpConfig, ProfiledGroup, QuantileMlp, CERT_TAUS,
};
use rayon::prelude::*;
use workload::{fork_seed, SeededRng};

/// Sub-stream indices for per-set seed derivation. Each co-location set's
/// sampling and profiling RNG streams are
/// `fork_seed(fork_seed(cfg.seed, label), STREAM)` — nested forks, so the
/// two streams are disjoint from each other *and* from every other label's
/// streams. The previous scheme derived the profiling seed as
/// `fork_seed(cfg.seed, label ^ 0xFFFF)`, which is exactly the *sampling*
/// seed of label `label ^ 0xFFFF`: any deployment with ≥ 0xFFFF sets (or a
/// caller passing such labels directly) would profile one set with another
/// set's sampling stream. Fixing the derivation shifts all trained
/// predictors and cached artefacts — see DESIGN.md §7.
const SAMPLE_STREAM: u64 = 0;
const PROFILE_STREAM: u64 = 1;

/// Seed for one of a set's RNG streams (see [`SAMPLE_STREAM`]).
fn set_stream_seed(seed: u64, label: u64, stream: u64) -> u64 {
    fork_seed(fork_seed(seed, label), stream)
}

/// Configuration of the offline phase.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Operator groups sampled per co-location set (paper: 2 000 per pair).
    pub samples_per_set: usize,
    /// Measurement repetitions per group (paper: 100).
    pub runs_per_group: usize,
    /// MLP hyper-parameters.
    pub mlp: MlpConfig,
    /// Seed for sampling and profiling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            samples_per_set: 2_000,
            runs_per_group: 10,
            mlp: MlpConfig::default(),
            seed: 0xAB,
        }
    }
}

impl TrainerConfig {
    /// Small configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            samples_per_set: 200,
            runs_per_group: 3,
            mlp: MlpConfig::fast(),
            seed: 0xAB,
        }
    }
}

/// Sample and profile one co-location set.
pub fn collect_profiles(
    set: &[ModelId],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
    label: u64,
) -> Vec<ProfiledGroup> {
    let specs = sample_groups(
        set,
        cfg.samples_per_set,
        lib,
        set_stream_seed(cfg.seed, label, SAMPLE_STREAM),
    );
    profile_groups(
        &specs,
        lib,
        gpu,
        noise,
        set_stream_seed(cfg.seed, label, PROFILE_STREAM),
        cfg.runs_per_group,
    )
}

/// Sample, profile and encode one co-location set as a dataset.
pub fn collect_dataset(
    set: &[ModelId],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
    label: u64,
) -> Dataset {
    Dataset::from_profiles(&collect_profiles(set, lib, gpu, noise, cfg, label), lib)
}

/// Train the unified duration model over all given co-location sets.
///
/// Returns the trained MLP together with the pooled dataset (so callers can
/// hold out a test split or run cross-validation).
///
/// Collection is parallel but deterministic: sampling is serial per set
/// (cheap), then every `(set, group)` profiling job — by far the dominant
/// cost — is flattened into one set-major parallel campaign with each
/// job's seed derived exactly as [`collect_profiles`] derives it, so the
/// pooled dataset is identical to concatenating [`collect_dataset`] over
/// the sets serially (asserted by a test below). Flattening instead of
/// nesting a per-set loop around `profile_groups` keeps a single fan-out
/// level, which both avoids thread oversubscription and load-balances when
/// sets have very different per-group costs.
pub fn train_unified(
    sets: &[Vec<ModelId>],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
) -> (Mlp, Dataset) {
    assert!(!sets.is_empty());
    let specs_per_set: Vec<Vec<GroupSpec>> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| {
            sample_groups(
                set,
                cfg.samples_per_set,
                lib,
                set_stream_seed(cfg.seed, i as u64, SAMPLE_STREAM),
            )
        })
        .collect();
    let jobs: Vec<(&GroupSpec, u64)> = specs_per_set
        .iter()
        .enumerate()
        .flat_map(|(i, specs)| {
            let profile_seed = set_stream_seed(cfg.seed, i as u64, PROFILE_STREAM);
            specs
                .iter()
                .enumerate()
                .map(move |(g, spec)| (spec, fork_seed(profile_seed, g as u64)))
        })
        .collect();
    let profiled: Vec<ProfiledGroup> = jobs
        .par_iter()
        .map(|(spec, seed)| profile_group(spec, lib, gpu, noise, *seed, cfg.runs_per_group))
        .collect();
    let data = Dataset::from_profiles(&profiled, lib);
    let mlp = Mlp::train(&data, &cfg.mlp);
    (mlp, data)
}

/// Fork label of the conformal calibration split's RNG stream. Nested off
/// `cfg.seed` like the per-set streams, far outside any plausible set
/// label, so the held-out slice is deterministic for a given seed and
/// disjoint from every sampling/profiling stream.
const CALIB_FORK: u64 = 0x00CA_11B0;

/// Fraction of the pooled dataset the quantile heads train on; the
/// remainder is the held-out conformal calibration slice (split
/// conformal's exchangeability requirement — the heads must never see the
/// calibration rows).
const CALIB_TRAIN_FRAC: f64 = 0.75;

/// The certified-training output: the mean predictor (bit-identical to
/// [`train_unified`]'s — same data, same trainer, so mean-model caches
/// stay valid), the calibrated upper-bound certifier, and the pooled
/// dataset.
pub struct CertifiedPredictor {
    /// Unified mean model, exactly as [`train_unified`] trains it.
    pub mean: Mlp,
    /// Quantile heads + split-conformal table, certifying at `alpha`.
    pub certifier: ConformalModel,
    /// The pooled profiling dataset both models came from.
    pub data: Dataset,
}

/// Train the full certification stack over the given co-location sets:
/// the unified mean model on the complete pooled dataset (unchanged from
/// [`train_unified`]), p90/p95/p99 quantile heads ([`CERT_TAUS`]) on a
/// deterministic 75% slice, and a per-width split-conformal calibration
/// on the held-out 25% ([`ConformalModel::calibrate`]), certifying Eq. 2
/// at miscoverage `alpha`.
pub fn train_certified(
    sets: &[Vec<ModelId>],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    cfg: &TrainerConfig,
    alpha: f64,
) -> CertifiedPredictor {
    let (mean, data) = train_unified(sets, lib, gpu, noise, cfg);
    let mut rng = SeededRng::new(fork_seed(cfg.seed, CALIB_FORK));
    let (head_train, calib) = data.split(CALIB_TRAIN_FRAC, &mut rng);
    let heads = QuantileMlp::train(&head_train, &cfg.mlp, &CERT_TAUS);
    let certifier = ConformalModel::calibrate(heads, &calib, alpha);
    CertifiedPredictor {
        mean,
        certifier,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictor::{eval, LatencyModel};
    use workload::SeededRng;

    #[test]
    fn unified_training_reaches_useful_accuracy() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let noise = NoiseModel::calibrated();
        let sets = vec![
            vec![ModelId::ResNet50, ModelId::Bert],
            vec![ModelId::ResNet50, ModelId::Vgg16],
        ];
        let cfg = TrainerConfig {
            samples_per_set: 400,
            runs_per_group: 3,
            mlp: MlpConfig {
                epochs: 80,
                ..MlpConfig::default()
            },
            seed: 5,
        };
        let (mlp, data) = train_unified(&sets, &lib, &gpu, &noise, &cfg);
        let mut rng = SeededRng::new(1);
        let (_, test) = data.split(0.8, &mut rng);
        let err = eval::mape(&mlp, &test);
        // Paper-grade is ~5%; at this tiny sample budget 12% is plenty to
        // prove the pipeline works.
        assert!(err < 0.12, "mape {err}");
        let _ = mlp.name();
    }

    #[test]
    fn parallel_collection_matches_serial_concat() {
        // The flattened parallel campaign in `train_unified` must produce
        // exactly the dataset a serial per-set `collect_dataset` loop
        // produces — same samples, same order, same bits.
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let noise = NoiseModel::calibrated();
        let sets = vec![
            vec![ModelId::ResNet50, ModelId::Bert],
            vec![ModelId::InceptionV3, ModelId::Vgg16],
            vec![ModelId::ResNet101],
        ];
        let cfg = TrainerConfig {
            samples_per_set: 30,
            runs_per_group: 2,
            mlp: MlpConfig::fast(),
            seed: 17,
        };
        let (_, pooled) = train_unified(&sets, &lib, &gpu, &noise, &cfg);
        let mut serial = Dataset::new();
        for (i, set) in sets.iter().enumerate() {
            serial.extend(collect_dataset(set, &lib, &gpu, &noise, &cfg, i as u64));
        }
        assert_eq!(pooled.x, serial.x);
        assert_eq!(pooled.y, serial.y);
    }

    #[test]
    fn sampling_and_profiling_streams_are_disjoint() {
        // Regression guard for the old `label ^ 0xFFFF` derivation, under
        // which one label's profiling seed collided with another label's
        // sampling seed.
        let labels = [0u64, 1, 2, 0xFFFF, 0xFFFE, 0x1_0000];
        let mut seen = std::collections::HashSet::new();
        for &label in &labels {
            for stream in [SAMPLE_STREAM, PROFILE_STREAM] {
                assert!(
                    seen.insert(set_stream_seed(0xAB, label, stream)),
                    "seed collision at label {label} stream {stream}"
                );
            }
        }
    }

    #[test]
    fn certified_training_shares_the_mean_model_and_is_deterministic() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let noise = NoiseModel::calibrated();
        let sets = vec![vec![ModelId::ResNet50, ModelId::Bert]];
        let cfg = TrainerConfig {
            samples_per_set: 120,
            runs_per_group: 2,
            mlp: MlpConfig::fast(),
            seed: 9,
        };
        let (plain, _) = train_unified(&sets, &lib, &gpu, &noise, &cfg);
        let a = train_certified(&sets, &lib, &gpu, &noise, &cfg, 0.05);
        // The mean model is bit-identical to the uncertified trainer's —
        // mean-model caches survive turning certification on.
        assert_eq!(a.mean, plain);
        assert!((a.certifier.alpha() - 0.05).abs() < 1e-12);
        // Heads never see the calibration slice: proper-train + calib
        // partition the pooled data.
        assert_eq!(a.data.len(), cfg.samples_per_set);
        // Rerun is bit-identical (deterministic calibration split).
        let b = train_certified(&sets, &lib, &gpu, &noise, &cfg, 0.05);
        assert_eq!(a.certifier, b.certifier);
    }

    #[test]
    fn collect_dataset_has_expected_size() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let d = collect_dataset(
            &[ModelId::InceptionV3, ModelId::Vgg19],
            &lib,
            &gpu,
            &NoiseModel::calibrated(),
            &TrainerConfig::fast(),
            0,
        );
        assert_eq!(d.len(), TrainerConfig::fast().samples_per_set);
        assert_eq!(d.dim(), predictor::FEATURE_DIM);
        assert!(d.y.iter().all(|&y| y > 0.0));
    }
}
