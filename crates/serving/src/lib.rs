//! Single-GPU serving simulation and experiment drivers.
//!
//! This crate ties the substrate together into the paper's evaluation
//! harness: [`node`] is the discrete-event serving loop (arrivals → queue →
//! scheduler → segmental executor), [`mps`] reproduces the Fig. 3
//! free-overlap motivation, [`trainer`] runs the offline
//! sample-profile-train pipeline, and [`experiment`] drives the §7.2–7.5
//! co-location studies with paired workloads across policies.

pub mod deploy;
pub mod experiment;
pub mod invariants;
pub mod mps;
pub mod node;
pub mod trainer;

pub use deploy::{memory_report, MemoryReport, ServiceFootprint};
pub use experiment::{
    build_faulty_workload, build_workload, make_scheduler, run_colocation,
    run_colocation_certified, run_colocation_faulty, run_colocation_observed,
    run_colocation_traced, run_with_services, services_for, ColocationConfig, ColocationResult,
    FaultRunOutcome, PolicyKind,
};
pub use invariants::InvariantChecker;
pub use mps::{mps_victim_latencies, victim_solo_ms, MpsConfig};
pub use node::{
    simulate_node, simulate_node_checked, simulate_node_instrumented, NodeOptions, NodeWorkload,
    ServiceSpec,
};
pub use trainer::{
    collect_dataset, collect_profiles, train_certified, train_unified, CertifiedPredictor,
    TrainerConfig,
};
