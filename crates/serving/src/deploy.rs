//! Deployment memory accounting.
//!
//! §7.6 notes "Clockwork and Abacus use the same amount of GPU global
//! memory", and §7.8 bounds the executor's intermediate-result footprint.
//! This module answers the deployment-time question: do these models fit
//! resident on this GPU (or MIG slice) at all? Weights are counted once per
//! deployed service; the activation workspace is estimated from the largest
//! operator of each model at its maximum input.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::GpuSpec;

/// Memory footprint of one deployed service, bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceFootprint {
    /// Which model.
    pub model: ModelId,
    /// Resident parameter bytes.
    pub weight_bytes: f64,
    /// Estimated peak activation workspace at the maximum input, bytes.
    pub workspace_bytes: f64,
}

impl ServiceFootprint {
    /// Total bytes for this service.
    pub fn total(&self) -> f64 {
        self.weight_bytes + self.workspace_bytes
    }
}

/// A deployment's memory report against a GPU's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Per-service footprints.
    pub services: Vec<ServiceFootprint>,
    /// GPU capacity, bytes.
    pub capacity_bytes: f64,
}

impl MemoryReport {
    /// Total deployment footprint, bytes.
    pub fn total_bytes(&self) -> f64 {
        self.services.iter().map(ServiceFootprint::total).sum()
    }

    /// True when the deployment fits in the GPU's global memory.
    pub fn fits(&self) -> bool {
        self.total_bytes() <= self.capacity_bytes
    }
}

/// Build the memory report for deploying `models` on `gpu`.
pub fn memory_report(models: &[ModelId], lib: &ModelLibrary, gpu: &GpuSpec) -> MemoryReport {
    let services = models
        .iter()
        .map(|&m| {
            let g = lib.graph(m, m.max_input());
            // Peak live activations ≈ the largest operator's traffic (its
            // inputs + outputs are simultaneously resident).
            let workspace = g.ops.iter().map(|o| o.bytes).fold(0.0, f64::max);
            ServiceFootprint {
                model: m,
                weight_bytes: g.weight_bytes(),
                workspace_bytes: workspace,
            }
        })
        .collect();
    MemoryReport {
        services,
        capacity_bytes: gpu.memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::MigProfile;

    #[test]
    fn weights_match_published_parameter_counts() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let report = memory_report(&ModelId::PAPER_MODELS, &lib, &gpu);
        let mb = |m: ModelId| {
            report
                .services
                .iter()
                .find(|s| s.model == m)
                .unwrap()
                .weight_bytes
                / 1e6
        };
        // Published FP32 weight sizes: ResNet-50 ≈ 102 MB, ResNet-152 ≈
        // 240 MB, VGG-16 ≈ 550 MB (FC-heavy), BERT-base ≈ 440 MB (we model
        // the encoder + pooler, embeddings excluded → ~350 MB).
        assert!((80.0..120.0).contains(&mb(ModelId::ResNet50)), "{}", mb(ModelId::ResNet50));
        assert!((200.0..280.0).contains(&mb(ModelId::ResNet152)), "{}", mb(ModelId::ResNet152));
        assert!((450.0..620.0).contains(&mb(ModelId::Vgg16)), "{}", mb(ModelId::Vgg16));
        assert!((250.0..450.0).contains(&mb(ModelId::Bert)), "{}", mb(ModelId::Bert));
    }

    #[test]
    fn quad_deployment_fits_everywhere_the_paper_deploys_it() {
        let lib = ModelLibrary::new();
        let quad = [
            ModelId::ResNet101,
            ModelId::ResNet152,
            ModelId::Vgg19,
            ModelId::Bert,
        ];
        // Full A100, the 4g.20gb slice and a V100 all hold the quad.
        for gpu in [
            GpuSpec::a100(),
            GpuSpec::a100().mig_slice(MigProfile::FourG20Gb),
            GpuSpec::v100(),
        ] {
            let r = memory_report(&quad, &lib, &gpu);
            assert!(r.fits(), "{}: {:.1} GB", gpu.name, r.total_bytes() / 1e9);
        }
    }

    #[test]
    fn single_model_fits_smallest_slice() {
        let lib = ModelLibrary::new();
        let slice = GpuSpec::a100().mig_slice(MigProfile::OneG5Gb);
        for m in ModelId::PAPER_MODELS {
            let r = memory_report(&[m], &lib, &slice);
            assert!(r.fits(), "{} on 1g.5gb: {:.2} GB", m.name(), r.total_bytes() / 1e9);
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let lib = ModelLibrary::new();
        let mut slice = GpuSpec::a100().mig_slice(MigProfile::OneG5Gb);
        slice.memory_bytes = 0.3e9; // pathological 300 MB device
        let r = memory_report(&[ModelId::Vgg19], &lib, &slice);
        assert!(!r.fits());
    }
}
