//! Free-overlap (MPS-style) co-location — the Fig. 3 motivation experiment.
//!
//! Two services share the GPU with *no* runtime coordination, exactly as
//! Nvidia MPS co-locates processes: every query is dispatched to the GPU
//! the moment it arrives, so during bursts several antagonist queries run
//! concurrently and whatever operators happen to be in flight overlap
//! non-deterministically. The victim service runs closed-loop (a new query
//! the instant the previous one returns, §3.2); the antagonist's queries
//! arrive by a Poisson process with random Table-1 inputs. The victim's
//! latency distribution is the paper's evidence that uncontrolled overlap
//! makes tail latency explode (24 ms solo stretching past 240 ms).

use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::{Engine, GpuSpec, NoiseModel};
use workload::{Arrival, SeededRng};

/// Configuration of one Fig. 3 run.
#[derive(Debug, Clone)]
pub struct MpsConfig {
    /// The service whose latency distribution is measured.
    pub victim: ModelId,
    /// The victim's fixed input (the paper pins ResNet-152 at batch 32).
    pub victim_input: QueryInput,
    /// The co-located service.
    pub antagonist: ModelId,
    /// Antagonist offered load, queries per second.
    pub antagonist_qps: f64,
    /// Measurement horizon, ms.
    pub horizon_ms: f64,
    /// RNG seed (noise, antagonist arrivals and inputs).
    pub seed: u64,
}

/// Victim query latencies under free MPS overlap.
pub fn mps_victim_latencies(cfg: &MpsConfig, lib: &ModelLibrary, gpu: &GpuSpec) -> Vec<f64> {
    let mut rng = SeededRng::new(cfg.seed);
    let antagonist_arrivals: Vec<Arrival> =
        workload::PoissonProcess::new(1, cfg.antagonist_qps).generate(cfg.horizon_ms, &mut rng);

    let victim_kernels = lib.kernels(cfg.victim, cfg.victim_input);
    let mut engine = Engine::new(gpu.clone(), NoiseModel::calibrated(), cfg.seed);
    // Open-loop run: recycle retired slots so memory stays bounded by the
    // number of concurrently live queries, not the arrival count. We only
    // consume completions from `step`, as recycling requires.
    engine.enable_slot_recycling();

    // MPS dispatches every antagonist query at its arrival instant — no
    // queueing, no coordination. Bursts therefore overlap with each other
    // *and* with the victim. Kernels come from the library's memoised
    // lowering — no per-query re-derivation.
    for a in &antagonist_arrivals {
        let input = lib.random_input(cfg.antagonist, &mut rng);
        engine.add_stream_slice(lib.kernels(cfg.antagonist, input), a.at_ms);
    }

    // Closed-loop victim: one query in flight at all times.
    let mut victim_stream = engine.add_stream_slice(victim_kernels, 0.0);
    let mut victim_started = 0.0f64;
    let mut latencies = Vec::new();

    while let Some(done) = engine.step() {
        if done.id == victim_stream {
            latencies.push(done.end_ms - victim_started);
            if done.end_ms >= cfg.horizon_ms {
                break;
            }
            victim_started = done.end_ms;
            victim_stream = engine.add_stream_slice(victim_kernels, done.end_ms);
        }
    }
    latencies
}

/// The victim's noise-free solo latency — Fig. 3's reference point.
pub fn victim_solo_ms(cfg: &MpsConfig, lib: &ModelLibrary, gpu: &GpuSpec) -> f64 {
    lib.graph(cfg.victim, cfg.victim_input).solo_ms(gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_metrics::percentile;

    fn cfg(antagonist: ModelId, qps: f64) -> MpsConfig {
        MpsConfig {
            victim: ModelId::ResNet152,
            victim_input: QueryInput::new(32, 1),
            antagonist,
            antagonist_qps: qps,
            horizon_ms: 8_000.0,
            seed: 11,
        }
    }

    #[test]
    fn corun_latency_exceeds_solo_and_varies() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let c = cfg(ModelId::Vgg19, 25.0);
        let lat = mps_victim_latencies(&c, &lib, &gpu);
        assert!(lat.len() > 50, "{}", lat.len());
        let solo = victim_solo_ms(&c, &lib, &gpu);
        let p50 = percentile(&lat, 50.0);
        let p99 = percentile(&lat, 99.0);
        assert!(p50 > solo, "p50 {p50} vs solo {solo}");
        // Unstable: the tail is far worse than the median (Fig. 3's whole
        // point — bursts of concurrent antagonist queries pile up).
        assert!(p99 > 1.3 * p50, "p99 {p99} p50 {p50}");
        assert!(p99 > 1.7 * solo, "p99 {p99} solo {solo}");
    }

    #[test]
    fn heavier_antagonist_hurts_more() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let light = mps_victim_latencies(&cfg(ModelId::ResNet50, 15.0), &lib, &gpu);
        let heavy = mps_victim_latencies(&cfg(ModelId::Vgg19, 15.0), &lib, &gpu);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&heavy) > mean(&light),
            "vgg19 {} vs res50 {}",
            mean(&heavy),
            mean(&light)
        );
    }

    #[test]
    fn no_antagonist_load_approaches_solo() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let c = cfg(ModelId::Bert, 0.001); // essentially never arrives
        let lat = mps_victim_latencies(&c, &lib, &gpu);
        let solo = victim_solo_ms(&c, &lib, &gpu);
        let p50 = percentile(&lat, 50.0);
        assert!((p50 / solo - 1.0).abs() < 0.1, "p50 {p50} solo {solo}");
    }
}
