//! Online drift detection over the ledger's predicted-vs-measured join.
//!
//! PR 5's post-hoc study found the predictor goes out-of-distribution on
//! solo rounds (~103% |err|) while multi-way rounds match §5.2 (<10%).
//! This module makes that observation *online*: each scheduling round's
//! signed relative prediction error feeds a per-group-width detector that
//! flags an OOD regime while the run is still in flight.
//!
//! # Detector
//!
//! Classic Page–Hinkley adapts its reference mean from the stream itself,
//! which never alarms on a fault that is present from `t = 0` (the PR 4
//! predictor-bias plans bias the whole run; the solo-round OOD regime is a
//! property of the training distribution, not a mid-stream change). The
//! detectors here therefore run a one-sided Page–Hinkley-style CUSUM of the
//! *absolute* relative error against a **pinned healthy reference**
//! ([`DriftConfig::baseline_abs_err`], the §5.2 / PR 5 multi-way bound):
//!
//! ```text
//! cum    += |err| − baseline − delta      // drift slack delta
//! score   = cum − min(cum over the run)   // one-sided excursion
//! alarm when score > lambda (after a warm-up of min_samples rounds)
//! ```
//!
//! A healthy stream (|err| ≲ baseline) drives `cum` downward and the score
//! stays at 0; a level shift above `baseline + delta` grows the score
//! linearly and crosses `lambda` within a bounded number of rounds —
//! `lambda / (shift − baseline − delta)` rounds after onset, which is what
//! the EXPERIMENTS.md detection-latency tables measure.
//!
//! Alarms are latched: the first alarm per width class is the alert
//! (carrying the simulation clock), and the detector keeps accumulating
//! for score reporting without re-alerting.

use crate::sketch::WindowedMoments;

/// Group-width classes tracked independently: solo, 2-way, 3-way, ≥4-way.
pub const WIDTH_CLASSES: usize = 4;

/// Map a group width (entries in the round) to its detector class index.
pub fn width_class(width: usize) -> usize {
    width.clamp(1, WIDTH_CLASSES) - 1
}

/// Human-readable label of a width class.
pub fn width_class_label(class: usize) -> &'static str {
    match class {
        0 => "solo",
        1 => "2-way",
        2 => "3-way",
        _ => "4-way+",
    }
}

/// Drift-detector tuning. Defaults encode the repo's healthy-regime
/// findings: multi-way |err| sits under ~10% (§5.2 / PR 5), so the
/// reference is 0.10 with 0.05 slack — a regime must hold |err| above 15%
/// to accumulate at all, and the solo-round OOD regime (~103%) crosses
/// `lambda = 1.5` in `⌈1.5 / 0.88⌉ = 2` post-warm-up rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Pinned healthy reference for the absolute relative error.
    pub baseline_abs_err: f64,
    /// Page–Hinkley slack: drift below `baseline + delta` is tolerated.
    pub ph_delta: f64,
    /// Alarm threshold on the one-sided CUSUM score.
    pub ph_lambda: f64,
    /// EWMA smoothing factor for the reported error level.
    pub ewma_alpha: f64,
    /// Rounds a class must observe before it may alarm (warm-up).
    pub min_samples: usize,
    /// Window size for the reported windowed mean/std of the error.
    pub window: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            baseline_abs_err: 0.10,
            ph_delta: 0.05,
            ph_lambda: 1.5,
            ewma_alpha: 0.15,
            min_samples: 12,
            window: 64,
        }
    }
}

/// One width class's detector state.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassState {
    /// Rounds observed.
    pub samples: u64,
    /// EWMA of the absolute relative error (seeded with the first sample).
    pub ewma_abs: f64,
    /// EWMA of the signed relative error (bias direction).
    pub ewma_signed: f64,
    /// Windowed moments of the signed relative error.
    pub window: WindowedMoments,
    cum: f64,
    cum_min: f64,
    /// Simulation clock of the first alarm, if any (latched).
    pub alarmed_at_ms: Option<f64>,
}

impl ClassState {
    fn new(window: usize) -> Self {
        Self {
            samples: 0,
            ewma_abs: 0.0,
            ewma_signed: 0.0,
            window: WindowedMoments::new(window),
            cum: 0.0,
            cum_min: 0.0,
            alarmed_at_ms: None,
        }
    }

    /// Current one-sided CUSUM excursion score.
    pub fn score(&self) -> f64 {
        self.cum - self.cum_min
    }
}

/// A latched drift alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAlarm {
    /// Width class that alarmed.
    pub class: usize,
    /// Simulation clock of the alarm, ms.
    pub at_ms: f64,
    /// CUSUM score at alarm time.
    pub score: f64,
    /// EWMA |err| at alarm time.
    pub ewma_abs: f64,
}

/// Per-group-width online drift detectors over prediction error.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    cfg: DriftConfig,
    classes: Vec<ClassState>,
}

impl DriftDetector {
    /// Detectors for every width class.
    pub fn new(cfg: DriftConfig) -> Self {
        let classes = (0..WIDTH_CLASSES).map(|_| ClassState::new(cfg.window)).collect();
        Self { cfg, classes }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// State of one width class.
    pub fn class(&self, class: usize) -> &ClassState {
        &self.classes[class]
    }

    /// Feed one round's signed relative prediction error for a group of
    /// `width` queries at simulation time `at_ms`. Returns a latched alarm
    /// the first time the class's score crosses the threshold.
    pub fn observe(&mut self, width: usize, rel_error: f64, at_ms: f64) -> Option<DriftAlarm> {
        let class = width_class(width);
        let s = &mut self.classes[class];
        let abs = rel_error.abs();
        s.samples += 1;
        if s.samples == 1 {
            s.ewma_abs = abs;
            s.ewma_signed = rel_error;
        } else {
            let a = self.cfg.ewma_alpha;
            s.ewma_abs += a * (abs - s.ewma_abs);
            s.ewma_signed += a * (rel_error - s.ewma_signed);
        }
        s.window.push(rel_error);
        s.cum += abs - self.cfg.baseline_abs_err - self.cfg.ph_delta;
        if s.cum < s.cum_min {
            s.cum_min = s.cum;
        }
        let score = s.score();
        if s.alarmed_at_ms.is_none()
            && s.samples >= self.cfg.min_samples as u64
            && score > self.cfg.ph_lambda
        {
            s.alarmed_at_ms = Some(at_ms);
            return Some(DriftAlarm {
                class,
                at_ms,
                score,
                ewma_abs: s.ewma_abs,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_stream_never_alarms() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..500 {
            // Healthy multi-way regime: |err| oscillating under 10%.
            let err = if i % 2 == 0 { 0.06 } else { -0.08 };
            assert!(d.observe(2, err, i as f64).is_none());
        }
        assert_eq!(d.class(width_class(2)).alarmed_at_ms, None);
        assert!(d.class(width_class(2)).score() == 0.0);
    }

    #[test]
    fn level_shift_from_t0_alarms_after_warmup() {
        // The PR 5 solo-round OOD regime: ~103% |err| from the first round.
        let mut d = DriftDetector::new(DriftConfig::default());
        let mut alarm = None;
        for i in 0..40 {
            if let Some(a) = d.observe(1, 1.03, i as f64) {
                alarm = Some(a);
                break;
            }
        }
        let a = alarm.expect("solo OOD regime must alarm");
        // Warm-up dominates: alarm on the min_samples-th round.
        assert_eq!(a.at_ms, 11.0);
        assert_eq!(a.class, 0);
        assert!(a.ewma_abs > 0.9);
        // Latched: continuing the stream never re-alarms.
        for i in 40..80 {
            assert!(d.observe(1, 1.03, i as f64).is_none());
        }
        assert_eq!(d.class(0).alarmed_at_ms, Some(11.0));
    }

    #[test]
    fn mid_stream_shift_alarms_with_bounded_latency() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..100 {
            assert!(d.observe(2, 0.05, i as f64).is_none());
        }
        // Shift to 55% |err|: per-round increment 0.55-0.15 = 0.4 → alarm
        // within ceil(1.5/0.4) = 4 rounds of onset.
        let mut alarm = None;
        for i in 100..120 {
            if let Some(a) = d.observe(2, 0.55, i as f64) {
                alarm = Some(a);
                break;
            }
        }
        let a = alarm.expect("shift must alarm");
        assert!(a.at_ms <= 104.0, "detection latency too high: {}", a.at_ms);
    }

    #[test]
    fn sub_threshold_shift_stays_quiet() {
        // 14% |err| < baseline + delta = 15%: tolerated by design.
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..1000 {
            assert!(d.observe(3, 0.14, i as f64).is_none());
        }
    }

    #[test]
    fn classes_are_independent() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for i in 0..30 {
            d.observe(1, 1.0, i as f64);
            assert!(d.observe(4, 0.02, i as f64).is_none());
            assert!(d.observe(7, 0.02, i as f64).is_none()); // same class as 4
        }
        assert!(d.class(0).alarmed_at_ms.is_some());
        assert_eq!(d.class(3).alarmed_at_ms, None);
        assert_eq!(width_class(7), 3);
        assert_eq!(width_class_label(0), "solo");
    }
}
