//! Streaming accumulators for the run-health layer.
//!
//! The quantile sketch itself lives in `abacus_metrics` (so `ServiceStats`
//! can carry one without a dependency cycle) and is re-exported here; this
//! module adds the fixed-capacity windowed moment accumulator the drift
//! detectors use for windowed mean/std over recent prediction errors.

pub use abacus_metrics::QuantileSketch;

/// Fixed-capacity sliding window with deterministic mean/std.
///
/// A ring buffer over the last `cap` observations. Mean and standard
/// deviation are recomputed by iterating the window oldest → newest, so the
/// floating-point summation order is a pure function of the observation
/// stream — no incremental running-sum drift, bit-reproducible across
/// hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedMoments {
    buf: Vec<f64>,
    cap: usize,
    head: usize,
    len: usize,
}

impl WindowedMoments {
    /// A window keeping the last `cap` observations (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be at least 1");
        Self {
            buf: vec![0.0; cap],
            cap,
            head: 0,
            len: 0,
        }
    }

    /// Push one observation, evicting the oldest once full.
    pub fn push(&mut self, v: f64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.cap;
        if self.len < self.cap {
            self.len += 1;
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the window oldest → newest.
    fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let start = (self.head + self.cap - self.len) % self.cap;
        (0..self.len).map(move |i| self.buf[(start + i) % self.cap])
    }

    /// Mean over the window (0 when empty), summed oldest → newest.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().sum::<f64>() / self.len as f64
    }

    /// Population standard deviation over the window (0 when empty),
    /// matching `abacus_metrics::std_dev`'s convention.
    pub fn std(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.len as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut w = WindowedMoments::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        // Window is [2, 3, 4].
        assert!((w.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_metrics_stats() {
        let vals = [0.3, 1.7, -0.2, 5.5, 2.2];
        let mut w = WindowedMoments::new(8);
        for &v in &vals {
            w.push(v);
        }
        assert!((w.mean() - abacus_metrics::mean(&vals)).abs() < 1e-12);
        assert!((w.std() - abacus_metrics::std_dev(&vals)).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let w = WindowedMoments::new(4);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std(), 0.0);
    }

    #[test]
    fn wrapped_window_sums_oldest_first() {
        // After wrapping, iteration order must still be oldest → newest:
        // feed values whose sum order matters in f64 and compare against a
        // straight-line reference.
        let mut w = WindowedMoments::new(4);
        let stream = [1e16, 1.0, -1e16, 2.0, 3.0, 4.0];
        for &v in &stream {
            w.push(v);
        }
        let window = &stream[stream.len() - 4..];
        let reference = window.iter().sum::<f64>() / 4.0;
        assert_eq!(w.mean(), reference);
    }
}
