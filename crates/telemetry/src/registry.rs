//! Fixed-shape counter and histogram registry.
//!
//! The registry is deliberately allocation-free and hash-free: counters and
//! histograms are enum-indexed arrays, so recording is a bounds-checked
//! array bump and iteration order is the enum declaration order — the same
//! on every run and every thread count. Its cost is only paid when a
//! [`crate::Telemetry`] is threaded into the serving loop at all; the
//! disabled path (`None`) never touches it.

/// Monotone counters of the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Queries admitted into the node queue.
    QueriesArrived,
    /// Queries retired as completed.
    QueriesCompleted,
    /// Queries retired by the scheduler's drop mechanism.
    QueriesDropped,
    /// Queries evicted by the defensive timeout / livelock guard.
    QueriesTimedOut,
    /// Scheduler decisions taken (including plan-less rounds).
    SchedRounds,
    /// Operator groups dispatched to the executor.
    GroupsExecuted,
    /// Batched candidate-scoring calls spent by the multi-way search.
    PredictionRounds,
    /// Kernel-level events processed by the GPU engine (cumulative).
    EngineEvents,
    /// Kernel latency-spike fault activations (cumulative).
    FaultSpikes,
    /// Deepest simultaneous kernel set seen by the engine core (peak).
    EngineMaxActive,
    /// Deepest pending-arrival backlog seen by the engine core (peak).
    EnginePendingPeak,
    /// Fullest calendar-queue bucket seen by the engine core (peak; 0 when
    /// the backlog never left the sorted-Vec regime).
    EngineCalendarPeakBucket,
    /// Deepest scheduler order-index seen (peak queue of deadline keys).
    DecisionOrderPeak,
    /// High-water mark of the scheduler's per-round scratch arena (peak).
    DecisionScratchPeak,
    /// Decision rounds served by the incremental order index (cumulative).
    DecisionIncrementalRounds,
    /// Decision rounds that fell back to a full order rebuild (cumulative).
    DecisionFullRebuilds,
    /// Queries the cluster router placed on the best-headroom node.
    RouterRouted,
    /// Queries spilled to the weighted overflow pool (no node had
    /// headroom, but the predicted miss was within the spill slack).
    RouterSpilled,
    /// Queries shed at ingress (no node could finish inside the deadline).
    RouterShed,
    /// Batched node-scoring forwards issued by the router (one per scored
    /// arrival — the one-forward-per-arrival contract).
    RouterForwards,
    /// GPU activations by the predictive autoscaler (cumulative).
    AutoscaleUpEvents,
    /// GPU deactivations by the predictive autoscaler (cumulative).
    AutoscaleDownEvents,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 22] = [
        Counter::QueriesArrived,
        Counter::QueriesCompleted,
        Counter::QueriesDropped,
        Counter::QueriesTimedOut,
        Counter::SchedRounds,
        Counter::GroupsExecuted,
        Counter::PredictionRounds,
        Counter::EngineEvents,
        Counter::FaultSpikes,
        Counter::EngineMaxActive,
        Counter::EnginePendingPeak,
        Counter::EngineCalendarPeakBucket,
        Counter::DecisionOrderPeak,
        Counter::DecisionScratchPeak,
        Counter::DecisionIncrementalRounds,
        Counter::DecisionFullRebuilds,
        Counter::RouterRouted,
        Counter::RouterSpilled,
        Counter::RouterShed,
        Counter::RouterForwards,
        Counter::AutoscaleUpEvents,
        Counter::AutoscaleDownEvents,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::QueriesArrived => "queries_arrived",
            Counter::QueriesCompleted => "queries_completed",
            Counter::QueriesDropped => "queries_dropped",
            Counter::QueriesTimedOut => "queries_timed_out",
            Counter::SchedRounds => "sched_rounds",
            Counter::GroupsExecuted => "groups_executed",
            Counter::PredictionRounds => "prediction_rounds",
            Counter::EngineEvents => "engine_events",
            Counter::FaultSpikes => "fault_spikes",
            Counter::EngineMaxActive => "engine_max_active",
            Counter::EnginePendingPeak => "engine_pending_peak",
            Counter::EngineCalendarPeakBucket => "engine_calendar_peak_bucket",
            Counter::DecisionOrderPeak => "decision_order_peak",
            Counter::DecisionScratchPeak => "decision_scratch_peak",
            Counter::DecisionIncrementalRounds => "decision_incremental_rounds",
            Counter::DecisionFullRebuilds => "decision_full_rebuilds",
            Counter::RouterRouted => "router_routed",
            Counter::RouterSpilled => "router_spilled",
            Counter::RouterShed => "router_shed",
            Counter::RouterForwards => "router_forwards",
            Counter::AutoscaleUpEvents => "autoscale_up_events",
            Counter::AutoscaleDownEvents => "autoscale_down_events",
        }
    }
}

/// Histograms of the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Candidate-scoring calls per scheduling decision (search iterations).
    SearchRounds,
    /// Queries per executed operator group (overlap width).
    GroupWays,
    /// Predictor batch size per scoring call.
    PredictorBatch,
    /// Queueing delay of completed queries, ms.
    QueueDelayMs,
    /// Wall time per executed operator group, ms.
    GroupDurationMs,
    /// Headroom-score spread (best − worst candidate, ms) per routed
    /// arrival — how much signal the router had to discriminate nodes.
    RouterScoreSpreadMs,
}

impl Hist {
    /// Every histogram, in display order.
    pub const ALL: [Hist; 6] = [
        Hist::SearchRounds,
        Hist::GroupWays,
        Hist::PredictorBatch,
        Hist::QueueDelayMs,
        Hist::GroupDurationMs,
        Hist::RouterScoreSpreadMs,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SearchRounds => "search_rounds",
            Hist::GroupWays => "group_ways",
            Hist::PredictorBatch => "predictor_batch",
            Hist::QueueDelayMs => "queue_delay_ms",
            Hist::GroupDurationMs => "group_duration_ms",
            Hist::RouterScoreSpreadMs => "router_score_spread_ms",
        }
    }

    /// Upper bucket edges (inclusive); values past the last edge land in
    /// the overflow bucket.
    fn edges(self) -> &'static [f64; 15] {
        const COUNTS: [f64; 15] = [
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0,
        ];
        const MILLIS: [f64; 15] = [
            0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
            5000.0,
        ];
        match self {
            Hist::SearchRounds | Hist::GroupWays | Hist::PredictorBatch => &COUNTS,
            Hist::QueueDelayMs | Hist::GroupDurationMs | Hist::RouterScoreSpreadMs => &MILLIS,
        }
    }
}

/// A fixed-bucket histogram (15 bounded buckets + overflow).
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: &'static [f64; 15],
    buckets: [u64; 16],
    count: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    fn new(edges: &'static [f64; 15]) -> Self {
        Self {
            edges,
            buckets: [0; 16],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Record one observation.
    ///
    /// Bucket edges are **inclusive upper bounds**: an observation exactly
    /// equal to an edge lands in the *lower* bucket (`v > edge` advances,
    /// `v == edge` does not). This is the convention `edges()` documents
    /// ("upper bucket edges (inclusive)") and tests pin — a `GroupWays`
    /// observation of exactly 2.0 counts in the `≤2` bucket, not `≤3`.
    fn record(&mut self, v: f64) {
        let mut b = 0usize;
        while b < self.edges.len() && v > self.edges[b] {
            b += 1;
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-bucket observation counts: 15 bounded buckets followed by the
    /// overflow bucket.
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 100]`); the overflow bucket reports the observed max.
    pub fn quantile_bound(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b < self.edges.len() {
                    self.edges[b]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// Enum-indexed counters and histograms for one run.
#[derive(Debug, Clone)]
pub struct Registry {
    counters: [u64; Counter::ALL.len()],
    hists: [Histogram; Hist::ALL.len()],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            hists: Hist::ALL.map(|h| Histogram::new(h.edges())),
        }
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Overwrite a counter with an externally-accumulated total (engine
    /// events, fault spikes — the executor owns the cumulative count).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.counters[c as usize] = v;
    }

    /// Current counter value.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, h: Hist, v: f64) {
        self.hists[h as usize].record(v);
    }

    /// A histogram's current state.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// `(name, value)` rows for every counter, in declaration order.
    pub fn counter_rows(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL.map(|c| (c.name(), self.get(c))).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc(Counter::QueriesArrived);
        r.add(Counter::QueriesArrived, 4);
        r.set(Counter::EngineEvents, 123);
        assert_eq!(r.get(Counter::QueriesArrived), 5);
        assert_eq!(r.get(Counter::EngineEvents), 123);
        assert_eq!(r.get(Counter::QueriesDropped), 0);
        assert_eq!(r.counter_rows()[0], ("queries_arrived", 5));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut r = Registry::new();
        for v in [1.0, 1.0, 2.0, 3.0, 40.0] {
            r.observe(Hist::SearchRounds, v);
        }
        let h = r.hist(Hist::SearchRounds);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 9.4).abs() < 1e-12);
        assert_eq!(h.max(), 40.0);
        assert_eq!(h.quantile_bound(50.0), 2.0);
        assert_eq!(h.quantile_bound(99.0), 48.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let mut r = Registry::new();
        r.observe(Hist::QueueDelayMs, 9_999.0);
        assert_eq!(r.hist(Hist::QueueDelayMs).quantile_bound(99.0), 9_999.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let r = Registry::new();
        let h = r.hist(Hist::GroupWays);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(50.0), 0.0);
        // Zero-observation display values: no NaN anywhere.
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    fn exact_boundary_value_lands_in_lower_bucket() {
        // The pinned convention: edges are inclusive upper bounds, so an
        // observation exactly on an edge stays in the lower bucket.
        let mut r = Registry::new();
        r.observe(Hist::GroupWays, 2.0); // edge between buckets ≤2 and ≤3
        let h = r.hist(Hist::GroupWays);
        assert_eq!(h.buckets()[1], 1, "v == edge must land in the ≤2 bucket");
        assert_eq!(h.buckets()[2], 0);
        assert_eq!(h.quantile_bound(100.0), 2.0);
        // Infinitesimally above the edge crosses into the next bucket.
        let mut r2 = Registry::new();
        r2.observe(Hist::GroupWays, 2.0 + 1e-9);
        assert_eq!(r2.hist(Hist::GroupWays).buckets()[2], 1);
    }

    #[test]
    fn overflow_bucket_accounting() {
        let mut r = Registry::new();
        // Last edge of the MILLIS scale is 5000; exactly 5000 is bounded,
        // anything above it overflows.
        r.observe(Hist::QueueDelayMs, 5000.0);
        r.observe(Hist::QueueDelayMs, 5000.1);
        r.observe(Hist::QueueDelayMs, 80_000.0);
        let h = r.hist(Hist::QueueDelayMs);
        assert_eq!(h.buckets()[14], 1, "v == last edge stays bounded");
        assert_eq!(h.buckets()[15], 2, "two observations overflow");
        assert_eq!(h.count(), 3);
        // Overflow contributes to sum/mean/max like any observation…
        assert_eq!(h.max(), 80_000.0);
        assert!((h.sum() - 90_000.1).abs() < 1e-6);
        // …and the overflow bucket's quantile bound is the observed max,
        // not the (unbounded) edge.
        assert_eq!(h.quantile_bound(99.0), 80_000.0);
    }
}
