//! Query-lifecycle events and wall-clock kernel spans.
//!
//! One [`QueryEvent`] is appended per lifecycle transition of a query:
//! admission into the node queue, each dispatch into an operator group, and
//! the terminal retire (complete / drop / timeout). Events are keyed by the
//! query id the serving loop assigns (its arrival index), so the stream
//! joins 1:1 against the run's `QueryRecord`s.
//!
//! [`WallKernelSpan`] is a [`gpu_sim::KernelSpan`] rebased from group-local
//! engine time onto the serving wall clock: the engine restarts at `t = 0`
//! for every exclusive group, so the executor's spans are shifted by the
//! group's dispatch instant before being recorded here.

use abacus_metrics::QueryOutcome;
use dnn_models::ModelId;

/// What happened to a query at one instant of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryEventKind {
    /// The query entered the node queue (at its arrival timestamp).
    Arrived {
        /// Service index within the co-location set.
        service: usize,
        /// The service's model.
        model: ModelId,
        /// Latency budget, ms.
        qos_ms: f64,
    },
    /// An operator range of the query was dispatched in a scheduling round.
    Dispatched {
        /// Scheduling-round id (joins against the decision ledger).
        round: u64,
        /// First operator of the dispatched segment.
        op_start: usize,
        /// One past the last operator of the segment.
        op_end: usize,
    },
    /// The query left the system.
    Retired {
        /// How it ended.
        outcome: QueryOutcome,
        /// End-to-end latency at retire, ms.
        latency_ms: f64,
        /// Queueing delay before the first operator ran, ms.
        queue_ms: f64,
        /// Service index within the co-location set.
        service: usize,
    },
}

/// One timestamped lifecycle event of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEvent {
    /// Query id (the serving loop's arrival index).
    pub query: u64,
    /// Event timestamp on the serving wall clock, ms.
    pub at_ms: f64,
    /// What happened.
    pub kind: QueryEventKind,
}

/// One kernel execution interval on the serving wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallKernelSpan {
    /// Scheduling round whose operator group ran this kernel.
    pub round: u64,
    /// Stream index within the group (one stream per participating query).
    pub stream: usize,
    /// Kernel index within its stream.
    pub kernel: usize,
    /// Execution start on the wall clock, ms.
    pub start_ms: f64,
    /// Execution end on the wall clock, ms.
    pub end_ms: f64,
    /// The kernel's SM occupancy share in `(0, 1]`.
    pub occupancy: f64,
}
