//! Multi-window SLO burn-rate monitors.
//!
//! Each service gets an error budget: at most [`SloConfig::budget`] of its
//! queries may violate QoS (late completion, drop, or timeout — the
//! Fig. 15 convention). Burn rate is the ratio of the observed violation
//! fraction to that budget: burn 1.0 consumes the budget exactly, burn 2.0
//! consumes it twice as fast. Following multi-window burn-rate alerting
//! practice, an alert fires only when **both** a fast and a slow sliding
//! window burn above threshold — the fast window gives low detection
//! latency, the slow window suppresses blips.
//!
//! All timestamps are the *simulation* clock, so alert times (and the
//! EXPERIMENTS.md detection-latency tables built from them) are
//! deterministic and reproducible.

use std::collections::VecDeque;

/// Burn-rate monitor tuning. Defaults fit the repo's fast-scale horizons
/// (5 s): a 1 s fast window, 5 s slow window, 10% violation budget, alert
/// at 2× burn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Violation budget as a fraction of queries (0..1].
    pub budget: f64,
    /// Fast sliding window, ms.
    pub fast_window_ms: f64,
    /// Slow sliding window, ms.
    pub slow_window_ms: f64,
    /// Alert when both windows burn at ≥ this multiple of the budget.
    pub burn_threshold: f64,
    /// Minimum queries per window before it can contribute to an alert.
    pub min_samples: usize,
    /// Minimum queries before the whole-run budget can be declared
    /// exhausted.
    pub exhaust_min_samples: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            budget: 0.10,
            fast_window_ms: 1_000.0,
            slow_window_ms: 5_000.0,
            burn_threshold: 2.0,
            min_samples: 20,
            exhaust_min_samples: 50,
        }
    }
}

/// One sliding window of (timestamp, violated) observations with an
/// incrementally maintained violation count.
#[derive(Debug, Clone, Default)]
struct Window {
    entries: VecDeque<(f64, bool)>,
    violations: usize,
}

impl Window {
    fn push(&mut self, at_ms: f64, violated: bool, span_ms: f64) {
        self.entries.push_back((at_ms, violated));
        if violated {
            self.violations += 1;
        }
        while let Some(&(t, v)) = self.entries.front() {
            if t >= at_ms - span_ms {
                break;
            }
            self.entries.pop_front();
            if v {
                self.violations -= 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn burn(&self, budget: f64) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        (self.violations as f64 / self.entries.len() as f64) / budget
    }
}

/// Per-service burn state.
#[derive(Debug, Clone)]
struct ServiceSlo {
    fast: Window,
    slow: Window,
    total: u64,
    violated: u64,
    /// Burn-rate alert armed: re-arms when the fast burn drops back under
    /// threshold, so a sustained episode alerts once, not per query.
    armed: bool,
    exhausted: bool,
}

impl ServiceSlo {
    fn new() -> Self {
        Self {
            fast: Window::default(),
            slow: Window::default(),
            total: 0,
            violated: 0,
            armed: true,
            exhausted: false,
        }
    }
}

/// A burn-rate or budget-exhaustion alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloAlert {
    /// Fast and slow windows both burning above threshold.
    BurnRate {
        /// Service index.
        service: usize,
        /// Simulation clock, ms.
        at_ms: f64,
        /// Fast-window burn rate.
        fast_burn: f64,
        /// Slow-window burn rate.
        slow_burn: f64,
    },
    /// Whole-run violation ratio exceeded the budget (fires once per
    /// service; trips the flight recorder).
    BudgetExhausted {
        /// Service index.
        service: usize,
        /// Simulation clock, ms.
        at_ms: f64,
        /// Whole-run violation ratio at trip time.
        ratio: f64,
    },
}

impl SloAlert {
    /// Simulation clock of the alert, ms.
    pub fn at_ms(&self) -> f64 {
        match *self {
            SloAlert::BurnRate { at_ms, .. } | SloAlert::BudgetExhausted { at_ms, .. } => at_ms,
        }
    }
}

/// Multi-window burn-rate monitors over every service in a run.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    cfg: SloConfig,
    services: Vec<ServiceSlo>,
}

impl SloMonitor {
    /// An empty monitor; services materialise on first observation.
    pub fn new(cfg: SloConfig) -> Self {
        Self {
            cfg,
            services: Vec::new(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    fn service_mut(&mut self, service: usize) -> &mut ServiceSlo {
        while self.services.len() <= service {
            self.services.push(ServiceSlo::new());
        }
        &mut self.services[service]
    }

    /// Feed one retired query. `violated` follows the Fig. 15 convention
    /// (late completion, drop, or timeout). Returns 0..2 alerts (burn-rate
    /// and/or budget-exhausted), timestamps on the simulation clock.
    pub fn observe(&mut self, service: usize, at_ms: f64, violated: bool) -> Vec<SloAlert> {
        let cfg = self.cfg;
        let s = self.service_mut(service);
        s.total += 1;
        if violated {
            s.violated += 1;
        }
        s.fast.push(at_ms, violated, cfg.fast_window_ms);
        s.slow.push(at_ms, violated, cfg.slow_window_ms);
        let fast_burn = s.fast.burn(cfg.budget);
        let slow_burn = s.slow.burn(cfg.budget);
        let mut alerts = Vec::new();
        let burning = fast_burn >= cfg.burn_threshold
            && slow_burn >= cfg.burn_threshold
            && s.fast.len() >= cfg.min_samples
            && s.slow.len() >= cfg.min_samples;
        if burning && s.armed {
            s.armed = false;
            alerts.push(SloAlert::BurnRate {
                service,
                at_ms,
                fast_burn,
                slow_burn,
            });
        } else if !burning && fast_burn < cfg.burn_threshold {
            s.armed = true;
        }
        let ratio = s.violated as f64 / s.total as f64;
        if !s.exhausted && s.total >= cfg.exhaust_min_samples as u64 && ratio > cfg.budget {
            s.exhausted = true;
            alerts.push(SloAlert::BudgetExhausted {
                service,
                at_ms,
                ratio,
            });
        }
        alerts
    }

    /// Current fast/slow burn rates of a service (0 when unseen).
    pub fn burn_rates(&self, service: usize) -> (f64, f64) {
        match self.services.get(service) {
            Some(s) => (s.fast.burn(self.cfg.budget), s.slow.burn(self.cfg.budget)),
            None => (0.0, 0.0),
        }
    }

    /// Whole-run violation ratio of a service (0 when unseen).
    pub fn violation_ratio(&self, service: usize) -> f64 {
        match self.services.get(service) {
            Some(s) if s.total > 0 => s.violated as f64 / s.total as f64,
            _ => 0.0,
        }
    }

    /// Services observed so far.
    pub fn services(&self) -> usize {
        self.services.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut SloMonitor, service: usize, t0: f64, n: usize, violated: bool) -> Vec<SloAlert> {
        let mut all = Vec::new();
        for i in 0..n {
            all.extend(m.observe(service, t0 + i as f64 * 10.0, violated));
        }
        all
    }

    #[test]
    fn healthy_service_never_alerts() {
        let mut m = SloMonitor::new(SloConfig::default());
        let alerts = feed(&mut m, 0, 0.0, 400, false);
        assert!(alerts.is_empty());
        assert_eq!(m.burn_rates(0), (0.0, 0.0));
    }

    #[test]
    fn sustained_violations_alert_once_then_rearm() {
        let mut m = SloMonitor::new(SloConfig::default());
        feed(&mut m, 0, 0.0, 100, false); // healthy prefix
        // 100% violations: burn = 1/0.1 = 10x in both windows once the
        // fast window turns over.
        let alerts = feed(&mut m, 0, 1000.0, 200, true);
        let burns: Vec<_> = alerts
            .iter()
            .filter(|a| matches!(a, SloAlert::BurnRate { .. }))
            .collect();
        assert_eq!(burns.len(), 1, "sustained episode must alert once");
        // Recovery re-arms, a second episode re-alerts.
        feed(&mut m, 0, 4000.0, 300, false);
        let again = feed(&mut m, 0, 8000.0, 200, true);
        assert!(again
            .iter()
            .any(|a| matches!(a, SloAlert::BurnRate { .. })));
    }

    #[test]
    fn budget_exhaustion_fires_once_with_sim_clock() {
        let mut m = SloMonitor::new(SloConfig::default());
        let alerts = feed(&mut m, 2, 500.0, 100, true);
        let exhausted: Vec<_> = alerts
            .iter()
            .filter_map(|a| match a {
                SloAlert::BudgetExhausted { at_ms, ratio, service } => {
                    Some((*service, *at_ms, *ratio))
                }
                _ => None,
            })
            .collect();
        assert_eq!(exhausted.len(), 1);
        let (service, at_ms, ratio) = exhausted[0];
        assert_eq!(service, 2);
        // Fires exactly at the 50th query: t0 + 49*10 on the sim clock.
        assert_eq!(at_ms, 990.0);
        assert!(ratio > 0.99);
    }

    #[test]
    fn brief_blip_within_slow_window_is_suppressed() {
        let cfg = SloConfig::default();
        let mut m = SloMonitor::new(cfg);
        // Long healthy history fills the slow window.
        feed(&mut m, 0, 0.0, 450, false);
        // A 25-query violation burst: fast window burns, slow window
        // (500 queries over 5 s) stays diluted under threshold.
        let alerts = feed(&mut m, 0, 4500.0, 25, true);
        assert!(
            !alerts.iter().any(|a| matches!(a, SloAlert::BurnRate { .. })),
            "slow window must suppress a brief blip"
        );
    }
}
