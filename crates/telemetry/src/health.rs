//! The streaming run-health bundle.
//!
//! [`RunHealth`] composes the observability substrate — quantile sketches
//! over queue delay / latency / measured group time, per-width drift
//! detectors on the ledger's prediction-error join, per-service SLO
//! burn-rate monitors, and the violation flight recorder — behind one
//! optional field on `Telemetry`. The serving loop never calls into this
//! module directly: `Telemetry`'s existing hooks forward when health
//! monitoring is enabled, so the disabled path stays byte-identical.
//!
//! Every alert carries the **simulation clock** (the `at_ms` the serving
//! loop passed to the hook), never wall time: alert streams are `PartialEq`
//! and bit-reproducible for a fixed seed, which the detection-latency
//! tables in EXPERIMENTS.md rely on.

use crate::drift::{width_class_label, DriftConfig, DriftDetector};
use crate::export::{esc, fmt_f64};
use crate::flight::{FlightConfig, FlightRecorder, FlightRound};
use crate::ledger::RoundEntry;
use crate::sketch::{QuantileSketch, WindowedMoments};
use crate::slo::{SloAlert, SloConfig, SloMonitor};
use abacus_metrics::QueryOutcome;

/// Tuning for the whole run-health bundle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthConfig {
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// SLO burn-rate tuning.
    pub slo: SloConfig,
    /// Flight-recorder tuning.
    pub flight: FlightConfig,
}

/// What a health alert reports.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthAlertKind {
    /// Prediction-error drift in one group-width class.
    Drift {
        /// Width class index (see [`crate::drift::width_class`]).
        class: usize,
        /// CUSUM score at alarm time.
        score: f64,
        /// EWMA |err| at alarm time.
        ewma_abs: f64,
    },
    /// A service burning its violation budget in both windows.
    BurnRate {
        /// Service index.
        service: usize,
        /// Fast-window burn rate.
        fast_burn: f64,
        /// Slow-window burn rate.
        slow_burn: f64,
    },
    /// A service's whole-run violation ratio exceeded its budget.
    BudgetExhausted {
        /// Service index.
        service: usize,
        /// Violation ratio at trip time.
        ratio: f64,
    },
}

/// One deterministic health alert.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Position in the run's alert stream.
    pub seq: u64,
    /// Simulation clock of the alert, ms.
    pub at_ms: f64,
    /// What happened.
    pub kind: HealthAlertKind,
}

impl HealthAlert {
    /// Short label for trace instants and flight-dump reasons.
    pub fn label(&self) -> String {
        match &self.kind {
            HealthAlertKind::Drift { class, .. } => {
                format!("drift:{}", width_class_label(*class))
            }
            HealthAlertKind::BurnRate { service, .. } => format!("slo_burn:svc{service}"),
            HealthAlertKind::BudgetExhausted { service, .. } => {
                format!("slo_budget:svc{service}")
            }
        }
    }

    /// Hand-rolled JSON object (insertion-ordered, NaN → null).
    pub fn to_json(&self) -> String {
        let head = format!("{{\"seq\":{},\"at_ms\":{},", self.seq, fmt_f64(self.at_ms));
        match &self.kind {
            HealthAlertKind::Drift {
                class,
                score,
                ewma_abs,
            } => format!(
                "{head}\"kind\":\"drift\",\"class\":\"{}\",\"score\":{},\"ewma_abs\":{}}}",
                esc(width_class_label(*class)),
                fmt_f64(*score),
                fmt_f64(*ewma_abs)
            ),
            HealthAlertKind::BurnRate {
                service,
                fast_burn,
                slow_burn,
            } => format!(
                "{head}\"kind\":\"burn_rate\",\"service\":{service},\"fast_burn\":{},\"slow_burn\":{}}}",
                fmt_f64(*fast_burn),
                fmt_f64(*slow_burn)
            ),
            HealthAlertKind::BudgetExhausted { service, ratio } => format!(
                "{head}\"kind\":\"budget_exhausted\",\"service\":{service},\"ratio\":{}}}",
                fmt_f64(*ratio)
            ),
        }
    }
}

/// Streaming run-health state for one serving run.
#[derive(Debug, Clone)]
pub struct RunHealth {
    cfg: HealthConfig,
    queue_sketch: QuantileSketch,
    latency_sketch: QuantileSketch,
    group_sketch: QuantileSketch,
    err_window: WindowedMoments,
    drift: DriftDetector,
    slo: SloMonitor,
    flight: FlightRecorder,
    alerts: Vec<HealthAlert>,
    /// Per-service QoS targets learned from arrivals (violation test at
    /// retire time — the retire hook does not carry the target).
    qos_by_service: Vec<f64>,
}

impl RunHealth {
    /// A fresh bundle.
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            queue_sketch: QuantileSketch::new(),
            latency_sketch: QuantileSketch::new(),
            group_sketch: QuantileSketch::new(),
            err_window: WindowedMoments::new(cfg.drift.window),
            drift: DriftDetector::new(cfg.drift),
            slo: SloMonitor::new(cfg.slo),
            flight: FlightRecorder::new(cfg.flight),
            alerts: Vec::new(),
            qos_by_service: Vec::new(),
            cfg,
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Learn a service's QoS target (called on every arrival; idempotent).
    pub fn note_service(&mut self, service: usize, qos_ms: f64) {
        while self.qos_by_service.len() <= service {
            self.qos_by_service.push(f64::INFINITY);
        }
        self.qos_by_service[service] = qos_ms;
    }

    /// Feed one retired query into the SLO monitors and outcome sketches.
    pub fn on_retire(
        &mut self,
        at_ms: f64,
        service: usize,
        outcome: QueryOutcome,
        latency_ms: f64,
        queue_ms: f64,
    ) {
        if outcome == QueryOutcome::Completed {
            self.queue_sketch.record(queue_ms);
            self.latency_sketch.record(latency_ms);
        }
        let qos = self
            .qos_by_service
            .get(service)
            .copied()
            .unwrap_or(f64::INFINITY);
        let violated = outcome != QueryOutcome::Completed || latency_ms > qos;
        self.observe_query(at_ms, service, violated);
    }

    /// Feed one query outcome (already reduced to violated-or-not) into the
    /// burn-rate monitors. `on_retire` calls this; cluster paths that only
    /// have final `QueryRecord`s feed it directly in retire-time order.
    pub fn observe_query(&mut self, at_ms: f64, service: usize, violated: bool) {
        for alert in self.slo.observe(service, at_ms, violated) {
            let kind = match alert {
                SloAlert::BurnRate {
                    service,
                    fast_burn,
                    slow_burn,
                    ..
                } => HealthAlertKind::BurnRate {
                    service,
                    fast_burn,
                    slow_burn,
                },
                SloAlert::BudgetExhausted { service, ratio, .. } => {
                    HealthAlertKind::BudgetExhausted { service, ratio }
                }
            };
            let trip = matches!(kind, HealthAlertKind::BudgetExhausted { .. });
            self.push_alert(alert.at_ms(), kind, trip);
        }
    }

    /// Feed one completed scheduling round: the back-filled ledger row plus
    /// the engine health counters at completion time. `at_ms` is the round's
    /// completion instant on the simulation clock.
    pub fn on_round(
        &mut self,
        row: &RoundEntry,
        at_ms: f64,
        engine_events: u64,
        engine_max_active: u64,
    ) {
        if row.actual_exec_ms.is_finite() && row.actual_exec_ms > 0.0 {
            self.group_sketch.record(row.actual_exec_ms);
        }
        let rel_err = row.rel_error();
        self.flight.push(FlightRound {
            round: row.round,
            at_ms,
            ways: row.entries.len(),
            queue_len: row.queue_len,
            dropped: row.dropped,
            predicted_ms: row.predicted_ms,
            actual_exec_ms: row.actual_exec_ms,
            rel_err: rel_err.unwrap_or(f64::NAN),
            headroom_ms: row.critical_headroom_ms,
            engine_events,
            engine_max_active,
        });
        if let Some(err) = rel_err {
            self.err_window.push(err);
            if let Some(a) = self.drift.observe(row.entries.len(), err, at_ms) {
                self.push_alert(
                    a.at_ms,
                    HealthAlertKind::Drift {
                        class: a.class,
                        score: a.score,
                        ewma_abs: a.ewma_abs,
                    },
                    true,
                );
            }
        }
    }

    fn push_alert(&mut self, at_ms: f64, kind: HealthAlertKind, trip: bool) {
        let alert = HealthAlert {
            seq: self.alerts.len() as u64,
            at_ms,
            kind,
        };
        if trip {
            self.flight.trip(&alert.label(), at_ms);
        }
        self.alerts.push(alert);
    }

    /// The run's alert stream, in detection order.
    pub fn alerts(&self) -> &[HealthAlert] {
        &self.alerts
    }

    /// The drift detectors.
    pub fn drift(&self) -> &DriftDetector {
        &self.drift
    }

    /// The SLO burn-rate monitors.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Sketch over completed-query queueing delays.
    pub fn queue_sketch(&self) -> &QuantileSketch {
        &self.queue_sketch
    }

    /// Sketch over completed-query end-to-end latencies.
    pub fn latency_sketch(&self) -> &QuantileSketch {
        &self.latency_sketch
    }

    /// Sketch over measured per-round kernel times.
    pub fn group_sketch(&self) -> &QuantileSketch {
        &self.group_sketch
    }

    /// Windowed moments of recent signed prediction errors (all widths).
    pub fn err_window(&self) -> &WindowedMoments {
        &self.err_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RoundEntry;

    fn completed_row(round: u64, ways: usize, predicted: f64, actual: f64) -> RoundEntry {
        RoundEntry {
            round,
            at_ms: round as f64,
            queue_len: 3,
            dropped: 0,
            overhead_ms: 0.1,
            prediction_rounds: 2,
            entries: vec![
                crate::ledger::LedgerEntry {
                    query: 0,
                    model: dnn_models::ModelId::ResNet50,
                    op_start: 0,
                    op_end: 4,
                };
                ways
            ],
            predicted_ms: predicted,
            upper_ms: f64::NAN,
            critical_headroom_ms: 5.0,
            exec_start_ms: round as f64,
            actual_ms: actual + 0.2,
            actual_exec_ms: actual,
        }
    }

    #[test]
    fn drift_alert_trips_flight_with_sim_clock() {
        let mut h = RunHealth::new(HealthConfig::default());
        for i in 0..30 {
            // Solo rounds at ~100% error: the PR 5 OOD regime, online.
            h.on_round(&completed_row(i, 1, 5.0, 10.0), 100.0 + i as f64, i * 10, 3);
            // Healthy 2-way rounds alongside.
            h.on_round(&completed_row(100 + i, 2, 10.0, 10.5), 100.0 + i as f64, i * 10, 3);
        }
        let drifts: Vec<_> = h
            .alerts()
            .iter()
            .filter(|a| matches!(a.kind, HealthAlertKind::Drift { class: 0, .. }))
            .collect();
        assert_eq!(drifts.len(), 1, "solo class alarms exactly once");
        assert_eq!(drifts[0].at_ms, 111.0, "alert carries the sim clock");
        let dump = h.flight().dump().expect("drift must trip the recorder");
        assert_eq!(dump.reason, "drift:solo");
        assert!(dump.rounds.len() <= h.config().flight.capacity);
        assert!(!h
            .alerts()
            .iter()
            .any(|a| matches!(a.kind, HealthAlertKind::Drift { class: 1, .. })));
    }

    #[test]
    fn budget_exhaustion_trips_flight() {
        let mut h = RunHealth::new(HealthConfig::default());
        h.note_service(0, 20.0);
        for i in 0..60 {
            // Every query completes late: violation under Fig. 15 rules.
            h.on_retire(i as f64 * 10.0, 0, QueryOutcome::Completed, 30.0, 2.0);
        }
        assert!(h
            .alerts()
            .iter()
            .any(|a| matches!(a.kind, HealthAlertKind::BudgetExhausted { service: 0, .. })));
        assert_eq!(h.flight().dump().unwrap().reason, "slo_budget:svc0");
        // Completed queries (even late) still feed the sketches.
        assert_eq!(h.latency_sketch().count(), 60);
        assert_eq!(h.queue_sketch().count(), 60);
    }

    #[test]
    fn healthy_run_stays_quiet_and_alerts_are_comparable() {
        let mut h = RunHealth::new(HealthConfig::default());
        h.note_service(0, 100.0);
        for i in 0..200 {
            h.on_retire(i as f64 * 5.0, 0, QueryOutcome::Completed, 12.0, 1.0);
            h.on_round(&completed_row(i, 2, 10.0, 10.4), i as f64 * 5.0, i * 7, 2);
        }
        assert!(h.alerts().is_empty());
        assert!(h.flight().dump().is_none());
        // Two identical runs produce equal alert streams (PartialEq).
        let a: Vec<HealthAlert> = h.alerts().to_vec();
        assert_eq!(a, Vec::<HealthAlert>::new());
        // Alert JSON is balanced.
        let alert = HealthAlert {
            seq: 0,
            at_ms: 1.5,
            kind: HealthAlertKind::Drift {
                class: 0,
                score: 2.0,
                ewma_abs: 1.0,
            },
        };
        let json = alert.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"kind\":\"drift\""));
    }
}
