//! Deterministic, opt-in telemetry for the serving stack.
//!
//! The subsystem is structured as four pieces:
//!
//! * [`event`] — query-lifecycle events (arrive / dispatch / retire) and
//!   wall-clock kernel spans;
//! * [`ledger`] — the scheduler decision ledger, joining each round's
//!   predicted latency and critical-query headroom against the measured
//!   execution (§5.2 prediction-error study as a serving artifact);
//! * [`registry`] — allocation-free enum-indexed counters and histograms;
//! * [`export`] — Chrome trace-event / Perfetto JSON and CSV lowering.
//!
//! # Determinism contract
//!
//! Telemetry records only quantities the simulation already computes
//! deterministically (wall-clock instants, predictor outputs, engine event
//! counts), in the order the single-threaded serving loop produces them.
//! Recorded streams are therefore bit-reproducible for a fixed seed and
//! configuration, independent of host thread count — parallel sweeps give
//! each cell its own `Telemetry`.
//!
//! # Disabled-path guarantee
//!
//! Telemetry is threaded into the serving loop as `Option<&mut Telemetry>`.
//! With `None`, the instrumented loop takes no telemetry branch that
//! mutates simulation state and performs no allocation: results are
//! byte-identical to the uninstrumented loop, which the golden checksum
//! tests pin.

pub mod drift;
pub mod event;
pub mod export;
pub mod flight;
pub mod health;
pub mod ledger;
pub mod registry;
pub mod sketch;
pub mod slo;

pub use drift::{width_class, width_class_label, DriftAlarm, DriftConfig, DriftDetector, WIDTH_CLASSES};
pub use event::{QueryEvent, QueryEventKind, WallKernelSpan};
pub use export::{ChromeTrace, PID_COUNTERS, PID_GPU, PID_HEALTH, PID_SERVING};
pub use flight::{FlightConfig, FlightDump, FlightRecorder, FlightRound};
pub use health::{HealthAlert, HealthAlertKind, HealthConfig, RunHealth};
pub use ledger::{DecisionLedger, LedgerEntry, PredictionErrorReport, RoundEntry};
pub use registry::{Counter, Hist, Histogram, Registry};
pub use sketch::{QuantileSketch, WindowedMoments};
pub use slo::{SloAlert, SloConfig, SloMonitor};

use abacus_metrics::QueryOutcome;
use dnn_models::ModelId;

/// All telemetry recorded for one serving run.
///
/// Construct one per run (`new`, or [`Telemetry::with_kernel_trace`] to also
/// harvest per-kernel spans from the executor) and pass it to the
/// instrumented serving loop; afterwards read the event stream, ledger and
/// registry, or lower everything with [`export::ChromeTrace::add_telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    events: Vec<QueryEvent>,
    kernels: Vec<WallKernelSpan>,
    /// Per-round scheduler decisions joined with measured outcomes.
    pub ledger: DecisionLedger,
    /// Counters and histograms of the run.
    pub registry: Registry,
    kernel_trace: bool,
    predictor_ways: Option<usize>,
    /// Streaming run-health monitors (sketches, drift, SLO burn, flight
    /// recorder) — `None` unless explicitly enabled, so plain telemetry
    /// stays monitor-free and its recorded streams byte-identical.
    health: Option<Box<RunHealth>>,
}

impl Telemetry {
    /// Telemetry without kernel-span harvesting (the cheap default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry that also asks the executor for per-kernel spans.
    pub fn with_kernel_trace() -> Self {
        Self {
            kernel_trace: true,
            ..Self::default()
        }
    }

    /// Telemetry with the streaming run-health monitors enabled at their
    /// default tuning.
    pub fn with_health() -> Self {
        let mut t = Self::default();
        t.enable_health(HealthConfig::default());
        t
    }

    /// Enable (or re-tune) the run-health monitors on an existing
    /// `Telemetry` — composes with [`Telemetry::with_kernel_trace`].
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        self.health = Some(Box::new(RunHealth::new(cfg)));
    }

    /// The run-health monitors, when enabled.
    pub fn health(&self) -> Option<&RunHealth> {
        self.health.as_deref()
    }

    /// Mutable run-health monitors, when enabled.
    pub fn health_mut(&mut self) -> Option<&mut RunHealth> {
        self.health.as_deref_mut()
    }

    /// Whether kernel spans should be harvested after each group.
    pub fn kernel_trace_enabled(&self) -> bool {
        self.kernel_trace
    }

    /// Record the scheduler's candidate batch width (sizes predictor-batch
    /// histogram observations; only the Abacus policy has one).
    pub fn set_predictor_ways(&mut self, ways: usize) {
        self.predictor_ways = Some(ways);
    }

    /// The scheduler's candidate batch width, when known.
    pub fn predictor_ways(&self) -> Option<usize> {
        self.predictor_ways
    }

    /// The recorded query-lifecycle event stream, in record order.
    pub fn events(&self) -> &[QueryEvent] {
        &self.events
    }

    /// The recorded wall-clock kernel spans, in record order.
    pub fn kernel_spans(&self) -> &[WallKernelSpan] {
        &self.kernels
    }

    /// A query entered the node queue.
    pub fn on_arrive(&mut self, query: u64, at_ms: f64, service: usize, model: ModelId, qos_ms: f64) {
        self.registry.inc(Counter::QueriesArrived);
        if let Some(h) = self.health.as_deref_mut() {
            h.note_service(service, qos_ms);
        }
        self.events.push(QueryEvent {
            query,
            at_ms,
            kind: QueryEventKind::Arrived {
                service,
                model,
                qos_ms,
            },
        });
    }

    /// An operator range of a query was dispatched in a scheduling round.
    pub fn on_dispatch(&mut self, query: u64, at_ms: f64, round: u64, op_start: usize, op_end: usize) {
        self.events.push(QueryEvent {
            query,
            at_ms,
            kind: QueryEventKind::Dispatched {
                round,
                op_start,
                op_end,
            },
        });
    }

    /// A query left the system.
    pub fn on_retire(
        &mut self,
        query: u64,
        at_ms: f64,
        service: usize,
        outcome: QueryOutcome,
        latency_ms: f64,
        queue_ms: f64,
    ) {
        self.registry.inc(match outcome {
            QueryOutcome::Completed => Counter::QueriesCompleted,
            QueryOutcome::Dropped => Counter::QueriesDropped,
            QueryOutcome::TimedOut => Counter::QueriesTimedOut,
        });
        if outcome == QueryOutcome::Completed {
            self.registry.observe(Hist::QueueDelayMs, queue_ms);
        }
        if let Some(h) = self.health.as_deref_mut() {
            h.on_retire(at_ms, service, outcome, latency_ms, queue_ms);
        }
        self.events.push(QueryEvent {
            query,
            at_ms,
            kind: QueryEventKind::Retired {
                outcome,
                latency_ms,
                queue_ms,
                service,
            },
        });
    }

    /// Back-fill the most recent ledger row with its measured execution and
    /// feed the completed round into the run-health monitors (when
    /// enabled). Call *after* the round's engine counters have been set so
    /// the flight-recorder snapshot sees them fresh.
    pub fn on_round_complete(
        &mut self,
        round: u64,
        exec_start_ms: f64,
        actual_ms: f64,
        actual_exec_ms: f64,
    ) {
        self.ledger
            .complete_last(round, exec_start_ms, actual_ms, actual_exec_ms);
        if let Some(h) = self.health.as_deref_mut() {
            let row = self
                .ledger
                .rows()
                .last()
                .expect("complete_last guarantees a row");
            h.on_round(
                row,
                exec_start_ms + actual_ms,
                self.registry.get(Counter::EngineEvents),
                self.registry.get(Counter::EngineMaxActive),
            );
        }
    }

    /// Record one engine kernel span, rebased from group-local engine time
    /// onto the serving wall clock by the group's dispatch instant.
    pub fn on_kernel_span(&mut self, round: u64, base_ms: f64, span: &gpu_sim::KernelSpan) {
        self.kernels.push(WallKernelSpan {
            round,
            stream: span.stream.0,
            kernel: span.kernel,
            start_ms: base_ms + span.start_ms,
            end_ms: base_ms + span.end_ms,
            occupancy: span.occupancy,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_hooks_record_events_and_counters() {
        let mut t = Telemetry::new();
        t.on_arrive(0, 1.0, 1, ModelId::Bert, 100.0);
        t.on_dispatch(0, 2.0, 7, 0, 4);
        t.on_retire(0, 5.0, 1, QueryOutcome::Completed, 4.0, 1.0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.registry.get(Counter::QueriesArrived), 1);
        assert_eq!(t.registry.get(Counter::QueriesCompleted), 1);
        assert_eq!(t.registry.hist(Hist::QueueDelayMs).count(), 1);
        assert_eq!(
            t.events()[1].kind,
            QueryEventKind::Dispatched {
                round: 7,
                op_start: 0,
                op_end: 4
            }
        );
    }

    #[test]
    fn dropped_queries_do_not_pollute_queue_delay() {
        let mut t = Telemetry::new();
        t.on_retire(3, 9.0, 0, QueryOutcome::Dropped, 9.0, 9.0);
        assert_eq!(t.registry.get(Counter::QueriesDropped), 1);
        assert_eq!(t.registry.hist(Hist::QueueDelayMs).count(), 0);
    }
}
