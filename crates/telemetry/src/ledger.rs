//! The scheduler decision ledger.
//!
//! One [`RoundEntry`] per scheduling round that made progress (planned a
//! group and/or dropped queries). The row records what the scheduler *knew*
//! at decision time — queue depth, candidate-scoring effort, the chosen
//! group with its predicted latency and the critical query's headroom — and
//! is back-filled with what actually happened once the group's execution
//! completes. The predicted-vs-actual join is the paper's §5.2
//! prediction-error study as a first-class serving artifact.

use abacus_metrics::{mean, std_dev};
use dnn_models::ModelId;

/// One query's operator segment inside a chosen group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Query id.
    pub query: u64,
    /// The query's model.
    pub model: ModelId,
    /// First operator of the segment.
    pub op_start: usize,
    /// One past the last operator.
    pub op_end: usize,
}

/// One scheduling round's decision and its measured outcome.
///
/// Fields that are unknowable for the row (`predicted_ms` of a plan-less
/// drop round, `actual_ms` before execution completes) hold `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEntry {
    /// Scheduling-round id (monotone over the run).
    pub round: u64,
    /// When the scheduler decided, ms (before its own overhead is charged).
    pub at_ms: f64,
    /// Queue depth the scheduler saw.
    pub queue_len: usize,
    /// Queries dropped by this decision.
    pub dropped: usize,
    /// Scheduling overhead charged before dispatch (Eq. 3), ms.
    pub overhead_ms: f64,
    /// Batched candidate-scoring calls the multi-way search spent.
    pub prediction_rounds: usize,
    /// The chosen group's segments (empty when nothing was planned).
    pub entries: Vec<LedgerEntry>,
    /// The predictor's latency estimate for the chosen group, ms.
    pub predicted_ms: f64,
    /// Calibrated upper bound the round was certified against, ms — the
    /// conformal interval width is `upper_ms − predicted_ms`. `NaN` for
    /// mean + safety-margin rounds (certification off).
    pub upper_ms: f64,
    /// Headroom of the group's most urgent query at dispatch time, ms.
    pub critical_headroom_ms: f64,
    /// When the group actually started executing, ms.
    pub exec_start_ms: f64,
    /// Measured wall time of the round (kernels + sync + save/restore), ms.
    pub actual_ms: f64,
    /// Measured kernel time of the longest stream, ms — the quantity the
    /// predictor estimates, i.e. `actual_ms` minus host-side overheads.
    pub actual_exec_ms: f64,
}

impl RoundEntry {
    /// Signed relative prediction error `(actual − predicted) / actual`
    /// over the kernel time, or `None` when the row carries no usable
    /// prediction (no group, degraded dispatch, or not yet executed).
    pub fn rel_error(&self) -> Option<f64> {
        let ok = self.predicted_ms.is_finite()
            && self.predicted_ms > 0.0
            && self.actual_exec_ms.is_finite()
            && self.actual_exec_ms > 0.0;
        ok.then(|| (self.actual_exec_ms - self.predicted_ms) / self.actual_exec_ms)
    }
}

/// §5.2-style summary of the ledger's predicted-vs-actual join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionErrorReport {
    /// Rounds with a usable prediction.
    pub rounds: usize,
    /// Mean signed relative error.
    pub mean: f64,
    /// Standard deviation of the signed relative error (the paper's
    /// std/mean 4.53% determinism figure is the comparable quantity).
    pub std: f64,
    /// Mean absolute relative error.
    pub mean_abs: f64,
}

impl PredictionErrorReport {
    /// Summarise a set of signed relative errors (`None` when empty).
    pub fn of(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        Some(Self {
            rounds: errors.len(),
            mean: mean(errors),
            std: std_dev(errors),
            mean_abs: mean(&abs),
        })
    }
}

/// Append-only ledger of scheduling decisions, in round order.
#[derive(Debug, Clone, Default)]
pub struct DecisionLedger {
    rows: Vec<RoundEntry>,
}

impl DecisionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rows, in round order.
    pub fn rows(&self) -> &[RoundEntry] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a decision row (rounds must be recorded in increasing order).
    pub fn push(&mut self, row: RoundEntry) {
        debug_assert!(self.rows.last().is_none_or(|r| r.round < row.round));
        self.rows.push(row);
    }

    /// Back-fill the most recent row with the measured execution outcome.
    pub fn complete_last(
        &mut self,
        round: u64,
        exec_start_ms: f64,
        actual_ms: f64,
        actual_exec_ms: f64,
    ) {
        let row = self.rows.last_mut().expect("no decision row to complete");
        debug_assert_eq!(row.round, round, "completion joined to the wrong round");
        row.exec_start_ms = exec_start_ms;
        row.actual_ms = actual_ms;
        row.actual_exec_ms = actual_exec_ms;
    }

    /// Look up a row by round id.
    pub fn by_round(&self, round: u64) -> Option<&RoundEntry> {
        self.rows
            .binary_search_by(|r| r.round.cmp(&round))
            .ok()
            .map(|i| &self.rows[i])
    }

    /// Signed relative prediction errors of every usable row, appended to
    /// `out` in round order.
    pub fn rel_errors_into(&self, out: &mut Vec<f64>) {
        out.extend(self.rows.iter().filter_map(RoundEntry::rel_error));
    }

    /// §5.2-style prediction-error summary (`None` when no row carries a
    /// usable prediction).
    pub fn error_report(&self) -> Option<PredictionErrorReport> {
        self.error_report_where(|_| true)
    }

    /// [`DecisionLedger::error_report`] restricted to rows matching `keep`
    /// — e.g. multi-way rounds only, which are the rounds whose groups lie
    /// inside the instance-based sampling distribution the predictor was
    /// trained on (§5.4 samples always include every co-located model).
    pub fn error_report_where(
        &self,
        keep: impl Fn(&RoundEntry) -> bool,
    ) -> Option<PredictionErrorReport> {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| keep(r))
            .filter_map(RoundEntry::rel_error)
            .collect();
        PredictionErrorReport::of(&errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(round: u64, predicted: f64) -> RoundEntry {
        RoundEntry {
            round,
            at_ms: round as f64,
            queue_len: 3,
            dropped: 0,
            overhead_ms: 0.1,
            prediction_rounds: 2,
            entries: vec![],
            predicted_ms: predicted,
            upper_ms: f64::NAN,
            critical_headroom_ms: 5.0,
            exec_start_ms: f64::NAN,
            actual_ms: f64::NAN,
            actual_exec_ms: f64::NAN,
        }
    }

    #[test]
    fn error_report_joins_predicted_and_actual() {
        let mut l = DecisionLedger::new();
        l.push(row(1, 10.0));
        l.complete_last(1, 0.0, 10.6, 10.5); // +4.76% error
        l.push(row(2, 10.0));
        l.complete_last(2, 11.0, 9.6, 9.5); // -5.26% error
        l.push(row(3, f64::NAN)); // drop-only round: no prediction
        let r = l.error_report().unwrap();
        assert_eq!(r.rounds, 2);
        assert!(r.mean.abs() < 0.01, "near-centred: {}", r.mean);
        assert!(r.std > 0.04 && r.std < 0.06, "std {}", r.std);
        assert!(r.mean_abs > 0.04 && r.mean_abs < 0.06);
    }

    #[test]
    fn unexecuted_and_degenerate_rows_carry_no_error() {
        assert_eq!(row(1, 10.0).rel_error(), None); // actual still NaN
        let mut degraded = row(2, 0.0); // degraded dispatch: predicted 0
        degraded.actual_ms = 5.0;
        degraded.actual_exec_ms = 5.0;
        assert_eq!(degraded.rel_error(), None);
        assert_eq!(DecisionLedger::new().error_report(), None);
    }

    #[test]
    fn filtered_report_selects_rows() {
        let mut l = DecisionLedger::new();
        let mut wide = row(1, 10.0);
        wide.entries = vec![
            LedgerEntry { query: 0, model: ModelId::ResNet50, op_start: 0, op_end: 4 },
            LedgerEntry { query: 1, model: ModelId::Bert, op_start: 0, op_end: 9 },
        ];
        l.push(wide);
        l.complete_last(1, 0.0, 10.6, 10.5);
        l.push(row(2, 10.0)); // solo row (entries empty in the fixture)
        l.complete_last(2, 11.0, 20.2, 20.0);
        let multi = l.error_report_where(|r| r.entries.len() >= 2).unwrap();
        assert_eq!(multi.rounds, 1);
        assert!(multi.mean_abs < 0.06);
        assert_eq!(l.error_report().unwrap().rounds, 2);
    }

    #[test]
    fn by_round_finds_rows() {
        let mut l = DecisionLedger::new();
        l.push(row(2, 1.0));
        l.push(row(5, 1.0));
        assert_eq!(l.by_round(5).unwrap().round, 5);
        assert!(l.by_round(3).is_none());
    }
}
