//! Chrome trace-event / Perfetto JSON export, plus CSV lowering of the
//! kernel trace and decision ledger.
//!
//! The exporter emits the JSON object form of the trace-event format
//! (`{"traceEvents": [...], "displayTimeUnit": "ms"}`), loadable in
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`:
//!
//! * process `serving node` — one thread per deployed service. Dispatched
//!   operator segments are complete (`X`) slices (the §6.1 exclusivity —
//!   one query per service in flight — guarantees slices on a service
//!   track never overlap); time in queue is an async `b`/`e` span keyed by
//!   query id; retires are instant events.
//! * process `gpu streams` — one thread per group stream slot, with one
//!   `X` slice per kernel, carrying its round and SM occupancy as args.
//! * counter (`C`) tracks can be appended by callers (offered vs achieved
//!   load — see `cluster::timeline`).
//!
//! Serialisation is deliberately hand-rolled and insertion-ordered: floats
//! print with Rust's shortest-roundtrip `Display`, so the emitted bytes are
//! a pure function of the recorded telemetry — golden tests pin them.

use crate::event::QueryEventKind;
use crate::ledger::DecisionLedger;
use crate::Telemetry;
use abacus_metrics::{CsvWriter, QueryOutcome};
use gpu_sim::KernelSpan;
use std::io;
use std::path::Path;

/// Process id of the serving-node track group.
pub const PID_SERVING: u64 = 1;
/// Process id of the GPU kernel track group.
pub const PID_GPU: u64 = 2;
/// Process id reserved for caller-added counter tracks.
pub const PID_COUNTERS: u64 = 3;
/// Process id of the run-health alert track.
pub const PID_HEALTH: u64 = 4;

/// One typed argument value of a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'a> {
    /// A float (must be finite — JSON has no NaN).
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A string (escaped on write).
    Str(&'a str),
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_args(args: &[(&str, Arg<'_>)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":", esc(k)));
        match v {
            Arg::F64(x) => s.push_str(&fmt_f64(*x)),
            Arg::U64(x) => s.push_str(&format!("{x}")),
            Arg::Str(x) => s.push_str(&format!("\"{}\"", esc(x))),
        }
    }
    s.push('}');
    s
}

/// Milliseconds → trace-event microseconds.
fn us(ms: f64) -> String {
    fmt_f64(ms * 1000.0)
}

/// An append-only Chrome trace-event builder.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process track group.
    pub fn add_process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// Name a thread track.
    pub fn add_thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// A complete (`X`) slice.
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event field set
    pub fn add_complete(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        ts_ms: f64,
        dur_ms: f64,
        args: &[(&str, Arg<'_>)],
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
            esc(name),
            esc(cat),
            us(ts_ms),
            us(dur_ms),
            fmt_args(args)
        ));
    }

    /// Begin an async span (`b`), keyed by `(cat, name, id)`.
    pub fn add_async_begin(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        id: u64,
        ts_ms: f64,
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\"id\":{id},\"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
            esc(name),
            esc(cat),
            us(ts_ms)
        ));
    }

    /// End an async span (`e`).
    pub fn add_async_end(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        id: u64,
        ts_ms: f64,
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\"id\":{id},\"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
            esc(name),
            esc(cat),
            us(ts_ms)
        ));
    }

    /// A thread-scoped instant (`i`) event.
    pub fn add_instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_ms: f64,
        args: &[(&str, Arg<'_>)],
    ) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
            esc(name),
            us(ts_ms),
            fmt_args(args)
        ));
    }

    /// One sample of a counter (`C`) track.
    pub fn add_counter(&mut self, pid: u64, name: &str, ts_ms: f64, series: &[(&str, f64)]) {
        let args: Vec<(&str, Arg<'_>)> = series.iter().map(|&(k, v)| (k, Arg::F64(v))).collect();
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"args\":{}}}",
            esc(name),
            us(ts_ms),
            fmt_args(&args)
        ));
    }

    /// Lower a run's recorded telemetry into trace events: metadata tracks,
    /// the per-query lifecycle (queue span, dispatch slices, retire
    /// instants) and, when kernel tracing was on, one slice per kernel.
    pub fn add_telemetry(&mut self, t: &Telemetry, service_names: &[&str]) {
        self.add_process_name(PID_SERVING, "serving node");
        for (i, name) in service_names.iter().enumerate() {
            self.add_thread_name(PID_SERVING, i as u64, &format!("svc{i} {name}"));
        }
        if !t.kernel_spans().is_empty() {
            self.add_process_name(PID_GPU, "gpu streams");
            let max_stream = t.kernel_spans().iter().map(|s| s.stream).max().unwrap_or(0);
            for s in 0..=max_stream {
                self.add_thread_name(PID_GPU, s as u64, &format!("stream {s}"));
            }
        }

        let n = t
            .events()
            .iter()
            .map(|e| e.query as usize + 1)
            .max()
            .unwrap_or(0);
        let mut svc = vec![0u64; n];
        let mut model = vec![""; n];
        let mut dispatched = vec![false; n];
        for e in t.events() {
            let q = e.query as usize;
            match e.kind {
                QueryEventKind::Arrived {
                    service,
                    model: m,
                    qos_ms,
                } => {
                    svc[q] = service as u64;
                    model[q] = m.name();
                    let _ = qos_ms;
                    self.add_async_begin(PID_SERVING, svc[q], "queue", "queued", e.query, e.at_ms);
                }
                QueryEventKind::Dispatched {
                    round,
                    op_start,
                    op_end,
                } => {
                    if !dispatched[q] {
                        dispatched[q] = true;
                        self.add_async_end(PID_SERVING, svc[q], "queue", "queued", e.query, e.at_ms);
                    }
                    let row = t.ledger.by_round(round);
                    let dur = row.map_or(0.0, |r| r.actual_ms);
                    let predicted = row.map_or(f64::NAN, |r| r.predicted_ms);
                    self.add_complete(
                        PID_SERVING,
                        svc[q],
                        "dispatch",
                        &format!("{}[{op_start}..{op_end})", model[q]),
                        e.at_ms,
                        dur,
                        &[
                            ("query", Arg::U64(e.query)),
                            ("round", Arg::U64(round)),
                            ("op_start", Arg::U64(op_start as u64)),
                            ("op_end", Arg::U64(op_end as u64)),
                            ("predicted_ms", Arg::F64(predicted)),
                        ],
                    );
                }
                QueryEventKind::Retired {
                    outcome,
                    latency_ms,
                    queue_ms,
                    service,
                } => {
                    if !dispatched[q] {
                        self.add_async_end(
                            PID_SERVING,
                            service as u64,
                            "queue",
                            "queued",
                            e.query,
                            e.at_ms,
                        );
                    }
                    let name = match outcome {
                        QueryOutcome::Completed => "completed",
                        QueryOutcome::Dropped => "dropped",
                        QueryOutcome::TimedOut => "timed_out",
                    };
                    self.add_instant(
                        PID_SERVING,
                        service as u64,
                        name,
                        e.at_ms,
                        &[
                            ("query", Arg::U64(e.query)),
                            ("latency_ms", Arg::F64(latency_ms)),
                            ("queue_ms", Arg::F64(queue_ms)),
                        ],
                    );
                }
            }
        }

        for k in t.kernel_spans() {
            self.add_complete(
                PID_GPU,
                k.stream as u64,
                "kernel",
                &format!("k{}", k.kernel),
                k.start_ms,
                k.end_ms - k.start_ms,
                &[
                    ("round", Arg::U64(k.round)),
                    ("occupancy", Arg::F64(k.occupancy)),
                ],
            );
        }
    }

    /// Lower a run's health alerts as instant events on the health track.
    /// Emits nothing (not even track metadata) when no alert fired, so
    /// traces of healthy runs are unchanged.
    pub fn add_health(&mut self, health: &crate::health::RunHealth) {
        if health.alerts().is_empty() {
            return;
        }
        self.add_process_name(PID_HEALTH, "run health");
        self.add_thread_name(PID_HEALTH, 0, "alerts");
        for a in health.alerts() {
            use crate::health::HealthAlertKind;
            let label = a.label();
            let args: Vec<(&str, Arg<'_>)> = match &a.kind {
                HealthAlertKind::Drift {
                    score, ewma_abs, ..
                } => vec![
                    ("seq", Arg::U64(a.seq)),
                    ("score", Arg::F64(*score)),
                    ("ewma_abs", Arg::F64(*ewma_abs)),
                ],
                HealthAlertKind::BurnRate {
                    fast_burn,
                    slow_burn,
                    ..
                } => vec![
                    ("seq", Arg::U64(a.seq)),
                    ("fast_burn", Arg::F64(*fast_burn)),
                    ("slow_burn", Arg::F64(*slow_burn)),
                ],
                HealthAlertKind::BudgetExhausted { ratio, .. } => vec![
                    ("seq", Arg::U64(a.seq)),
                    ("ratio", Arg::F64(*ratio)),
                ],
            };
            self.add_instant(PID_HEALTH, 0, &label, a.at_ms, &args);
        }
    }

    /// Lower a registry's counters and histograms as counter (`C`) samples
    /// on [`PID_COUNTERS`] at instant `at_ms` — one sample per counter, and
    /// count/mean/p50/p99/max per histogram. Callers that already name
    /// `PID_COUNTERS` (the cluster load overlay) compose freely: this emits
    /// no process metadata of its own.
    pub fn add_registry(&mut self, registry: &crate::registry::Registry, at_ms: f64) {
        for (name, v) in registry.counter_rows() {
            self.add_counter(PID_COUNTERS, name, at_ms, &[("value", v as f64)]);
        }
        for h in crate::registry::Hist::ALL {
            let hist = registry.hist(h);
            self.add_counter(
                PID_COUNTERS,
                h.name(),
                at_ms,
                &[
                    ("count", hist.count() as f64),
                    ("mean", hist.mean()),
                    ("p50", hist.quantile_bound(50.0)),
                    ("p99", hist.quantile_bound(99.0)),
                    ("max", hist.max()),
                ],
            );
        }
    }

    /// Serialise to the trace-event JSON object form.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(e);
            if i + 1 < self.events.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("]}\n");
        s
    }

    /// Write the JSON to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Dump engine [`KernelSpan`]s as CSV (`stream,kernel,start_ms,end_ms,
/// occupancy`) — the canonical lowering of a kernel-overlap trace for
/// plotting outside Rust.
pub fn kernel_spans_csv(path: impl AsRef<Path>, spans: &[KernelSpan]) -> io::Result<()> {
    let mut csv = CsvWriter::create(
        path,
        &["stream", "kernel", "start_ms", "end_ms", "occupancy"],
    )?;
    for s in spans {
        csv.write_record(
            &s.stream.0.to_string(),
            &[s.kernel as f64, s.start_ms, s.end_ms, s.occupancy],
        )?;
    }
    csv.flush()
}

/// Dump a decision ledger as CSV, one row per scheduling round.
pub fn ledger_csv(path: impl AsRef<Path>, ledger: &DecisionLedger) -> io::Result<()> {
    let mut csv = CsvWriter::create(
        path,
        &[
            "round",
            "at_ms",
            "queue_len",
            "dropped",
            "ways",
            "search_rounds",
            "overhead_ms",
            "predicted_ms",
            "actual_kernel_ms",
            "actual_ms",
            "headroom_ms",
            "rel_err",
            "upper_ms",
        ],
    )?;
    for r in ledger.rows() {
        csv.write_record(
            &r.round.to_string(),
            &[
                r.at_ms,
                r.queue_len as f64,
                r.dropped as f64,
                r.entries.len() as f64,
                r.prediction_rounds as f64,
                r.overhead_ms,
                r.predicted_ms,
                r.actual_exec_ms,
                r.actual_ms,
                r.critical_headroom_ms,
                r.rel_error().unwrap_or(f64::NAN),
                r.upper_ms,
            ],
        )?;
    }
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }

    #[test]
    fn counter_and_metadata_events_serialise() {
        let mut tr = ChromeTrace::new();
        tr.add_process_name(PID_COUNTERS, "load");
        tr.add_counter(PID_COUNTERS, "rps", 1.5, &[("offered", 10.0), ("achieved", 8.5)]);
        let json = tr.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":1500"));
        assert!(json.contains("\"offered\":10"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn braces_balance_in_exported_json() {
        let mut tr = ChromeTrace::new();
        tr.add_thread_name(1, 0, "svc0");
        tr.add_complete(1, 0, "dispatch", "m 0..4", 0.25, 1.75, &[("round", Arg::U64(1))]);
        tr.add_instant(1, 0, "completed", 2.0, &[]);
        tr.add_async_begin(1, 0, "queue", "queued", 7, 0.0);
        tr.add_async_end(1, 0, "queue", "queued", 7, 0.25);
        let json = tr.to_json();
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
