//! The violation flight recorder.
//!
//! A fixed-capacity ring of recent scheduling rounds — each a bounded
//! snapshot of the decision-ledger row plus engine health counters — that
//! is dumped as `flight.json` the first time a run-health alert trips
//! (SLO budget exhausted, or prediction-error drift). The point is
//! post-mortem locality: the rounds *leading up to* a violation are
//! explorable without re-running the experiment with full tracing.
//!
//! The dump is latched: only the first trip produces one, its size is
//! bounded by [`FlightConfig::capacity`], and every timestamp in it is the
//! simulation clock, so the bytes are deterministic for a fixed seed.

use crate::export::{esc, fmt_f64};
use std::collections::VecDeque;

/// Flight-recorder tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Rounds retained in the ring (and the maximum rounds in a dump).
    pub capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self { capacity: 64 }
    }
}

/// One round's bounded snapshot: the ledger join plus engine health
/// counters at completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRound {
    /// Scheduling-round id.
    pub round: u64,
    /// Round completion instant on the simulation clock, ms.
    pub at_ms: f64,
    /// Group width (queries in the chosen group).
    pub ways: usize,
    /// Queue depth the scheduler saw.
    pub queue_len: usize,
    /// Queries dropped by the decision.
    pub dropped: usize,
    /// Predicted group latency, ms (NaN when the round planned nothing).
    pub predicted_ms: f64,
    /// Measured kernel time, ms.
    pub actual_exec_ms: f64,
    /// Signed relative prediction error (NaN when unusable).
    pub rel_err: f64,
    /// Critical query's headroom at dispatch, ms.
    pub headroom_ms: f64,
    /// Engine events processed so far (run cumulative).
    pub engine_events: u64,
    /// Engine max concurrently-active queries so far.
    pub engine_max_active: u64,
}

/// A latched flight dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// What tripped the recorder.
    pub reason: String,
    /// Trip instant on the simulation clock, ms.
    pub at_ms: f64,
    /// The retained rounds, oldest → newest.
    pub rounds: Vec<FlightRound>,
}

impl FlightDump {
    /// Hand-rolled JSON (insertion-ordered, NaN → null), matching the
    /// exporter's byte-determinism conventions.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"reason\":\"{}\",", esc(&self.reason)));
        s.push_str(&format!("\"at_ms\":{},", fmt_f64(self.at_ms)));
        s.push_str(&format!("\"rounds\":{},\"ring\":[\n", self.rounds.len()));
        for (i, r) in self.rounds.iter().enumerate() {
            s.push_str(&format!(
                "{{\"round\":{},\"at_ms\":{},\"ways\":{},\"queue_len\":{},\"dropped\":{},\"predicted_ms\":{},\"actual_exec_ms\":{},\"rel_err\":{},\"headroom_ms\":{},\"engine_events\":{},\"engine_max_active\":{}}}",
                r.round,
                fmt_f64(r.at_ms),
                r.ways,
                r.queue_len,
                r.dropped,
                fmt_f64(r.predicted_ms),
                fmt_f64(r.actual_exec_ms),
                fmt_f64(r.rel_err),
                fmt_f64(r.headroom_ms),
                r.engine_events,
                r.engine_max_active,
            ));
            if i + 1 < self.rounds.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("]}\n");
        s
    }

    /// The JSON of "nothing tripped" — lets reports always emit a
    /// well-formed `flight.json`.
    pub fn empty_json() -> String {
        "{\"reason\":\"none\",\"at_ms\":null,\"rounds\":0,\"ring\":[\n]}\n".to_string()
    }
}

/// Fixed-capacity ring of recent rounds with a latched trip.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: VecDeque<FlightRound>,
    dump: Option<FlightDump>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(cfg: FlightConfig) -> Self {
        Self {
            ring: VecDeque::with_capacity(cfg.capacity),
            cfg,
            dump: None,
        }
    }

    /// Record one completed round, evicting the oldest at capacity.
    pub fn push(&mut self, round: FlightRound) {
        if self.ring.len() == self.cfg.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(round);
    }

    /// Trip the recorder: the first call latches a dump of the current
    /// ring; later calls are no-ops (the first alert is the one worth
    /// explaining).
    pub fn trip(&mut self, reason: &str, at_ms: f64) {
        if self.dump.is_some() {
            return;
        }
        self.dump = Some(FlightDump {
            reason: reason.to_string(),
            at_ms,
            rounds: self.ring.iter().copied().collect(),
        });
    }

    /// The latched dump, if any alert tripped.
    pub fn dump(&self) -> Option<&FlightDump> {
        self.dump.as_ref()
    }

    /// Rounds currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(i: u64) -> FlightRound {
        FlightRound {
            round: i,
            at_ms: i as f64 * 2.0,
            ways: 2,
            queue_len: 5,
            dropped: 0,
            predicted_ms: 10.0,
            actual_exec_ms: 10.5,
            rel_err: 0.047,
            headroom_ms: 3.0,
            engine_events: i * 100,
            engine_max_active: 4,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut fr = FlightRecorder::new(FlightConfig { capacity: 4 });
        for i in 0..10 {
            fr.push(round(i));
        }
        assert_eq!(fr.len(), 4);
        fr.trip("drift:solo", 19.0);
        let d = fr.dump().unwrap();
        let rounds: Vec<u64> = d.rounds.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trip_latches_first_reason() {
        let mut fr = FlightRecorder::new(FlightConfig::default());
        fr.push(round(1));
        fr.trip("slo_budget:svc0", 5.0);
        fr.push(round(2));
        fr.trip("drift:solo", 9.0);
        let d = fr.dump().unwrap();
        assert_eq!(d.reason, "slo_budget:svc0");
        assert_eq!(d.at_ms, 5.0);
        assert_eq!(d.rounds.len(), 1);
    }

    #[test]
    fn json_is_balanced_and_handles_nan() {
        let mut fr = FlightRecorder::new(FlightConfig::default());
        let mut r = round(3);
        r.predicted_ms = f64::NAN;
        r.rel_err = f64::NAN;
        fr.push(r);
        fr.trip("drift:2-way", 6.0);
        let json = fr.dump().unwrap().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"predicted_ms\":null"));
        assert!(json.contains("\"reason\":\"drift:2-way\""));
        let empty = FlightDump::empty_json();
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }
}
