//! Golden test: the exported Chrome trace JSON is a pure function of the
//! recorded telemetry. Every byte below is pinned — serialisation drift
//! (float formatting, field order, escaping) is a breaking change for
//! downstream trace tooling and must be deliberate.

use abacus_metrics::QueryOutcome;
use dnn_models::ModelId;
use gpu_sim::{KernelSpan, StreamId};
use telemetry::{ChromeTrace, LedgerEntry, RoundEntry, Telemetry};

/// A two-query run: q0 (Res152, svc0) dispatches in round 1 and completes;
/// q1 (Bert, svc1) is dropped straight from the queue. One kernel span.
/// All instants are exact binary fractions so float formatting is stable.
fn fixture() -> Telemetry {
    let mut t = Telemetry::with_kernel_trace();
    t.on_arrive(0, 1.5, 0, ModelId::ResNet152, 100.0);
    t.on_arrive(1, 2.0, 1, ModelId::Bert, 50.0);
    t.ledger.push(RoundEntry {
        round: 1,
        at_ms: 2.5,
        queue_len: 2,
        dropped: 0,
        overhead_ms: 0.25,
        prediction_rounds: 2,
        entries: vec![LedgerEntry {
            query: 0,
            model: ModelId::ResNet152,
            op_start: 0,
            op_end: 4,
        }],
        predicted_ms: 8.0,
        upper_ms: f64::NAN,
        critical_headroom_ms: 50.0,
        exec_start_ms: f64::NAN,
        actual_ms: f64::NAN,
        actual_exec_ms: f64::NAN,
    });
    t.on_dispatch(0, 2.75, 1, 0, 4);
    t.ledger.complete_last(1, 2.75, 8.5, 8.25);
    t.on_retire(0, 11.25, 0, QueryOutcome::Completed, 9.75, 1.25);
    t.on_retire(1, 12.0, 1, QueryOutcome::Dropped, 10.0, 10.0);
    t.on_kernel_span(
        1,
        2.75,
        &KernelSpan {
            stream: StreamId(0),
            kernel: 0,
            start_ms: 0.0,
            end_ms: 8.25,
            occupancy: 0.5,
        },
    );
    t
}

const GOLDEN: &str = r#"{"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"serving node"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"svc0 res"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"svc1 bert"}},
{"name":"process_name","ph":"M","pid":2,"args":{"name":"gpu streams"}},
{"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"stream 0"}},
{"name":"queued","cat":"queue","ph":"b","id":0,"ts":1500,"pid":1,"tid":0},
{"name":"queued","cat":"queue","ph":"b","id":1,"ts":2000,"pid":1,"tid":1},
{"name":"queued","cat":"queue","ph":"e","id":0,"ts":2750,"pid":1,"tid":0},
{"name":"Res152[0..4)","cat":"dispatch","ph":"X","ts":2750,"dur":8500,"pid":1,"tid":0,"args":{"query":0,"round":1,"op_start":0,"op_end":4,"predicted_ms":8}},
{"name":"completed","ph":"i","s":"t","ts":11250,"pid":1,"tid":0,"args":{"query":0,"latency_ms":9.75,"queue_ms":1.25}},
{"name":"queued","cat":"queue","ph":"e","id":1,"ts":12000,"pid":1,"tid":1},
{"name":"dropped","ph":"i","s":"t","ts":12000,"pid":1,"tid":1,"args":{"query":1,"latency_ms":10,"queue_ms":10}},
{"name":"k0","cat":"kernel","ph":"X","ts":2750,"dur":8250,"pid":2,"tid":0,"args":{"round":1,"occupancy":0.5}}
]}
"#;

#[test]
fn exported_trace_json_is_pinned() {
    let mut trace = ChromeTrace::new();
    trace.add_telemetry(&fixture(), &["res", "bert"]);
    let json = trace.to_json();
    if json != GOLDEN {
        // Line-by-line diff makes drift reviewable.
        for (i, (a, b)) in json.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(a, b, "first divergence on line {}", i + 1);
        }
        assert_eq!(json.lines().count(), GOLDEN.lines().count(), "line count");
        panic!("trace JSON differs from golden but no line diverged");
    }
}

#[test]
fn export_is_deterministic_across_rebuilds() {
    let a = {
        let mut tr = ChromeTrace::new();
        tr.add_telemetry(&fixture(), &["res", "bert"]);
        tr.to_json()
    };
    let b = {
        let mut tr = ChromeTrace::new();
        tr.add_telemetry(&fixture(), &["res", "bert"]);
        tr.to_json()
    };
    assert_eq!(a, b);
}
