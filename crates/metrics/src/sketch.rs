//! Deterministic streaming quantile sketch.
//!
//! A fixed-shape, mergeable counting sketch over non-negative `f64`
//! observations (latencies, queue delays — all the quantities this repo
//! reports percentiles of). The design goals, in order:
//!
//! 1. **Determinism.** Bucketing is a pure function of the value's IEEE-754
//!    bit pattern — no RNG, no data-dependent compaction, no allocation
//!    after construction. The same multiset of observations produces the
//!    same sketch bytes regardless of arrival order or host.
//! 2. **Bitwise-associative merge.** The sketch deliberately carries *no*
//!    floating-point accumulator (no running sum/mean): its state is bucket
//!    counts (`u64`), a total count, and min/max. Merging is integer
//!    addition plus min/max folds, so `(a ⊎ b) ⊎ c == a ⊎ (b ⊎ c)` holds
//!    bit for bit — pinned by proptests. (Means come from the exact
//!    running sums the recorders already keep.)
//! 3. **Bounded relative error.** Buckets are log-linear: one octave
//!    (power of two) is split into `2^SUB_BITS = 32` equal-width
//!    sub-buckets taken straight from the top mantissa bits. Adjacent
//!    bucket edges are at most a factor `1 + 1/32` apart, so a reported
//!    quantile overshoots the true order statistic by at most
//!    [`QuantileSketch::RELATIVE_ERROR`] ≈ 3.125% (and never undershoots).
//!
//! The shape is fixed at `40 octaves × 32 sub-buckets` covering
//! `[2⁻²⁰, 2²⁰)` ms (≈ 1 ns to ≈ 17.5 min) plus an underflow and an
//! overflow bucket — 1282 `u64`s, ~10 KiB per sketch.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest bucketed exponent: values below `2^MIN_EXP` underflow.
const MIN_EXP: i32 = -20;
/// One past the largest bucketed exponent: values at or above `2^MAX_EXP`
/// overflow.
const MAX_EXP: i32 = 20;
/// Log-linear buckets between the underflow and overflow buckets.
const LOG_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;
/// Total buckets: underflow + log-linear + overflow.
const BUCKETS: usize = LOG_BUCKETS + 2;

/// A deterministic, mergeable, fixed-shape quantile sketch. See module
/// docs for the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Worst-case relative overshoot of a reported quantile against the
    /// true order statistic (one sub-bucket's relative width).
    pub const RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index of `v`: underflow (0) for zero / negative / non-finite
    /// / sub-`2^MIN_EXP` values, overflow (`BUCKETS-1`) past `2^MAX_EXP`,
    /// log-linear in between — exponent and top mantissa bits, nothing
    /// else.
    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp >= MAX_EXP {
            return BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + (((exp - MIN_EXP) as usize) << SUB_BITS) + sub
    }

    /// Upper edge of log-linear bucket `idx` (`1..=LOG_BUCKETS`), exact in
    /// f64: `2^e · (1 + (sub+1)/32)`, built from bits so the `sub+1 == 32`
    /// carry lands exactly on the next octave boundary.
    fn bucket_upper(idx: usize) -> f64 {
        let i = idx - 1;
        let exp = MIN_EXP + (i >> SUB_BITS) as i32;
        let sub = (i & (SUBS - 1)) as u64;
        f64::from_bits((((exp + 1023) as u64) << 52) + ((sub + 1) << (52 - SUB_BITS)))
    }

    /// Record one observation. Observations are expected to be finite and
    /// non-negative; anything else lands in the underflow bucket.
    pub fn record(&mut self, v: f64) {
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "sketch observations must be finite and non-negative: {v}"
        );
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.counts[Self::bucket_of(v)] += 1;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), 0 when empty.
    ///
    /// Returns the upper edge of the bucket holding the rank-`⌈p/100·n⌉`
    /// order statistic, clamped into `[min, max]`: the result is `≥` the
    /// true order statistic and at most `RELATIVE_ERROR` above it.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= target {
                if b == 0 {
                    return self.min;
                }
                if b == BUCKETS - 1 {
                    return self.max;
                }
                return Self::bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another sketch into this one. Pure integer addition plus
    /// min/max folds — bitwise associative and commutative (pinned by
    /// proptests), so parallel shards can be combined in any grouping.
    pub fn merge(&mut self, other: &Self) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.quantile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_observation_is_exact() {
        // min/max clamping makes any single-value sketch exact.
        for v in [1.0, 0.37, 123.456, 1e-9, 1e7] {
            let mut s = QuantileSketch::new();
            s.record(v);
            assert_eq!(s.quantile(50.0), v, "value {v}");
            assert_eq!(s.quantile(100.0), v, "value {v}");
        }
    }

    #[test]
    fn zero_lands_in_underflow_and_reports_min() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(5.0);
        assert_eq!(s.quantile(40.0), 0.0);
        assert!(s.quantile(99.0) >= 5.0);
    }

    #[test]
    fn overflow_reports_observed_max() {
        let mut s = QuantileSketch::new();
        s.record(3.0e6); // past 2^20 ms
        s.record(1.0);
        assert_eq!(s.quantile(99.0), 3.0e6);
    }

    #[test]
    fn quantile_overshoot_is_bounded() {
        let mut s = QuantileSketch::new();
        let vals: Vec<f64> = (1..=1000).map(|i| (i as f64) * 0.173).collect();
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1];
            let est = s.quantile(p);
            assert!(est >= exact, "p{p}: {est} < {exact}");
            assert!(
                est <= exact * (1.0 + QuantileSketch::RELATIVE_ERROR),
                "p{p}: {est} overshoots {exact}"
            );
        }
    }

    #[test]
    fn order_invariance() {
        let vals: Vec<f64> = (0..500).map(|i| ((i * 37) % 499) as f64 * 0.11 + 0.01).collect();
        let mut fwd = QuantileSketch::new();
        let mut rev = QuantileSketch::new();
        for &v in &vals {
            fwd.record(v);
        }
        for &v in vals.iter().rev() {
            rev.record(v);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn merge_matches_sequential_feed() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 0..100 {
            let v = (i as f64).mul_add(0.77, 0.3);
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn bucket_upper_carries_into_next_octave() {
        // The last sub-bucket's upper edge is exactly the next power of two.
        let idx = QuantileSketch::bucket_of(1.99); // top sub-bucket of [1, 2)
        assert_eq!(QuantileSketch::bucket_upper(idx), 2.0);
        // An exact power of two starts its own octave.
        let idx2 = QuantileSketch::bucket_of(2.0);
        assert_eq!(idx2, idx + 1);
        assert_eq!(QuantileSketch::bucket_upper(idx2), 2.0 + 2.0 / 32.0);
    }
}
