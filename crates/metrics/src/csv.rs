//! CSV output for experiment results.
//!
//! Each `abacus-repro` subcommand writes its series to `results/<id>.csv` so
//! the figures can be re-plotted outside of Rust. The writer is deliberately
//! tiny: comma-separated, values quoted only when they contain a comma,
//! quote, or newline.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A buffered CSV writer.
#[derive(Debug)]
pub struct CsvWriter {
    out: BufWriter<File>,
    columns: usize,
}

impl CsvWriter {
    /// Create (truncating) `path` and write the header row. Parent
    /// directories are created as needed.
    pub fn create(path: impl AsRef<Path>, header: &[&str]) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut w = Self {
            out: BufWriter::new(File::create(path)?),
            columns: header.len(),
        };
        w.write_row(header.iter().map(|s| s.to_string()))?;
        Ok(w)
    }

    /// Write a row of string cells.
    pub fn write_row(&mut self, cells: impl IntoIterator<Item = String>) -> io::Result<()> {
        let cells: Vec<String> = cells.into_iter().collect();
        assert_eq!(cells.len(), self.columns, "row arity must match header");
        let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
        writeln!(self.out, "{}", line.join(","))
    }

    /// Write a label followed by floats.
    pub fn write_record(&mut self, label: &str, values: &[f64]) -> io::Result<()> {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v}")));
        self.write_row(cells)
    }

    /// Flush the underlying buffer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("abacus_csv_test");
        let path = dir.join("t.csv");
        {
            let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
            w.write_record("x", &[1.5]).unwrap();
            w.write_row(vec!["with,comma".into(), "q\"q".into()]).unwrap();
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "x,1.5");
        assert_eq!(lines[2], "\"with,comma\",\"q\"\"q\"");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let dir = std::env::temp_dir().join("abacus_csv_test2");
        let mut w = CsvWriter::create(dir.join("t.csv"), &["a", "b"]).unwrap();
        let _ = w.write_record("only-label-and-nothing", &[]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
