//! Empirical cumulative distribution functions.
//!
//! Figs. 3 and 7 of the paper plot latency CDFs. [`Cdf`] stores the sorted
//! sample and answers both directions: `fraction_below(x)` and
//! `value_at(q)`.

use crate::stats::percentile_sorted;

/// An empirical CDF over a sample of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from a sample (copied and sorted).
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]` (linear interpolation).
    pub fn value_at(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Sample `points` evenly-spaced (value, fraction) pairs suitable for
    /// plotting: fractions `1/points, 2/points, …, 1`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points > 0);
        if self.sorted.is_empty() {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.value_at(q), q)
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_is_monotone() {
        let cdf = Cdf::new(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_below(0.0), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.2);
        assert_eq!(cdf.fraction_below(3.0), 0.6);
        assert_eq!(cdf.fraction_below(100.0), 1.0);
    }

    #[test]
    fn value_at_inverts_fraction() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let cdf = Cdf::new(&xs);
        let v = cdf.value_at(0.5);
        assert!((v - 50.5).abs() < 1.0, "median {v}");
        assert_eq!(cdf.value_at(1.0), 100.0);
        assert_eq!(cdf.value_at(0.0), 1.0);
    }

    #[test]
    fn curve_has_requested_points_and_is_monotone() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let cdf = Cdf::new(&xs);
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::new(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }
}
