//! Measurement and reporting utilities for the Abacus reproduction.
//!
//! Every experiment in the paper reports one of three quantities: a latency
//! percentile (Figs. 14, 16, 18, 20, 22), a QoS-violation ratio (Fig. 15),
//! or a goodput (Figs. 17, 19, 21, 22). This crate provides the shared
//! machinery: descriptive statistics and percentile estimation
//! ([`stats`]), empirical CDFs ([`cdf`]), per-service QoS accounting
//! ([`recorder`]), and ASCII-table / CSV output ([`table`], [`csv`]).

pub mod cdf;
pub mod csv;
pub mod recorder;
pub mod sketch;
pub mod stats;
pub mod table;

pub use cdf::Cdf;
pub use csv::CsvWriter;
pub use recorder::{QueryOutcome, QueryRecord, ServiceStats};
pub use sketch::QuantileSketch;
pub use stats::{mean, percentile, std_dev, Summary};
pub use table::Table;
