//! Descriptive statistics and percentile estimation.

/// Arithmetic mean. Returns 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Percentile with linear interpolation between order statistics
/// (the "exclusive" R-7 definition used by numpy's default).
///
/// `p` is in `[0, 100]`. Returns 0.0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Percentile over an already-sorted slice (ascending). See [`percentile`].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A compact summary of a sample: count, mean, std, min, p50/p90/p99, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample. Returns an all-zero summary for empty input.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            count: sorted.len(),
            mean: mean(&sorted),
            std: std_dev(&sorted),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 99.0) - 9.9).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        assert_eq!(percentile(&[5.0], 99.0), 5.0);
        let s = Summary::of(&[5.0]);
        assert_eq!(s.p99, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 1000);
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((s.p99 - 989.01).abs() < 0.1, "p99 {}", s.p99);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }
}
