//! Minimal ASCII table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table.
///
/// ```
/// use abacus_metrics::Table;
/// let mut t = Table::new(vec!["pair", "FCFS", "Abacus"]);
/// t.row(vec!["(Res50,Res101)".into(), "0.92".into(), "0.61".into()]);
/// let s = t.render();
/// assert!(s.contains("Abacus"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Must have the same arity as the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Append a row of floats formatted with `prec` decimals, after a label.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64], prec: usize) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{cell:>w$}{sep}", w = widths[i]);
            }
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["12345".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["label", "x", "y"]);
        t.row_f64("r", &[1.23456, 2.0], 2);
        assert!(t.render().contains("1.23"));
        assert!(t.render().contains("2.00"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
