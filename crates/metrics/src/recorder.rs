//! Per-query records and per-service QoS accounting.
//!
//! A serving simulation emits one [`QueryRecord`] per query; [`ServiceStats`]
//! aggregates them the way the paper reports results:
//!
//! * **Fig. 14 style** (normalised 99%-ile latency): percentile over
//!   *completed* queries only — the paper notes dropped queries "are not
//!   counted in the latency experiment".
//! * **Fig. 15 style** (QoS violation ratio): dropped queries *are* counted
//!   as violations "to reveal the real user experience".
//! * **Fig. 17 style** (peak throughput): queries completed within their QoS
//!   target per second of simulated time (goodput).

use crate::sketch::QuantileSketch;
use crate::stats::percentile;

/// How a query's lifetime ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Finished processing; latency is meaningful.
    Completed,
    /// Dropped by the scheduler's drop mechanism before completing.
    Dropped,
    /// Evicted by the node's defensive per-query timeout (fault-tolerance
    /// backstop): the query out-waited its wall-clock cap without the
    /// scheduler retiring it. Counts as a violation, like a drop.
    TimedOut,
}

/// The outcome of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Service index within the co-location set.
    pub service: usize,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// End-to-end latency (ms); for dropped queries, the time until the drop.
    pub latency_ms: f64,
    /// The query's QoS target (ms).
    pub qos_ms: f64,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Number of user requests the query carries (its batch size); Fig. 22
    /// counts throughput in requests per second.
    pub requests: u32,
    /// Time spent queueing before the first operator ran, ms (§3.3's
    /// queueing-delay component; equals `latency_ms` for never-started
    /// drops).
    pub queue_ms: f64,
}

impl QueryRecord {
    /// True when the query completed within its QoS target.
    pub fn met_qos(&self) -> bool {
        self.outcome == QueryOutcome::Completed && self.latency_ms <= self.qos_ms
    }
}

/// Aggregated statistics for one service (or a whole co-location set).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    completed_latencies: Vec<f64>,
    /// Queueing delays of completed queries, parallel to
    /// `completed_latencies` (the running `queue_sum_ms` stays — the mean
    /// must remain the exact incremental sum the golden results pin).
    queue_delays: Vec<f64>,
    /// Streaming sketch over the same completed-query queue delays: bounded
    /// memory, mergeable, within [`QuantileSketch::RELATIVE_ERROR`] of the
    /// exact pool above. The exact `Vec` stays authoritative for golden
    /// results; `--sketch` reporting reads this instead.
    queue_sketch: QuantileSketch,
    queue_sum_ms: f64,
    completed_within_qos: usize,
    requests_within_qos: u64,
    dropped: usize,
    timed_out: usize,
    violated: usize,
    total: usize,
}

impl ServiceStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one record into the statistics.
    pub fn record(&mut self, r: &QueryRecord) {
        self.total += 1;
        match r.outcome {
            QueryOutcome::Completed => {
                self.queue_sum_ms += r.queue_ms;
                self.queue_delays.push(r.queue_ms);
                self.queue_sketch.record(r.queue_ms);
                self.completed_latencies.push(r.latency_ms);
                if r.latency_ms <= r.qos_ms {
                    self.completed_within_qos += 1;
                    self.requests_within_qos += u64::from(r.requests);
                } else {
                    self.violated += 1;
                }
            }
            QueryOutcome::Dropped => {
                self.dropped += 1;
            }
            QueryOutcome::TimedOut => {
                self.timed_out += 1;
            }
        }
    }

    /// Fold a batch of records.
    pub fn record_all<'a>(&mut self, rs: impl IntoIterator<Item = &'a QueryRecord>) {
        for r in rs {
            self.record(r);
        }
    }

    /// Merge another accumulator into this one (pooling across services or
    /// across GPU instances).
    pub fn extend_from(&mut self, other: &ServiceStats) {
        self.completed_latencies
            .extend_from_slice(&other.completed_latencies);
        self.queue_delays.extend_from_slice(&other.queue_delays);
        self.queue_sketch.merge(&other.queue_sketch);
        self.queue_sum_ms += other.queue_sum_ms;
        self.completed_within_qos += other.completed_within_qos;
        self.requests_within_qos += other.requests_within_qos;
        self.dropped += other.dropped;
        self.timed_out += other.timed_out;
        self.violated += other.violated;
        self.total += other.total;
    }

    /// Total queries observed (completed + dropped + timed out).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Queries dropped by the scheduler.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Queries evicted by the node's defensive per-query timeout.
    pub fn timed_out(&self) -> usize {
        self.timed_out
    }

    /// 99%-ile latency over completed queries (Fig. 14 convention).
    pub fn p99_latency(&self) -> f64 {
        percentile(&self.completed_latencies, 99.0)
    }

    /// Arbitrary percentile over completed queries.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(&self.completed_latencies, p)
    }

    /// Mean latency over completed queries.
    pub fn mean_latency(&self) -> f64 {
        crate::stats::mean(&self.completed_latencies)
    }

    /// Mean queueing delay of completed queries (§3.3 breakdown), ms.
    pub fn mean_queue_ms(&self) -> f64 {
        if self.completed_latencies.is_empty() {
            return 0.0;
        }
        self.queue_sum_ms / self.completed_latencies.len() as f64
    }

    /// Arbitrary percentile of the queueing delay over completed queries.
    pub fn queue_percentile(&self, p: f64) -> f64 {
        percentile(&self.queue_delays, p)
    }

    /// Median queueing delay of completed queries, ms.
    pub fn queue_p50_ms(&self) -> f64 {
        self.queue_percentile(50.0)
    }

    /// 99%-ile queueing delay of completed queries, ms.
    pub fn queue_p99_ms(&self) -> f64 {
        self.queue_percentile(99.0)
    }

    /// Streaming sketch over completed-query queueing delays.
    pub fn queue_sketch(&self) -> &QuantileSketch {
        &self.queue_sketch
    }

    /// Queueing-delay percentile from the streaming sketch (within
    /// [`QuantileSketch::RELATIVE_ERROR`] above the exact
    /// [`queue_percentile`](Self::queue_percentile)).
    pub fn queue_sketch_percentile(&self, p: f64) -> f64 {
        self.queue_sketch.quantile(p)
    }

    /// QoS violation ratio in `[0, 1]`: (late completions + drops +
    /// timeouts) / total (Fig. 15 convention — drops count as violations,
    /// and a timed-out query is an involuntary drop).
    pub fn violation_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.violated + self.dropped + self.timed_out) as f64 / self.total as f64
    }

    /// Queries completed within QoS.
    pub fn goodput_queries(&self) -> usize {
        self.completed_within_qos
    }

    /// Goodput in queries/second over a horizon: completions within QoS.
    pub fn goodput_qps(&self, horizon_ms: f64) -> f64 {
        assert!(horizon_ms > 0.0);
        self.completed_within_qos as f64 / (horizon_ms / 1000.0)
    }

    /// Queries completed (whether or not within QoS).
    pub fn completed(&self) -> usize {
        self.completed_latencies.len()
    }

    /// Peak serving throughput in queries/second (Fig. 17 convention:
    /// "successfully processed queries per second" — completions; QoS
    /// violations are reported separately).
    pub fn completed_qps(&self, horizon_ms: f64) -> f64 {
        assert!(horizon_ms > 0.0);
        self.completed() as f64 / (horizon_ms / 1000.0)
    }

    /// Goodput in user requests/second (Fig. 22 convention: a query of batch
    /// size `b` carries `b` requests).
    pub fn goodput_rps(&self, horizon_ms: f64) -> f64 {
        assert!(horizon_ms > 0.0);
        self.requests_within_qos as f64 / (horizon_ms / 1000.0)
    }

    /// Completed-query latencies (for CDFs).
    pub fn latencies(&self) -> &[f64] {
        &self.completed_latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency: f64, qos: f64, outcome: QueryOutcome) -> QueryRecord {
        QueryRecord {
            service: 0,
            arrival_ms: 0.0,
            latency_ms: latency,
            qos_ms: qos,
            outcome,
            requests: 8,
            queue_ms: latency * 0.25,
        }
    }

    #[test]
    fn violation_counts_drops() {
        let mut s = ServiceStats::new();
        s.record(&rec(10.0, 50.0, QueryOutcome::Completed)); // ok
        s.record(&rec(60.0, 50.0, QueryOutcome::Completed)); // late
        s.record(&rec(20.0, 50.0, QueryOutcome::Dropped)); // dropped
        assert_eq!(s.total(), 3);
        assert!((s.violation_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.goodput_queries(), 1);
    }

    #[test]
    fn timeout_counts_as_violation_but_not_drop() {
        let mut s = ServiceStats::new();
        s.record(&rec(10.0, 50.0, QueryOutcome::Completed));
        s.record(&rec(70.0, 50.0, QueryOutcome::TimedOut));
        assert_eq!(s.total(), 2);
        assert_eq!(s.timed_out(), 1);
        assert_eq!(s.dropped(), 0);
        assert!((s.violation_ratio() - 0.5).abs() < 1e-12);
        // Timeouts do not pollute the completed-latency percentile pool.
        assert!(s.p99_latency() < 50.0);
        // And merge correctly.
        let mut pooled = ServiceStats::new();
        pooled.extend_from(&s);
        pooled.extend_from(&s);
        assert_eq!(pooled.timed_out(), 2);
        assert!(!rec(1.0, 50.0, QueryOutcome::TimedOut).met_qos());
    }

    #[test]
    fn p99_uses_completed_only() {
        let mut s = ServiceStats::new();
        for i in 0..100 {
            s.record(&rec(i as f64, 1000.0, QueryOutcome::Completed));
        }
        // A dropped query with huge "latency" must not affect the percentile.
        s.record(&rec(10_000.0, 1000.0, QueryOutcome::Dropped));
        assert!(s.p99_latency() < 100.0);
    }

    #[test]
    fn goodput_rates() {
        let mut s = ServiceStats::new();
        for _ in 0..50 {
            s.record(&rec(10.0, 50.0, QueryOutcome::Completed));
        }
        // 50 queries in 10 s -> 5 qps; each carries 8 requests -> 40 rps.
        assert!((s.goodput_qps(10_000.0) - 5.0).abs() < 1e-12);
        assert!((s.goodput_rps(10_000.0) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn met_qos_semantics() {
        assert!(rec(50.0, 50.0, QueryOutcome::Completed).met_qos());
        assert!(!rec(50.1, 50.0, QueryOutcome::Completed).met_qos());
        assert!(!rec(1.0, 50.0, QueryOutcome::Dropped).met_qos());
    }

    #[test]
    fn queue_breakdown_tracked() {
        let mut s = ServiceStats::new();
        s.record(&rec(40.0, 50.0, QueryOutcome::Completed));
        s.record(&rec(20.0, 50.0, QueryOutcome::Completed));
        // queue_ms = latency * 0.25 in the fixture.
        assert!((s.mean_queue_ms() - 7.5).abs() < 1e-12);
        // Drops do not pollute the completed-query breakdown.
        s.record(&rec(99.0, 50.0, QueryOutcome::Dropped));
        assert!((s.mean_queue_ms() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn queue_percentiles_over_completed_only() {
        let mut s = ServiceStats::new();
        for i in 1..=100 {
            s.record(&rec(4.0 * i as f64, 1000.0, QueryOutcome::Completed));
        }
        s.record(&rec(8000.0, 1000.0, QueryOutcome::Dropped)); // huge queue_ms, ignored
        assert!((s.queue_p50_ms() - 50.0).abs() < 1.0, "{}", s.queue_p50_ms());
        assert!(s.queue_p99_ms() <= 100.0, "{}", s.queue_p99_ms());
        assert!(s.queue_p99_ms() > s.queue_p50_ms());
        // Pooling carries the delay pool across.
        let mut pooled = ServiceStats::new();
        pooled.extend_from(&s);
        assert_eq!(pooled.queue_p50_ms(), s.queue_p50_ms());
        assert_eq!(ServiceStats::new().queue_p99_ms(), 0.0);
    }

    #[test]
    fn queue_sketch_tracks_exact_percentiles() {
        let mut s = ServiceStats::new();
        for i in 1..=500 {
            s.record(&rec(0.8 * i as f64, 10_000.0, QueryOutcome::Completed));
        }
        for p in [50.0, 99.0, 99.9] {
            let exact = s.queue_percentile(p);
            let est = s.queue_sketch_percentile(p);
            // The exact path interpolates (R-7) while the sketch reports a
            // bucket upper edge at the ceil rank, so allow the documented
            // relative error on top of one rank step.
            assert!(
                est >= exact * (1.0 - 1e-9),
                "p{p}: sketch {est} under exact {exact}"
            );
            assert!(
                est <= exact * (1.0 + 2.0 * QuantileSketch::RELATIVE_ERROR) + 0.4,
                "p{p}: sketch {est} too far above exact {exact}"
            );
        }
        // Merging pools the sketch alongside the exact pool.
        let mut pooled = ServiceStats::new();
        pooled.extend_from(&s);
        pooled.extend_from(&s);
        assert_eq!(pooled.queue_sketch().count(), 1000);
        assert_eq!(
            pooled.queue_sketch_percentile(50.0),
            s.queue_sketch_percentile(50.0)
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ServiceStats::new();
        assert_eq!(s.violation_ratio(), 0.0);
        assert_eq!(s.p99_latency(), 0.0);
        assert_eq!(s.total(), 0);
    }
}
