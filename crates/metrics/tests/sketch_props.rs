//! Property tests pinning the [`QuantileSketch`] determinism contract:
//! merge is bitwise associative and commutative, merging shards equals a
//! sequential feed, bucketing is order-invariant, and reported quantiles
//! stay within the documented rank/relative-error bound of the exact
//! order statistics.

use abacus_metrics::QuantileSketch;
use proptest::prelude::*;

fn feed(vals: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in vals {
        s.record(v);
    }
    s
}

/// Observation values spanning the sketch's full dynamic range, including
/// zeros (underflow) and values past the top octave (overflow).
fn obs() -> impl Strategy<Value = f64> {
    prop_oneof![
        1e-3..5_000.0f64,
        Just(0.0),
        1.5e6..1e9f64,
        1e-8..1e-6f64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(obs(), 0..80),
        b in proptest::collection::vec(obs(), 0..80),
        c in proptest::collection::vec(obs(), 0..80),
    ) {
        let (sa, sb, sc) = (feed(&a), feed(&b), feed(&c));

        // (a ⊎ b) ⊎ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊎ (b ⊎ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // b ⊎ a == a ⊎ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn merged_shards_equal_sequential_feed(
        vals in proptest::collection::vec(obs(), 1..200),
        split in 0usize..200,
    ) {
        let cut = split.min(vals.len());
        let mut sharded = feed(&vals[..cut]);
        sharded.merge(&feed(&vals[cut..]));
        prop_assert_eq!(&sharded, &feed(&vals));
    }

    #[test]
    fn order_invariant(vals in proptest::collection::vec(obs(), 0..150)) {
        let mut rev = vals.clone();
        rev.reverse();
        prop_assert_eq!(&feed(&vals), &feed(&rev));
    }

    #[test]
    fn quantile_within_rank_error(
        vals in proptest::collection::vec(1e-3..10_000.0f64, 1..200),
        p in 0.0..100.0f64,
    ) {
        let s = feed(&vals);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        let exact = sorted[rank - 1];
        let est = s.quantile(p);
        prop_assert!(est >= exact, "p{}: {} < exact {}", p, est, exact);
        prop_assert!(
            est <= exact * (1.0 + QuantileSketch::RELATIVE_ERROR),
            "p{}: {} overshoots exact {}", p, est, exact
        );
    }
}
