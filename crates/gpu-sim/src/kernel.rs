//! Kernel cost descriptors.
//!
//! Every DNN operator lowers to one [`KernelDesc`] for a concrete (batch
//! size, sequence length, GPU). A descriptor carries the operator's compute
//! and memory *work* plus its available parallelism; solo duration and
//! resource utilisation follow from the roofline of the target GPU.

use crate::gpu::GpuSpec;

/// Host-side launch latency charged once per kernel, in milliseconds.
///
/// On the paper's PyTorch/A100 stack each operator costs tens of
/// microseconds of launch/dispatch; this constant is part of the solo-latency
/// calibration (ResNet-152 has 362 kernels, so launch overhead contributes
/// several milliseconds, matching the gap between pure-roofline time and the
/// measured ≈ 24 ms of §3.2).
pub const DEFAULT_LAUNCH_MS: f64 = 0.012;

/// Exponent of the occupancy → efficiency curve (see
/// [`KernelDesc::efficiency`]).
pub const EFFICIENCY_ALPHA: f64 = 0.8;

/// The cost model of one GPU kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDesc {
    /// Floating-point work in FLOPs.
    pub flops: f64,
    /// Global-memory traffic in bytes (reads + writes, including weights).
    pub bytes: f64,
    /// Number of thread blocks the kernel launches — determines how much of
    /// the GPU it can occupy by itself.
    pub blocks: f64,
    /// Host-side launch overhead in milliseconds.
    pub launch_ms: f64,
}

impl KernelDesc {
    /// Create a descriptor with the default launch overhead.
    pub fn new(flops: f64, bytes: f64, blocks: f64) -> Self {
        debug_assert!(flops >= 0.0 && bytes >= 0.0 && blocks > 0.0);
        Self {
            flops,
            bytes,
            blocks,
            launch_ms: DEFAULT_LAUNCH_MS,
        }
    }

    /// Fraction of the GPU's SM capacity this kernel can use by itself, in
    /// `(0, 1]`.
    #[inline]
    pub fn occupancy(&self, gpu: &GpuSpec) -> f64 {
        (self.blocks / gpu.block_slots()).clamp(1e-3, 1.0)
    }

    /// Achieved compute efficiency in `(0, 1]`: `occupancy ^ EFFICIENCY_ALPHA`.
    ///
    /// Real kernels lose throughput *sublinearly* in occupancy — a kernel
    /// with 25% of the saturating block count still overlaps memory latency
    /// within its resident blocks and typically achieves ~50% of peak, not
    /// 25%. The exponent is a calibration constant (see module docs).
    #[inline]
    pub fn efficiency(&self, gpu: &GpuSpec) -> f64 {
        self.occupancy(gpu).powf(EFFICIENCY_ALPHA)
    }

    /// Compute-limited execution time on `gpu`, in ms (excludes launch).
    ///
    /// Under-occupying kernels only reach `occupancy × peak_flops`.
    #[inline]
    pub fn t_compute_ms(&self, gpu: &GpuSpec) -> f64 {
        if self.flops == 0.0 {
            return 0.0;
        }
        self.flops / (self.efficiency(gpu) * gpu.peak_flops) * 1e3
    }

    /// Memory-limited execution time on `gpu`, in ms (excludes launch).
    #[inline]
    pub fn t_memory_ms(&self, gpu: &GpuSpec) -> f64 {
        if self.bytes == 0.0 {
            return 0.0;
        }
        self.bytes / gpu.peak_bw * 1e3
    }

    /// Solo duration on an idle `gpu`, in ms: launch + roofline.
    #[inline]
    pub fn solo_ms(&self, gpu: &GpuSpec) -> f64 {
        self.launch_ms + self.t_compute_ms(gpu).max(self.t_memory_ms(gpu))
    }

    /// Fraction of the GPU's compute throughput consumed while this kernel
    /// runs solo, in `[0, 1]`.
    #[inline]
    pub fn compute_share(&self, gpu: &GpuSpec) -> f64 {
        let exec = self.t_compute_ms(gpu).max(self.t_memory_ms(gpu));
        if exec == 0.0 {
            return 0.0;
        }
        self.efficiency(gpu) * self.t_compute_ms(gpu) / exec
    }

    /// Fraction of the GPU's memory bandwidth consumed while this kernel
    /// runs solo, in `[0, 1]`.
    #[inline]
    pub fn memory_share(&self, gpu: &GpuSpec) -> f64 {
        let exec = self.t_compute_ms(gpu).max(self.t_memory_ms(gpu));
        if exec == 0.0 {
            return 0.0;
        }
        self.t_memory_ms(gpu) / exec
    }
}

/// Total solo duration of a kernel sequence on an idle GPU, in ms.
pub fn sequence_solo_ms(kernels: &[KernelDesc], gpu: &GpuSpec) -> f64 {
    kernels.iter().map(|k| k.solo_ms(gpu)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::a100()
    }

    #[test]
    fn compute_bound_kernel() {
        // Big GEMM: lots of FLOPs, full occupancy.
        let k = KernelDesc::new(1e12, 1e8, 1e6);
        let g = gpu();
        assert_eq!(k.occupancy(&g), 1.0);
        assert!(k.t_compute_ms(&g) > k.t_memory_ms(&g));
        assert!((k.compute_share(&g) - 1.0).abs() < 1e-9);
        assert!(k.memory_share(&g) < 0.01);
        let expect = 1e12 / g.peak_flops * 1e3 + k.launch_ms;
        assert!((k.solo_ms(&g) - expect).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernel() {
        // Element-wise op: tiny FLOPs, big traffic.
        let k = KernelDesc::new(1e7, 1e9, 1e5);
        let g = gpu();
        assert!(k.t_memory_ms(&g) > k.t_compute_ms(&g));
        assert!((k.memory_share(&g) - 1.0).abs() < 1e-9);
        assert!(k.compute_share(&g) < 0.2);
    }

    #[test]
    fn under_occupancy_slows_compute() {
        let g = gpu();
        let full = KernelDesc::new(1e10, 0.0, g.block_slots());
        let half = KernelDesc::new(1e10, 0.0, g.block_slots() / 2.0);
        let expect = 0.5_f64.powf(EFFICIENCY_ALPHA);
        let ratio = half.t_compute_ms(&g) / full.t_compute_ms(&g);
        assert!((ratio - 1.0 / expect).abs() < 1e-9, "ratio {ratio}");
        assert!((half.compute_share(&g) - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_work_kernel_costs_launch_only() {
        let k = KernelDesc::new(0.0, 0.0, 1.0);
        assert_eq!(k.solo_ms(&gpu()), k.launch_ms);
        assert_eq!(k.compute_share(&gpu()), 0.0);
        assert_eq!(k.memory_share(&gpu()), 0.0);
    }

    #[test]
    fn sequence_sums() {
        let g = gpu();
        let ks = vec![KernelDesc::new(1e9, 1e6, 1000.0); 4];
        let each = ks[0].solo_ms(&g);
        assert!((sequence_solo_ms(&ks, &g) - 4.0 * each).abs() < 1e-9);
    }

    #[test]
    fn mig_slice_scales_solo_time() {
        let a100 = gpu();
        let slice = a100.mig_slice(crate::gpu::MigProfile::TwoG10Gb);
        // Saturating compute kernel: ~7/2 slower on the 2/7 slice.
        let k = KernelDesc::new(1e11, 0.0, 1e6);
        let ratio = k.t_compute_ms(&slice) / k.t_compute_ms(&a100);
        assert!((ratio - 3.5).abs() < 0.05, "ratio {ratio}");
    }
}
