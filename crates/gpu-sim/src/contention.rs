//! The co-run contention model.
//!
//! When a set *S* of kernels runs simultaneously, each kernel's progress
//! rate drops according to how oversubscribed the two shared resources are:
//!
//! ```text
//! U_c = Σ compute_share_j      U_m = Σ memory_share_j       (over S)
//!
//! slow_i = max(t_c,i · max(1, U_c),  t_m,i · max(1, U_m)) / max(t_c,i, t_m,i)
//!          · (1 + γ · Σ_{j≠i} memory_share_j)
//! ```
//!
//! * If neither resource is oversubscribed (`U_c, U_m ≤ 1`) the kernels fit
//!   spatially and only the mild interference term `γ` (cache/DRAM-row
//!   contention) applies — this is the regime that makes operator overlap
//!   profitable for ResNet/Inception-style kernels.
//! * If a resource is oversubscribed, it is shared proportionally; a kernel
//!   is slowed only insofar as the oversubscribed resource is the one that
//!   binds *it* (a memory-bound kernel does not care that compute is scarce
//!   until its compute-limited time exceeds its memory-limited time).
//! * Saturating kernels (`compute_share ≈ 1`, e.g. VGG batch-32
//!   convolutions) give `U_c ≈ |S|` and degenerate to time-sharing, which is
//!   why the paper observes no overlap benefit for (VGG16, VGG19).

use crate::gpu::GpuSpec;
use crate::kernel::KernelDesc;

/// Interference coefficient γ: residual slowdown from co-runners' memory
/// traffic even when bandwidth is not saturated (L2 / DRAM row-buffer
/// contention). Calibrated so lightly-overlapped pairs see a few percent of
/// mutual slowdown, consistent with the paper's co-run latency spreads.
pub const INTERFERENCE_GAMMA: f64 = 0.08;

/// A kernel's precomputed resource profile while running on a given GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningKernel {
    /// Compute-limited execution time, ms (excluding launch).
    pub t_compute_ms: f64,
    /// Memory-limited execution time, ms (excluding launch).
    pub t_memory_ms: f64,
    /// Fraction of GPU compute consumed when running solo.
    pub compute_share: f64,
    /// Fraction of GPU memory bandwidth consumed when running solo.
    pub memory_share: f64,
    /// Solo execution time (max of the rooflines), ms, excluding launch.
    pub exec_ms: f64,
}

/// Resource shares are quantised to integer multiples of 2⁻³² before they
/// enter the contention sums. Shares are O(1) and running sets are small, so
/// every quantised share and every partial sum/difference of them needs far
/// fewer than the 53 mantissa bits of an `f64` — all aggregate arithmetic on
/// shares is *exact*. That is what lets the engine maintain `U_c`/`U_m`
/// incrementally (add on kernel start, subtract on retire) while staying
/// bit-identical to re-summing the running set from scratch at every event:
/// with exact arithmetic the two are the same number, with no drift over
/// arbitrarily long open-loop runs.
const SHARE_QUANTUM_INV: f64 = 4_294_967_296.0; // 2^32

fn quantize_share(x: f64) -> f64 {
    (x * SHARE_QUANTUM_INV).round() / SHARE_QUANTUM_INV
}

impl RunningKernel {
    /// Derive the profile of `kernel` on `gpu`.
    ///
    /// Evaluates `occupancy^alpha` (the one `powf` in the roofline) exactly
    /// once and derives every field from it — this runs on every kernel
    /// start, so the redundant per-accessor recomputation the
    /// [`KernelDesc`] methods would do dominates the engine's event cost.
    /// Each expression matches the corresponding accessor term for term, so
    /// the results are bit-identical to calling them.
    pub fn profile(kernel: &KernelDesc, gpu: &GpuSpec) -> Self {
        let eff = kernel.efficiency(gpu);
        let t_compute_ms = if kernel.flops == 0.0 {
            0.0
        } else {
            kernel.flops / (eff * gpu.peak_flops) * 1e3
        };
        let t_memory_ms = if kernel.bytes == 0.0 {
            0.0
        } else {
            kernel.bytes / gpu.peak_bw * 1e3
        };
        let exec_ms = t_compute_ms.max(t_memory_ms);
        let (compute_share, memory_share) = if exec_ms == 0.0 {
            (0.0, 0.0)
        } else {
            (
                quantize_share(eff * t_compute_ms / exec_ms),
                quantize_share(t_memory_ms / exec_ms),
            )
        };
        Self {
            t_compute_ms,
            t_memory_ms,
            compute_share,
            memory_share,
            exec_ms,
        }
    }
}

/// Slowdown factors (≥ 1) for every kernel in the running set.
///
/// `out[i]` is how many times slower kernel `i` executes compared to its
/// solo execution time, given all kernels in `set` run simultaneously.
pub fn co_run_slowdowns(set: &[RunningKernel], out: &mut Vec<f64>) {
    let u_c: f64 = set.iter().map(|k| k.compute_share).sum();
    let u_m: f64 = set.iter().map(|k| k.memory_share).sum();
    co_run_slowdowns_summed(u_c, u_m, set, out);
}

/// [`co_run_slowdowns`] with the aggregate utilisations supplied by the
/// caller — the engine's hot path, which maintains `U_c`/`U_m`
/// incrementally across events instead of re-summing the running set.
/// Because shares are quantised (see [`RunningKernel::profile`]), an
/// incrementally-maintained aggregate equals the re-summed one bit for bit.
pub fn co_run_slowdowns_summed(u_c: f64, u_m: f64, set: &[RunningKernel], out: &mut Vec<f64>) {
    out.clear();
    if set.is_empty() {
        return;
    }
    let over_c = u_c.max(1.0);
    let over_m = u_m.max(1.0);
    for k in set {
        out.push(slowdown_one(
            u_m,
            over_c,
            over_m,
            k.t_compute_ms,
            k.t_memory_ms,
            k.memory_share,
            k.exec_ms,
        ));
    }
}

/// Slowdown of one kernel given precomputed `over_c = U_c.max(1)` and
/// `over_m = U_m.max(1)`. The scalar core shared by
/// [`co_run_slowdowns_summed`], the engine's per-kernel stale refresh and
/// the remainder lanes of the SIMD tiers ([`crate::simd`]) — one
/// definition, so every path is bit-identical by construction.
#[inline]
pub(crate) fn slowdown_one(
    u_m: f64,
    over_c: f64,
    over_m: f64,
    t_compute_ms: f64,
    t_memory_ms: f64,
    memory_share: f64,
    exec_ms: f64,
) -> f64 {
    if exec_ms <= 0.0 {
        // Pure-launch kernel: nothing to contend for.
        return 1.0;
    }
    let contended = (t_compute_ms * over_c).max(t_memory_ms * over_m);
    let interference = 1.0 + INTERFERENCE_GAMMA * (u_m - memory_share).max(0.0);
    (contended / exec_ms) * interference
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(flops: f64, bytes: f64, blocks: f64) -> RunningKernel {
        RunningKernel::profile(&KernelDesc::new(flops, bytes, blocks), &GpuSpec::a100())
    }

    fn slowdowns(set: &[RunningKernel]) -> Vec<f64> {
        let mut out = Vec::new();
        co_run_slowdowns(set, &mut out);
        out
    }

    #[test]
    fn solo_kernel_has_unit_slowdown() {
        let s = slowdowns(&[prof(1e10, 1e7, 1e4)]);
        assert_eq!(s.len(), 1);
        assert!((s[0] - 1.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn two_saturating_kernels_time_share() {
        let g = GpuSpec::a100();
        let k = prof(1e11, 1e7, 2.0 * g.block_slots());
        let s = slowdowns(&[k, k]);
        // U_c = 2 -> each runs ~2x slower (plus tiny interference).
        assert!(s.iter().all(|&x| (1.9..2.2).contains(&x)), "{s:?}");
    }

    #[test]
    fn under_occupying_kernels_overlap_almost_free() {
        let g = GpuSpec::a100();
        // Each fills ~20% of the block slots (~45% achieved compute) and
        // is compute bound.
        let k = prof(1e9, 1e6, 0.2 * g.block_slots());
        let s = slowdowns(&[k, k]);
        assert!(s.iter().all(|&x| x < 1.05), "{s:?}");
    }

    #[test]
    fn memory_bound_pair_shares_bandwidth() {
        let k = prof(1e6, 1e9, 1e4);
        let s = slowdowns(&[k, k]);
        // Each solo uses full bandwidth: U_m = 2 -> ~2x plus interference.
        assert!(s.iter().all(|&x| (1.9..2.3).contains(&x)), "{s:?}");
    }

    #[test]
    fn asymmetric_sensitivity() {
        let g = GpuSpec::a100();
        // Compute-bound, saturating.
        let big = prof(5e10, 1e6, 2.0 * g.block_slots());
        // Memory-bound, small compute footprint.
        let mem = prof(1e6, 5e8, 1e4);
        let s = slowdowns(&[big, mem]);
        // Compute is oversubscribed (U_c > 1) but the memory-bound kernel
        // only cares once its compute roofline dominates — it should be hurt
        // far less than proportionally.
        assert!(s[0] > 1.0, "{s:?}");
        assert!(s[1] < s[0], "{s:?}");
    }

    #[test]
    fn adding_corunner_never_speeds_up() {
        let a = prof(2e9, 3e7, 2e3);
        let b = prof(8e9, 1e8, 4e3);
        let c = prof(1e8, 6e8, 1e3);
        let s2 = slowdowns(&[a, b]);
        let s3 = slowdowns(&[a, b, c]);
        assert!(s3[0] >= s2[0] - 1e-12);
        assert!(s3[1] >= s2[1] - 1e-12);
    }

    #[test]
    fn empty_set() {
        assert!(slowdowns(&[]).is_empty());
    }

    #[test]
    fn shares_are_quantized_exactly() {
        let k = prof(3.7e9, 2.9e7, 1234.0);
        for share in [k.compute_share, k.memory_share] {
            let scaled = share * super::SHARE_QUANTUM_INV;
            assert_eq!(scaled, scaled.round(), "share {share} not on the grid");
        }
    }

    #[test]
    fn incremental_aggregates_match_resummed_bitwise() {
        // Simulate the engine's add-on-start / subtract-on-retire pattern
        // over a long pseudo-random sequence and check the incremental
        // aggregates and the resulting slowdowns stay bit-identical to
        // re-summing the live set at every step.
        let pool: Vec<RunningKernel> = (1..40)
            .map(|i| prof(1e8 * i as f64, 3e6 * i as f64, 700.0 * i as f64))
            .collect();
        let mut live: Vec<RunningKernel> = Vec::new();
        let mut u_c = 0.0f64;
        let mut u_m = 0.0f64;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for step in 0..5_000 {
            if live.is_empty() || next() % 3 != 0 {
                let k = pool[next() % pool.len()];
                live.push(k);
                u_c += k.compute_share;
                u_m += k.memory_share;
            } else {
                let k = live.swap_remove(next() % live.len());
                u_c -= k.compute_share;
                u_m -= k.memory_share;
            }
            let rc: f64 = live.iter().map(|k| k.compute_share).sum();
            let rm: f64 = live.iter().map(|k| k.memory_share).sum();
            assert_eq!(u_c.to_bits(), rc.to_bits(), "U_c drifted at step {step}");
            assert_eq!(u_m.to_bits(), rm.to_bits(), "U_m drifted at step {step}");
            co_run_slowdowns_summed(u_c, u_m, &live, &mut fast);
            co_run_slowdowns(&live, &mut slow);
            assert_eq!(fast, slow, "slowdowns diverged at step {step}");
        }
    }

    #[test]
    fn slowdowns_always_at_least_one() {
        let ks: Vec<RunningKernel> = (1..6)
            .map(|i| prof(1e8 * i as f64, 1e7 * i as f64, 500.0 * i as f64))
            .collect();
        for n in 1..=ks.len() {
            let s = slowdowns(&ks[..n]);
            assert!(s.iter().all(|&x| x >= 1.0 - 1e-12), "{s:?}");
        }
    }
}
