//! Pending-arrival queue for the event core.
//!
//! Arrivals wait here until simulated time reaches their start. The engine
//! needs three things from the structure: O(~1) insert, O(~1) pop of the
//! earliest start, and a *total order* on equal starts (newest arrival
//! first — tie order decides the order noise factors are drawn in, so it
//! is part of the determinism contract, see [`crate::engine`]).
//!
//! Two representations, switched by backlog size:
//!
//! * **Sorted `Vec`** below [`SORTED_PENDING_MAX`]: entries sorted by
//!   start descending (soonest at the back, O(1) pop), binary-inserted —
//!   exactly the pre-overhaul engine's layout, so small runs (operator
//!   groups, short overlap experiments) are untouched.
//! * **Calendar queue** above it: entries hash into fixed-width time
//!   buckets; pops scan the current bucket only, inserts append to their
//!   bucket. With buckets sized to O(1) expected occupancy both
//!   operations are amortised O(1) regardless of backlog, where the
//!   sorted `Vec` pays an O(n) memmove per insert (the dominant cost of
//!   pre-enqueued open-loop traces).
//!
//! The comparator, not the representation, defines pop order — both modes
//! yield the exact same sequence, so which mode served an arrival is
//! unobservable in simulation results.

/// Backlog size at which the queue converts from the sorted-`Vec` to the
/// calendar representation. Conversion also requires a non-degenerate
/// start-time span: an all-equal-start backlog (e.g. an operator group of
/// any width) stays on the sorted path, where equal-start insert is O(1),
/// rather than piling every entry into one calendar bucket.
pub(crate) const SORTED_PENDING_MAX: usize = 64;

/// Average entries per calendar bucket that triggers a regrow (buckets
/// double and entries redistribute), keeping expected bucket scans O(1).
const REGROW_OCCUPANCY: usize = 4;

/// One waiting arrival. `seq` is the insertion sequence number since the
/// last clear; `idx` is the engine's stream slot.
#[derive(Debug, Clone, Copy)]
struct Entry {
    start_ms: f64,
    seq: u64,
    idx: usize,
}

impl Entry {
    /// Activation order: earlier start first; among equal starts the
    /// newest arrival (larger `seq`) first — the legacy push + stable-sort
    /// order the determinism contract pins.
    #[inline]
    fn before(&self, other: &Entry) -> bool {
        self.start_ms < other.start_ms
            || (self.start_ms == other.start_ms && self.seq > other.seq)
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct PendingQueue {
    /// Sorted-mode storage: start descending / seq ascending, next at the
    /// back. Empty while `calendar` is active.
    sorted: Vec<Entry>,
    calendar: Option<Calendar>,
    /// Next insertion sequence number.
    seq: u64,
    len: usize,
    /// Don't re-attempt (and re-scan for) calendar conversion until the
    /// backlog reaches this size; doubled after each degenerate-span skip.
    next_convert_len: usize,
    /// Peak backlog since the last clear (telemetry).
    peak_len: usize,
}

#[derive(Debug, Clone)]
struct Calendar {
    buckets: Vec<Vec<Entry>>,
    /// Bucket time width, ms (> 0).
    width_ms: f64,
    /// Start time of bucket 0.
    base_ms: f64,
    /// Lowest bucket index that may still hold the minimum.
    cur: usize,
    /// Entries at or beyond the bucket horizon, parked until a rebuild.
    overflow: Vec<Entry>,
    /// Cached minimum: (bucket, position within bucket, entry). Inserts
    /// keep it coherent; pops invalidate it.
    min_cache: Option<(usize, usize, Entry)>,
    /// Peak single-bucket occupancy since conversion (telemetry).
    peak_bucket: usize,
}

impl Calendar {
    /// Build a calendar over `entries` (must be non-empty with a strictly
    /// positive start-time span).
    fn build(entries: &[Entry]) -> Self {
        let n_buckets = entries.len().next_power_of_two().max(2);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in entries {
            lo = lo.min(e.start_ms);
            hi = hi.max(e.start_ms);
        }
        let mut cal = Calendar {
            buckets: vec![Vec::new(); n_buckets],
            width_ms: ((hi - lo) / n_buckets as f64).max(1e-9),
            base_ms: lo,
            cur: 0,
            overflow: Vec::new(),
            min_cache: None,
            peak_bucket: 0,
        };
        for &e in entries {
            cal.insert(e);
        }
        cal
    }

    #[inline]
    fn bucket_of(&self, start_ms: f64) -> Option<usize> {
        if start_ms >= self.base_ms + self.width_ms * self.buckets.len() as f64 {
            return None;
        }
        let b = if start_ms <= self.base_ms {
            0
        } else {
            ((start_ms - self.base_ms) / self.width_ms) as usize
        };
        // Float rounding at the horizon edge can land one past the end.
        Some(b.min(self.buckets.len() - 1))
    }

    fn insert(&mut self, e: Entry) {
        let Some(b) = self.bucket_of(e.start_ms) else {
            self.overflow.push(e);
            return;
        };
        self.buckets[b].push(e);
        if self.buckets[b].len() > self.peak_bucket {
            self.peak_bucket = self.buckets[b].len();
        }
        // A late insert may land before the scan pointer.
        if b < self.cur {
            self.cur = b;
        }
        // Overflow entries lie beyond every bucket, so a bucket-borne
        // cached minimum stays the minimum unless this entry beats it.
        if let Some((_, _, best)) = &self.min_cache {
            if e.before(best) {
                self.min_cache = Some((b, self.buckets[b].len() - 1, e));
            }
        }
    }

    /// Locate the minimum entry, refilling the horizon from `overflow`
    /// when every bucket has drained. Returns `None` only when the whole
    /// calendar is empty.
    fn peek(&mut self) -> Option<Entry> {
        if let Some((_, _, e)) = self.min_cache {
            return Some(e);
        }
        loop {
            while self.cur < self.buckets.len() {
                let b = &self.buckets[self.cur];
                if !b.is_empty() {
                    let mut best = 0;
                    for i in 1..b.len() {
                        if b[i].before(&b[best]) {
                            best = i;
                        }
                    }
                    let e = b[best];
                    self.min_cache = Some((self.cur, best, e));
                    return Some(e);
                }
                self.cur += 1;
            }
            if self.overflow.is_empty() {
                return None;
            }
            // Rebase the horizon on the parked entries. `base_ms` becomes
            // their minimum start, so bucket 0 is non-empty afterwards and
            // the rescan terminates on the next pass.
            let parked = std::mem::take(&mut self.overflow);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &parked {
                lo = lo.min(e.start_ms);
                hi = hi.max(e.start_ms);
            }
            self.base_ms = lo;
            self.width_ms = ((hi - lo) / self.buckets.len() as f64).max(1e-9);
            self.cur = 0;
            for e in parked {
                self.insert(e);
            }
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        let e = self.peek()?;
        let (b, pos, _) = self.min_cache.take().expect("peek cached the minimum");
        self.buckets[b].swap_remove(pos);
        Some(e)
    }

    #[cfg(test)]
    fn len_live(&self) -> usize {
        self.overflow.len() + self.buckets.iter().map(Vec::len).sum::<usize>()
    }

    /// Double the bucket count and redistribute, keeping expected bucket
    /// occupancy O(1) as the backlog grows.
    fn regrow(&mut self) {
        let mut entries: Vec<Entry> = std::mem::take(&mut self.overflow);
        for b in &mut self.buckets {
            entries.append(b);
        }
        let n_buckets = (self.buckets.len() * 2).max(entries.len().next_power_of_two());
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &entries {
            lo = lo.min(e.start_ms);
            hi = hi.max(e.start_ms);
        }
        self.buckets.resize(n_buckets, Vec::new());
        self.base_ms = lo;
        self.width_ms = ((hi - lo) / n_buckets as f64).max(1e-9);
        self.cur = 0;
        self.min_cache = None;
        for e in entries {
            self.insert(e);
        }
    }
}

impl PendingQueue {
    /// Enqueue an arrival; assigns its tie-breaking sequence number.
    pub(crate) fn push(&mut self, start_ms: f64, idx: usize) {
        let e = Entry {
            start_ms,
            seq: self.seq,
            idx,
        };
        self.seq += 1;
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        if let Some(cal) = &mut self.calendar {
            cal.insert(e);
            if self.len > cal.buckets.len() * REGROW_OCCUPANCY {
                cal.regrow();
            }
            return;
        }
        if self.sorted.len() >= SORTED_PENDING_MAX.max(self.next_convert_len) {
            let span = self.sorted.iter().map(|e| e.start_ms).fold(f64::NEG_INFINITY, f64::max)
                - self.sorted.iter().map(|e| e.start_ms).fold(f64::INFINITY, f64::min);
            if span > 0.0 {
                let mut entries = std::mem::take(&mut self.sorted);
                entries.push(e);
                self.calendar = Some(Calendar::build(&entries));
                return;
            }
            // Degenerate all-equal-start backlog: stay sorted, check again
            // once the backlog doubles.
            self.next_convert_len = self.sorted.len() * 2;
        }
        // Binary-insert *after* any equal start times (descending starts),
        // leaving the newest tie nearest the back — i.e. popping first.
        let at = self.sorted.partition_point(|p| p.start_ms >= start_ms);
        self.sorted.insert(at, e);
    }

    /// The next arrival to activate, without removing it.
    pub(crate) fn peek(&mut self) -> Option<(f64, usize)> {
        if let Some(cal) = &mut self.calendar {
            cal.peek().map(|e| (e.start_ms, e.idx))
        } else {
            self.sorted.last().map(|e| (e.start_ms, e.idx))
        }
    }

    /// Remove and return the next arrival's stream slot.
    pub(crate) fn pop(&mut self) -> Option<usize> {
        let e = if let Some(cal) = &mut self.calendar {
            cal.pop()
        } else {
            self.sorted.pop()
        }?;
        self.len -= 1;
        Some(e.idx)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry and return to the sorted representation (resets
    /// drop the calendar's allocation; group-sized runs never rebuild it).
    pub(crate) fn clear(&mut self) {
        self.sorted.clear();
        self.calendar = None;
        self.seq = 0;
        self.len = 0;
        self.next_convert_len = 0;
        self.peak_len = 0;
    }

    /// Peak backlog since the last clear.
    pub(crate) fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// `(bucket count, peak single-bucket occupancy)` of the calendar;
    /// zeros while on the sorted path.
    pub(crate) fn calendar_stats(&self) -> (usize, usize) {
        self.calendar
            .as_ref()
            .map_or((0, 0), |c| (c.buckets.len(), c.peak_bucket))
    }

    #[cfg(test)]
    fn live_len(&self) -> usize {
        self.calendar.as_ref().map_or(self.sorted.len(), Calendar::len_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the exact pop order both representations must produce.
    fn reference_order(arrivals: &[f64]) -> Vec<usize> {
        let mut tagged: Vec<(f64, usize)> =
            arrivals.iter().copied().enumerate().map(|(i, s)| (s, i)).collect();
        // Earlier start first; equal starts newest-insert first.
        tagged.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1))
        });
        tagged.into_iter().map(|(_, i)| i).collect()
    }

    fn drain(q: &mut PendingQueue) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(idx) = q.pop() {
            out.push(idx);
        }
        out
    }

    fn lcg_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        }
    }

    #[test]
    fn small_backlog_stays_sorted_and_ordered() {
        let arrivals: Vec<f64> = vec![3.0, 1.0, 2.0, 1.0, 0.5, 2.0];
        let mut q = PendingQueue::default();
        for (i, &s) in arrivals.iter().enumerate() {
            q.push(s, i);
        }
        assert_eq!(q.calendar_stats(), (0, 0), "must not convert below threshold");
        assert_eq!(drain(&mut q), reference_order(&arrivals));
        assert!(q.is_empty());
    }

    #[test]
    fn large_backlog_converts_and_matches_reference_order() {
        let mut next = lcg_stream(42);
        let arrivals: Vec<f64> = (0..5000)
            .map(|i| {
                // Mix of spread-out starts and deliberate ties.
                if i % 7 == 0 {
                    (next() % 100) as f64
                } else {
                    (next() % 1_000_000) as f64 * 1e-3
                }
            })
            .collect();
        let mut q = PendingQueue::default();
        for (i, &s) in arrivals.iter().enumerate() {
            q.push(s, i);
        }
        let (buckets, peak) = q.calendar_stats();
        assert!(buckets > 0, "must have converted to calendar mode");
        assert!(peak > 0);
        assert_eq!(drain(&mut q), reference_order(&arrivals));
    }

    #[test]
    fn interleaved_push_pop_matches_sorted_reference() {
        // Pops interleave with pushes, including pushes of starts earlier
        // than already-popped entries' (the engine clamps starts to `now`,
        // but the queue itself must stay correct for any input).
        let mut next = lcg_stream(7);
        let mut q = PendingQueue::default();
        let mut model: Vec<Entry> = Vec::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expect = Vec::new();
        for round in 0..20_000 {
            if round % 3 != 2 {
                let start = (next() % 500_000) as f64 * 1e-2;
                q.push(start, round);
                model.push(Entry { start_ms: start, seq, idx: round });
                seq += 1;
            } else {
                popped.push(q.pop());
                let best = model
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        if a.before(b) {
                            std::cmp::Ordering::Less
                        } else {
                            std::cmp::Ordering::Greater
                        }
                    })
                    .map(|(i, _)| i);
                expect.push(best.map(|i| model.remove(i).idx));
            }
        }
        assert_eq!(popped, expect);
        assert_eq!(q.live_len(), model.len());
    }

    #[test]
    fn all_equal_starts_never_convert() {
        let mut q = PendingQueue::default();
        for i in 0..10 * SORTED_PENDING_MAX {
            q.push(1.5, i);
        }
        assert_eq!(q.calendar_stats(), (0, 0), "degenerate span must stay sorted");
        // Newest first among the all-tied backlog.
        let order = drain(&mut q);
        assert_eq!(order[0], 10 * SORTED_PENDING_MAX - 1);
        assert_eq!(*order.last().unwrap(), 0);
    }

    #[test]
    fn clear_returns_to_sorted_mode_and_resets_peaks() {
        let mut q = PendingQueue::default();
        for i in 0..1000 {
            q.push(i as f64 * 0.1, i);
        }
        assert!(q.calendar_stats().0 > 0);
        assert_eq!(q.peak_len(), 1000);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.calendar_stats(), (0, 0));
        assert_eq!(q.peak_len(), 0);
        q.push(2.0, 0);
        q.push(1.0, 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn peek_agrees_with_pop() {
        let mut next = lcg_stream(3);
        let mut q = PendingQueue::default();
        for i in 0..300 {
            q.push((next() % 1000) as f64, i);
        }
        while let Some((start, idx)) = q.peek() {
            let popped = q.pop().unwrap();
            assert_eq!(popped, idx);
            let _ = start;
        }
        assert!(q.is_empty());
    }
}
