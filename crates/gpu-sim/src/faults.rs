//! Deterministic kernel-level fault injection.
//!
//! A [`KernelFaultSpec`] describes a latency-spike regime: inside a chosen
//! window of cumulative GPU busy time, each kernel launch independently
//! draws from a forked SplitMix64 stream and, with probability `prob`, has
//! its (already noisy) solo duration multiplied by `factor`. The stream is
//! forked from `(spec seed, run seed)`, so the spikes a group experiences
//! depend only on the spec and the group's own run seed — bit-reproducible
//! across serial/parallel execution and across engine reuse, exactly like
//! the noise model.
//!
//! The spike draw uses a *separate* RNG from the engine's noise stream: an
//! installed spec with `prob = 0.0` leaves every duration — and the whole
//! run — bit-identical to an engine with no spec installed at all. When no
//! spec is installed the engine's hot path does not touch this module.

use workload::{fork_seed, SeededRng};

/// A deterministic kernel latency-spike regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelFaultSpec {
    /// Base seed of the spike stream; forked with each run seed.
    pub seed: u64,
    /// Window start in cumulative busy time, ms (see [`crate::Engine::set_fault_time_base`]).
    pub window_start_ms: f64,
    /// Window end in cumulative busy time, ms (`f64::INFINITY` = always).
    pub window_end_ms: f64,
    /// Per-kernel spike probability in `[0, 1]`.
    pub prob: f64,
    /// Multiplier applied to a spiked kernel's solo duration (≥ 1 for a
    /// slowdown; values below 1 are allowed for what-if studies).
    pub factor: f64,
}

impl KernelFaultSpec {
    /// A spec that spikes every run, for the whole run.
    pub fn always(seed: u64, prob: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0, 1]");
        assert!(factor.is_finite() && factor > 0.0, "factor must be finite and positive");
        Self {
            seed,
            window_start_ms: 0.0,
            window_end_ms: f64::INFINITY,
            prob,
            factor,
        }
    }
}

/// Per-run spike state held by the engine: the spec plus the forked draw
/// stream and the cumulative-time base of the current run.
#[derive(Debug, Clone)]
pub(crate) struct KernelFaultState {
    pub(crate) spec: KernelFaultSpec,
    rng: SeededRng,
    /// Cumulative busy time at this run's `t = 0` (set by the executor so
    /// the window refers to serving-wide time, not group-local time).
    base_ms: f64,
}

impl KernelFaultState {
    pub(crate) fn new(spec: KernelFaultSpec, run_seed: u64) -> Self {
        Self {
            spec,
            rng: SeededRng::new(fork_seed(spec.seed, run_seed)),
            base_ms: 0.0,
        }
    }

    /// Re-derive the draw stream for a new run, keeping the time base.
    pub(crate) fn reseed(&mut self, run_seed: u64) {
        self.rng = SeededRng::new(fork_seed(self.spec.seed, run_seed));
    }

    pub(crate) fn set_base_ms(&mut self, base_ms: f64) {
        self.base_ms = base_ms;
    }

    /// Multiplier for a kernel starting at engine-local time `now_ms`.
    ///
    /// One draw per kernel launch, unconditionally, so the stream position
    /// does not depend on where the window lies.
    pub(crate) fn spike_factor(&mut self, now_ms: f64) -> f64 {
        let u = self.rng.f64();
        let t = self.base_ms + now_ms;
        if u < self.spec.prob && t >= self.spec.window_start_ms && t < self.spec.window_end_ms {
            self.spec.factor
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_prob_never_spikes() {
        let mut st = KernelFaultState::new(KernelFaultSpec::always(7, 0.0, 3.0), 1);
        for i in 0..1000 {
            assert_eq!(st.spike_factor(i as f64), 1.0);
        }
    }

    #[test]
    fn unit_prob_always_spikes_in_window() {
        let mut st = KernelFaultState::new(KernelFaultSpec::always(7, 1.0, 3.0), 1);
        assert_eq!(st.spike_factor(0.0), 3.0);
        assert_eq!(st.spike_factor(1e9), 3.0);
    }

    #[test]
    fn window_gates_spikes_but_not_stream_position() {
        let spec = KernelFaultSpec {
            seed: 9,
            window_start_ms: 10.0,
            window_end_ms: 20.0,
            prob: 1.0,
            factor: 2.0,
        };
        let mut st = KernelFaultState::new(spec, 4);
        assert_eq!(st.spike_factor(5.0), 1.0); // before window
        assert_eq!(st.spike_factor(15.0), 2.0); // inside
        assert_eq!(st.spike_factor(25.0), 1.0); // after
        // The base shifts group-local time into the window.
        st.set_base_ms(12.0);
        assert_eq!(st.spike_factor(3.0), 2.0);
    }

    #[test]
    fn reseed_reproduces_draw_sequence() {
        let spec = KernelFaultSpec::always(42, 0.5, 4.0);
        let mut a = KernelFaultState::new(spec, 11);
        let first: Vec<f64> = (0..64).map(|i| a.spike_factor(i as f64)).collect();
        a.reseed(11);
        let again: Vec<f64> = (0..64).map(|i| a.spike_factor(i as f64)).collect();
        assert_eq!(first, again);
        assert!(first.contains(&4.0) && first.contains(&1.0));
    }
}
