//! GPU hardware specifications.
//!
//! Calibration targets the paper's testbed (Table 2: Nvidia A100) so that
//! solo latencies land where §3.2 reports them — ResNet-152 at batch 32
//! computes ≈ 24 ms — and the cluster experiment's V100 nodes (§7.6) run at
//! roughly 60% of A100 throughput. Peak numbers are *effective sustained*
//! rates (device peak × achievable efficiency), not datasheet peaks.

/// Static description of a GPU (or a MIG slice of one).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable name, e.g. `"A100"` or `"A100 MIG 2g.10gb"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Thread blocks per SM needed to reach full throughput (the occupancy
    /// knee): a kernel with fewer than `sm_count × blocks_per_sm` blocks
    /// cannot keep the machine busy and runs proportionally slower.
    pub blocks_per_sm: u32,
    /// Effective sustained compute throughput in FLOP/s.
    pub peak_flops: f64,
    /// Effective sustained global-memory bandwidth in bytes/s.
    pub peak_bw: f64,
    /// Global-memory capacity in bytes (bounds how many model replicas a
    /// deployment can hold resident).
    pub memory_bytes: f64,
}

/// The three MIG instance profiles of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigProfile {
    /// `MIG 1g.5gb`: 1/7 of the SMs, 1/8 of the memory system.
    OneG5Gb,
    /// `MIG 2g.10gb`: 2/7 of the SMs, 1/4 of the memory system.
    TwoG10Gb,
    /// `MIG 4g.20gb`: 4/7 of the SMs, 1/2 of the memory system.
    FourG20Gb,
}

impl MigProfile {
    /// Fraction of SMs granted to the instance.
    pub fn sm_fraction(self) -> f64 {
        match self {
            MigProfile::OneG5Gb => 1.0 / 7.0,
            MigProfile::TwoG10Gb => 2.0 / 7.0,
            MigProfile::FourG20Gb => 4.0 / 7.0,
        }
    }

    /// Fraction of memory bandwidth granted to the instance.
    pub fn bw_fraction(self) -> f64 {
        match self {
            MigProfile::OneG5Gb => 1.0 / 8.0,
            MigProfile::TwoG10Gb => 1.0 / 4.0,
            MigProfile::FourG20Gb => 1.0 / 2.0,
        }
    }

    /// Table-3 profile name.
    pub fn name(self) -> &'static str {
        match self {
            MigProfile::OneG5Gb => "MIG 1g.5gb",
            MigProfile::TwoG10Gb => "MIG 2g.10gb",
            MigProfile::FourG20Gb => "MIG 4g.20gb",
        }
    }

    /// How many instances of this profile fit on one A100.
    pub fn instances_per_gpu(self) -> u32 {
        match self {
            MigProfile::OneG5Gb => 7,
            MigProfile::TwoG10Gb => 3,
            MigProfile::FourG20Gb => 1,
        }
    }
}

impl GpuSpec {
    /// Effective A100 (128 SMs, as in Table 2).
    ///
    /// `peak_flops` is calibrated so ResNet-152 at batch 32 (≈ 370 GFLOPs
    /// plus per-operator launch overheads) lands at the ≈ 24 ms solo latency
    /// §3.2 reports.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            sm_count: 128,
            blocks_per_sm: 4,
            peak_flops: 62.0e12,
            peak_bw: 1.4e12,
            memory_bytes: 40.0e9,
        }
    }

    /// Effective V100 (80 SMs), used by the cluster experiment (§7.6).
    pub fn v100() -> Self {
        Self {
            name: "V100".to_string(),
            sm_count: 80,
            blocks_per_sm: 4,
            peak_flops: 35.0e12,
            peak_bw: 0.8e12,
            memory_bytes: 16.0e9,
        }
    }

    /// Derive a MIG instance of this GPU (Table 3 semantics: isolated SMs
    /// and an isolated slice of the memory system).
    pub fn mig_slice(&self, profile: MigProfile) -> GpuSpec {
        let sm_frac = profile.sm_fraction();
        GpuSpec {
            name: format!("{} {}", self.name, profile.name()),
            sm_count: ((self.sm_count as f64 * sm_frac).round() as u32).max(1),
            blocks_per_sm: self.blocks_per_sm,
            peak_flops: self.peak_flops * sm_frac,
            peak_bw: self.peak_bw * profile.bw_fraction(),
            memory_bytes: self.memory_bytes * profile.bw_fraction(),
        }
    }

    /// Total concurrently-resident thread-block slots — the denominator of
    /// kernel occupancy.
    pub fn block_slots(&self) -> f64 {
        f64::from(self.sm_count) * f64::from(self.blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_shape() {
        let g = GpuSpec::a100();
        assert_eq!(g.sm_count, 128);
        assert_eq!(g.block_slots(), 128.0 * 4.0);
    }

    #[test]
    fn v100_is_slower_than_a100() {
        assert!(GpuSpec::v100().peak_flops < GpuSpec::a100().peak_flops);
        assert!(GpuSpec::v100().peak_bw < GpuSpec::a100().peak_bw);
    }

    #[test]
    fn mig_slices_scale_resources() {
        let a100 = GpuSpec::a100();
        let half = a100.mig_slice(MigProfile::FourG20Gb);
        assert!((half.peak_flops / a100.peak_flops - 4.0 / 7.0).abs() < 1e-9);
        assert!((half.peak_bw / a100.peak_bw - 0.5).abs() < 1e-9);
        assert_eq!(half.sm_count, 73); // round(128 * 4/7)
        let small = a100.mig_slice(MigProfile::OneG5Gb);
        assert_eq!(small.sm_count, 18);
        assert!(small.name.contains("1g.5gb"));
    }

    #[test]
    fn memory_capacity_scales_with_slice() {
        let a100 = GpuSpec::a100();
        assert_eq!(a100.memory_bytes, 40.0e9);
        // Table 3's names: 1g.5gb, 2g.10gb, 4g.20gb.
        let gb = |p: MigProfile| a100.mig_slice(p).memory_bytes / 1e9;
        assert!((gb(MigProfile::OneG5Gb) - 5.0).abs() < 1e-9);
        assert!((gb(MigProfile::TwoG10Gb) - 10.0).abs() < 1e-9);
        assert!((gb(MigProfile::FourG20Gb) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mig_profiles_table3() {
        assert_eq!(MigProfile::OneG5Gb.instances_per_gpu(), 7);
        assert!((MigProfile::TwoG10Gb.sm_fraction() - 2.0 / 7.0).abs() < 1e-12);
        assert!((MigProfile::TwoG10Gb.bw_fraction() - 0.25).abs() < 1e-12);
    }
}
