//! Run-to-run latency jitter.
//!
//! §5.2 of the paper measures 42 000 operator groups 100 times each and
//! finds the standard deviation of a group's latency is ≈ 4.5% of its mean
//! (0.65 ms on a 15.9 ms average). Real sources are clock/thermal state
//! (correlated across all kernels of a run) and per-kernel scheduling
//! jitter. [`NoiseModel`] reproduces both: one lognormal *session* factor
//! applied to every kernel of a run, plus a smaller independent per-kernel
//! factor. The predictor crate never sees these internals — the noise is
//! exactly the irreducible error floor its MLP trains against.

use workload::{LogNormal, SeededRng};

/// Multiplicative latency noise: duration × session_factor × kernel_factor.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Log-sigma of the per-run (session) factor, shared by every kernel in
    /// the run.
    pub session_sigma: f64,
    /// Log-sigma of the independent per-kernel factor.
    pub kernel_sigma: f64,
}

impl NoiseModel {
    /// Calibrated default: ≈ 4% group-level std/mean, matching §5.2.
    pub fn calibrated() -> Self {
        Self {
            session_sigma: 0.038,
            kernel_sigma: 0.015,
        }
    }

    /// No noise at all — useful for analytically checking the engine and
    /// for "expected latency" queries.
    pub fn disabled() -> Self {
        Self {
            session_sigma: 0.0,
            kernel_sigma: 0.0,
        }
    }

    /// True when both components are zero.
    pub fn is_disabled(&self) -> bool {
        self.session_sigma == 0.0 && self.kernel_sigma == 0.0
    }

    /// Draw the session factor for one run.
    pub fn session_factor(&self, rng: &mut SeededRng) -> f64 {
        if self.session_sigma == 0.0 {
            1.0
        } else {
            LogNormal::noise(self.session_sigma).sample(rng)
        }
    }

    /// Draw an independent per-kernel factor.
    pub fn kernel_factor(&self, rng: &mut SeededRng) -> f64 {
        if self.kernel_sigma == 0.0 {
            1.0
        } else {
            LogNormal::noise(self.kernel_sigma).sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_unit() {
        let n = NoiseModel::disabled();
        let mut rng = SeededRng::new(0);
        assert!(n.is_disabled());
        assert_eq!(n.session_factor(&mut rng), 1.0);
        assert_eq!(n.kernel_factor(&mut rng), 1.0);
    }

    #[test]
    fn calibrated_noise_magnitude() {
        let n = NoiseModel::calibrated();
        let mut rng = SeededRng::new(1);
        let samples: Vec<f64> = (0..10_000).map(|_| n.session_factor(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        // Session std/mean close to session_sigma for small sigma.
        assert!((std / mean - 0.038).abs() < 0.005, "cv {}", std / mean);
        assert!((mean - 1.0).abs() < 0.01);
    }

    #[test]
    fn factors_are_positive() {
        let n = NoiseModel::calibrated();
        let mut rng = SeededRng::new(2);
        for _ in 0..1000 {
            assert!(n.session_factor(&mut rng) > 0.0);
            assert!(n.kernel_factor(&mut rng) > 0.0);
        }
    }
}
