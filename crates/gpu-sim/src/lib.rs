//! A progress-based discrete-event GPU co-execution simulator.
//!
//! The paper's mechanism lives or dies on three properties of real GPUs
//! (§3, §5.2, §7.3):
//!
//! 1. **Under-occupancy**: most DNN operators launch too few thread blocks
//!    to fill all SMs, so two under-occupying kernels can overlap almost for
//!    free (ResNet/Inception convolutions on an A100).
//! 2. **Saturation**: large kernels (VGG convolutions at batch 32) fill the
//!    machine; overlapping them degenerates to time-sharing.
//! 3. **Determinism**: given a fixed set of overlapped kernels, co-run
//!    latency is stable across runs (std/mean ≈ 4.5% in the paper's 40 000
//!    runs).
//!
//! This crate reproduces exactly those properties with an analytic
//! roofline + proportional-sharing contention model (see [`contention`])
//! driven by an event-driven engine ([`engine`]) that advances kernels by
//! *work fraction*, re-deriving every running kernel's rate whenever the
//! co-run set changes. There is no time-stepping: between events progress
//! is integrated in closed form, which keeps full serving experiments
//! (tens of millions of kernel events) fast on a single core.
//!
//! [`GpuSpec`] provides calibrated A100/V100 presets and MIG slices
//! (Table 2, Table 3); [`NoiseModel`] provides the calibrated ~4%
//! lognormal run-to-run jitter.

pub mod contention;
pub mod engine;
pub mod faults;
pub mod gpu;
pub mod kernel;
pub mod noise;
mod pqueue;
mod simd;

pub use contention::{co_run_slowdowns, RunningKernel};
pub use engine::{
    Engine, EngineCoreStats, GroupResult, KernelSpan, StreamCompletion, StreamId,
    ACTIVATION_SLACK_MS, RETIRE_EPSILON_MS,
};
pub use faults::KernelFaultSpec;
pub use gpu::{GpuSpec, MigProfile};
pub use kernel::KernelDesc;
pub use noise::NoiseModel;

/// Run a deterministic operator group to completion on an idle GPU.
///
/// `streams` holds one kernel sequence per participating query (each query's
/// operators execute in topological order on its own stream; streams
/// overlap). Returns per-stream finish times and the group duration.
///
/// This is the primitive both the segmental model executor and the offline
/// profiler are built on. Accepts any slice of kernel sequences (owned
/// `Vec`s or borrowed slices from the lowering cache), and reuses one
/// engine per thread via [`Engine::reset_with`] so the steady state
/// allocates nothing per group.
pub fn run_group<S: AsRef<[KernelDesc]>>(
    gpu: &GpuSpec,
    noise: &NoiseModel,
    seed: u64,
    streams: &[S],
) -> GroupResult {
    use std::cell::RefCell;
    thread_local! {
        static ENGINE: RefCell<Option<Engine>> = const { RefCell::new(None) };
    }
    ENGINE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let engine = match slot.as_mut() {
            Some(e) => {
                e.reset_with(gpu, noise, seed);
                e
            }
            None => slot.insert(Engine::new(gpu.clone(), noise.clone(), seed)),
        };
        for s in streams {
            engine.add_stream_slice(s.as_ref(), 0.0);
        }
        engine.run_until_idle();
        engine.group_result()
    })
}
