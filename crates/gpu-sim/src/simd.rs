//! Runtime-dispatched SIMD kernels for the engine's per-event hot loop.
//!
//! The three operations the event core performs over every in-flight
//! kernel — drain remaining solo time, scan for the completion horizon,
//! and evaluate co-run slowdowns — are expressed here over the engine's
//! struct-of-arrays state (see [`crate::engine`]) and dispatched across
//! the same scalar / AVX2 / AVX-512 tiers as the predictor's training
//! kernels (`predictor::mlp`).
//!
//! Every tier is bit-identical to the scalar reference, which is part of
//! the engine's determinism contract:
//!
//! * all three operations are element-wise over independent lanes — the
//!   tier changes vector width, never the order floats combine in;
//! * the only cross-lane reduction is `min` over completion times, and
//!   IEEE min/max are associative and commutative for non-NaN inputs
//!   (completion times are products of positive finite numbers);
//! * ties in `max`/`min` only arise between equal bit patterns here
//!   (remaining times are non-negative, so `-0.0` vs `+0.0` cannot
//!   appear: `x - x` rounds to `+0.0`), so which operand an instruction
//!   returns on a tie is unobservable.

use crate::contention::slowdown_one;

/// Runtime SIMD tier for the event-core kernels, detected once per
/// [`crate::Engine`] construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SimdTier {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

impl SimdTier {
    pub(crate) fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    }

    /// Drain `dt` ms of wall time from every running kernel:
    /// `remaining[i] = (remaining[i] - dt / slowdowns[i]).max(0.0)`.
    #[inline]
    pub(crate) fn decrement(self, remaining: &mut [f64], slowdowns: &[f64], dt: f64) {
        debug_assert_eq!(remaining.len(), slowdowns.len());
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => unsafe { decrement_avx512(remaining, slowdowns, dt) },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { decrement_avx2(remaining, slowdowns, dt) },
            SimdTier::Scalar => decrement_scalar(remaining, slowdowns, dt),
        }
    }

    /// Wall time until the first running kernel completes:
    /// `min(remaining[i] * slowdowns[i])`, `+inf` when the set is empty.
    #[inline]
    pub(crate) fn min_completion(self, remaining: &[f64], slowdowns: &[f64]) -> f64 {
        debug_assert_eq!(remaining.len(), slowdowns.len());
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => unsafe { min_completion_avx512(remaining, slowdowns) },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { min_completion_avx2(remaining, slowdowns) },
            SimdTier::Scalar => min_completion_scalar(remaining, slowdowns),
        }
    }

    /// Co-run slowdowns over the SoA profile arrays — the vector form of
    /// [`crate::contention::co_run_slowdowns_summed`], writing into `out`
    /// (all slices the same length).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn slowdowns(
        self,
        u_c: f64,
        u_m: f64,
        t_compute: &[f64],
        t_memory: &[f64],
        m_share: &[f64],
        exec: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(t_compute.len(), out.len());
        debug_assert_eq!(t_memory.len(), out.len());
        debug_assert_eq!(m_share.len(), out.len());
        debug_assert_eq!(exec.len(), out.len());
        let over_c = u_c.max(1.0);
        let over_m = u_m.max(1.0);
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => unsafe {
                slowdowns_avx512(u_m, over_c, over_m, t_compute, t_memory, m_share, exec, out)
            },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe {
                slowdowns_avx2(u_m, over_c, over_m, t_compute, t_memory, m_share, exec, out)
            },
            SimdTier::Scalar => {
                slowdowns_scalar(u_m, over_c, over_m, t_compute, t_memory, m_share, exec, out)
            }
        }
    }
}

fn decrement_scalar(remaining: &mut [f64], slowdowns: &[f64], dt: f64) {
    for (r, &s) in remaining.iter_mut().zip(slowdowns) {
        *r -= dt / s;
        if *r < 0.0 {
            *r = 0.0;
        }
    }
}

fn min_completion_scalar(remaining: &[f64], slowdowns: &[f64]) -> f64 {
    let mut dt = f64::INFINITY;
    for (&r, &s) in remaining.iter().zip(slowdowns) {
        let t = r * s;
        if t < dt {
            dt = t;
        }
    }
    dt
}

#[allow(clippy::too_many_arguments)]
fn slowdowns_scalar(
    u_m: f64,
    over_c: f64,
    over_m: f64,
    t_compute: &[f64],
    t_memory: &[f64],
    m_share: &[f64],
    exec: &[f64],
    out: &mut [f64],
) {
    for i in 0..out.len() {
        out[i] = slowdown_one(u_m, over_c, over_m, t_compute[i], t_memory[i], m_share[i], exec[i]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn decrement_avx2(remaining: &mut [f64], slowdowns: &[f64], dt: f64) {
    use std::arch::x86_64::*;
    let n = remaining.len();
    let vdt = _mm256_set1_pd(dt);
    let zero = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_loadu_pd(remaining.as_ptr().add(i));
        let s = _mm256_loadu_pd(slowdowns.as_ptr().add(i));
        let v = _mm256_sub_pd(r, _mm256_div_pd(vdt, s));
        _mm256_storeu_pd(remaining.as_mut_ptr().add(i), _mm256_max_pd(v, zero));
        i += 4;
    }
    decrement_scalar(&mut remaining[i..], &slowdowns[i..], dt);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn decrement_avx512(remaining: &mut [f64], slowdowns: &[f64], dt: f64) {
    use std::arch::x86_64::*;
    let n = remaining.len();
    let vdt = _mm512_set1_pd(dt);
    let zero = _mm512_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_loadu_pd(remaining.as_ptr().add(i));
        let s = _mm512_loadu_pd(slowdowns.as_ptr().add(i));
        let v = _mm512_sub_pd(r, _mm512_div_pd(vdt, s));
        _mm512_storeu_pd(remaining.as_mut_ptr().add(i), _mm512_max_pd(v, zero));
        i += 8;
    }
    decrement_scalar(&mut remaining[i..], &slowdowns[i..], dt);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_completion_avx2(remaining: &[f64], slowdowns: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = remaining.len();
    let mut acc = _mm256_set1_pd(f64::INFINITY);
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_loadu_pd(remaining.as_ptr().add(i));
        let s = _mm256_loadu_pd(slowdowns.as_ptr().add(i));
        acc = _mm256_min_pd(acc, _mm256_mul_pd(r, s));
        i += 4;
    }
    let mut lanes = [f64::INFINITY; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut dt = lanes.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let tail = min_completion_scalar(&remaining[i..], &slowdowns[i..]);
    if tail < dt {
        dt = tail;
    }
    dt
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn min_completion_avx512(remaining: &[f64], slowdowns: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = remaining.len();
    let mut acc = _mm512_set1_pd(f64::INFINITY);
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_loadu_pd(remaining.as_ptr().add(i));
        let s = _mm512_loadu_pd(slowdowns.as_ptr().add(i));
        acc = _mm512_min_pd(acc, _mm512_mul_pd(r, s));
        i += 8;
    }
    let mut dt = _mm512_reduce_min_pd(acc);
    let tail = min_completion_scalar(&remaining[i..], &slowdowns[i..]);
    if tail < dt {
        dt = tail;
    }
    dt
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn slowdowns_avx2(
    u_m: f64,
    over_c: f64,
    over_m: f64,
    t_compute: &[f64],
    t_memory: &[f64],
    m_share: &[f64],
    exec: &[f64],
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    use crate::contention::INTERFERENCE_GAMMA;
    let n = out.len();
    let one = _mm256_set1_pd(1.0);
    let zero = _mm256_setzero_pd();
    let v_oc = _mm256_set1_pd(over_c);
    let v_om = _mm256_set1_pd(over_m);
    let v_um = _mm256_set1_pd(u_m);
    let v_gamma = _mm256_set1_pd(INTERFERENCE_GAMMA);
    let mut i = 0;
    while i + 4 <= n {
        let tc = _mm256_loadu_pd(t_compute.as_ptr().add(i));
        let tm = _mm256_loadu_pd(t_memory.as_ptr().add(i));
        let ms = _mm256_loadu_pd(m_share.as_ptr().add(i));
        let ex = _mm256_loadu_pd(exec.as_ptr().add(i));
        let contended = _mm256_max_pd(_mm256_mul_pd(tc, v_oc), _mm256_mul_pd(tm, v_om));
        let interference =
            _mm256_add_pd(one, _mm256_mul_pd(v_gamma, _mm256_max_pd(_mm256_sub_pd(v_um, ms), zero)));
        // Lanes with exec <= 0 may divide by zero; the blend below
        // discards them in favour of the pure-launch slowdown of 1.
        let val = _mm256_mul_pd(_mm256_div_pd(contended, ex), interference);
        let launch_only = _mm256_cmp_pd::<_CMP_LE_OQ>(ex, zero);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_blendv_pd(val, one, launch_only));
        i += 4;
    }
    slowdowns_scalar(
        u_m,
        over_c,
        over_m,
        &t_compute[i..],
        &t_memory[i..],
        &m_share[i..],
        &exec[i..],
        &mut out[i..],
    );
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn slowdowns_avx512(
    u_m: f64,
    over_c: f64,
    over_m: f64,
    t_compute: &[f64],
    t_memory: &[f64],
    m_share: &[f64],
    exec: &[f64],
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    use crate::contention::INTERFERENCE_GAMMA;
    let n = out.len();
    let one = _mm512_set1_pd(1.0);
    let zero = _mm512_setzero_pd();
    let v_oc = _mm512_set1_pd(over_c);
    let v_om = _mm512_set1_pd(over_m);
    let v_um = _mm512_set1_pd(u_m);
    let v_gamma = _mm512_set1_pd(INTERFERENCE_GAMMA);
    let mut i = 0;
    while i + 8 <= n {
        let tc = _mm512_loadu_pd(t_compute.as_ptr().add(i));
        let tm = _mm512_loadu_pd(t_memory.as_ptr().add(i));
        let ms = _mm512_loadu_pd(m_share.as_ptr().add(i));
        let ex = _mm512_loadu_pd(exec.as_ptr().add(i));
        let contended = _mm512_max_pd(_mm512_mul_pd(tc, v_oc), _mm512_mul_pd(tm, v_om));
        let interference =
            _mm512_add_pd(one, _mm512_mul_pd(v_gamma, _mm512_max_pd(_mm512_sub_pd(v_um, ms), zero)));
        // Lanes with exec <= 0 may divide by zero; the mask blend below
        // discards them in favour of the pure-launch slowdown of 1.
        let val = _mm512_mul_pd(_mm512_div_pd(contended, ex), interference);
        let launch_only = _mm512_cmp_pd_mask::<_CMP_LE_OQ>(ex, zero);
        _mm512_storeu_pd(out.as_mut_ptr().add(i), _mm512_mask_blend_pd(launch_only, val, one));
        i += 8;
    }
    slowdowns_scalar(
        u_m,
        over_c,
        over_m,
        &t_compute[i..],
        &t_memory[i..],
        &m_share[i..],
        &exec[i..],
        &mut out[i..],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::{co_run_slowdowns_summed, RunningKernel};
    use crate::gpu::GpuSpec;
    use crate::kernel::KernelDesc;

    fn tiers() -> Vec<SimdTier> {
        let mut ts = vec![SimdTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                ts.push(SimdTier::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                ts.push(SimdTier::Avx512);
            }
        }
        ts
    }

    /// Deterministic pseudo-random kernel pool mixing compute-bound,
    /// memory-bound and pure-launch profiles.
    fn pool(n: usize) -> Vec<RunningKernel> {
        let gpu = GpuSpec::a100();
        (0..n)
            .map(|i| {
                let k = match i % 4 {
                    0 => KernelDesc::new(1e8 * (i + 1) as f64, 1e6, 500.0 * (i % 7 + 1) as f64),
                    1 => KernelDesc::new(1e6, 2e8 * (i % 5 + 1) as f64, 900.0),
                    2 => KernelDesc::new(3e9, 4e7, 2.5e4),
                    // Pure-launch kernel: exec_ms == 0 lane.
                    _ => KernelDesc {
                        flops: 0.0,
                        bytes: 0.0,
                        blocks: 1.0,
                        launch_ms: 0.01,
                    },
                };
                RunningKernel::profile(&k, &gpu)
            })
            .collect()
    }

    #[test]
    fn all_tiers_match_scalar_bitwise() {
        // Every vector width, including remainder-lane splits.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100] {
            let set = pool(n);
            let u_c: f64 = set.iter().map(|k| k.compute_share).sum();
            let u_m: f64 = set.iter().map(|k| k.memory_share).sum();
            let tc: Vec<f64> = set.iter().map(|k| k.t_compute_ms).collect();
            let tm: Vec<f64> = set.iter().map(|k| k.t_memory_ms).collect();
            let ms: Vec<f64> = set.iter().map(|k| k.memory_share).collect();
            let ex: Vec<f64> = set.iter().map(|k| k.exec_ms).collect();
            let mut want = Vec::new();
            co_run_slowdowns_summed(u_c, u_m, &set, &mut want);
            let remaining0: Vec<f64> =
                (0..n).map(|i| 0.05 + 0.013 * (i as f64) * ((i % 3) as f64 + 0.25)).collect();
            let dt = 0.037;
            let mut want_rem = remaining0.clone();
            decrement_scalar(&mut want_rem, &want, dt);
            let want_min = min_completion_scalar(&want_rem, &want);
            for tier in tiers() {
                let mut got = vec![0.0; n];
                tier.slowdowns(u_c, u_m, &tc, &tm, &ms, &ex, &mut got);
                let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
                assert_eq!(gb, wb, "slowdowns diverged at n={n} tier {tier:?}");
                let mut rem = remaining0.clone();
                tier.decrement(&mut rem, &got, dt);
                let rb: Vec<u64> = rem.iter().map(|x| x.to_bits()).collect();
                let wrb: Vec<u64> = want_rem.iter().map(|x| x.to_bits()).collect();
                assert_eq!(rb, wrb, "decrement diverged at n={n} tier {tier:?}");
                let got_min = tier.min_completion(&rem, &got);
                assert_eq!(
                    got_min.to_bits(),
                    want_min.to_bits(),
                    "min_completion diverged at n={n} tier {tier:?}"
                );
            }
        }
    }

    #[test]
    fn decrement_clamps_at_zero_not_negative_zero() {
        for tier in tiers() {
            let mut rem = vec![0.5; 9];
            let slow = vec![1.0; 9];
            tier.decrement(&mut rem, &slow, 2.0);
            for r in &rem {
                assert_eq!(r.to_bits(), 0.0f64.to_bits(), "tier {tier:?}");
            }
        }
    }

    #[test]
    fn min_completion_of_empty_set_is_infinite() {
        for tier in tiers() {
            assert_eq!(tier.min_completion(&[], &[]), f64::INFINITY);
        }
    }
}
