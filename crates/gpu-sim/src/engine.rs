//! The event-driven co-execution engine.
//!
//! Each *stream* is a sequence of kernels executed in order (one stream per
//! in-flight query, mirroring CUDA streams under MPS). Streams overlap; the
//! engine advances every running kernel by its remaining *solo time*,
//! divided by the current contention slowdown from
//! [`crate::contention::co_run_slowdowns`]. Rates only
//! change when the running set changes (a kernel finishes or a stream
//! starts), so progress between events is integrated in closed form — the
//! engine is exact for the contention model, with no time-stepping error.
//!
//! Two usage patterns:
//!
//! * **Exclusive operator group** ([`crate::run_group`]): all streams start
//!   at `t = 0`, run to idle — how the segmental model executor and the
//!   offline profiler use the GPU.
//! * **Free overlap (MPS)**: streams are added with arbitrary start times
//!   and [`Engine::step`] yields completions one at a time so a caller can
//!   chain queries dynamically — how the Fig. 3 motivation experiment runs.
//!
//! # Event-core layout
//!
//! The per-event hot loop runs over struct-of-arrays state: the in-flight
//! set is `active[pos]` (stream slots) with parallel `f64` arrays for
//! remaining solo time, kernel start stamps, the contention-profile fields
//! and the current slowdowns. The three per-event passes — slowdown
//! evaluation, completion-horizon scan and time decrement — stream through
//! those arrays with runtime-dispatched SIMD ([`crate::simd`]); slowdowns
//! are refreshed *incrementally*: a full vector recompute only when the
//! aggregate utilisations `U_c`/`U_m` changed bits, otherwise only entries
//! whose own kernel changed. Pending arrivals wait in a calendar queue
//! with a sorted-`Vec` fallback ([`crate::pqueue`]). All of it is
//! bit-identical to the scalar reference engine pinned by
//! `tests/golden_engine.rs` — decrement order, tie-breaking and RNG draw
//! order are part of the contract (see DESIGN.md §11).

use crate::contention::{slowdown_one, RunningKernel};
use crate::faults::{KernelFaultSpec, KernelFaultState};
use crate::gpu::GpuSpec;
use crate::kernel::KernelDesc;
use crate::noise::NoiseModel;
use crate::pqueue::PendingQueue;
use crate::simd::SimdTier;
use workload::SeededRng;

/// Upper bound on retired kernel buffers kept for reuse (see
/// [`Engine::reset`] and slot recycling). Small: each buffer is just
/// capacity, and the steady state of a reset-per-group or recycling
/// workload cycles through a handful.
const SPARE_POOL_CAP: usize = 64;

/// Slack when testing whether a pending stream's start time has been
/// reached: a start within this of the current instant activates *now*,
/// absorbing float round-off from the closed-form time accumulation. An
/// empty stream caught by the slack is stamped complete at the (at most
/// a picosecond earlier) event time.
pub const ACTIVATION_SLACK_MS: f64 = 1e-12;

/// A running kernel whose remaining solo time has drained to at most this
/// is retired at the current event rather than surviving to a degenerate
/// follow-up event: ties in the completion scan (and near-ties from
/// round-off in the decrement) resolve to a single event. One nanosecond
/// of solo time — far below the launch overhead of any real kernel.
pub const RETIRE_EPSILON_MS: f64 = 1e-9;

/// Identifier of a stream within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// Completion record for one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCompletion {
    /// Which stream finished.
    pub id: StreamId,
    /// When the stream was allowed to start (ms).
    pub start_ms: f64,
    /// When its last kernel finished (ms).
    pub end_ms: f64,
}

/// Result of running an operator group to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Wall-clock duration of the whole group, ms (max end − min start).
    pub total_ms: f64,
    /// Per-stream completions in stream-id order.
    pub completions: Vec<StreamCompletion>,
}

impl GroupResult {
    /// End-to-end duration of stream `i` (end − its own start).
    pub fn stream_ms(&self, i: usize) -> f64 {
        let c = &self.completions[i];
        c.end_ms - c.start_ms
    }
}

/// Health counters of the event core since the last reset — cheap to read,
/// free to maintain, surfaced through the telemetry registry so bench
/// regressions are diagnosable from the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCoreStats {
    /// Peak number of kernels simultaneously in flight.
    pub max_active: usize,
    /// Peak pending-arrival backlog.
    pub pending_peak: usize,
    /// Calendar-queue bucket count (0 while on the sorted-`Vec` path).
    pub calendar_buckets: usize,
    /// Peak single-bucket occupancy (0 while on the sorted-`Vec` path).
    pub calendar_peak_bucket: usize,
}

impl EngineCoreStats {
    /// Fold `other` into `self`, keeping the element-wise maximum — how a
    /// caller that resets the engine per run (the segmental executor)
    /// accumulates lifetime peaks across the per-run resets.
    pub fn merge_peaks(&mut self, other: &EngineCoreStats) {
        self.max_active = self.max_active.max(other.max_active);
        self.pending_peak = self.pending_peak.max(other.pending_peak);
        self.calendar_buckets = self.calendar_buckets.max(other.calendar_buckets);
        self.calendar_peak_bucket = self.calendar_peak_bucket.max(other.calendar_peak_bucket);
    }
}

#[derive(Debug, Clone)]
struct Stream {
    kernels: Vec<KernelDesc>,
    /// Precomputed contention profiles parallel to `kernels`, or empty when
    /// the caller did not supply any ([`Engine::add_stream`]). Profiles are
    /// a pure function of `(kernel, gpu)`, so a stored profile is
    /// bit-identical to recomputing it at kernel start — callers that replay
    /// the same kernel sequences (the segmental executor) precompute once
    /// and skip the per-start `powf`.
    profiles: Vec<RunningKernel>,
    next: usize,
    start_ms: f64,
    end_ms: Option<f64>,
}

/// One kernel's execution interval, recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpan {
    /// Which stream the kernel belongs to.
    pub stream: StreamId,
    /// Index of the kernel within its stream.
    pub kernel: usize,
    /// Execution start, ms.
    pub start_ms: f64,
    /// Execution end, ms.
    pub end_ms: f64,
    /// The kernel's SM occupancy share in `(0, 1]`.
    pub occupancy: f64,
}

/// The co-execution engine. See module docs.
#[derive(Debug, Clone)]
pub struct Engine {
    gpu: GpuSpec,
    noise: NoiseModel,
    rng: SeededRng,
    session_factor: f64,
    time_ms: f64,
    streams: Vec<Stream>,
    /// Streams not yet started (calendar queue / sorted-`Vec` hybrid).
    pending: PendingQueue,
    /// Stream slots with a kernel in flight. The arrays below are SoA
    /// state parallel to it, maintained in lockstep (push on kernel
    /// start, `swap_remove` on retire).
    active: Vec<usize>,
    /// Remaining noisy solo-time of each running kernel, ms.
    remaining: Vec<f64>,
    /// When each running kernel started executing (trace only).
    started: Vec<f64>,
    /// Contention profile, split per field: compute-limited time.
    k_t_compute: Vec<f64>,
    /// Memory-limited time.
    k_t_memory: Vec<f64>,
    /// Compute share (enters `U_c`).
    k_c_share: Vec<f64>,
    /// Memory share (enters `U_m` and the interference term).
    k_m_share: Vec<f64>,
    /// Solo execution time (max of the rooflines).
    k_exec: Vec<f64>,
    /// Current slowdown of each running kernel.
    slowdowns: Vec<f64>,
    /// Entries of `slowdowns` not yet computed for the current set.
    stale: Vec<bool>,
    /// Whether any `stale` flag is set (cheap gate on the scan).
    any_stale: bool,
    /// Whether `slowdowns`/`last_u_*` hold values at all (false right
    /// after construction/reset).
    slow_valid: bool,
    /// Aggregates the non-stale `slowdowns` entries were computed under.
    last_u_c: f64,
    last_u_m: f64,
    /// Incremental Σ compute_share over the running set. Shares are
    /// quantised (see [`crate::contention`]), so this equals re-summing
    /// bit for bit.
    u_c: f64,
    /// Incremental Σ memory_share over the running set.
    u_m: f64,
    /// Retired stream slots available for reuse (slot recycling only).
    free_slots: Vec<usize>,
    /// Retired kernel buffers kept to serve [`Engine::add_stream_slice`]
    /// without allocating.
    spare_kernels: Vec<Vec<KernelDesc>>,
    /// Retired profile buffers, pooled like `spare_kernels` for
    /// [`Engine::add_stream_slice_profiled`].
    spare_profiles: Vec<Vec<RunningKernel>>,
    /// When set, retired streams' slots are reused by later arrivals so
    /// long open-loop runs stop growing `streams` unboundedly.
    recycle: bool,
    events: u64,
    /// Fault spike activations (kernels whose duration was actually
    /// perturbed) since the last reset.
    fault_spikes: u64,
    /// Peak size of `active` since the last reset.
    max_active: usize,
    /// Per-kernel execution spans; populated only when tracing is on.
    trace: Option<Vec<KernelSpan>>,
    /// Seed of the current run (recorded so a fault spec installed
    /// mid-lifetime can fork its draw stream consistently).
    run_seed: u64,
    /// Deterministic kernel latency-spike injection; `None` (the default)
    /// leaves the hot path untouched.
    faults: Option<KernelFaultState>,
    /// SIMD tier for the hot-loop kernels, detected once at construction.
    simd: SimdTier,
}

impl Engine {
    /// Create an idle engine at `t = 0`. The session noise factor is drawn
    /// immediately, so the same seed reproduces the same run exactly.
    pub fn new(gpu: GpuSpec, noise: NoiseModel, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let session_factor = noise.session_factor(&mut rng);
        Self {
            gpu,
            noise,
            rng,
            session_factor,
            time_ms: 0.0,
            streams: Vec::new(),
            pending: PendingQueue::default(),
            active: Vec::new(),
            remaining: Vec::new(),
            started: Vec::new(),
            k_t_compute: Vec::new(),
            k_t_memory: Vec::new(),
            k_c_share: Vec::new(),
            k_m_share: Vec::new(),
            k_exec: Vec::new(),
            slowdowns: Vec::new(),
            stale: Vec::new(),
            any_stale: false,
            slow_valid: false,
            last_u_c: 0.0,
            last_u_m: 0.0,
            u_c: 0.0,
            u_m: 0.0,
            free_slots: Vec::new(),
            spare_kernels: Vec::new(),
            spare_profiles: Vec::new(),
            recycle: false,
            events: 0,
            fault_spikes: 0,
            max_active: 0,
            trace: None,
            run_seed: seed,
            faults: None,
            simd: SimdTier::detect(),
        }
    }

    /// Return the engine to the idle `t = 0` state under a new seed,
    /// keeping its allocations (stream slots, kernel buffers, scratch
    /// vectors). The RNG and session noise factor are re-derived exactly as
    /// in [`Engine::new`], so a reset engine is bit-identical to a freshly
    /// constructed one — this is what lets the segmental executor run one
    /// group after another without rebuilding the engine.
    pub fn reset(&mut self, seed: u64) {
        self.rng = SeededRng::new(seed);
        self.session_factor = self.noise.session_factor(&mut self.rng);
        self.run_seed = seed;
        if let Some(f) = &mut self.faults {
            f.reseed(seed);
        }
        self.time_ms = 0.0;
        self.events = 0;
        self.fault_spikes = 0;
        self.max_active = 0;
        for s in &mut self.streams {
            let buf = std::mem::take(&mut s.kernels);
            if buf.capacity() > 0 && self.spare_kernels.len() < SPARE_POOL_CAP {
                self.spare_kernels.push(buf);
            }
            let buf = std::mem::take(&mut s.profiles);
            if buf.capacity() > 0 && self.spare_profiles.len() < SPARE_POOL_CAP {
                self.spare_profiles.push(buf);
            }
        }
        self.streams.clear();
        self.pending.clear();
        self.active.clear();
        self.remaining.clear();
        self.started.clear();
        self.k_t_compute.clear();
        self.k_t_memory.clear();
        self.k_c_share.clear();
        self.k_m_share.clear();
        self.k_exec.clear();
        self.slowdowns.clear();
        self.stale.clear();
        self.any_stale = false;
        self.slow_valid = false;
        self.last_u_c = 0.0;
        self.last_u_m = 0.0;
        self.free_slots.clear();
        self.u_c = 0.0;
        self.u_m = 0.0;
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
    }

    /// [`Engine::reset`] that also retargets the engine to a (possibly)
    /// different GPU and noise model, cloning only on change.
    pub fn reset_with(&mut self, gpu: &GpuSpec, noise: &NoiseModel, seed: u64) {
        if &self.gpu != gpu {
            self.gpu = gpu.clone();
        }
        if &self.noise != noise {
            self.noise = noise.clone();
        }
        self.reset(seed);
    }

    /// Reuse retired streams' slots for later arrivals. Intended for long
    /// open-loop runs ([`crate::engine`] module docs pattern 2): memory
    /// stays bounded by the number of *concurrently live* streams instead
    /// of the total arrival count. [`StreamId`]s are recycled along with
    /// the slots, so callers must consume each completion as
    /// [`Engine::step`] yields it; [`Engine::completions`] and
    /// [`Engine::group_result`] only cover streams whose slot has not been
    /// reused yet.
    pub fn enable_slot_recycling(&mut self) {
        self.recycle = true;
    }

    /// Record every kernel's execution interval. Must be called before any
    /// stream starts executing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded kernel spans (empty when tracing was never enabled).
    pub fn trace(&self) -> &[KernelSpan] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Install (or clear) a deterministic kernel latency-spike regime
    /// ([`crate::faults`]). The spike draw stream is forked from
    /// `(spec.seed, run seed)` and re-forked on every [`Engine::reset`], so
    /// injection composes with engine reuse and stays bit-reproducible.
    /// With `None` (the default) the kernel-start hot path never touches
    /// the fault machinery.
    pub fn set_kernel_faults(&mut self, spec: Option<KernelFaultSpec>) {
        self.faults = spec.map(|s| KernelFaultState::new(s, self.run_seed));
    }

    /// The installed spike spec, if any.
    pub fn kernel_faults(&self) -> Option<&KernelFaultSpec> {
        self.faults.as_ref().map(|f| &f.spec)
    }

    /// Re-base the fault window clock: cumulative busy time at this run's
    /// `t = 0`. The segmental executor calls this per group so the spec's
    /// window refers to serving-wide execution time, not group-local time.
    pub fn set_fault_time_base(&mut self, base_ms: f64) {
        if let Some(f) = &mut self.faults {
            f.set_base_ms(base_ms);
        }
    }

    /// Current simulated time, ms.
    pub fn now(&self) -> f64 {
        self.time_ms
    }

    /// Number of kernel-level events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of fault spikes that actually perturbed a kernel since the
    /// last reset.
    pub fn fault_spikes(&self) -> u64 {
        self.fault_spikes
    }

    /// Event-core health counters since the last reset.
    pub fn core_stats(&self) -> EngineCoreStats {
        let (calendar_buckets, calendar_peak_bucket) = self.pending.calendar_stats();
        EngineCoreStats {
            max_active: self.max_active,
            pending_peak: self.pending.peak_len(),
            calendar_buckets,
            calendar_peak_bucket,
        }
    }

    /// The GPU this engine simulates.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Add a stream of kernels that may start at `start_ms` (clamped to
    /// now). Empty streams complete instantly at their start time.
    pub fn add_stream(&mut self, kernels: Vec<KernelDesc>, start_ms: f64) -> StreamId {
        self.add_stream_inner(kernels, Vec::new(), start_ms)
    }

    fn add_stream_inner(
        &mut self,
        kernels: Vec<KernelDesc>,
        profiles: Vec<RunningKernel>,
        start_ms: f64,
    ) -> StreamId {
        debug_assert!(profiles.is_empty() || profiles.len() == kernels.len());
        let start_ms = start_ms.max(self.time_ms);
        let stream = Stream {
            kernels,
            profiles,
            next: 0,
            start_ms,
            end_ms: None,
        };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.streams[slot] = stream;
                slot
            }
            None => {
                self.streams.push(stream);
                self.streams.len() - 1
            }
        };
        self.pending.push(start_ms, id);
        StreamId(id)
    }

    /// [`Engine::add_stream`] from a borrowed kernel slice: copies into a
    /// retired kernel buffer when one is available instead of allocating.
    /// This is the executor hot path — groups lower to cached kernel
    /// slices which no longer need to be cloned per run.
    pub fn add_stream_slice(&mut self, kernels: &[KernelDesc], start_ms: f64) -> StreamId {
        let mut buf = self.spare_kernels.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(kernels);
        self.add_stream_inner(buf, Vec::new(), start_ms)
    }

    /// [`Engine::add_stream_slice`] with the kernels' contention profiles
    /// precomputed by the caller (one [`RunningKernel::profile`] per
    /// kernel, on this engine's GPU). The per-kernel-start profile
    /// evaluation — the one `powf` left in the event hot path — is then
    /// skipped; since the profile is a pure function of `(kernel, gpu)` the
    /// run is bit-identical to [`Engine::add_stream_slice`] (debug builds
    /// assert this at every kernel start).
    ///
    /// # Panics
    /// Panics if `profiles.len() != kernels.len()`.
    pub fn add_stream_slice_profiled(
        &mut self,
        kernels: &[KernelDesc],
        profiles: &[RunningKernel],
        start_ms: f64,
    ) -> StreamId {
        assert_eq!(kernels.len(), profiles.len(), "one profile per kernel");
        let mut buf = self.spare_kernels.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(kernels);
        let mut pbuf = self.spare_profiles.pop().unwrap_or_default();
        pbuf.clear();
        pbuf.extend_from_slice(profiles);
        self.add_stream_inner(buf, pbuf, start_ms)
    }

    /// True when no stream is running or waiting to start.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    /// Start pending streams whose start time has been reached.
    fn activate_due_streams(&mut self) {
        while let Some((start_ms, idx)) = self.pending.peek() {
            if start_ms > self.time_ms + ACTIVATION_SLACK_MS {
                break;
            }
            self.pending.pop();
            self.start_next_kernel(idx);
        }
    }

    /// Begin stream `idx`'s next kernel, or retire the stream.
    fn start_next_kernel(&mut self, idx: usize) {
        loop {
            let next = self.streams[idx].next;
            if next >= self.streams[idx].kernels.len() {
                self.streams[idx].end_ms = Some(self.time_ms);
                if self.recycle {
                    // Reclaim the kernel buffer and hand the slot to the
                    // next arrival. The completion record (start/end) stays
                    // readable until the slot is actually reused, which is
                    // after the caller has observed it from `step`.
                    let buf = std::mem::take(&mut self.streams[idx].kernels);
                    if buf.capacity() > 0 && self.spare_kernels.len() < SPARE_POOL_CAP {
                        self.spare_kernels.push(buf);
                    }
                    let buf = std::mem::take(&mut self.streams[idx].profiles);
                    if buf.capacity() > 0 && self.spare_profiles.len() < SPARE_POOL_CAP {
                        self.spare_profiles.push(buf);
                    }
                    self.free_slots.push(idx);
                }
                return;
            }
            let kernel = self.streams[idx].kernels[next];
            self.streams[idx].next = next + 1;
            // One profile evaluation serves both the noisy solo duration
            // (launch + exec roofline) and the contention shares; the
            // kernel noise factor is drawn unconditionally so the RNG
            // stream is independent of degenerate zero-cost kernels.
            let profile = match self.streams[idx].profiles.get(next) {
                Some(&p) => {
                    debug_assert_eq!(
                        p,
                        RunningKernel::profile(&kernel, &self.gpu),
                        "precomputed profile diverges from fresh evaluation"
                    );
                    p
                }
                None => RunningKernel::profile(&kernel, &self.gpu),
            };
            let kf = self.noise.kernel_factor(&mut self.rng);
            let mut dur = (kernel.launch_ms + profile.exec_ms) * self.session_factor * kf;
            if let Some(f) = &mut self.faults {
                // Separate draw stream: installed-but-never-spiking specs
                // leave `dur` — and the whole run — bit-identical.
                let sf = f.spike_factor(self.time_ms);
                if sf != 1.0 {
                    self.fault_spikes += 1;
                }
                dur *= sf;
            }
            if dur <= 0.0 {
                // Degenerate zero-cost kernel: complete instantly.
                continue;
            }
            self.active.push(idx);
            self.remaining.push(dur);
            self.started.push(self.time_ms);
            self.k_t_compute.push(profile.t_compute_ms);
            self.k_t_memory.push(profile.t_memory_ms);
            self.k_c_share.push(profile.compute_share);
            self.k_m_share.push(profile.memory_share);
            self.k_exec.push(profile.exec_ms);
            // Placeholder slowdown; `refresh_slowdowns` fills it before
            // any dt-scan or decrement reads it.
            self.slowdowns.push(1.0);
            self.stale.push(true);
            self.any_stale = true;
            self.u_c += profile.compute_share;
            self.u_m += profile.memory_share;
            if self.active.len() > self.max_active {
                self.max_active = self.active.len();
            }
            return;
        }
    }

    /// Drop position `pos` from the running set, keeping every SoA array
    /// in lockstep (identical `swap_remove` order is part of the
    /// determinism contract — it fixes which entry the retire sweep
    /// rescans).
    fn remove_active(&mut self, pos: usize) {
        self.u_c -= self.k_c_share[pos];
        self.u_m -= self.k_m_share[pos];
        self.active.swap_remove(pos);
        self.remaining.swap_remove(pos);
        self.started.swap_remove(pos);
        self.k_t_compute.swap_remove(pos);
        self.k_t_memory.swap_remove(pos);
        self.k_c_share.swap_remove(pos);
        self.k_m_share.swap_remove(pos);
        self.k_exec.swap_remove(pos);
        // The tail entry's slowdown/staleness travel with it, so moved
        // entries keep valid values without recompute.
        self.slowdowns.swap_remove(pos);
        self.stale.swap_remove(pos);
        if self.active.is_empty() {
            // Exact share arithmetic already lands on zero; snapping guards
            // the sign of zero and keeps the invariant self-evident.
            self.u_c = 0.0;
            self.u_m = 0.0;
        }
    }

    /// Bring `slowdowns` up to date with the running set.
    ///
    /// Slowdowns depend on a kernel's own profile and the aggregates
    /// `(U_c, U_m)` only. Share arithmetic is exact (quantised grid), so
    /// comparing the aggregates *by bits* is a sound change detector:
    /// bits unchanged ⇒ every non-stale entry's inputs are unchanged ⇒
    /// its cached slowdown is the exact value a full recompute would
    /// produce. Only entries pushed since the last refresh (`stale`) are
    /// evaluated then; a bit-level change triggers one vectorised
    /// recompute of the whole set.
    fn refresh_slowdowns(&mut self) {
        let u_changed = !self.slow_valid
            || self.u_c.to_bits() != self.last_u_c.to_bits()
            || self.u_m.to_bits() != self.last_u_m.to_bits();
        if u_changed {
            self.simd.slowdowns(
                self.u_c,
                self.u_m,
                &self.k_t_compute,
                &self.k_t_memory,
                &self.k_m_share,
                &self.k_exec,
                &mut self.slowdowns,
            );
            self.stale.iter_mut().for_each(|s| *s = false);
            self.any_stale = false;
            self.last_u_c = self.u_c;
            self.last_u_m = self.u_m;
            self.slow_valid = true;
        } else if self.any_stale {
            let over_c = self.u_c.max(1.0);
            let over_m = self.u_m.max(1.0);
            for pos in 0..self.slowdowns.len() {
                if self.stale[pos] {
                    self.slowdowns[pos] = slowdown_one(
                        self.u_m,
                        over_c,
                        over_m,
                        self.k_t_compute[pos],
                        self.k_t_memory[pos],
                        self.k_m_share[pos],
                        self.k_exec[pos],
                    );
                    self.stale[pos] = false;
                }
            }
            self.any_stale = false;
        }
    }

    /// Advance until the next stream completes; returns its record, or
    /// `None` when the engine is idle.
    pub fn step(&mut self) -> Option<StreamCompletion> {
        loop {
            self.activate_due_streams();
            if self.active.is_empty() {
                // Jump to the next pending start, if any.
                let (start_ms, _) = self.pending.peek()?;
                self.time_ms = start_ms;
                continue;
            }
            self.refresh_slowdowns();
            // Time until the first kernel in flight completes.
            let dt = self.simd.min_completion(&self.remaining, &self.slowdowns);
            // A pending start may preempt the completion horizon.
            if let Some((start_ms, _)) = self.pending.peek() {
                let until_start = start_ms - self.time_ms;
                if until_start < dt {
                    // Advance everyone to the start instant, then loop to
                    // activate and re-derive rates.
                    self.advance(until_start);
                    continue;
                }
            }
            self.advance(dt);
            // Retire all kernels that just finished (ties possible).
            let mut completed_stream = None;
            let mut pos = 0;
            while pos < self.active.len() {
                let idx = self.active[pos];
                if self.remaining[pos] <= RETIRE_EPSILON_MS {
                    let started_ms = self.started[pos];
                    self.remove_active(pos);
                    self.events += 1;
                    if let Some(trace) = &mut self.trace {
                        let s = &self.streams[idx];
                        trace.push(KernelSpan {
                            stream: StreamId(idx),
                            kernel: s.next - 1,
                            start_ms: started_ms,
                            end_ms: self.time_ms,
                            occupancy: s.kernels[s.next - 1].occupancy(&self.gpu),
                        });
                    }
                    self.start_next_kernel(idx);
                    if self.streams[idx].end_ms.is_some() && completed_stream.is_none() {
                        completed_stream = Some(idx);
                    }
                    // swap_remove reordered; restart scan from same pos.
                } else {
                    pos += 1;
                }
            }
            if let Some(idx) = completed_stream {
                let s = &self.streams[idx];
                return Some(StreamCompletion {
                    id: StreamId(idx),
                    start_ms: s.start_ms,
                    end_ms: s.end_ms.unwrap(),
                });
            }
        }
    }

    /// Move simulated time forward by `dt` ms, draining each running
    /// kernel's remaining solo time at its current rate.
    fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        if dt == 0.0 {
            return;
        }
        self.time_ms += dt;
        self.simd.decrement(&mut self.remaining, &self.slowdowns, dt);
    }

    /// Run every stream to completion.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Completions of all finished streams, in stream-id order, appended to
    /// `out` (which is cleared first). Non-allocating in the steady state —
    /// the executor calls this once per group with a reused buffer.
    pub fn completions_into(&self, out: &mut Vec<StreamCompletion>) {
        out.clear();
        out.extend(self.streams.iter().enumerate().filter_map(|(i, s)| {
            s.end_ms.map(|end| StreamCompletion {
                id: StreamId(i),
                start_ms: s.start_ms,
                end_ms: end,
            })
        }));
    }

    /// Completions of all finished streams, in stream-id order.
    pub fn completions(&self) -> Vec<StreamCompletion> {
        let mut out = Vec::new();
        self.completions_into(&mut out);
        out
    }

    /// Summarise a finished run as a [`GroupResult`].
    ///
    /// # Panics
    /// Panics if any stream has not completed yet.
    pub fn group_result(&self) -> GroupResult {
        let completions = self.completions();
        assert_eq!(
            completions.len(),
            self.streams.len(),
            "group_result requires all streams to have completed"
        );
        let min_start = completions
            .iter()
            .map(|c| c.start_ms)
            .fold(f64::INFINITY, f64::min);
        let max_end = completions.iter().map(|c| c.end_ms).fold(0.0, f64::max);
        GroupResult {
            total_ms: if completions.is_empty() {
                0.0
            } else {
                max_end - min_start
            },
            completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::sequence_solo_ms;

    fn gpu() -> GpuSpec {
        GpuSpec::a100()
    }

    fn small_kernel() -> KernelDesc {
        // ~20% of block slots (~45% achieved compute), compute-bound.
        KernelDesc::new(2e9, 1e7, 0.2 * gpu().block_slots())
    }

    fn big_kernel() -> KernelDesc {
        // Saturating, compute-bound.
        KernelDesc::new(2e10, 1e7, 4.0 * gpu().block_slots())
    }

    /// A launch-only kernel with an exact, contention-free duration.
    fn launch_only(launch_ms: f64) -> KernelDesc {
        KernelDesc {
            flops: 0.0,
            bytes: 0.0,
            blocks: 1.0,
            launch_ms,
        }
    }

    #[test]
    fn solo_stream_matches_analytic_sum() {
        let ks = vec![small_kernel(); 10];
        let expected = sequence_solo_ms(&ks, &gpu());
        let r = crate::run_group(&gpu(), &NoiseModel::disabled(), 0, &[ks]);
        assert!((r.total_ms - expected).abs() < 1e-6, "{} vs {expected}", r.total_ms);
    }

    #[test]
    fn under_occupied_overlap_is_nearly_free() {
        let ks = vec![small_kernel(); 10];
        let solo = sequence_solo_ms(&ks, &gpu());
        let r = crate::run_group(
            &gpu(),
            &NoiseModel::disabled(),
            0,
            &[ks.clone(), ks.clone()],
        );
        // Two 30%-occupancy streams together: total stays close to solo.
        assert!(r.total_ms < 1.10 * solo, "{} vs {solo}", r.total_ms);
        assert!(r.total_ms >= solo - 1e-9);
    }

    #[test]
    fn saturating_overlap_time_shares() {
        let ks = vec![big_kernel(); 6];
        let solo = sequence_solo_ms(&ks, &gpu());
        let r = crate::run_group(
            &gpu(),
            &NoiseModel::disabled(),
            0,
            &[ks.clone(), ks.clone()],
        );
        // Two saturating streams: ~2x solo.
        assert!((r.total_ms / solo - 2.0).abs() < 0.1, "{} vs {solo}", r.total_ms);
    }

    #[test]
    fn determinism_same_seed() {
        let streams = vec![vec![small_kernel(); 8], vec![big_kernel(); 3]];
        let a = crate::run_group(&gpu(), &NoiseModel::calibrated(), 7, &streams);
        let b = crate::run_group(&gpu(), &NoiseModel::calibrated(), 7, &streams);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_across_seeds_is_small_and_centred() {
        let streams = vec![vec![small_kernel(); 8], vec![big_kernel(); 3]];
        let base = crate::run_group(&gpu(), &NoiseModel::disabled(), 0, &streams).total_ms;
        let samples: Vec<f64> = (0..200)
            .map(|s| crate::run_group(&gpu(), &NoiseModel::calibrated(), s, &streams).total_ms)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        let cv = std / mean;
        assert!((mean / base - 1.0).abs() < 0.02, "mean {mean} base {base}");
        assert!(cv > 0.02 && cv < 0.06, "cv {cv}");
    }

    #[test]
    fn delayed_stream_starts_on_time() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![small_kernel(); 2], 5.0);
        let c = e.step().unwrap();
        assert!((c.start_ms - 5.0).abs() < 1e-12);
        assert!(c.end_ms > 5.0);
    }

    #[test]
    fn step_yields_completions_in_time_order() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![small_kernel(); 2], 0.0);
        e.add_stream(vec![small_kernel(); 20], 0.0);
        e.add_stream(vec![small_kernel(); 6], 1.0);
        let mut ends = Vec::new();
        while let Some(c) = e.step() {
            ends.push(c.end_ms);
        }
        assert_eq!(ends.len(), 3);
        for w in ends.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        assert!(e.is_idle());
    }

    #[test]
    fn empty_stream_completes_at_start() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![], 3.0);
        e.add_stream(vec![small_kernel()], 0.0);
        e.run_until_idle();
        let r = e.group_result();
        let empty = r.completions.iter().find(|c| c.id == StreamId(0)).unwrap();
        assert_eq!(empty.start_ms, 3.0);
        assert_eq!(empty.end_ms, 3.0);
    }

    #[test]
    fn mid_run_arrival_slows_running_stream() {
        // Stream A alone vs stream A with B arriving halfway.
        let a = vec![big_kernel(); 4];
        let solo =
            crate::run_group(&gpu(), &NoiseModel::disabled(), 0, std::slice::from_ref(&a)).total_ms;
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(a.clone(), 0.0);
        e.add_stream(vec![big_kernel(); 4], solo / 2.0);
        e.run_until_idle();
        let r = e.group_result();
        let a_end = r.completions[0].end_ms;
        assert!(a_end > solo * 1.2, "a_end {a_end} solo {solo}");
    }

    #[test]
    fn group_latency_bounded_by_sequential() {
        // Overlap can never be slower than running the streams back-to-back
        // (plus the small interference margin).
        let s1 = vec![small_kernel(); 12];
        let s2 = vec![big_kernel(); 4];
        let seq = sequence_solo_ms(&s1, &gpu()) + sequence_solo_ms(&s2, &gpu());
        let r = crate::run_group(&gpu(), &NoiseModel::disabled(), 0, &[s1, s2]);
        assert!(r.total_ms <= seq * 1.15, "{} vs seq {seq}", r.total_ms);
    }

    #[test]
    fn trace_records_every_kernel_interval() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.enable_trace();
        e.add_stream(vec![small_kernel(); 5], 0.0);
        e.add_stream(vec![big_kernel(); 3], 0.1);
        e.run_until_idle();
        let trace = e.trace();
        assert_eq!(trace.len(), 8);
        // Per stream: intervals are contiguous and ordered.
        for sid in 0..2 {
            let spans: Vec<_> = trace.iter().filter(|s| s.stream == StreamId(sid)).collect();
            for w in spans.windows(2) {
                assert!(w[0].end_ms <= w[1].start_ms + 1e-9);
                assert_eq!(w[0].kernel + 1, w[1].kernel);
            }
            for s in &spans {
                assert!(s.end_ms > s.start_ms);
            }
        }
        // Cross-stream overlap actually happened (the whole point).
        let a_last = trace.iter().filter(|s| s.stream == StreamId(0)).map(|s| s.end_ms).fold(0.0, f64::max);
        let b_first = trace.iter().filter(|s| s.stream == StreamId(1)).map(|s| s.start_ms).fold(f64::INFINITY, f64::min);
        assert!(b_first < a_last, "streams never overlapped");
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![small_kernel()], 0.0);
        e.run_until_idle();
        assert!(e.trace().is_empty());
    }

    #[test]
    fn stream_ms_accounts_own_start() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![small_kernel(); 2], 10.0);
        e.run_until_idle();
        let r = e.group_result();
        let dur = r.stream_ms(0);
        let solo = sequence_solo_ms(&[small_kernel(); 2], &gpu());
        assert!((dur - solo).abs() < 1e-9);
    }

    #[test]
    fn reset_is_bit_identical_to_fresh_engine() {
        let run = |e: &mut Engine, seed: u64| {
            e.add_stream(vec![small_kernel(); 5], 0.0);
            e.add_stream(vec![big_kernel(); 3], 0.5);
            e.add_stream(vec![small_kernel(); 2], 0.5); // equal-start tie
            e.run_until_idle();
            let _ = seed;
            e.group_result()
        };
        let mut reused = Engine::new(gpu(), NoiseModel::calibrated(), 11);
        let first = run(&mut reused, 11);
        for seed in [11u64, 42, 7] {
            reused.reset(seed);
            let again = run(&mut reused, seed);
            let mut fresh = Engine::new(gpu(), NoiseModel::calibrated(), seed);
            let expect = run(&mut fresh, seed);
            assert_eq!(again, expect, "reset diverged from fresh at seed {seed}");
        }
        reused.reset(11);
        assert_eq!(run(&mut reused, 11), first);
    }

    #[test]
    fn reset_with_retargets_gpu_and_noise() {
        let streams = [vec![small_kernel(); 4], vec![big_kernel(); 2]];
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        let noisy = NoiseModel::calibrated();
        e.reset_with(&gpu(), &noisy, 9);
        for s in &streams {
            e.add_stream(s.clone(), 0.0);
        }
        e.run_until_idle();
        let r = e.group_result();
        let mut fresh = Engine::new(gpu(), noisy, 9);
        for s in &streams {
            fresh.add_stream(s.clone(), 0.0);
        }
        fresh.run_until_idle();
        assert_eq!(r, fresh.group_result());
    }

    #[test]
    fn slot_recycling_matches_growing_engine() {
        // Open-loop run: 60 arrivals, at most a few live at once. The
        // recycling engine must yield the same (start, end) sequence from
        // step() as the growing one, while keeping `streams` bounded.
        let arrivals: Vec<f64> = (0..60).map(|i| i as f64 * 0.4).collect();
        let run = |recycle: bool| -> (Vec<(f64, f64)>, usize) {
            let mut e = Engine::new(gpu(), NoiseModel::calibrated(), 3);
            if recycle {
                e.enable_slot_recycling();
            }
            let mut out = Vec::new();
            let mut next = 0;
            loop {
                while next < arrivals.len() && arrivals[next] <= e.now() + 1e-9 {
                    e.add_stream_slice(&[small_kernel(), big_kernel()], arrivals[next]);
                    next += 1;
                }
                if next < arrivals.len() && e.is_idle() {
                    e.add_stream_slice(&[small_kernel(), big_kernel()], arrivals[next]);
                    next += 1;
                }
                match e.step() {
                    Some(c) => out.push((c.start_ms, c.end_ms)),
                    None if next >= arrivals.len() => break,
                    None => {}
                }
            }
            (out, e.streams.len())
        };
        let (grown, grown_slots) = run(false);
        let (recycled, recycled_slots) = run(true);
        assert_eq!(grown.len(), arrivals.len());
        assert_eq!(grown, recycled);
        assert_eq!(grown_slots, arrivals.len());
        assert!(
            recycled_slots < arrivals.len() / 2,
            "recycling kept {recycled_slots} slots for {} arrivals",
            arrivals.len()
        );
    }

    #[test]
    fn completions_into_matches_completions() {
        let mut e = Engine::new(gpu(), NoiseModel::calibrated(), 5);
        e.add_stream(vec![small_kernel(); 3], 0.0);
        e.add_stream(vec![big_kernel(); 2], 1.0);
        e.run_until_idle();
        let mut buf = vec![StreamCompletion {
            id: StreamId(99),
            start_ms: -1.0,
            end_ms: -1.0,
        }];
        e.completions_into(&mut buf);
        assert_eq!(buf, e.completions());
    }

    #[test]
    fn zero_prob_fault_spec_is_bit_identical_to_none() {
        // An installed spec that never fires must not perturb anything:
        // the spike stream is separate from the noise stream.
        let streams = vec![vec![small_kernel(); 8], vec![big_kernel(); 3]];
        let run = |spec: Option<KernelFaultSpec>| {
            let mut e = Engine::new(gpu(), NoiseModel::calibrated(), 17);
            e.set_kernel_faults(spec);
            for s in &streams {
                e.add_stream(s.clone(), 0.0);
            }
            e.run_until_idle();
            e.group_result()
        };
        let clean = run(None);
        let armed_but_silent = run(Some(KernelFaultSpec::always(99, 0.0, 5.0)));
        assert_eq!(clean, armed_but_silent);
    }

    #[test]
    fn certain_spike_scales_solo_stream() {
        // prob = 1 with noise disabled: every kernel is exactly `factor`
        // slower, so a solo stream's duration scales exactly.
        let ks = vec![small_kernel(); 6];
        let base =
            crate::run_group(&gpu(), &NoiseModel::disabled(), 0, std::slice::from_ref(&ks)).total_ms;
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.set_kernel_faults(Some(KernelFaultSpec::always(3, 1.0, 2.5)));
        e.add_stream(ks, 0.0);
        e.run_until_idle();
        let spiked = e.group_result().total_ms;
        assert!((spiked - base * 2.5).abs() < 1e-9, "{spiked} vs {}", base * 2.5);
    }

    #[test]
    fn fault_injection_is_deterministic_across_reset() {
        let streams = vec![vec![small_kernel(); 10], vec![big_kernel(); 4]];
        let spec = KernelFaultSpec::always(7, 0.3, 3.0);
        let mut e = Engine::new(gpu(), NoiseModel::calibrated(), 5);
        e.set_kernel_faults(Some(spec));
        let run = |e: &mut Engine| {
            for s in &streams {
                e.add_stream(s.clone(), 0.0);
            }
            e.run_until_idle();
            e.group_result()
        };
        let first = run(&mut e);
        e.reset(5);
        assert_eq!(run(&mut e), first);
        // A fresh engine with the spec installed before running matches too.
        let mut fresh = Engine::new(gpu(), NoiseModel::calibrated(), 5);
        fresh.set_kernel_faults(Some(spec));
        assert_eq!(run(&mut fresh), first);
        // And the spikes actually bite.
        let mut clean = Engine::new(gpu(), NoiseModel::calibrated(), 5);
        let base = run(&mut clean);
        assert!(first.total_ms > base.total_ms);
    }

    #[test]
    fn fault_window_outside_run_changes_nothing() {
        let streams = vec![vec![small_kernel(); 8]];
        let spec = KernelFaultSpec {
            seed: 1,
            window_start_ms: 1e9,
            window_end_ms: f64::INFINITY,
            prob: 1.0,
            factor: 10.0,
        };
        let run = |spec: Option<KernelFaultSpec>| {
            let mut e = Engine::new(gpu(), NoiseModel::calibrated(), 2);
            e.set_kernel_faults(spec);
            for s in &streams {
                e.add_stream(s.clone(), 0.0);
            }
            e.run_until_idle();
            e.group_result()
        };
        assert_eq!(run(Some(spec)), run(None));
    }

    #[test]
    fn binary_insert_keeps_equal_start_activation_order() {
        // Three streams with the same start time: the engine activates the
        // most recently added first (the legacy push + stable-sort order),
        // which fixes the order kernel noise factors are drawn in. Use a
        // compute-only kernel small enough that slowdowns are exactly 1, so
        // each stream's duration is exactly solo * session * its own draw.
        let noise = NoiseModel::calibrated();
        let k = KernelDesc::new(1e8, 0.0, 64.0);
        let mut rng = SeededRng::new(13);
        let session = noise.session_factor(&mut rng);
        let first_draw = noise.kernel_factor(&mut rng);
        let mut e = Engine::new(gpu(), noise, 13);
        e.add_stream(vec![k], 2.0);
        e.add_stream(vec![k], 2.0);
        e.add_stream(vec![k], 2.0); // newest arrival: must draw first
        e.run_until_idle();
        let r = e.group_result();
        let expect = k.solo_ms(&gpu()) * session * first_draw;
        let got = r.stream_ms(2);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn activation_slack_boundary() {
        let d = 1e-3;
        // A start within ACTIVATION_SLACK_MS of the event at `d` is
        // activated there: the empty stream completes at the event time,
        // a hair *before* its own nominal start.
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![launch_only(d)], 0.0);
        e.add_stream(vec![], d + ACTIVATION_SLACK_MS);
        e.run_until_idle();
        let r = e.group_result();
        assert_eq!(r.completions[1].start_ms, d + ACTIVATION_SLACK_MS);
        assert_eq!(r.completions[1].end_ms, d);
        // A start just past the slack is not picked up at `d`; the idle
        // engine jumps to the exact start instead.
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![launch_only(d)], 0.0);
        e.add_stream(vec![], d + 3.0 * ACTIVATION_SLACK_MS);
        e.run_until_idle();
        let r = e.group_result();
        assert_eq!(r.completions[1].end_ms, d + 3.0 * ACTIVATION_SLACK_MS);
    }

    #[test]
    fn retire_epsilon_boundary() {
        let d = 1e-3;
        // A kernel left with less than RETIRE_EPSILON_MS of solo time
        // after an event retires *at* that event (near-tie collapse)...
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![launch_only(d)], 0.0);
        e.add_stream(vec![launch_only(d + 0.5 * RETIRE_EPSILON_MS)], 0.0);
        e.run_until_idle();
        let r = e.group_result();
        assert_eq!(r.completions[0].end_ms, d);
        assert_eq!(r.completions[1].end_ms, d, "near-tie must collapse to one event");
        // ...while one with more than the epsilon left survives to its own
        // completion event.
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        e.add_stream(vec![launch_only(d)], 0.0);
        e.add_stream(vec![launch_only(d + 2.0 * RETIRE_EPSILON_MS)], 0.0);
        e.run_until_idle();
        let r = e.group_result();
        assert_eq!(r.completions[0].end_ms, d);
        let want = d + 2.0 * RETIRE_EPSILON_MS;
        assert!(
            (r.completions[1].end_ms - want).abs() < 1e-15,
            "{} vs {want}",
            r.completions[1].end_ms
        );
    }

    #[test]
    fn core_stats_track_depth_and_backlog() {
        let mut e = Engine::new(gpu(), NoiseModel::disabled(), 0);
        assert_eq!(e.core_stats(), EngineCoreStats::default());
        for i in 0..3 {
            e.add_stream(vec![small_kernel(); 2], i as f64 * 1e-3);
        }
        e.run_until_idle();
        let stats = e.core_stats();
        assert_eq!(stats.max_active, 3);
        assert_eq!(stats.pending_peak, 3);
        assert_eq!(stats.calendar_buckets, 0, "small backlog stays on the sorted path");
        e.reset(0);
        assert_eq!(e.core_stats(), EngineCoreStats::default());
    }
}
