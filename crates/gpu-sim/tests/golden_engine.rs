//! Golden test: the optimized engine (binary-insert pending queue,
//! incremental `U_c`/`U_m` aggregates, slot recycling, engine reuse via
//! `reset`) must be bit-identical to the pre-refactor engine.
//!
//! `reference` below is a faithful copy of the engine as it stood before
//! the hot-path work: the pending queue is re-sorted with `sort_by` on
//! every arrival, slowdowns re-sum the active set from scratch each event,
//! retired streams keep their slots forever, and completions allocate a
//! fresh `Vec`. Running a long seeded open-loop workload — including
//! clusters of equal-start arrivals, whose activation order decides the
//! order noise factors are drawn in — through both engines and comparing
//! every completion with `f64::to_bits` pins the refactor to the old
//! semantics exactly, not approximately.

use gpu_sim::{
    co_run_slowdowns, Engine, GpuSpec, KernelDesc, KernelFaultSpec, NoiseModel, RunningKernel,
};
use workload::{fork_seed, SeededRng};

/// The engine as it existed before the hot-path refactor, preserved here
/// as the golden reference. Mirrors the old code path for path: grown
/// `streams`, full re-sort on arrival, re-summed contention aggregates.
mod reference {
    use super::*;

    struct Stream {
        kernels: Vec<KernelDesc>,
        next: usize,
        start_ms: f64,
        end_ms: Option<f64>,
        remaining_ms: f64,
    }

    pub struct ReferenceEngine {
        gpu: GpuSpec,
        noise: NoiseModel,
        rng: SeededRng,
        session_factor: f64,
        time_ms: f64,
        streams: Vec<Stream>,
        pending: Vec<usize>,
        active: Vec<usize>,
        profiles: Vec<RunningKernel>,
        slowdowns: Vec<f64>,
        /// Spike spec plus its forked draw stream. The engine's
        /// `KernelFaultState` is crate-private, so the reference
        /// reimplements the draw protocol: one unconditional `f64` draw
        /// per kernel launch from a stream forked from
        /// `(spec seed, run seed)`, window tested on engine-local time.
        faults: Option<(KernelFaultSpec, SeededRng)>,
    }

    impl ReferenceEngine {
        pub fn new(gpu: GpuSpec, noise: NoiseModel, seed: u64) -> Self {
            let mut rng = SeededRng::new(seed);
            let session_factor = noise.session_factor(&mut rng);
            Self {
                gpu,
                noise,
                rng,
                session_factor,
                time_ms: 0.0,
                streams: Vec::new(),
                pending: Vec::new(),
                active: Vec::new(),
                profiles: Vec::new(),
                slowdowns: Vec::new(),
                faults: None,
            }
        }

        pub fn set_kernel_faults(&mut self, spec: KernelFaultSpec, run_seed: u64) {
            self.faults = Some((spec, SeededRng::new(fork_seed(spec.seed, run_seed))));
        }

        pub fn now(&self) -> f64 {
            self.time_ms
        }

        pub fn add_stream(&mut self, kernels: Vec<KernelDesc>, start_ms: f64) {
            let start_ms = start_ms.max(self.time_ms);
            self.streams.push(Stream {
                kernels,
                next: 0,
                start_ms,
                end_ms: None,
                remaining_ms: 0.0,
            });
            let id = self.streams.len() - 1;
            self.pending.push(id);
            // Full re-sort per arrival (descending by start time, soonest at
            // the back). The sort is stable, so among equal starts the
            // newest arrival ends up nearest the back — activating first.
            let streams = &self.streams;
            self.pending.sort_by(|&a, &b| {
                streams[b]
                    .start_ms
                    .partial_cmp(&streams[a].start_ms)
                    .unwrap()
            });
        }

        fn noisy_solo_ms(&mut self, k: &KernelDesc) -> f64 {
            let kf = self.noise.kernel_factor(&mut self.rng);
            k.solo_ms(&self.gpu) * self.session_factor * kf
        }

        fn activate_due_streams(&mut self) {
            while let Some(&idx) = self.pending.last() {
                if self.streams[idx].start_ms > self.time_ms + 1e-12 {
                    break;
                }
                self.pending.pop();
                self.start_next_kernel(idx);
            }
        }

        fn start_next_kernel(&mut self, idx: usize) {
            loop {
                let next = self.streams[idx].next;
                if next >= self.streams[idx].kernels.len() {
                    self.streams[idx].end_ms = Some(self.time_ms);
                    return;
                }
                let kernel = self.streams[idx].kernels[next];
                self.streams[idx].next = next + 1;
                let mut dur = self.noisy_solo_ms(&kernel);
                if let Some((spec, rng)) = &mut self.faults {
                    let u = rng.f64();
                    let spiked = u < spec.prob
                        && self.time_ms >= spec.window_start_ms
                        && self.time_ms < spec.window_end_ms;
                    dur *= if spiked { spec.factor } else { 1.0 };
                }
                if dur <= 0.0 {
                    continue;
                }
                self.streams[idx].remaining_ms = dur;
                self.active.push(idx);
                self.profiles.push(RunningKernel::profile(&kernel, &self.gpu));
                return;
            }
        }

        pub fn step(&mut self) -> Option<(f64, f64)> {
            loop {
                self.activate_due_streams();
                if self.active.is_empty() {
                    let &idx = self.pending.last()?;
                    self.time_ms = self.streams[idx].start_ms;
                    continue;
                }
                // Re-sum the whole active set every event.
                co_run_slowdowns(&self.profiles, &mut self.slowdowns);
                let mut dt = f64::INFINITY;
                for (pos, &idx) in self.active.iter().enumerate() {
                    let t = self.streams[idx].remaining_ms * self.slowdowns[pos];
                    if t < dt {
                        dt = t;
                    }
                }
                if let Some(&idx) = self.pending.last() {
                    let until_start = self.streams[idx].start_ms - self.time_ms;
                    if until_start < dt {
                        self.advance(until_start);
                        continue;
                    }
                }
                self.advance(dt);
                let mut completed = None;
                let mut pos = 0;
                while pos < self.active.len() {
                    let idx = self.active[pos];
                    if self.streams[idx].remaining_ms <= 1e-9 {
                        self.active.swap_remove(pos);
                        self.profiles.swap_remove(pos);
                        self.start_next_kernel(idx);
                        if self.streams[idx].end_ms.is_some() && completed.is_none() {
                            completed = Some(idx);
                        }
                    } else {
                        pos += 1;
                    }
                }
                if let Some(idx) = completed {
                    let s = &self.streams[idx];
                    return Some((s.start_ms, s.end_ms.unwrap()));
                }
            }
        }

        fn advance(&mut self, dt: f64) {
            if dt == 0.0 {
                return;
            }
            self.time_ms += dt;
            for (pos, &idx) in self.active.iter().enumerate() {
                let s = self.slowdowns[pos];
                self.streams[idx].remaining_ms -= dt / s;
                if self.streams[idx].remaining_ms < 0.0 {
                    self.streams[idx].remaining_ms = 0.0;
                }
            }
        }
    }
}

/// A seeded open-loop workload: (start time, kernel sequence) per stream,
/// with deliberate clusters of equal start times so activation tie order
/// is exercised, and a mix of compute-bound, memory-bound and saturating
/// kernels so the interference term of the contention model is live.
fn workload(seed: u64, n: usize) -> Vec<(f64, Vec<KernelDesc>)> {
    let gpu = GpuSpec::a100();
    let shapes = [
        KernelDesc::new(2e9, 1e7, 0.2 * gpu.block_slots()), // under-occupied compute
        KernelDesc::new(2e10, 1e7, 4.0 * gpu.block_slots()), // saturating compute
        KernelDesc::new(1e8, 4e8, 0.5 * gpu.block_slots()), // memory-bound
        KernelDesc::new(5e8, 5e7, 1.1 * gpu.block_slots()), // mixed, just saturating
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            // Every 5th stream shares the previous start time exactly —
            // an equal-start tie whose activation order must match.
            if i % 5 != 0 {
                t += (next() % 1000) as f64 / 800.0;
            }
            let len = 1 + (next() % 6) as usize;
            let kernels = (0..len).map(|_| shapes[(next() % 4) as usize]).collect();
            (t, kernels)
        })
        .collect()
}

/// Drive an engine through the workload open-loop: streams are only added
/// once simulated time reaches their start (as a serving loop would), so
/// slot recycling actually reuses retired slots.
fn drive(
    work: &[(f64, Vec<KernelDesc>)],
    mut add: impl FnMut(&[KernelDesc], f64),
    mut step: impl FnMut() -> Option<(f64, f64)>,
    now: impl Fn() -> f64,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut next = 0;
    loop {
        while next < work.len() && work[next].0 <= now() + 1e-9 {
            add(&work[next].1, work[next].0);
            next += 1;
        }
        match step() {
            Some((s, e)) => out.push((s.to_bits(), e.to_bits())),
            None if next >= work.len() => break,
            None => {
                // Idle gap before the next arrival: admit it directly.
                add(&work[next].1, work[next].0);
                next += 1;
            }
        }
    }
    out
}

#[test]
fn optimized_engine_matches_pre_refactor_reference_bitwise() {
    let seed = 0xABACu64;
    let work = workload(seed, 400);
    let noise = NoiseModel::calibrated();

    let reference = {
        use std::cell::RefCell;
        let e = RefCell::new(reference::ReferenceEngine::new(
            GpuSpec::a100(),
            noise.clone(),
            seed,
        ));
        drive(
            &work,
            |k, at| e.borrow_mut().add_stream(k.to_vec(), at),
            || e.borrow_mut().step(),
            || e.borrow().now(),
        )
    };

    let optimized = {
        use std::cell::RefCell;
        let mut engine = Engine::new(GpuSpec::a100(), noise, seed);
        // Exercise `reset` reuse on top of recycling: dirty the engine with
        // an unrelated run first, then reset to the golden seed.
        engine.add_stream_slice(&work[0].1, 0.0);
        engine.run_until_idle();
        engine.reset(seed);
        engine.enable_slot_recycling();
        let e = RefCell::new(engine);
        drive(
            &work,
            |k, at| {
                e.borrow_mut().add_stream_slice(k, at);
            },
            || e.borrow_mut().step().map(|c| (c.start_ms, c.end_ms)),
            || e.borrow().now(),
        )
    };

    assert_eq!(reference.len(), work.len());
    assert_eq!(
        reference, optimized,
        "optimized engine diverged from the pre-refactor reference"
    );
}

#[test]
fn reference_and_optimized_agree_across_seeds() {
    // Smaller sweeps across several seeds: guards against a lucky match on
    // one seed's draw sequence.
    for seed in [1u64, 9, 77, 2021] {
        let work = workload(seed, 80);
        let noise = NoiseModel::calibrated();
        let reference = {
            use std::cell::RefCell;
            let e = RefCell::new(reference::ReferenceEngine::new(
                GpuSpec::a100(),
                noise.clone(),
                seed,
            ));
            drive(
                &work,
                |k, at| e.borrow_mut().add_stream(k.to_vec(), at),
                || e.borrow_mut().step(),
                || e.borrow().now(),
            )
        };
        let optimized = {
            use std::cell::RefCell;
            let mut engine = Engine::new(GpuSpec::a100(), noise, seed);
            engine.enable_slot_recycling();
            let e = RefCell::new(engine);
            drive(
                &work,
                |k, at| {
                    e.borrow_mut().add_stream_slice(k, at);
                },
                || e.borrow_mut().step().map(|c| (c.start_ms, c.end_ms)),
                || e.borrow().now(),
            )
        };
        assert_eq!(reference, optimized, "divergence at seed {seed}");
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Like [`workload`], but wilder: empty streams, launch-only kernels,
    /// true zero-cost kernels (which draw noise but finish instantly) and
    /// a denser cluster of equal-start ties.
    fn random_workload(seed: u64, n: usize, exotic: bool) -> Vec<(f64, Vec<KernelDesc>)> {
        let gpu = GpuSpec::a100();
        let shapes = [
            KernelDesc::new(2e9, 1e7, 0.2 * gpu.block_slots()), // under-occupied compute
            KernelDesc::new(2e10, 1e7, 4.0 * gpu.block_slots()), // saturating compute
            KernelDesc::new(1e8, 4e8, 0.5 * gpu.block_slots()), // memory-bound
            KernelDesc::new(5e8, 5e7, 1.1 * gpu.block_slots()), // mixed, just saturating
            // Launch-only: contends for nothing, still takes wall time.
            KernelDesc {
                flops: 0.0,
                bytes: 0.0,
                blocks: 1.0,
                launch_ms: 0.012,
            },
            // True zero-cost kernel: draws its noise factor, then
            // completes instantly without entering the running set.
            KernelDesc {
                flops: 0.0,
                bytes: 0.0,
                blocks: 1.0,
                launch_ms: 0.0,
            },
        ];
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let shape_pool = if exotic { shapes.len() } else { 4 };
        let mut t = 0.0f64;
        (0..n)
            .map(|i| {
                // Every 4th stream shares the previous start time exactly.
                if i % 4 != 0 {
                    t += (next() % 1000) as f64 / 900.0;
                }
                // Length 0 = empty stream (completes at activation).
                let len = (next() % 6) as usize;
                let kernels = (0..len)
                    .map(|_| shapes[(next() as usize) % shape_pool])
                    .collect();
                (t, kernels)
            })
            .collect()
    }

    fn run_reference(
        work: &[(f64, Vec<KernelDesc>)],
        noise: &NoiseModel,
        seed: u64,
        spec: Option<KernelFaultSpec>,
    ) -> Vec<(u64, u64)> {
        use std::cell::RefCell;
        let mut engine = reference::ReferenceEngine::new(GpuSpec::a100(), noise.clone(), seed);
        if let Some(spec) = spec {
            engine.set_kernel_faults(spec, seed);
        }
        let e = RefCell::new(engine);
        drive(
            work,
            |k, at| e.borrow_mut().add_stream(k.to_vec(), at),
            || e.borrow_mut().step(),
            || e.borrow().now(),
        )
    }

    fn run_optimized(
        work: &[(f64, Vec<KernelDesc>)],
        noise: &NoiseModel,
        seed: u64,
        spec: Option<KernelFaultSpec>,
    ) -> Vec<(u64, u64)> {
        use std::cell::RefCell;
        let mut engine = Engine::new(GpuSpec::a100(), noise.clone(), seed);
        engine.set_kernel_faults(spec);
        engine.enable_slot_recycling();
        let e = RefCell::new(engine);
        drive(
            work,
            |k, at| {
                e.borrow_mut().add_stream_slice(k, at);
            },
            || e.borrow_mut().step().map(|c| (c.start_ms, c.end_ms)),
            || e.borrow().now(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random open-loop workloads — varied stream counts, zero-cost
        /// kernels, tied starts/completions, with and without noise and
        /// fault specs — through both engines, compared bit for bit.
        #[test]
        fn random_workloads_are_bit_identical(
            seed in 0u64..(1 << 32),
            n in 1usize..90,
            flags in (0u64..2, 0u64..2).prop_map(|(a, b)| (a == 1, b == 1)),
            fault in proptest::option::of((
                (0u64..1_000, 0.0f64..=1.0),
                (0.25f64..4.0, 0.0f64..30.0, 0.0f64..40.0),
            )),
        ) {
            let (exotic, noisy) = flags;
            let work = random_workload(seed, n, exotic);
            let noise = if noisy {
                NoiseModel::calibrated()
            } else {
                NoiseModel::disabled()
            };
            let spec = fault.map(|((fseed, prob), (factor, w0, wlen))| KernelFaultSpec {
                seed: fseed,
                window_start_ms: w0,
                window_end_ms: w0 + wlen,
                prob,
                factor,
            });
            let reference = run_reference(&work, &noise, seed, spec);
            let optimized = run_optimized(&work, &noise, seed, spec);
            prop_assert_eq!(
                reference,
                optimized,
                "divergence: seed {} n {} exotic {} noisy {} spec {:?}",
                seed,
                n,
                exotic,
                noisy,
                spec
            );
        }
    }
}
