//! Property tests of the kernel-execution trace: for arbitrary overlapped
//! groups, every retired stream's recorded [`KernelSpan`]s are ordered,
//! non-overlapping, contiguous in kernel index, and account — interval by
//! interval — for the stream's whole [`StreamCompletion`] latency. These
//! are the invariants the telemetry exporter leans on when it lowers spans
//! onto Perfetto tracks (one track per stream, no overlapping slices).

use gpu_sim::{Engine, GpuSpec, KernelDesc, NoiseModel, StreamId};
use proptest::prelude::*;

fn gpu() -> GpuSpec {
    GpuSpec::a100()
}

/// Arbitrary non-degenerate kernels: compute spans under- to over-occupied,
/// memory traffic from negligible to bandwidth-relevant.
fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (1e8f64..5e9, 1e6f64..1e8, 0.05f64..2.0)
        .prop_map(|(flops, bytes, occ)| KernelDesc::new(flops, bytes, occ * gpu().block_slots()))
}

fn arb_streams() -> impl Strategy<Value = Vec<Vec<KernelDesc>>> {
    proptest::collection::vec(proptest::collection::vec(arb_kernel(), 1..7), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stream_spans_partition_completion_latency(
        streams in arb_streams(),
        seed in 0u64..1000,
    ) {
        let mut e = Engine::new(gpu(), NoiseModel::calibrated(), seed);
        e.enable_trace();
        for s in &streams {
            e.add_stream(s.clone(), 0.0);
        }
        e.run_until_idle();
        let completions = e.completions();
        let trace = e.trace();
        // Every non-degenerate kernel left exactly one span.
        let n_kernels: usize = streams.iter().map(Vec::len).sum();
        prop_assert_eq!(trace.len(), n_kernels);
        for (sid, kernels) in streams.iter().enumerate() {
            let spans: Vec<_> = trace
                .iter()
                .filter(|s| s.stream == StreamId(sid))
                .collect();
            prop_assert_eq!(spans.len(), kernels.len());
            let c = completions.iter().find(|c| c.id == StreamId(sid)).unwrap();
            // Ordered, contiguous in both time and kernel index: within an
            // exclusive group each kernel starts the instant its
            // predecessor retires, so the spans tile the stream's latency.
            let mut sum = 0.0;
            for (i, s) in spans.iter().enumerate() {
                prop_assert_eq!(s.kernel, i);
                prop_assert!(s.end_ms > s.start_ms, "empty span {s:?}");
                prop_assert!(
                    s.occupancy > 0.0 && s.occupancy <= 1.0,
                    "occupancy out of range: {}",
                    s.occupancy
                );
                let expect = kernels[i].occupancy(&gpu());
                prop_assert!((s.occupancy - expect).abs() < 1e-12);
                sum += s.end_ms - s.start_ms;
            }
            for w in spans.windows(2) {
                prop_assert!(
                    (w[0].end_ms - w[1].start_ms).abs() < 1e-9,
                    "gap or overlap between consecutive kernels: {} vs {}",
                    w[0].end_ms,
                    w[1].start_ms
                );
            }
            prop_assert!((spans[0].start_ms - c.start_ms).abs() < 1e-9);
            prop_assert!((spans.last().unwrap().end_ms - c.end_ms).abs() < 1e-9);
            let latency = c.end_ms - c.start_ms;
            prop_assert!(
                (sum - latency).abs() < 1e-6 * latency.max(1.0),
                "spans sum {sum} vs stream latency {latency}"
            );
        }
    }
}
