//! Microbenchmarks of the hot paths.
//!
//! `predictor_inference/N` is the genuine Fig. 23 measurement: the latency
//! of one batched duration prediction at N search ways on this host's CPU
//! (the paper measures 0.066–0.088 ms on one core of its testbed).

use bench::Fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{run_group, NoiseModel};
use predictor::LatencyModel;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let fx = Fixture::new();
    let streams: Vec<Vec<gpu_sim::KernelDesc>> = fx
        .sample_group(173)
        .streams(&fx.lib);
    c.bench_function("engine/run_group_res152_bert", |b| {
        b.iter(|| {
            black_box(run_group(
                &fx.gpu,
                &NoiseModel::calibrated(),
                7,
                black_box(&streams),
            ))
        })
    });
    let solo = vec![fx.lib.graph(dnn_models::ModelId::ResNet50, dnn_models::ModelId::ResNet50.max_input()).kernels()];
    c.bench_function("engine/run_solo_res50", |b| {
        b.iter(|| black_box(run_group(&fx.gpu, &NoiseModel::disabled(), 0, black_box(&solo))))
    });
}

fn bench_contention(c: &mut Criterion) {
    let fx = Fixture::new();
    let kernels = fx.lib.graph(dnn_models::ModelId::ResNet152, dnn_models::ModelId::ResNet152.max_input()).kernels();
    let profiles: Vec<gpu_sim::RunningKernel> = kernels
        .iter()
        .take(8)
        .map(|k| gpu_sim::RunningKernel::profile(k, &fx.gpu))
        .collect();
    let mut out = Vec::new();
    c.bench_function("contention/co_run_slowdowns_8", |b| {
        b.iter(|| {
            gpu_sim::co_run_slowdowns(black_box(&profiles), &mut out);
            black_box(&out);
        })
    });
}

/// The Fig. 23 measurement: batched prediction latency vs search ways,
/// with the pre-batching scalar per-sample loop alongside for comparison.
fn bench_predictor_inference(c: &mut Criterion) {
    let fx = Fixture::new();
    let mut g = c.benchmark_group("predictor_inference");
    for ways in [1usize, 2, 4, 8, 16] {
        let batch: Vec<Vec<f64>> = (0..ways)
            .map(|i| fx.sample_group(20 + 9 * i).features(&fx.lib))
            .collect();
        let flat: Vec<f64> = batch.iter().flatten().copied().collect();
        g.bench_with_input(BenchmarkId::new("batched", ways), &flat, |b, flat| {
            let mut out = Vec::with_capacity(ways);
            b.iter(|| {
                fx.mlp.predict_into(black_box(flat), ways, &mut out);
                black_box(&out);
            })
        });
        g.bench_with_input(BenchmarkId::new("scalar", ways), &batch, |b, batch| {
            b.iter(|| {
                for row in batch {
                    black_box(fx.mlp.predict_one_scalar(black_box(row)));
                }
            })
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let fx = Fixture::new();
    let queries: Vec<abacus_core::Query> = [
        dnn_models::ModelId::ResNet152,
        dnn_models::ModelId::Bert,
    ]
    .iter()
    .enumerate()
    .map(|(i, &m)| {
        let input = m.max_input();
        abacus_core::Query::new(i as u64, m, input, 0.0, 100.0, fx.lib.graph(m, input).len())
    })
    .collect();
    let refs: Vec<&abacus_core::Query> = queries.iter().collect();
    let model = fx.model();
    c.bench_function("search/plan_group_4way", |b| {
        b.iter(|| {
            black_box(abacus_core::plan_group(
                black_box(&refs),
                60.0,
                model.as_ref(),
                &fx.lib,
                4,
            ))
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let fx = Fixture::new();
    let data = serving::collect_dataset(
        &[dnn_models::ModelId::ResNet50, dnn_models::ModelId::Bert],
        &fx.lib,
        &fx.gpu,
        &NoiseModel::calibrated(),
        &serving::TrainerConfig {
            samples_per_set: 256,
            runs_per_group: 1,
            ..serving::TrainerConfig::fast()
        },
        0,
    );
    c.bench_function("training/mlp_one_epoch_256", |b| {
        b.iter(|| {
            black_box(predictor::Mlp::train(
                black_box(&data),
                &predictor::MlpConfig {
                    epochs: 1,
                    ..predictor::MlpConfig::default()
                },
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_contention, bench_predictor_inference, bench_search, bench_training
}
criterion_main!(benches);
