//! One Criterion benchmark per paper table/figure.
//!
//! Each bench times a *scaled-down* regeneration of the corresponding
//! experiment, so `cargo bench` demonstrates that every figure's pipeline
//! runs end-to-end and how much compute it costs. The full-scale numbers
//! are produced by the `abacus-repro` binary (see EXPERIMENTS.md).

use bench::Fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelId, QueryInput};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{
    mps_victim_latencies, run_colocation, ColocationConfig, MpsConfig, PolicyKind,
};
use std::hint::black_box;
use std::sync::Arc;

fn colocation_cfg() -> ColocationConfig {
    ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 2_000.0,
        seed: 3,
        ..ColocationConfig::default()
    }
}

/// Fig. 3: MPS free-overlap tail latency.
fn fig03(c: &mut Criterion, fx: &Fixture) {
    let cfg = MpsConfig {
        victim: ModelId::ResNet152,
        victim_input: QueryInput::new(32, 1),
        antagonist: ModelId::Vgg19,
        antagonist_qps: 35.0,
        horizon_ms: 1_500.0,
        seed: 3,
    };
    c.bench_function("fig03_mps_tail", |b| {
        b.iter(|| black_box(mps_victim_latencies(&cfg, &fx.lib, &fx.gpu)))
    });
}

/// Fig. 7 / §5.2: operator-group determinism statistics.
fn fig07(c: &mut Criterion, fx: &Fixture) {
    c.bench_function("fig07_determinism", |b| {
        b.iter(|| {
            black_box(serving::collect_profiles(
                &[ModelId::ResNet50, ModelId::Bert],
                &fx.lib,
                &fx.gpu,
                &NoiseModel::calibrated(),
                &serving::TrainerConfig {
                    samples_per_set: 40,
                    runs_per_group: 5,
                    ..serving::TrainerConfig::fast()
                },
                0,
            ))
        })
    });
}

/// Fig. 10: train + evaluate the three predictor families on one pair.
fn fig10(c: &mut Criterion, fx: &Fixture) {
    let data = serving::collect_dataset(
        &[ModelId::ResNet50, ModelId::Vgg16],
        &fx.lib,
        &fx.gpu,
        &NoiseModel::calibrated(),
        &serving::TrainerConfig {
            samples_per_set: 200,
            runs_per_group: 1,
            ..serving::TrainerConfig::fast()
        },
        0,
    );
    c.bench_function("fig10_predictors", |b| {
        b.iter(|| {
            let lr = predictor::LinearRegression::fit(black_box(&data), 1e-3);
            let svr = predictor::LinearSvr::fit(&data, &predictor::SvrConfig {
                epochs: 10,
                ..predictor::SvrConfig::default()
            });
            let mlp = predictor::Mlp::train(
                &data,
                &predictor::MlpConfig {
                    epochs: 3,
                    ..predictor::MlpConfig::default()
                },
            );
            black_box((
                predictor::eval::mape(&lr, &data),
                predictor::eval::mape(&svr, &data),
                predictor::eval::mape(&mlp, &data),
            ))
        })
    });
}

/// Figs. 14/15: one pair, all four policies, QoS load.
fn fig14_15(c: &mut Criterion, fx: &Fixture) {
    let model: Arc<dyn LatencyModel> = fx.model();
    let cfg = colocation_cfg();
    c.bench_function("fig14_qos_latency", |b| {
        b.iter(|| {
            for p in PolicyKind::ALL {
                let pred = (p == PolicyKind::Abacus).then(|| model.clone());
                black_box(run_colocation(
                    &[ModelId::ResNet152, ModelId::Bert],
                    p,
                    pred,
                    &fx.lib,
                    &fx.gpu,
                    &NoiseModel::calibrated(),
                    &cfg,
                ));
            }
        })
    });
}

/// Fig. 16: small-DNN mode.
fn fig16(c: &mut Criterion, fx: &Fixture) {
    let model: Arc<dyn LatencyModel> = fx.model();
    let cfg = ColocationConfig {
        small_inputs: true,
        ..colocation_cfg()
    };
    c.bench_function("fig16_small_dnns", |b| {
        b.iter(|| {
            black_box(run_colocation(
                &[ModelId::ResNet152, ModelId::Bert],
                PolicyKind::Abacus,
                Some(model.clone()),
                &fx.lib,
                &fx.gpu,
                &NoiseModel::calibrated(),
                &cfg,
            ))
        })
    });
}

/// Fig. 17: peak-throughput leg.
fn fig17(c: &mut Criterion, fx: &Fixture) {
    let model: Arc<dyn LatencyModel> = fx.model();
    let cfg = ColocationConfig {
        qps_per_service: 50.0,
        ..colocation_cfg()
    };
    c.bench_function("fig17_throughput", |b| {
        b.iter(|| {
            black_box(run_colocation(
                &[ModelId::ResNet152, ModelId::Bert],
                PolicyKind::Abacus,
                Some(model.clone()),
                &fx.lib,
                &fx.gpu,
                &NoiseModel::calibrated(),
                &cfg,
            ))
        })
    });
}

/// Figs. 18/19: a triplet deployment.
fn fig18_19(c: &mut Criterion, fx: &Fixture) {
    let model: Arc<dyn LatencyModel> = fx.model();
    let cfg = ColocationConfig {
        qps_per_service: 50.0 / 3.0,
        ..colocation_cfg()
    };
    c.bench_function("fig18_multiway", |b| {
        b.iter(|| {
            black_box(run_colocation(
                &[ModelId::ResNet152, ModelId::Vgg19, ModelId::Bert],
                PolicyKind::Abacus,
                Some(model.clone()),
                &fx.lib,
                &fx.gpu,
                &NoiseModel::calibrated(),
                &cfg,
            ))
        })
    });
}

/// Figs. 20/21: a pair on a MIG 2g.10gb slice (full-A100 QoS targets).
fn fig20_21(c: &mut Criterion, fx: &Fixture) {
    let slice = fx.gpu.mig_slice(gpu_sim::MigProfile::TwoG10Gb);
    let services = vec![
        serving::ServiceSpec {
            model: ModelId::ResNet152,
            qos_ms: fx.lib.qos_target_ms(ModelId::ResNet152, &fx.gpu),
        },
        serving::ServiceSpec {
            model: ModelId::Bert,
            qos_ms: fx.lib.qos_target_ms(ModelId::Bert, &fx.gpu),
        },
    ];
    let cfg = ColocationConfig {
        qps_per_service: 10.0,
        ..colocation_cfg()
    };
    c.bench_function("fig20_mig", |b| {
        b.iter(|| {
            black_box(serving::run_with_services(
                &services,
                PolicyKind::Fcfs,
                None,
                &fx.lib,
                &slice,
                &NoiseModel::calibrated(),
                &cfg,
            ))
        })
    });
}

/// Fig. 22: a small cluster replay.
fn fig22(c: &mut Criterion, fx: &Fixture) {
    let trace = workload::RateTrace::new(vec![120.0; 1]);
    let cfg = cluster::ClusterConfig {
        nodes: 1,
        gpus_per_node: 2,
        ..cluster::ClusterConfig::paper(trace, 5)
    };
    let v100 = GpuSpec::v100();
    let model: Arc<dyn LatencyModel> = fx.model();
    c.bench_function("fig22_cluster", |b| {
        b.iter(|| {
            black_box(cluster::run_cluster(
                cluster::ClusterSystem::AbacusK8s,
                &cfg,
                &fx.lib,
                &v100,
                &NoiseModel::calibrated(),
                Some(model.clone()),
            ))
        })
    });
}

/// Fig. 23: one batched 4-way prediction round (the paper's 0.066-0.088 ms).
fn fig23(c: &mut Criterion, fx: &Fixture) {
    let batch: Vec<Vec<f64>> = (0..4)
        .map(|i| fx.sample_group(20 + 9 * i).features(&fx.lib))
        .collect();
    c.bench_function("fig23_search_ways", |b| {
        b.iter(|| black_box(fx.mlp.predict_batch(black_box(&batch))))
    });
    // The same 4-way round on the pre-batching scalar path: the gap is the
    // tentpole win this PR's BENCH_search.json tracks.
    c.bench_function("fig23_search_ways_scalar", |b| {
        b.iter(|| {
            for row in &batch {
                black_box(fx.mlp.predict_one_scalar(black_box(row)));
            }
        })
    });
}

/// Tables 1/2: model-zoo instantiation and spec derivation.
fn tables(c: &mut Criterion, _fx: &Fixture) {
    c.bench_function("table1_model_zoo", |b| {
        b.iter(|| black_box(dnn_models::ModelLibrary::new()))
    });
    c.bench_function("table2_specs", |b| {
        b.iter(|| {
            black_box((
                GpuSpec::a100(),
                GpuSpec::v100(),
                GpuSpec::a100().mig_slice(gpu_sim::MigProfile::OneG5Gb),
            ))
        })
    });
}

fn all(c: &mut Criterion) {
    let fx = Fixture::new();
    tables(c, &fx);
    fig03(c, &fx);
    fig07(c, &fx);
    fig10(c, &fx);
    fig14_15(c, &fx);
    fig16(c, &fx);
    fig17(c, &fx);
    fig18_19(c, &fx);
    fig20_21(c, &fx);
    fig22(c, &fx);
    fig23(c, &fx);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = all
}
criterion_main!(benches);
