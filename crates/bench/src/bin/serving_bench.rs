//! Perf snapshot of the serving substrate: executor groups/sec, the wall
//! time of one full fig14 cell (one (pair, policy) co-location run), and
//! the serial-vs-parallel wall time of a small sweep of cells. Emits
//! `BENCH_serving.json` next to `BENCH_search.json` so the experiment
//! pipeline has a perf trajectory to regress against.
//!
//! Usage:
//!
//! ```text
//! serving_bench [--quick] [--out PATH] [--check BASELINE] [--baseline-gps N]
//! ```
//!
//! * `--quick` — shorter horizons / fewer groups (CI-friendly; also
//!   honoured via the `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_serving.json`;
//!   suppressed in `--check` mode unless given explicitly).
//! * `--check BASELINE` — compare measured groups/sec and fig14 cell wall
//!   time against a committed baseline; exit non-zero past 2x regression.
//! * `--baseline-gps N` — record `N` as the pre-change groups/sec baseline
//!   in the emitted JSON (provenance for the current numbers).
//!
//! The sweep section measures the same cells twice — once in a serial loop
//! and once through the parallel leg, which fans out with the vendored
//! rayon stub only when `rayon::worth_fanning_out` says the host can run
//! cells concurrently (a single-core host falls back to the serial
//! iterator instead of paying scoped-thread overhead for nothing) — and
//! asserts the results are identical. On a single-core host (the CI
//! container) the speedup is ~1.0 by construction; `host_cores` is
//! recorded so readers can interpret the ratio. The sweep *speedup* is therefore informational; the
//! `--check` gate only uses the host-independent groups/sec and cell time.

use bench::Fixture;
use dnn_models::ModelId;
use gpu_sim::NoiseModel;
use predictor::LatencyModel;
use rayon::prelude::*;
use serving::{run_colocation, ColocationConfig, ColocationResult, PolicyKind};
use std::io::Write as _;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::Instant;
use workload::fork_seed;

/// A metric fails the `--check` gate past this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Attaching a [`telemetry::Telemetry`] with the run-health monitors
/// enabled (counters + sketches + drift/SLO detectors + flight recorder,
/// no kernel trace) may cost at most this much of the cell's wall time in
/// `--check` mode.
const TELEMETRY_OVERHEAD_LIMIT_PCT: f64 = 2.0;

struct CellOutcome {
    p99: f64,
    violations: f64,
    total: usize,
}

impl CellOutcome {
    fn of(r: &ColocationResult) -> Self {
        Self {
            p99: r.normalized_p99(),
            violations: r.violation_ratio(),
            total: r.all.total(),
        }
    }
}

fn run_cell(
    fx: &Fixture,
    noise: &NoiseModel,
    pair: &[ModelId],
    policy: PolicyKind,
    horizon_ms: f64,
    seed: u64,
) -> ColocationResult {
    // Pin the prediction-round latency: the default config calibrates it
    // from wall-clock timing at scheduler startup, which would make the
    // Abacus cells irreproducible (and the serial-vs-parallel identity
    // check meaningless).
    let abacus = abacus_core::AbacusConfig {
        predict_round_ms: Some(0.09),
        ..Default::default()
    };
    let cfg = ColocationConfig {
        qps_per_service: 50.0 / pair.len() as f64,
        horizon_ms,
        seed,
        abacus,
        ..ColocationConfig::default()
    };
    let pred: Option<Arc<dyn LatencyModel>> =
        (policy == PolicyKind::Abacus).then(|| fx.model());
    run_colocation(pair, policy, pred, &fx.lib, &fx.gpu, noise, &cfg)
}

/// The Abacus cell of [`run_cell`] with telemetry + run-health monitors
/// attached (no kernel trace) — the overhead-gate workload.
fn run_cell_traced(
    fx: &Fixture,
    noise: &NoiseModel,
    pair: &[ModelId],
    horizon_ms: f64,
    seed: u64,
) -> ColocationResult {
    let abacus = abacus_core::AbacusConfig {
        predict_round_ms: Some(0.09),
        ..Default::default()
    };
    let cfg = ColocationConfig {
        qps_per_service: 50.0 / pair.len() as f64,
        horizon_ms,
        seed,
        abacus,
        ..ColocationConfig::default()
    };
    let mut tel = telemetry::Telemetry::with_health();
    let (r, _) = serving::run_colocation_traced(
        pair,
        PolicyKind::Abacus,
        Some(fx.model()),
        &fx.lib,
        &fx.gpu,
        noise,
        &cfg,
        &mut tel,
    );
    std::hint::black_box(tel.registry.get(telemetry::Counter::QueriesArrived));
    r
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut baseline_gps: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            "--baseline-gps" => {
                baseline_gps = Some(
                    it.next()
                        .expect("--baseline-gps needs a value")
                        .parse()
                        .expect("--baseline-gps needs a number"),
                )
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let host_cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let (exec_groups, cell_horizon_ms, sweep_horizon_ms) = if quick {
        (300usize, 2_500.0, 1_500.0)
    } else {
        (1_000usize, 5_000.0, 3_000.0)
    };

    eprintln!("training bench fixture MLP (3x32)...");
    let fx = Fixture::new();
    let noise = NoiseModel::calibrated();

    // --- Executor groups/sec: the serving inner loop (lower + run_group +
    // bookkeeping), over a rotation of pair groups with varying segments.
    let specs: Vec<_> = (0..8).map(|i| fx.sample_group(40 + 16 * i)).collect();
    let mut executor = abacus_core::SegmentalExecutor::new(
        fx.gpu.clone(),
        NoiseModel::calibrated(),
        fx.lib.clone(),
        7,
    );
    for spec in &specs {
        std::hint::black_box(executor.execute(spec)); // warm up
    }
    let t0 = Instant::now();
    for g in 0..exec_groups {
        std::hint::black_box(executor.execute(&specs[g % specs.len()]));
    }
    let exec_elapsed = t0.elapsed().as_secs_f64();
    let groups_per_sec = exec_groups as f64 / exec_elapsed;
    eprintln!("  executor: {groups_per_sec:.0} groups/sec ({exec_groups} groups in {exec_elapsed:.2}s)");

    // --- One full fig14 cell: (Res152, Bert) under FCFS and under Abacus.
    let pair = [ModelId::ResNet152, ModelId::Bert];
    let t0 = Instant::now();
    std::hint::black_box(run_cell(&fx, &noise, &pair, PolicyKind::Fcfs, cell_horizon_ms, 2021));
    let cell_fcfs_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    std::hint::black_box(run_cell(&fx, &noise, &pair, PolicyKind::Abacus, cell_horizon_ms, 2021));
    let cell_abacus_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("  fig14 cell ({:.0} ms horizon): FCFS {cell_fcfs_ms:.0} ms, Abacus {cell_abacus_ms:.0} ms", cell_horizon_ms);

    // --- Telemetry overhead: the same Abacus cell with a monitors-enabled
    // Telemetry attached (counters + run-health sketches/detectors). Each
    // timed sample is a batch of 3 seeds so the
    // sample rises above timer granularity; the off/on samples interleave
    // and the estimate compares the *minimum* over reps — external noise
    // (a co-tenant on the core, a page fault) only ever adds time, so the
    // minima converge on the true costs where medians still wobble on a
    // time-shared host. A first estimate over the limit is re-measured and
    // the lower estimate kept: a burst of steal time inflates one phase,
    // a real regression inflates both.
    let measure_overhead = |reps: usize, batch: u64| -> (f64, f64) {
        let mut off_min = f64::INFINITY;
        let mut on_min = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for seed in 0..batch {
                std::hint::black_box(run_cell(&fx, &noise, &pair, PolicyKind::Abacus, cell_horizon_ms, 2021 + seed));
            }
            off_min = off_min.min(t0.elapsed().as_secs_f64() * 1e3 / batch as f64);
            let t0 = Instant::now();
            for seed in 0..batch {
                std::hint::black_box(run_cell_traced(&fx, &noise, &pair, cell_horizon_ms, 2021 + seed));
            }
            on_min = on_min.min(t0.elapsed().as_secs_f64() * 1e3 / batch as f64);
        }
        (off_min, on_min)
    };
    let (mut telemetry_off_cell_ms, mut telemetry_cell_ms) = measure_overhead(15, 3);
    if (telemetry_cell_ms - telemetry_off_cell_ms) / telemetry_off_cell_ms * 100.0
        > TELEMETRY_OVERHEAD_LIMIT_PCT
    {
        let (off2, on2) = measure_overhead(15, 3);
        if on2 - off2 < telemetry_cell_ms - telemetry_off_cell_ms {
            telemetry_off_cell_ms = off2;
            telemetry_cell_ms = on2;
        }
    }
    let telemetry_overhead_pct =
        (telemetry_cell_ms - telemetry_off_cell_ms) / telemetry_off_cell_ms * 100.0;
    eprintln!(
        "  telemetry: off {telemetry_off_cell_ms:.2} ms, on {telemetry_cell_ms:.2} ms \
         ({telemetry_overhead_pct:+.2}% overhead, min over interleaved batches)"
    );

    // --- Sweep: 2 pairs x 4 policies, serial loop vs parallel fan-out.
    let pairs: [&[ModelId]; 2] = [
        &[ModelId::ResNet50, ModelId::ResNet152],
        &[ModelId::InceptionV3, ModelId::Vgg16],
    ];
    let cells: Vec<(usize, PolicyKind)> = pairs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| PolicyKind::ALL.into_iter().map(move |p| (i, p)))
        .collect();
    let run_one = |&(row, policy): &(usize, PolicyKind)| -> CellOutcome {
        CellOutcome::of(&run_cell(
            &fx,
            &noise,
            pairs[row],
            policy,
            sweep_horizon_ms,
            fork_seed(2021, row as u64),
        ))
    };
    // Interleaved reps with alternating leg order, keeping the minimum of
    // each leg: external noise only ever adds time, so the minima estimate
    // the true costs, and alternating which leg runs first cancels the
    // position bias that used to charge whichever leg ran second with the
    // rep's warmup/co-tenant cost (the source of the phantom 0.93x
    // "parallel slowdown" this bench once reported).
    let run_serial = || cells.iter().map(run_one).collect::<Vec<_>>();
    // Fan out only when the host can actually run cells concurrently: on
    // a single core the scoped-thread machinery is pure overhead.
    let run_parallel = || {
        if rayon::worth_fanning_out(cells.len()) {
            cells.par_iter().map(run_one).collect::<Vec<_>>()
        } else {
            run_serial()
        }
    };
    let mut sweep_serial_ms = f64::INFINITY;
    let mut sweep_parallel_ms = f64::INFINITY;
    let mut serial: Vec<CellOutcome> = Vec::new();
    let mut parallel: Vec<CellOutcome> = Vec::new();
    for rep in 0..4 {
        if rep % 2 == 0 {
            let t0 = Instant::now();
            serial = run_serial();
            sweep_serial_ms = sweep_serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            parallel = run_parallel();
            sweep_parallel_ms = sweep_parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        } else {
            let t0 = Instant::now();
            parallel = run_parallel();
            sweep_parallel_ms = sweep_parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            serial = run_serial();
            sweep_serial_ms = sweep_serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let identical = serial.len() == parallel.len()
        && serial.iter().zip(&parallel).all(|(a, b)| {
            a.p99 == b.p99 && a.violations == b.violations && a.total == b.total
        });
    assert!(identical, "parallel sweep diverged from serial order");
    let speedup = sweep_serial_ms / sweep_parallel_ms;
    eprintln!(
        "  sweep ({} cells): serial {sweep_serial_ms:.0} ms, parallel {sweep_parallel_ms:.0} ms \
         ({speedup:.2}x on {host_cores} core(s)), results identical",
        cells.len()
    );

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serving\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    match baseline_gps {
        Some(b) => s.push_str(&format!("  \"baseline_groups_per_sec\": {b:.1},\n")),
        None => s.push_str("  \"baseline_groups_per_sec\": null,\n"),
    }
    s.push_str(&format!("  \"groups_per_sec\": {groups_per_sec:.1},\n"));
    s.push_str(&format!("  \"fig14_cell_horizon_ms\": {cell_horizon_ms:.0},\n"));
    s.push_str(&format!("  \"fig14_cell_fcfs_ms\": {cell_fcfs_ms:.1},\n"));
    s.push_str(&format!("  \"fig14_cell_abacus_ms\": {cell_abacus_ms:.1},\n"));
    s.push_str(&format!("  \"telemetry_off_cell_ms\": {telemetry_off_cell_ms:.2},\n"));
    s.push_str(&format!("  \"telemetry_cell_ms\": {telemetry_cell_ms:.2},\n"));
    s.push_str(&format!("  \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2},\n"));
    s.push_str(&format!("  \"sweep_cells\": {},\n", cells.len()));
    s.push_str(&format!("  \"sweep_serial_ms\": {sweep_serial_ms:.1},\n"));
    s.push_str(&format!("  \"sweep_parallel_ms\": {sweep_parallel_ms:.1},\n"));
    s.push_str(&format!("  \"sweep_speedup\": {speedup:.2},\n"));
    s.push_str(&format!("  \"sweep_identical\": {identical}\n"));
    s.push_str("}\n");

    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_serving.json".to_string())) {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(s.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let num_after = |key: &str| -> Option<f64> {
            let at = baseline.find(key)? + key.len();
            let rest = baseline[at..].trim_start_matches([':', ' ']);
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let mut failed = false;
        // groups/sec: lower is worse.
        if let Some(base) = num_after("\"groups_per_sec\"") {
            let ratio = base / groups_per_sec;
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: {groups_per_sec:.0} groups/sec vs baseline {base:.0} ({ratio:.2}x slower > {REGRESSION_FACTOR}x)"
                );
                failed = true;
            } else {
                eprintln!("ok: {groups_per_sec:.0} groups/sec vs baseline {base:.0} ({ratio:.2}x)");
            }
        }
        // fig14 FCFS cell wall time: higher is worse. Baselines written in
        // full mode use a 2x-longer horizon than quick mode; scale by the
        // recorded horizon so the gate compares per-simulated-ms cost.
        if let (Some(base_ms), Some(base_h)) = (
            num_after("\"fig14_cell_fcfs_ms\""),
            num_after("\"fig14_cell_horizon_ms\""),
        ) {
            let ratio = (cell_fcfs_ms / cell_horizon_ms) / (base_ms / base_h);
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: fig14 cell {cell_fcfs_ms:.0} ms vs baseline {base_ms:.0} ms ({ratio:.2}x slower per simulated ms)"
                );
                failed = true;
            } else {
                eprintln!("ok: fig14 cell {cell_fcfs_ms:.0} ms vs baseline {base_ms:.0} ms ({ratio:.2}x per simulated ms)");
            }
        }
        // Telemetry overhead gate: counters must stay effectively free. The
        // 0.5 ms absolute floor keeps timer granularity and virtualised-host
        // steal bursts on sub-10 ms cells from tripping the percentage.
        if telemetry_overhead_pct > TELEMETRY_OVERHEAD_LIMIT_PCT
            && telemetry_cell_ms - telemetry_off_cell_ms > 0.5
        {
            eprintln!(
                "REGRESSION: telemetry costs {telemetry_overhead_pct:.2}% of the Abacus cell \
                 (> {TELEMETRY_OVERHEAD_LIMIT_PCT}% limit)"
            );
            failed = true;
        } else {
            eprintln!("ok: telemetry overhead {telemetry_overhead_pct:+.2}% (limit {TELEMETRY_OVERHEAD_LIMIT_PCT}%)");
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("bench check passed");
    }
}
