//! Perf snapshot of the cluster ingress hot path. Replays a fixed-seed
//! ~100k-query diurnal burst against a heterogeneous 16-GPU fleet twice:
//! once through the current headroom-scored router
//! (`cluster::run_routed_cluster` — one batched predictor forward per
//! arrival, ingress shed/spill, epoch-batched per-GPU simulation driven
//! through `decide_into` + admit/retire hooks) and once through an
//! embedded line-faithful copy of the pre-overhaul cluster path
//! (round-robin node ingress + per-node least-connections, per-round
//! `decide()` allocations, every arrival enqueued no matter how doomed).
//! Emits `BENCH_cluster.json` with end-to-end routed queries/sec for each
//! path.
//!
//! Every run cross-checks itself: each path executes twice (warmup +
//! timed) and the two record-stream checksums must match bit for bit —
//! a nondeterministic simulation fails the bench before any number is
//! reported. Both paths must also account every arrival exactly once
//! (completed + dropped + shed == arrivals).
//!
//! Usage:
//!
//! ```text
//! cluster_bench [--quick] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--quick` — smaller trace (CI smoke; also honoured via the
//!   `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_cluster.json`;
//!   suppressed in `--check` mode unless given explicitly).
//! * `--check BASELINE` — compare measured queries/sec against a committed
//!   baseline; exit non-zero past 2x regression or if the routed path no
//!   longer clears the 3x speedup floor.

use abacus_core::{AbacusConfig, AbacusScheduler, Query, Scheduler, SegmentalExecutor};
use abacus_metrics::{QueryOutcome, QueryRecord, ServiceStats};
use cluster::{ClusterConfig, NodePool, RoutedClusterConfig};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::features::SLOT_WIDTH;
use predictor::{LatencyModel, MAX_COLOCATED, MODEL_SLOT_BASE};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use workload::RateTrace;

/// A metric fails the `--check` gate past this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// The routed path must stay at least this much faster than the embedded
/// pre-overhaul path (the tentpole target).
const MIN_SPEEDUP: f64 = 3.0;

/// Offered load at the diurnal peak, queries/sec — far past the fleet's
/// capacity, which is exactly the regime that separates ingress designs:
/// the old path funnels every doomed query through a scheduler queue, the
/// router sheds it with one batched forward.
const PEAK_QPS: f64 = 78000.0;

/// Per-round prediction latency pinned for both paths, ms (simulated time
/// only; keeps the Abacus overhead account host-independent).
const PREDICT_ROUND_MS: f64 = 0.09;

/// Constant-time synthetic predictor calibrated to the reference GPU:
/// per-slot cost proportional to the normalised operator span times the
/// model's solo latency. Cheap enough that ingress + decision mechanics
/// dominate the measurement, monotone enough that headroom scores and
/// search budgets are meaningful.
struct SpanModel {
    solo_ms: [f64; ModelId::ALL.len()],
}

impl SpanModel {
    fn new(lib: &ModelLibrary, gpu: &GpuSpec) -> Self {
        let mut solo_ms = [0.0; ModelId::ALL.len()];
        for (i, m) in ModelId::ALL.into_iter().enumerate() {
            solo_ms[i] = lib.solo_ms(m, m.max_input(), gpu);
        }
        Self { solo_ms }
    }
}

impl LatencyModel for SpanModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut total: f64 = 0.0;
        let mut slot = 0;
        for (idx, _) in ModelId::ALL.into_iter().enumerate() {
            if x[idx] > 0.5 {
                let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                total += (x[base + 1] - x[base]) * self.solo_ms[idx];
                slot += 1;
            }
        }
        debug_assert!(slot <= MAX_COLOCATED);
        total
    }
    // Statically-dispatched batch path: one dyn call per batch instead of
    // one per row. Shared by both paths, so it shifts no cost between them.
    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        assert_eq!(xs.len() % n, 0, "ragged feature matrix");
        let dim = xs.len() / n;
        out.extend(xs.chunks_exact(dim).map(|row| self.predict_one(row)));
    }
    fn name(&self) -> &'static str {
        "span"
    }
}

/// The pre-overhaul cluster path, kept as the measured perf baseline.
///
/// A line-faithful copy of `cluster::sim`'s `GpuSim` + `run_abacus_k8s`
/// as of the pre-overhaul tree: round-robin ingress across nodes,
/// least-connections GPU pick within a node, every GPU advanced to each
/// arrival's timestamp, per-round `Scheduler::decide` (fresh allocations,
/// no admit/retire hooks), and no ingress admission — every arrival is
/// enqueued regardless of whether any GPU could still meet its deadline.
mod baseline {
    use super::*;
    use workload::{fork_seed, Arrival};

    /// Heterogeneity the way the pre-overhaul path expressed it: one
    /// reference spec plus per-node capacity slowdowns.
    pub struct Config {
        pub nodes: usize,
        pub gpus_per_node: usize,
        pub models: Vec<ModelId>,
        pub qos_ms: f64,
        pub seed: u64,
        pub abacus: AbacusConfig,
        pub parallel: bool,
        /// Slowdown per node (1.0 = reference hardware).
        pub slowdowns: Vec<f64>,
    }

    fn node_gpu_spec(gpu: &GpuSpec, slowdown: f64) -> GpuSpec {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "slowdown must be finite and >= 1, got {slowdown}"
        );
        if slowdown == 1.0 {
            return gpu.clone();
        }
        let mut g = gpu.clone();
        g.peak_flops /= slowdown;
        g.peak_bw /= slowdown;
        g
    }

    fn record_of(q: &Query, latency_ms: f64, outcome: QueryOutcome) -> QueryRecord {
        QueryRecord {
            service: q.model.index(),
            arrival_ms: q.arrival_ms,
            latency_ms,
            qos_ms: q.qos_ms,
            outcome,
            requests: q.input.batch,
            queue_ms: q.queue_ms().unwrap_or(latency_ms),
        }
    }

    struct GpuSim {
        scheduler: Box<dyn Scheduler>,
        executor: SegmentalExecutor,
        queue: Vec<Query>,
        free_at: f64,
    }

    impl GpuSim {
        fn outstanding(&self) -> usize {
            self.queue.len()
        }

        fn advance(&mut self, until: f64, lib: &ModelLibrary, records: &mut Vec<QueryRecord>) {
            loop {
                if self.queue.is_empty() {
                    break;
                }
                let earliest = self
                    .queue
                    .iter()
                    .map(|q| q.arrival_ms)
                    .fold(f64::INFINITY, f64::min);
                let t = self.free_at.max(earliest);
                if t > until {
                    break;
                }
                let decision = self.scheduler.decide(t, &self.queue);
                for id in &decision.dropped {
                    let pos = self.queue.iter().position(|q| q.id == *id).unwrap();
                    let q = self.queue.swap_remove(pos);
                    records.push(record_of(&q, t - q.arrival_ms, QueryOutcome::Dropped));
                }
                let Some(group) = decision.group else {
                    continue;
                };
                let start = t + decision.overhead_ms;
                for e in &group.entries {
                    let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                    self.queue[pos].mark_started(start);
                }
                let spec =
                    group.to_spec(|id| self.queue.iter().find(|q| q.id == id).unwrap(), lib);
                let out = self.executor.execute(&spec);
                self.free_at = start + out.duration_ms;
                self.scheduler.on_group_complete(out.duration_ms);
                for e in &group.entries {
                    let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                    self.queue[pos].advance_to(e.op_end);
                    if self.queue[pos].is_complete() {
                        let q = self.queue.swap_remove(pos);
                        records.push(record_of(
                            &q,
                            self.free_at - q.arrival_ms,
                            QueryOutcome::Completed,
                        ));
                    }
                }
            }
        }
    }

    pub fn run(
        cfg: &Config,
        lib: &Arc<ModelLibrary>,
        gpu: &GpuSpec,
        noise: &NoiseModel,
        predictor: Arc<dyn LatencyModel>,
        arrivals: &[Arrival],
        inputs: &[QueryInput],
    ) -> Vec<QueryRecord> {
        let nodes = cfg.nodes.max(1);
        let mut node_arrivals: Vec<Vec<(u64, &Arrival, QueryInput)>> = vec![Vec::new(); nodes];
        for (i, (a, &input)) in arrivals.iter().zip(inputs).enumerate() {
            node_arrivals[i % nodes].push((i as u64, a, input));
        }
        let run_node = |node: usize| -> Vec<QueryRecord> {
            let node_gpu = node_gpu_spec(gpu, cfg.slowdowns[node]);
            let mut gpus: Vec<GpuSim> = (0..cfg.gpus_per_node)
                .map(|local| {
                    let g = node * cfg.gpus_per_node + local;
                    GpuSim {
                        scheduler: Box::new(AbacusScheduler::new(
                            predictor.clone(),
                            lib.clone(),
                            cfg.abacus.clone(),
                        )),
                        executor: SegmentalExecutor::new(
                            node_gpu.clone(),
                            noise.clone(),
                            lib.clone(),
                            fork_seed(cfg.seed, 0xE000 + g as u64),
                        ),
                        queue: Vec::new(),
                        free_at: 0.0,
                    }
                })
                .collect();
            let mut records = Vec::with_capacity(node_arrivals[node].len());
            for &(id, a, input) in &node_arrivals[node] {
                for g in gpus.iter_mut() {
                    g.advance(a.at_ms, lib, &mut records);
                }
                let target = gpus
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, g)| (g.outstanding(), *i))
                    .map(|(i, _)| i)
                    .unwrap();
                let model = cfg.models[a.service];
                let n_ops = lib.graph(model, input).len();
                gpus[target]
                    .queue
                    .push(Query::new(id, model, input, a.at_ms, cfg.qos_ms, n_ops));
            }
            for g in gpus.iter_mut() {
                g.advance(f64::INFINITY, lib, &mut records);
            }
            records
        };
        let per_node: Vec<Vec<QueryRecord>> = if cfg.parallel && nodes > 1 {
            use rayon::prelude::*;
            (0..nodes).into_par_iter().map(run_node).collect()
        } else {
            (0..nodes).map(run_node).collect()
        };
        per_node.into_iter().flatten().collect()
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v.wrapping_mul(0x9E3779B97F4A7C15)).rotate_left(17)
}

/// Bit-sensitive checksum over a record stream: any nondeterminism in
/// routing, scheduling, or execution shifts it.
fn fold_records(records: &[QueryRecord]) -> u64 {
    let mut h = 0u64;
    for r in records {
        h = mix(h, r.service as u64);
        h = mix(h, r.arrival_ms.to_bits());
        h = mix(h, r.latency_ms.to_bits());
        h = mix(h, match r.outcome {
            QueryOutcome::Completed => 1,
            QueryOutcome::Dropped => 2,
            QueryOutcome::TimedOut => 3,
        });
        h = mix(h, u64::from(r.requests));
        h = mix(h, r.queue_ms.to_bits());
    }
    h
}

/// The heterogeneous fleet both paths run: 16 single-GPU nodes — 4 at
/// reference speed, 8 mid-tier (V100-class vs the A100 reference), 4
/// slow (MIG-slice-class).
const SLOWDOWNS: [f64; 3] = [1.0, 1.77, 4.0];
const POOL_SIZES: [usize; 3] = [4, 8, 4];
const POOL_NAMES: [&str; 3] = ["a100", "mid", "slow"];

fn fleet_slowdowns() -> Vec<f64> {
    POOL_SIZES
        .iter()
        .zip(SLOWDOWNS)
        .flat_map(|(&n, s)| std::iter::repeat_n(s, n))
        .collect()
}

fn abacus_config() -> AbacusConfig {
    AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..AbacusConfig::default()
    }
}

struct Measured {
    queries: usize,
    elapsed_s: f64,
    checksum: u64,
    stats: ServiceStats,
}

fn run_baseline(
    cfg: &ClusterConfig,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    predictor: &Arc<dyn LatencyModel>,
    arrivals: &[workload::Arrival],
    inputs: &[QueryInput],
) -> Measured {
    let bcfg = baseline::Config {
        nodes: cfg.nodes,
        gpus_per_node: cfg.gpus_per_node,
        models: cfg.models.clone(),
        qos_ms: cfg.qos_ms,
        seed: cfg.seed,
        abacus: cfg.abacus.clone(),
        parallel: cfg.parallel,
        slowdowns: fleet_slowdowns(),
    };
    let t0 = Instant::now();
    let records = baseline::run(&bcfg, lib, gpu, noise, predictor.clone(), arrivals, inputs);
    let elapsed_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        records.len(),
        arrivals.len(),
        "baseline lost or duplicated queries"
    );
    let mut stats = ServiceStats::new();
    stats.record_all(&records);
    Measured {
        queries: records.len(),
        elapsed_s,
        checksum: fold_records(&records),
        stats,
    }
}

fn run_routed(
    cfg: &RoutedClusterConfig,
    lib: &Arc<ModelLibrary>,
    noise: &NoiseModel,
    router_model: &Arc<dyn LatencyModel>,
    arrivals: &[workload::Arrival],
    inputs: &[QueryInput],
) -> (Measured, cluster::RouterStats) {
    let t0 = Instant::now();
    let out = cluster::run_routed_cluster_on(
        cfg,
        lib,
        noise,
        router_model.clone(),
        None,
        None,
        arrivals,
        inputs,
    );
    let elapsed_s = t0.elapsed().as_secs_f64();
    let mut stats = ServiceStats::new();
    stats.record_all(&out.records);
    (
        Measured {
            queries: out.records.len(),
            elapsed_s,
            checksum: fold_records(&out.records),
            stats,
        },
        out.router,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let seed = 2021u64;
    // Diurnal-peak burst replay: ~100x the fleet's sustainable rate —
    // roughly 100k queries over a 1.6s ramp-plus-peak in full mode, a
    // CI-sized ~31k single-bucket spike in quick mode. Short horizon on purpose: the ingress designs differ in
    // per-arrival cost, and a long horizon would only add identical
    // GPU-simulation time to both paths.
    let trace = if quick {
        RateTrace::with_bucket_ms(vec![PEAK_QPS], 400.0)
    } else {
        RateTrace::with_bucket_ms(vec![PEAK_QPS * 0.6, PEAK_QPS], 800.0)
    };
    let lib = Arc::new(ModelLibrary::new());
    let reference = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let models = vec![
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::Vgg19,
        ModelId::Bert,
    ];

    // Baseline fleet: 16 single-GPU nodes, heterogeneity via per-node
    // slowdowns (the only vocabulary the pre-overhaul path had).
    let base_cfg = ClusterConfig {
        nodes: 16,
        gpus_per_node: 1,
        models: models.clone(),
        qos_ms: 100.0,
        trace: trace.clone(),
        seed,
        abacus: abacus_config(),
        parallel: true,
        degraded: Vec::new(),
    };
    // Routed fleet: identical hardware expressed as heterogeneous pools
    // (the slowdown-derived specs give derates of exactly 1.0/1.77/4.0
    // against the reference).
    let pools: Vec<NodePool> = POOL_NAMES
        .iter()
        .zip(POOL_SIZES)
        .zip(SLOWDOWNS)
        .map(|((name, gpus), s)| {
            let mut gpu = reference.clone();
            gpu.peak_flops /= s;
            gpu.peak_bw /= s;
            NodePool { name, gpus, gpu }
        })
        .collect();
    let routed_cfg = RoutedClusterConfig {
        pools,
        reference: reference.clone(),
        models,
        qos_ms: 100.0,
        trace,
        seed,
        abacus: abacus_config(),
        parallel: true,
        epoch_ms: 50.0,
        spill_slack_ms: 20.0,
        autoscale: None,
    };
    let span: Arc<dyn LatencyModel> = Arc::new(SpanModel::new(&lib, &reference));

    eprintln!(
        "cluster workload: ~{:.0} queries over a 16-GPU heterogeneous fleet...",
        routed_cfg.trace.rates().iter().sum::<f64>() * routed_cfg.trace.bucket_ms() / 1000.0
    );
    // The workload is derived once, outside every timed region: the bench
    // measures ingress + simulation, not trace synthesis. Both paths
    // replay the exact same arrival stream.
    let (arrivals, inputs) = cluster::cluster_workload(&base_cfg, &lib);
    // Warmup + timed; the checksums must agree or the simulation is
    // nondeterministic and no number below can be trusted.
    let (routed_warm, _) = run_routed(&routed_cfg, &lib, &noise, &span, &arrivals, &inputs);
    let (routed, router_stats) = run_routed(&routed_cfg, &lib, &noise, &span, &arrivals, &inputs);
    assert_eq!(
        routed_warm.checksum, routed.checksum,
        "routed cluster run is nondeterministic"
    );
    let base_warm = run_baseline(&base_cfg, &lib, &reference, &noise, &span, &arrivals, &inputs);
    let base = run_baseline(&base_cfg, &lib, &reference, &noise, &span, &arrivals, &inputs);
    assert_eq!(
        base_warm.checksum, base.checksum,
        "baseline cluster run is nondeterministic"
    );
    assert_eq!(routed.queries, base.queries, "paths saw different arrivals");

    let queries_per_sec = routed.queries as f64 / routed.elapsed_s;
    let baseline_queries_per_sec = base.queries as f64 / base.elapsed_s;
    let speedup = queries_per_sec / baseline_queries_per_sec;
    let horizon_ms = routed_cfg.trace.horizon_ms();
    let routed_goodput = routed.stats.goodput_qps(horizon_ms);
    let base_goodput = base.stats.goodput_qps(horizon_ms);
    eprintln!(
        "  ingress: routed {queries_per_sec:.0} q/s, round-robin {baseline_queries_per_sec:.0} q/s ({speedup:.2}x), deterministic"
    );
    eprintln!(
        "  qos: routed goodput {routed_goodput:.0} q/s (shed {}), round-robin {base_goodput:.0} q/s (dropped {})",
        router_stats.shed,
        base.stats.dropped()
    );

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"cluster\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"queries\": {},\n", routed.queries));
    s.push_str("  \"gpus\": 16,\n");
    s.push_str(&format!(
        "  \"baseline_queries_per_sec\": {baseline_queries_per_sec:.0},\n"
    ));
    s.push_str(&format!("  \"queries_per_sec\": {queries_per_sec:.0},\n"));
    s.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    s.push_str(&format!("  \"routed_goodput_qps\": {routed_goodput:.1},\n"));
    s.push_str(&format!("  \"baseline_goodput_qps\": {base_goodput:.1},\n"));
    s.push_str(&format!("  \"shed\": {},\n", router_stats.shed));
    s.push_str(&format!("  \"spilled\": {},\n", router_stats.spilled));
    s.push_str(&format!("  \"forwards\": {},\n", router_stats.forwards));
    s.push_str("  \"identical\": true\n");
    s.push_str("}\n");

    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_cluster.json".to_string()))
    {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(s.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let num_after = |key: &str| -> Option<f64> {
            let at = baseline_json.find(key)? + key.len();
            let rest = baseline_json[at..].trim_start_matches([':', ' ']);
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let mut failed = false;
        // queries/sec: lower is worse. The rate is per-query, so quick-mode
        // runs compare against full-mode baselines directly.
        if let Some(base) = num_after("\"queries_per_sec\"") {
            let ratio = base / queries_per_sec;
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: {queries_per_sec:.0} queries/sec vs baseline {base:.0} ({ratio:.2}x slower > {REGRESSION_FACTOR}x)"
                );
                failed = true;
            } else {
                eprintln!(
                    "ok: {queries_per_sec:.0} queries/sec vs baseline {base:.0} ({ratio:.2}x)"
                );
            }
        }
        // The tentpole floor: routed ingress must stay >= MIN_SPEEDUP x the
        // embedded pre-overhaul path. Same-host ratio, so core count and
        // load do not excuse it.
        if speedup < MIN_SPEEDUP {
            eprintln!(
                "REGRESSION: routed/baseline speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor"
            );
            failed = true;
        } else {
            eprintln!("ok: routed/baseline speedup {speedup:.2}x (floor {MIN_SPEEDUP}x)");
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("cluster bench check passed");
    }
}
