//! Perf snapshot of the discrete-event engine core. Measures kernel-level
//! events/sec on two workloads — an open-loop arrival backlog (the calendar
//! queue's worst case) and a tight group-mode reset loop (the SoA/SIMD hot
//! loop) — for both the current `gpu_sim::Engine` and an embedded faithful
//! copy of the pre-overhaul engine, and emits `BENCH_engine.json` with the
//! measured speedup. The two engines must agree bit for bit: every run
//! cross-checks a completion checksum before any number is reported.
//!
//! Usage:
//!
//! ```text
//! engine_bench [--quick] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--quick` — smaller workloads (CI smoke; also honoured via the
//!   `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_engine.json`;
//!   suppressed in `--check` mode unless given explicitly).
//! * `--check BASELINE` — compare measured events/sec against a committed
//!   baseline; exit non-zero past 2x regression.
//!
//! The baseline engine below is a line-faithful port of the engine as of
//! the pre-overhaul tree (binary-insert `pending: Vec<usize>`, full
//! slowdown recompute per event, scalar decrement and min-scan), expressed
//! against the crate's public API (`RunningKernel::profile`,
//! `co_run_slowdowns_summed`, `NoiseModel` draws). Both engines consume the
//! same RNG protocol, so completions are comparable bit for bit.

use gpu_sim::{Engine, GpuSpec, KernelDesc, NoiseModel};
use std::io::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

/// A metric fails the `--check` gate past this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// The pre-overhaul event core, kept as the measured perf baseline.
mod baseline {
    use gpu_sim::contention::{co_run_slowdowns_summed, RunningKernel};
    use gpu_sim::{GpuSpec, KernelDesc, NoiseModel};
    use workload::SeededRng;

    struct Stream {
        kernels: Vec<KernelDesc>,
        next: usize,
        start_ms: f64,
        end_ms: Option<f64>,
        remaining_ms: f64,
    }

    pub struct BaselineEngine {
        gpu: GpuSpec,
        noise: NoiseModel,
        rng: SeededRng,
        session_factor: f64,
        time_ms: f64,
        streams: Vec<Stream>,
        /// Sorted by start time descending, soonest at the back — the
        /// pre-overhaul O(n)-memmove binary-insert arrival structure.
        pending: Vec<usize>,
        active: Vec<usize>,
        profiles: Vec<RunningKernel>,
        slowdowns: Vec<f64>,
        u_c: f64,
        u_m: f64,
        events: u64,
    }

    impl BaselineEngine {
        pub fn new(gpu: GpuSpec, noise: NoiseModel, seed: u64) -> Self {
            let mut rng = SeededRng::new(seed);
            let session_factor = noise.session_factor(&mut rng);
            Self {
                gpu,
                noise,
                rng,
                session_factor,
                time_ms: 0.0,
                streams: Vec::new(),
                pending: Vec::new(),
                active: Vec::new(),
                profiles: Vec::new(),
                slowdowns: Vec::new(),
                u_c: 0.0,
                u_m: 0.0,
                events: 0,
            }
        }

        pub fn reset(&mut self, seed: u64) {
            self.rng = SeededRng::new(seed);
            self.session_factor = self.noise.session_factor(&mut self.rng);
            self.time_ms = 0.0;
            self.events = 0;
            self.streams.clear();
            self.pending.clear();
            self.active.clear();
            self.profiles.clear();
            self.slowdowns.clear();
            self.u_c = 0.0;
            self.u_m = 0.0;
        }

        pub fn events(&self) -> u64 {
            self.events
        }

        pub fn add_stream(&mut self, kernels: Vec<KernelDesc>, start_ms: f64) -> usize {
            let start_ms = start_ms.max(self.time_ms);
            self.streams.push(Stream {
                kernels,
                next: 0,
                start_ms,
                end_ms: None,
                remaining_ms: 0.0,
            });
            let id = self.streams.len() - 1;
            let at = self
                .pending
                .partition_point(|&i| self.streams[i].start_ms >= start_ms);
            self.pending.insert(at, id);
            id
        }

        fn activate_due_streams(&mut self) {
            while let Some(&idx) = self.pending.last() {
                if self.streams[idx].start_ms > self.time_ms + 1e-12 {
                    break;
                }
                self.pending.pop();
                self.start_next_kernel(idx);
            }
        }

        fn start_next_kernel(&mut self, idx: usize) {
            loop {
                let next = self.streams[idx].next;
                if next >= self.streams[idx].kernels.len() {
                    self.streams[idx].end_ms = Some(self.time_ms);
                    return;
                }
                let kernel = self.streams[idx].kernels[next];
                self.streams[idx].next = next + 1;
                let profile = RunningKernel::profile(&kernel, &self.gpu);
                let kf = self.noise.kernel_factor(&mut self.rng);
                let dur = (kernel.launch_ms + profile.exec_ms) * self.session_factor * kf;
                if dur <= 0.0 {
                    continue;
                }
                self.streams[idx].remaining_ms = dur;
                self.active.push(idx);
                self.u_c += profile.compute_share;
                self.u_m += profile.memory_share;
                self.profiles.push(profile);
                return;
            }
        }

        fn remove_active(&mut self, pos: usize) {
            let profile = self.profiles[pos];
            self.u_c -= profile.compute_share;
            self.u_m -= profile.memory_share;
            self.active.swap_remove(pos);
            self.profiles.swap_remove(pos);
            if self.profiles.is_empty() {
                self.u_c = 0.0;
                self.u_m = 0.0;
            }
        }

        /// Advance until the next stream completes; `(id, start, end)`.
        pub fn step(&mut self) -> Option<(usize, f64, f64)> {
            loop {
                self.activate_due_streams();
                if self.active.is_empty() {
                    let &idx = self.pending.last()?;
                    self.time_ms = self.streams[idx].start_ms;
                    continue;
                }
                co_run_slowdowns_summed(self.u_c, self.u_m, &self.profiles, &mut self.slowdowns);
                let mut dt = f64::INFINITY;
                for (pos, &idx) in self.active.iter().enumerate() {
                    let t = self.streams[idx].remaining_ms * self.slowdowns[pos];
                    if t < dt {
                        dt = t;
                    }
                }
                if let Some(&idx) = self.pending.last() {
                    let until_start = self.streams[idx].start_ms - self.time_ms;
                    if until_start < dt {
                        self.advance(until_start);
                        continue;
                    }
                }
                self.advance(dt);
                let mut completed_stream = None;
                let mut pos = 0;
                while pos < self.active.len() {
                    let idx = self.active[pos];
                    if self.streams[idx].remaining_ms <= 1e-9 {
                        self.remove_active(pos);
                        self.events += 1;
                        self.start_next_kernel(idx);
                        if self.streams[idx].end_ms.is_some() && completed_stream.is_none() {
                            completed_stream = Some(idx);
                        }
                    } else {
                        pos += 1;
                    }
                }
                if let Some(idx) = completed_stream {
                    let s = &self.streams[idx];
                    return Some((idx, s.start_ms, s.end_ms.unwrap()));
                }
            }
        }

        fn advance(&mut self, dt: f64) {
            if dt == 0.0 {
                return;
            }
            self.time_ms += dt;
            for (pos, &idx) in self.active.iter().enumerate() {
                let s = self.slowdowns[pos];
                self.streams[idx].remaining_ms -= dt / s;
                if self.streams[idx].remaining_ms < 0.0 {
                    self.streams[idx].remaining_ms = 0.0;
                }
            }
        }
    }
}

/// Deterministic open-loop workload: `n` streams of 1..=4 mixed-shape
/// kernels with Poisson-ish spaced (and periodically tied) start times.
fn open_loop_workload(seed: u64, n: usize) -> Vec<(f64, Vec<KernelDesc>)> {
    let gpu = GpuSpec::a100();
    let shapes = [
        KernelDesc::new(2e9, 1e7, 0.2 * gpu.block_slots()),
        KernelDesc::new(2e10, 1e7, 4.0 * gpu.block_slots()),
        KernelDesc::new(1e8, 4e8, 0.5 * gpu.block_slots()),
        KernelDesc::new(5e8, 5e7, 1.1 * gpu.block_slots()),
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            if i % 5 != 0 {
                t += (next() % 1000) as f64 / 140.0;
            }
            let len = 1 + (next() % 4) as usize;
            let kernels = (0..len)
                .map(|_| shapes[(next() as usize) % shapes.len()])
                .collect();
            (t, kernels)
        })
        .collect()
}

/// Fold a completion into a running checksum (order- and bit-sensitive).
fn fold(acc: u64, id: usize, start: f64, end: f64) -> u64 {
    let mut h = acc ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15);
    h = h.rotate_left(17) ^ start.to_bits();
    h.rotate_left(17) ^ end.to_bits()
}

struct Measured {
    events: u64,
    elapsed_s: f64,
    checksum: u64,
}

/// Workload A — open-loop: every stream pre-enqueued, then drained. The
/// pending structure holds the whole backlog, so this is where the
/// calendar queue vs. binary-insert memmove difference shows.
fn run_open_loop_optimized(work: &[(f64, Vec<KernelDesc>)], seed: u64) -> Measured {
    let t0 = Instant::now();
    let mut e = Engine::new(GpuSpec::a100(), NoiseModel::calibrated(), seed);
    for (at, kernels) in work {
        e.add_stream_slice(kernels, *at);
    }
    let mut checksum = 0u64;
    while let Some(c) = e.step() {
        checksum = fold(checksum, c.id.0, c.start_ms, c.end_ms);
    }
    Measured { events: e.events(), elapsed_s: t0.elapsed().as_secs_f64(), checksum }
}

fn run_open_loop_baseline(work: &[(f64, Vec<KernelDesc>)], seed: u64) -> Measured {
    let t0 = Instant::now();
    let mut e = baseline::BaselineEngine::new(GpuSpec::a100(), NoiseModel::calibrated(), seed);
    for (at, kernels) in work {
        e.add_stream(kernels.clone(), *at);
    }
    let mut checksum = 0u64;
    while let Some((id, start, end)) = e.step() {
        checksum = fold(checksum, id, start, end);
    }
    Measured { events: e.events(), elapsed_s: t0.elapsed().as_secs_f64(), checksum }
}

/// Workload B — group mode: reset, launch `width` streams at `t = 0`, run
/// to idle, repeat. The executor's pattern; exercises the SoA decrement /
/// min-scan / slowdown refresh hot loop with a dense running set.
fn group_mode_groups(seed: u64, width: usize) -> Vec<Vec<Vec<KernelDesc>>> {
    let gpu = GpuSpec::a100();
    let shapes = [
        KernelDesc::new(2e9, 1e7, 0.2 * gpu.block_slots()),
        KernelDesc::new(2e10, 1e7, 4.0 * gpu.block_slots()),
        KernelDesc::new(1e8, 4e8, 0.5 * gpu.block_slots()),
        KernelDesc::new(5e8, 5e7, 1.1 * gpu.block_slots()),
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..8)
        .map(|_| {
            (0..width)
                .map(|_| {
                    let len = 4 + (next() % 12) as usize;
                    (0..len)
                        .map(|_| shapes[(next() as usize) % shapes.len()])
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn run_groups_optimized(groups: &[Vec<Vec<KernelDesc>>], reps: usize, seed: u64) -> Measured {
    let t0 = Instant::now();
    let mut e = Engine::new(GpuSpec::a100(), NoiseModel::calibrated(), seed);
    let mut checksum = 0u64;
    let mut events = 0u64;
    for rep in 0..reps {
        for (gi, group) in groups.iter().enumerate() {
            e.reset(seed ^ (rep * groups.len() + gi) as u64);
            for kernels in group {
                e.add_stream_slice(kernels, 0.0);
            }
            while let Some(c) = e.step() {
                checksum = fold(checksum, c.id.0, c.start_ms, c.end_ms);
            }
            events += e.events();
        }
    }
    Measured { events, elapsed_s: t0.elapsed().as_secs_f64(), checksum }
}

fn run_groups_baseline(groups: &[Vec<Vec<KernelDesc>>], reps: usize, seed: u64) -> Measured {
    let t0 = Instant::now();
    let mut e = baseline::BaselineEngine::new(GpuSpec::a100(), NoiseModel::calibrated(), seed);
    let mut checksum = 0u64;
    let mut events = 0u64;
    for rep in 0..reps {
        for (gi, group) in groups.iter().enumerate() {
            e.reset(seed ^ (rep * groups.len() + gi) as u64);
            for kernels in group {
                e.add_stream(kernels.clone(), 0.0);
            }
            while let Some((id, start, end)) = e.step() {
                checksum = fold(checksum, id, start, end);
            }
            events += e.events();
        }
    }
    Measured { events, elapsed_s: t0.elapsed().as_secs_f64(), checksum }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let host_cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let (open_streams, group_width, group_reps) = if quick {
        (8_000usize, 24usize, 40usize)
    } else {
        (160_000usize, 48usize, 160usize)
    };
    let seed = 2021u64;

    eprintln!("open-loop workload: {open_streams} streams...");
    let work = open_loop_workload(7, open_streams);
    // Warm up page cache / branch predictors on a small slice first.
    std::hint::black_box(run_open_loop_optimized(&work[..work.len().min(500)], seed));
    std::hint::black_box(run_open_loop_baseline(&work[..work.len().min(500)], seed));
    let opt_a = run_open_loop_optimized(&work, seed);
    let base_a = run_open_loop_baseline(&work, seed);
    assert_eq!(
        opt_a.checksum, base_a.checksum,
        "open-loop completions diverged between baseline and optimized engines"
    );
    assert_eq!(opt_a.events, base_a.events, "open-loop event counts diverged");
    eprintln!(
        "  open loop: optimized {:.0} ev/s, baseline {:.0} ev/s ({:.2}x), {} events, identical",
        opt_a.events as f64 / opt_a.elapsed_s,
        base_a.events as f64 / base_a.elapsed_s,
        base_a.elapsed_s / opt_a.elapsed_s,
        opt_a.events,
    );

    eprintln!("group-mode workload: 8 groups x {group_width} streams x {group_reps} reps...");
    let groups = group_mode_groups(11, group_width);
    std::hint::black_box(run_groups_optimized(&groups, 1, seed));
    std::hint::black_box(run_groups_baseline(&groups, 1, seed));
    let opt_b = run_groups_optimized(&groups, group_reps, seed);
    let base_b = run_groups_baseline(&groups, group_reps, seed);
    assert_eq!(
        opt_b.checksum, base_b.checksum,
        "group-mode completions diverged between baseline and optimized engines"
    );
    assert_eq!(opt_b.events, base_b.events, "group-mode event counts diverged");
    eprintln!(
        "  group mode: optimized {:.0} ev/s, baseline {:.0} ev/s ({:.2}x), {} events, identical",
        opt_b.events as f64 / opt_b.elapsed_s,
        base_b.events as f64 / base_b.elapsed_s,
        base_b.elapsed_s / opt_b.elapsed_s,
        opt_b.events,
    );

    let events = opt_a.events + opt_b.events;
    let events_per_sec = events as f64 / (opt_a.elapsed_s + opt_b.elapsed_s);
    let baseline_events_per_sec = events as f64 / (base_a.elapsed_s + base_b.elapsed_s);
    let speedup = baseline_events_per_sec.recip() * events_per_sec;
    eprintln!(
        "  combined: optimized {events_per_sec:.0} ev/s vs baseline {baseline_events_per_sec:.0} ev/s = {speedup:.2}x"
    );

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"engine\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!("  \"events\": {events},\n"));
    s.push_str(&format!("  \"open_loop_events_per_sec\": {:.0},\n", opt_a.events as f64 / opt_a.elapsed_s));
    s.push_str(&format!("  \"open_loop_baseline_events_per_sec\": {:.0},\n", base_a.events as f64 / base_a.elapsed_s));
    s.push_str(&format!("  \"group_mode_events_per_sec\": {:.0},\n", opt_b.events as f64 / opt_b.elapsed_s));
    s.push_str(&format!("  \"group_mode_baseline_events_per_sec\": {:.0},\n", base_b.events as f64 / base_b.elapsed_s));
    s.push_str(&format!("  \"baseline_events_per_sec\": {baseline_events_per_sec:.0},\n"));
    s.push_str(&format!("  \"events_per_sec\": {events_per_sec:.0},\n"));
    s.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    s.push_str("  \"identical\": true\n");
    s.push_str("}\n");

    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_engine.json".to_string())) {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(s.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let num_after = |key: &str| -> Option<f64> {
            let at = baseline_json.find(key)? + key.len();
            let rest = baseline_json[at..].trim_start_matches([':', ' ']);
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let mut failed = false;
        // events/sec: lower is worse. The rate is per-event, so quick-mode
        // runs compare against full-mode baselines directly.
        if let Some(base) = num_after("\"events_per_sec\"") {
            let ratio = base / events_per_sec;
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: {events_per_sec:.0} events/sec vs baseline {base:.0} ({ratio:.2}x slower > {REGRESSION_FACTOR}x)"
                );
                failed = true;
            } else {
                eprintln!("ok: {events_per_sec:.0} events/sec vs baseline {base:.0} ({ratio:.2}x)");
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("engine bench check passed");
    }
}
