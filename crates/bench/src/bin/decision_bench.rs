//! Perf snapshot of the scheduler decision hot path. Replays fixed-seed
//! churned queues (admits, drops, partial progress, completions) against
//! both the current `AbacusScheduler` — incremental `(deadline, id)` order
//! index plus arena-backed round scratch — and an embedded line-faithful
//! copy of the pre-overhaul controller (per-round `Vec<&Query>` collect +
//! headroom sort + fresh search buffers per plan), and emits
//! `BENCH_decision.json` with decision rounds/sec for each. The two
//! controllers must agree bit for bit: every run cross-checks a decision
//! checksum (dropped ids, planned entries, predicted duration, overhead)
//! before any number is reported.
//!
//! Usage:
//!
//! ```text
//! decision_bench [--quick] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--quick` — fewer rounds (CI smoke; also honoured via the
//!   `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_decision.json`;
//!   suppressed in `--check` mode unless given explicitly).
//! * `--check BASELINE` — compare measured rounds/sec against a committed
//!   baseline; exit non-zero past 2x regression.
//!
//! The predictor is a constant-time synthetic span model (per-slot cost
//! proportional to the normalised operator span), so what the bench
//! measures is the decision layer itself — ordering, candidate filtering,
//! buffer lifecycle, search bookkeeping — not MLP inference time.

use abacus_core::{AbacusConfig, AbacusScheduler, Query, RoundDecision, Scheduler};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use predictor::features::SLOT_WIDTH;
use predictor::{LatencyModel, MAX_COLOCATED, MODEL_SLOT_BASE};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A metric fails the `--check` gate past this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Per-round prediction latency pinned for both controllers, ms, so the
/// Eq. 3 overhead account is bit-identical and independent of the host.
const PREDICT_ROUND_MS: f64 = 0.09;

/// Constant-time synthetic predictor: per-slot cost proportional to the
/// normalised operator span (the search tests' `SpanModel`). Cheap enough
/// that the decision-layer mechanics dominate the measurement.
struct SpanModel;

impl LatencyModel for SpanModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut total: f64 = 0.0;
        for slot in 0..MAX_COLOCATED {
            let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
            total += (x[base + 1] - x[base]) * 10.0;
        }
        total
    }
    // Statically-dispatched batch path (one dyn call per round instead of
    // one per row). Both controllers share this model, so the override
    // shifts no cost between them — it only keeps the fixture predictor
    // from dominating the measured controller overhead.
    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        assert_eq!(xs.len() % n, 0, "ragged feature matrix");
        let dim = xs.len() / n;
        out.extend(xs.chunks_exact(dim).map(|row| self.predict_one(row)));
    }
    fn name(&self) -> &'static str {
        "span"
    }
}

/// The pre-overhaul decision path, kept as the measured perf baseline.
///
/// A line-faithful port of `AbacusScheduler::decide` AND `plan_group` as
/// of the pre-overhaul tree: fresh `dropped` vector, `Vec<&Query>` collect
/// plus headroom `sort_by` and two `retain` passes per round,
/// `sorted.remove(0)` on each infeasible head, search buffers allocated
/// per `plan_group` call, and per-entry `lib.graph(...)` lookups inside
/// candidate encoding (`encode_features`).
mod baseline {
    use super::*;
    use abacus_core::{PlannedEntry, PlannedGroup};
    use predictor::{encode_features, feature_slot_of, GroupEntry, FEATURE_DIM};

    /// Pre-overhaul search result (same shape the old `plan_group` returned).
    pub enum SearchResult {
        Planned(PlannedGroup),
        Infeasible { prediction_rounds: usize },
    }

    /// Pre-overhaul per-call search buffers.
    struct SearchBuffers {
        entries: Vec<GroupEntry>,
        features: Vec<f64>,
        preds: Vec<f64>,
        probes: Vec<usize>,
    }

    impl SearchBuffers {
        fn new(ways: usize) -> Self {
            let rows = ways.max(MAX_COLOCATED);
            Self {
                entries: Vec::with_capacity(MAX_COLOCATED),
                features: vec![0.0; rows * FEATURE_DIM],
                preds: Vec::with_capacity(rows),
                probes: Vec::with_capacity(ways),
            }
        }
    }

    fn full_entry(q: &Query) -> GroupEntry {
        GroupEntry {
            model: q.model,
            op_start: q.next_op,
            op_end: q.n_ops,
            input: q.input,
        }
    }

    pub fn plan_group(
        queries: &[&Query],
        budget_ms: f64,
        model: &dyn LatencyModel,
        lib: &ModelLibrary,
        ways: usize,
    ) -> SearchResult {
        assert!(!queries.is_empty(), "need at least one query");
        assert!(ways >= 1, "need at least one search way");
        debug_assert!(queries.iter().all(|q| !q.is_complete()));
        let mut rounds = 0;
        let mut bufs = SearchBuffers::new(ways);

        let max_full = (queries.len() - 1).min(MAX_COLOCATED - 1);
        let mut level1 = [0.0f64; MAX_COLOCATED];
        {
            let mut next = 0usize; // next candidate index to encode
            let mut done = 0usize; // candidates already predicted
            while done <= max_full {
                let mut rows = 0;
                while next <= max_full && rows < ways {
                    bufs.entries.push(full_entry(queries[next]));
                    encode_features(
                        &bufs.entries,
                        lib,
                        &mut bufs.features[rows * FEATURE_DIM..(rows + 1) * FEATURE_DIM],
                    );
                    next += 1;
                    rows += 1;
                }
                rounds += 1;
                model.predict_into(&bufs.features[..rows * FEATURE_DIM], rows, &mut bufs.preds);
                level1[done..done + rows].copy_from_slice(&bufs.preds);
                done += rows;
            }
        }
        if level1[0].is_nan() || budget_ms.is_nan() || level1[0] > budget_ms {
            return SearchResult::Infeasible {
                prediction_rounds: rounds,
            };
        }
        let mut best_full = 0;
        let mut best_pred = level1[0];
        for (j, &p) in level1.iter().enumerate().take(max_full + 1).skip(1) {
            if p <= budget_ms {
                best_full = j;
                best_pred = p;
            } else {
                break;
            }
        }

        let mut partial_ops = 0;
        if best_full < max_full {
            let next_q = queries[best_full + 1];
            let rem = next_q.remaining_ops();

            bufs.entries.truncate(best_full + 1);
            let mut partial = full_entry(next_q);
            partial.op_end = partial.op_start; // placeholder; patched per probe
            bufs.entries.push(partial);
            let template_base = {
                let (template, rest) = bufs.features.split_at_mut(FEATURE_DIM);
                encode_features(&bufs.entries, lib, template);
                for row in rest.chunks_exact_mut(FEATURE_DIM) {
                    row.copy_from_slice(template);
                }
                MODEL_SLOT_BASE + feature_slot_of(&bufs.entries, next_q.model) * SLOT_WIDTH
            };
            let n_ops_norm = lib.graph(next_q.model, next_q.input).len() as f64;

            let mut lo = 0usize;
            let mut hi = rem;
            let mut lo_pred = best_pred;
            while hi - lo > 1 {
                let span = hi - lo;
                bufs.probes.clear();
                bufs.probes.extend(
                    (1..=ways)
                        .map(|i| lo + (span * i) / (ways + 1))
                        .filter(|&c| c > lo && c < hi),
                );
                bufs.probes.dedup();
                if bufs.probes.is_empty() {
                    bufs.probes.push(lo + span / 2);
                }
                for (row, &c) in bufs.probes.iter().enumerate() {
                    bufs.features[row * FEATURE_DIM + template_base + 1] =
                        (next_q.next_op + c) as f64 / n_ops_norm;
                }
                let rows = bufs.probes.len();
                rounds += 1;
                model.predict_into(&bufs.features[..rows * FEATURE_DIM], rows, &mut bufs.preds);
                let mut new_lo = lo;
                let mut new_lo_pred = lo_pred;
                let mut new_hi = hi;
                for (&c, &p) in bufs.probes.iter().zip(&bufs.preds) {
                    if p <= budget_ms {
                        if c > new_lo {
                            new_lo = c;
                            new_lo_pred = p;
                        }
                    } else if c < new_hi {
                        new_hi = c;
                    }
                }
                if new_lo == lo && new_hi == hi {
                    break;
                }
                lo = new_lo;
                lo_pred = new_lo_pred;
                hi = new_hi.max(lo + 1);
            }
            partial_ops = lo;
            best_pred = lo_pred;
        }

        let mut entries: Vec<PlannedEntry> = queries[..=best_full]
            .iter()
            .map(|q| PlannedEntry {
                query_id: q.id,
                op_start: q.next_op,
                op_end: q.n_ops,
            })
            .collect();
        if partial_ops > 0 {
            let q = queries[best_full + 1];
            entries.push(PlannedEntry {
                query_id: q.id,
                op_start: q.next_op,
                op_end: q.next_op + partial_ops,
            });
        }
        SearchResult::Planned(PlannedGroup {
            entries,
            predicted_ms: best_pred,
            prediction_rounds: rounds,
            upper_ms: None,
        })
    }

    pub struct BaselineController {
        model: Arc<dyn LatencyModel>,
        lib: Arc<ModelLibrary>,
        cfg: AbacusConfig,
        predict_round_ms: f64,
        hide_window_ms: f64,
        total_prediction_rounds: u64,
        total_rounds: u64,
        last_predicted_ms: Option<f64>,
    }

    impl BaselineController {
        pub fn new(model: Arc<dyn LatencyModel>, lib: Arc<ModelLibrary>, cfg: AbacusConfig) -> Self {
            let predict_round_ms = cfg.predict_round_ms.expect("bench pins the round latency");
            Self {
                model,
                lib,
                cfg,
                predict_round_ms,
                hide_window_ms: 0.0,
                total_prediction_rounds: 0,
                total_rounds: 0,
                last_predicted_ms: None,
            }
        }

        pub fn decide(&mut self, now_ms: f64, queue: &[Query]) -> RoundDecision {
            let mut dropped = Vec::new();
            // Sort by headroom ascending (Eq. 2); ties by id for determinism.
            let mut sorted: Vec<&Query> = queue.iter().collect();
            sorted.sort_by(|a, b| {
                a.headroom_ms(now_ms)
                    .total_cmp(&b.headroom_ms(now_ms))
                    .then(a.id.cmp(&b.id))
            });
            // Expired queries can never meet QoS: drop outright.
            sorted.retain(|q| {
                if q.headroom_ms(now_ms) < 0.0 {
                    dropped.push(q.id);
                    false
                } else {
                    true
                }
            });
            // Only the least-headroom query of each model is eligible (§6.1).
            let mut seen_models = 0u32;
            sorted.retain(|q| {
                let bit = 1u32 << q.model.index();
                if seen_models & bit != 0 {
                    false
                } else {
                    seen_models |= bit;
                    true
                }
            });

            let mut prediction_rounds = 0usize;
            let mut planned = None;
            let margin_frac = self.cfg.margin_frac;
            while !sorted.is_empty() {
                let budget =
                    (sorted[0].headroom_ms(now_ms) - self.cfg.margin_ms) / (1.0 + margin_frac);
                match plan_group(&sorted, budget, self.model.as_ref(), &self.lib, self.cfg.ways) {
                    SearchResult::Planned(mut p) => {
                        prediction_rounds += p.prediction_rounds;
                        p.prediction_rounds = prediction_rounds;
                        planned = Some(p);
                        break;
                    }
                    SearchResult::Infeasible {
                        prediction_rounds: r,
                    } => {
                        prediction_rounds += r;
                        dropped.push(sorted[0].id);
                        sorted.remove(0);
                    }
                }
            }

            self.last_predicted_ms = planned.as_ref().map(|p| p.predicted_ms);
            self.total_rounds += 1;
            self.total_prediction_rounds += prediction_rounds as u64;
            let search_ms =
                self.cfg.base_overhead_ms + prediction_rounds as f64 * self.predict_round_ms;
            let overhead_ms = if self.cfg.pipelined {
                let charged = (search_ms - self.hide_window_ms).max(0.0);
                self.hide_window_ms = 0.0;
                charged
            } else {
                search_ms
            };

            RoundDecision {
                dropped,
                group: planned,
                overhead_ms,
            }
        }

        pub fn on_group_complete(&mut self, duration_ms: f64) {
            self.hide_window_ms = duration_ms;
            self.last_predicted_ms = None;
        }
    }
}

/// The decision-layer surface the driver replays against either controller.
trait Controller {
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision);
    fn on_admit(&mut self, _q: &Query) {}
    fn on_retire(&mut self, _q: &Query) {}
    fn on_group_complete(&mut self, _duration_ms: f64) {}
}

/// The optimized path, driven exactly as the serving node drives it:
/// admit/retire hooks feeding the order index, the decision written in
/// place so the entry buffer cycles through it.
struct Optimized(AbacusScheduler);

impl Controller for Optimized {
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision) {
        Scheduler::decide_into(&mut self.0, now_ms, queue, out);
    }
    fn on_admit(&mut self, q: &Query) {
        Scheduler::on_admit(&mut self.0, q);
    }
    fn on_retire(&mut self, q: &Query) {
        Scheduler::on_retire(&mut self.0, q);
    }
    fn on_group_complete(&mut self, duration_ms: f64) {
        Scheduler::on_group_complete(&mut self.0, duration_ms);
    }
}

/// The baseline path, driven exactly as the old node drove it: a fresh
/// decision returned by value each round, no hooks.
struct Baseline(baseline::BaselineController);

impl Controller for Baseline {
    fn decide_into(&mut self, now_ms: f64, queue: &[Query], out: &mut RoundDecision) {
        *out = self.0.decide(now_ms, queue);
    }
    fn on_group_complete(&mut self, duration_ms: f64) {
        self.0.on_group_complete(duration_ms);
    }
}

fn config() -> AbacusConfig {
    AbacusConfig {
        predict_round_ms: Some(PREDICT_ROUND_MS),
        ..AbacusConfig::default()
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v.wrapping_mul(0x9E3779B97F4A7C15)).rotate_left(17)
}

/// Fold one decision into a running checksum (order- and bit-sensitive:
/// dropped ids, planned entries, predicted duration, rounds, overhead).
fn fold_decision(mut h: u64, d: &RoundDecision) -> u64 {
    h = mix(h, d.dropped.len() as u64);
    for &id in &d.dropped {
        h = mix(h, id);
    }
    h = mix(h, d.overhead_ms.to_bits());
    match &d.group {
        Some(g) => {
            h = mix(h, 1);
            h = mix(h, g.predicted_ms.to_bits());
            h = mix(h, g.prediction_rounds as u64);
            for e in &g.entries {
                h = mix(h, e.query_id);
                h = mix(h, e.op_start as u64);
                h = mix(h, e.op_end as u64);
            }
        }
        None => h = mix(h, 0),
    }
    h
}

struct Measured {
    rounds: u64,
    elapsed_s: f64,
    checksum: u64,
}

/// Replay `rounds` decision rounds over a churned queue held at
/// `target_depth`: refill with deterministic admits, apply the decision
/// (drops, partial progress, completions at the predicted duration), and
/// fold every decision into the checksum. Byte-identical queue evolution
/// for any two controllers that emit byte-identical decisions. Only the
/// `decide_into` calls are timed — the replay harness (admits, position
/// lookups, progress bookkeeping) is identical for both controllers and
/// would otherwise dilute the measured difference.
fn run<C: Controller>(
    ctrl: &mut C,
    lib: &ModelLibrary,
    rounds: u64,
    target_depth: usize,
    seed: u64,
) -> Measured {
    let mut decide_s = 0.0f64;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    const QOS_MS: [f64; 4] = [40.0, 60.0, 90.0, 140.0];
    let mut queue: Vec<Query> = Vec::new();
    let mut now = 0.0f64;
    let mut next_id = 0u64;
    let mut decision = RoundDecision::idle();
    let mut checksum = 0u64;
    for _ in 0..rounds {
        while queue.len() < target_depth {
            let m = ModelId::ALL[(next() as usize) % ModelId::ALL.len()];
            let input = QueryInput::new(8, if m.is_nlp() { 16 } else { 1 });
            let n_ops = lib.graph(m, input).len();
            let qos = QOS_MS[(next() as usize) % QOS_MS.len()];
            let q = Query::new(next_id, m, input, now, qos, n_ops);
            next_id += 1;
            ctrl.on_admit(&q);
            queue.push(q);
        }
        let t0 = Instant::now();
        ctrl.decide_into(now, &queue, &mut decision);
        decide_s += t0.elapsed().as_secs_f64();
        checksum = fold_decision(checksum, &decision);
        for &id in &decision.dropped {
            let pos = queue
                .iter()
                .position(|q| q.id == id)
                .expect("dropped unknown query");
            ctrl.on_retire(&queue[pos]);
            queue.swap_remove(pos);
        }
        match decision.group.as_ref() {
            Some(g) => {
                now += decision.overhead_ms;
                let duration_ms = g.predicted_ms.max(0.05);
                for e in &g.entries {
                    let pos = queue
                        .iter()
                        .position(|q| q.id == e.query_id)
                        .expect("planned unknown query");
                    queue[pos].mark_started(now);
                    queue[pos].advance_to(e.op_end);
                    if queue[pos].is_complete() {
                        ctrl.on_retire(&queue[pos]);
                        queue.swap_remove(pos);
                    }
                }
                now += duration_ms;
                ctrl.on_group_complete(duration_ms);
            }
            None => now += decision.overhead_ms + 0.1,
        }
    }
    Measured {
        rounds,
        elapsed_s: decide_s,
        checksum,
    }
}

fn run_optimized(lib: &Arc<ModelLibrary>, rounds: u64, depth: usize, seed: u64) -> Measured {
    let mut c = Optimized(AbacusScheduler::new(Arc::new(SpanModel), lib.clone(), config()));
    run(&mut c, lib, rounds, depth, seed)
}

fn run_baseline(lib: &Arc<ModelLibrary>, rounds: u64, depth: usize, seed: u64) -> Measured {
    let mut c = Baseline(baseline::BaselineController::new(
        Arc::new(SpanModel),
        lib.clone(),
        config(),
    ));
    run(&mut c, lib, rounds, depth, seed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let rounds: u64 = if quick { 40_000 } else { 400_000 };
    let depth = 16usize;
    let seed = 2021u64;
    let lib = Arc::new(ModelLibrary::new());

    eprintln!("decision workload: {rounds} rounds over a {depth}-deep churned queue...");
    std::hint::black_box(run_optimized(&lib, 2_000, depth, seed));
    std::hint::black_box(run_baseline(&lib, 2_000, depth, seed));
    let opt = run_optimized(&lib, rounds, depth, seed);
    let base = run_baseline(&lib, rounds, depth, seed);
    assert_eq!(
        opt.checksum, base.checksum,
        "decision streams diverged between baseline and optimized controllers"
    );
    let rounds_per_sec = opt.rounds as f64 / opt.elapsed_s;
    let baseline_rounds_per_sec = base.rounds as f64 / base.elapsed_s;
    let speedup = rounds_per_sec / baseline_rounds_per_sec;
    eprintln!(
        "  decisions: optimized {rounds_per_sec:.0} rounds/s, baseline {baseline_rounds_per_sec:.0} rounds/s ({speedup:.2}x), identical"
    );

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"decision\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"rounds\": {rounds},\n"));
    s.push_str(&format!("  \"queue_depth\": {depth},\n"));
    s.push_str(&format!("  \"baseline_rounds_per_sec\": {baseline_rounds_per_sec:.0},\n"));
    s.push_str(&format!("  \"rounds_per_sec\": {rounds_per_sec:.0},\n"));
    s.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    s.push_str("  \"identical\": true\n");
    s.push_str("}\n");

    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_decision.json".to_string()))
    {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(s.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let num_after = |key: &str| -> Option<f64> {
            let at = baseline_json.find(key)? + key.len();
            let rest = baseline_json[at..].trim_start_matches([':', ' ']);
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let mut failed = false;
        // rounds/sec: lower is worse. The rate is per-round, so quick-mode
        // runs compare against full-mode baselines directly.
        if let Some(base) = num_after("\"rounds_per_sec\"") {
            let ratio = base / rounds_per_sec;
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION: {rounds_per_sec:.0} rounds/sec vs baseline {base:.0} ({ratio:.2}x slower > {REGRESSION_FACTOR}x)"
                );
                failed = true;
            } else {
                eprintln!("ok: {rounds_per_sec:.0} rounds/sec vs baseline {base:.0} ({ratio:.2}x)");
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("decision bench check passed");
    }
}
