//! Perf snapshot of cold-start offline training: the preserved scalar
//! per-sample trainer (`Mlp::train_reference`) vs the vectorised minibatch
//! trainer (`Mlp::train`) in its serial and worker-pool dispatch modes,
//! plus the parallel dataset-collection front end. Emits
//! `BENCH_train.json` so future PRs have a perf trajectory to regress
//! against.
//!
//! Usage:
//!
//! ```text
//! train_bench [--quick] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--quick` — fewer timing reps (CI-friendly; also honoured via the
//!   `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_train.json` in
//!   the current directory; suppressed in `--check` mode unless given
//!   explicitly).
//! * `--check BASELINE` — compare the measured minibatch training
//!   throughput against a previously committed baseline and exit non-zero
//!   if it regressed by more than 2×, or if the serial/pooled weight
//!   identity contract broke.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{Dataset, Mlp, MlpConfig};
use serving::{collect_dataset, TrainerConfig};
use std::io::Write as _;
use std::time::Instant;

/// The `--check` gate fails when samples/sec falls below the baseline by
/// more than this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Minimum wall time of `f` over `reps` runs, milliseconds. Training legs
/// are multi-ms single-shot measurements on a possibly noisy shared host:
/// the minimum is the standard robust estimator of the uncontended cost
/// (external interference only ever adds time).
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct Results {
    dataset_len: usize,
    epochs: usize,
    collect_ms: f64,
    reference_ms: f64,
    serial_ms: f64,
    pooled_ms: f64,
    /// Samples·epochs per second through the default (pooled) trainer.
    samples_per_sec: f64,
    speedup_vs_scalar: f64,
    serial_parallel_identical: bool,
}

fn emit_json(r: &Results, quick: bool) -> String {
    format!(
        "{{\n  \"bench\": \"train\",\n  \"quick\": {},\n  \"dataset_len\": {},\n  \
         \"epochs\": {},\n  \"collect_ms\": {:.3},\n  \"reference_train_ms\": {:.3},\n  \
         \"serial_train_ms\": {:.3},\n  \"pooled_train_ms\": {:.3},\n  \
         \"samples_per_sec\": {:.1},\n  \"speedup_vs_scalar\": {:.2},\n  \
         \"serial_parallel_identical\": {}\n}}\n",
        quick,
        r.dataset_len,
        r.epochs,
        r.collect_ms,
        r.reference_ms,
        r.serial_ms,
        r.pooled_ms,
        r.samples_per_sec,
        r.speedup_vs_scalar,
        r.serial_parallel_identical
    )
}

/// Pull one numeric field out of a baseline JSON written by [`emit_json`].
fn num_after(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let reps = if quick { 4 } else { 7 };

    let lib = ModelLibrary::new();
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let tcfg = TrainerConfig {
        samples_per_set: 600,
        runs_per_group: 2,
        mlp: MlpConfig::default(),
        seed: 1,
    };
    // Long enough that each training leg is a multi-tens-of-ms measurement
    // (timer and scheduler noise stay well under a percent of the leg).
    let epochs = 60;

    eprintln!("collecting {}-sample dataset...", tcfg.samples_per_set);
    let mut data = Dataset::new();
    let collect_ms = time_ms(reps, || {
        data = collect_dataset(
            &[ModelId::ResNet152, ModelId::Bert],
            &lib,
            &gpu,
            &noise,
            &tcfg,
            0,
        );
    });

    let cfg = |serial: bool| MlpConfig {
        epochs,
        serial,
        ..MlpConfig::default()
    };
    eprintln!("training ({} samples x {epochs} epochs, min of {reps})...", data.len());
    // Interleave the three trainers' reps (scalar, serial, pooled, scalar,
    // …) so slow phases of a shared host hit all legs alike instead of
    // skewing whichever leg they landed on — the speedup ratio then stays
    // stable even when absolute times wobble.
    let mut reference_ms = f64::INFINITY;
    let mut serial_ms = f64::INFINITY;
    let mut pooled_ms = f64::INFINITY;
    let mut reference = None;
    let mut serial = None;
    let mut pooled = None;
    for _ in 0..reps {
        reference_ms = reference_ms.min(time_ms(1, || {
            reference = Some(Mlp::train_reference(&data, &cfg(false)));
        }));
        serial_ms = serial_ms.min(time_ms(1, || {
            serial = Some(Mlp::train(&data, &cfg(true)));
        }));
        pooled_ms = pooled_ms.min(time_ms(1, || {
            pooled = Some(Mlp::train(&data, &cfg(false)));
        }));
    }
    let serial_parallel_identical = serial.as_ref().unwrap().raw_params()
        == pooled.as_ref().unwrap().raw_params();

    let r = Results {
        dataset_len: data.len(),
        epochs,
        collect_ms,
        reference_ms,
        serial_ms,
        pooled_ms,
        samples_per_sec: data.len() as f64 * epochs as f64 / (pooled_ms / 1e3),
        speedup_vs_scalar: reference_ms / pooled_ms,
        serial_parallel_identical,
    };
    eprintln!(
        "  collect {:.0} ms | scalar {:.0} ms, serial minibatch {:.0} ms, pooled {:.0} ms \
         ({:.2}x vs scalar, {:.0} samples/s, identical={})",
        r.collect_ms,
        r.reference_ms,
        r.serial_ms,
        r.pooled_ms,
        r.speedup_vs_scalar,
        r.samples_per_sec,
        r.serial_parallel_identical
    );

    let json = emit_json(&r, quick);
    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_train.json".to_string())) {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(json.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base_sps = num_after(&baseline, "\"samples_per_sec\"")
            .unwrap_or_else(|| panic!("baseline {path} has no samples_per_sec"));
        let mut failed = false;
        if !r.serial_parallel_identical {
            eprintln!("FAILED: serial and pooled training produced different weights");
            failed = true;
        }
        let ratio = base_sps / r.samples_per_sec;
        if ratio > REGRESSION_FACTOR {
            eprintln!(
                "REGRESSION: {:.1} samples/s vs baseline {base_sps:.1} ({ratio:.2}x slower > {REGRESSION_FACTOR}x)",
                r.samples_per_sec
            );
            failed = true;
        } else {
            eprintln!(
                "ok: {:.1} samples/s vs baseline {base_sps:.1} ({ratio:.2}x)",
                r.samples_per_sec
            );
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("bench check passed");
    }
}
