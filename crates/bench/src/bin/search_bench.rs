//! Perf snapshot of the search-path prediction round: scalar vs batched
//! MLP inference per search-way count, plus a full 4-way scheduling
//! decision. Emits `BENCH_search.json` so future PRs have a perf
//! trajectory to regress against.
//!
//! Usage:
//!
//! ```text
//! search_bench [--quick] [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--quick` — fewer timing reps (CI-friendly; also honoured via the
//!   `ABACUS_BENCH_QUICK` env var).
//! * `--out PATH` — where to write the JSON (default `BENCH_search.json`
//!   in the current directory; suppressed in `--check` mode unless given
//!   explicitly).
//! * `--check BASELINE` — compare the measured batched ns/prediction
//!   against a previously committed baseline and exit non-zero if any
//!   ways-count regressed by more than 2×.

use bench::Fixture;
use predictor::LatencyModel;
use std::io::Write as _;
use std::time::Instant;

const WAYS: [usize; 5] = [1, 2, 4, 8, 16];
/// A ways-count fails the `--check` gate when its batched ns/prediction
/// exceeds the baseline by more than this factor.
const REGRESSION_FACTOR: f64 = 2.0;

struct WayResult {
    ways: usize,
    scalar_round_ms: f64,
    batched_round_ms: f64,
    scalar_ns_per_prediction: f64,
    batched_ns_per_prediction: f64,
    speedup: f64,
}

/// Median wall time of `f` over `reps` runs, milliseconds. Each sample
/// times `inner` consecutive calls so that sub-microsecond rounds are not
/// swamped by clock granularity.
fn time_ms(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..inner {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e3 / inner as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure_ways(fx: &Fixture, ways: usize, reps: usize, inner: usize) -> WayResult {
    let batch: Vec<Vec<f64>> = (0..ways)
        .map(|i| fx.sample_group(20 + 9 * i).features(&fx.lib))
        .collect();
    let flat: Vec<f64> = batch.iter().flatten().copied().collect();
    let mut out = Vec::with_capacity(ways);
    let batched_round_ms = time_ms(reps, inner, || {
        fx.mlp.predict_into(&flat, ways, &mut out);
        std::hint::black_box(&out);
    });
    let scalar_round_ms = time_ms(reps, inner, || {
        for row in &batch {
            std::hint::black_box(fx.mlp.predict_one_scalar(std::hint::black_box(row)));
        }
    });
    WayResult {
        ways,
        scalar_round_ms,
        batched_round_ms,
        scalar_ns_per_prediction: scalar_round_ms * 1e6 / ways as f64,
        batched_ns_per_prediction: batched_round_ms * 1e6 / ways as f64,
        speedup: scalar_round_ms / batched_round_ms,
    }
}

fn emit_json(results: &[WayResult], full_decision_ms: f64, quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"search\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"mlp_hidden\": [32, 32, 32],\n");
    s.push_str("  \"rounds\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"ways\": {}, \"scalar_round_ms\": {:.6}, \"batched_round_ms\": {:.6}, \
             \"scalar_ns_per_prediction\": {:.1}, \"batched_ns_per_prediction\": {:.1}, \
             \"speedup\": {:.2}}}{}\n",
            r.ways,
            r.scalar_round_ms,
            r.batched_round_ms,
            r.scalar_ns_per_prediction,
            r.batched_ns_per_prediction,
            r.speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"full_decision_4way_ms\": {full_decision_ms:.6}\n"
    ));
    s.push_str("}\n");
    s
}

/// Extract `(ways, batched_ns_per_prediction)` pairs from a baseline JSON
/// previously written by [`emit_json`]. A deliberately minimal scan — the
/// format is our own — that tolerates whitespace changes but not schema
/// changes (those should regenerate the baseline anyway).
fn parse_baseline(json: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for obj in json.split('{').filter(|s| s.contains("\"ways\"")) {
        let num_after = |key: &str| -> Option<f64> {
            let at = obj.find(key)? + key.len();
            let rest = obj[at..].trim_start_matches([':', ' ']);
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        if let (Some(w), Some(ns)) = (
            num_after("\"ways\""),
            num_after("\"batched_ns_per_prediction\""),
        ) {
            out.push((w as usize, ns));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var("ABACUS_BENCH_QUICK").is_ok();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (reps, inner) = if quick { (51, 20) } else { (301, 50) };

    eprintln!("training bench fixture MLP (3x32)...");
    let fx = Fixture::new();

    // Warm the thread-local workspace so the first timed round is not an
    // allocation outlier.
    let warm = fx.sample_group(50).features(&fx.lib);
    for _ in 0..32 {
        std::hint::black_box(fx.mlp.predict_one(&warm));
    }

    let results: Vec<WayResult> = WAYS
        .iter()
        .map(|&w| measure_ways(&fx, w, reps, inner))
        .collect();
    for r in &results {
        eprintln!(
            "  {:>2} ways: scalar {:>8.1} ns/pred, batched {:>8.1} ns/pred ({:.2}x)",
            r.ways, r.scalar_ns_per_prediction, r.batched_ns_per_prediction, r.speedup
        );
    }

    // A full 4-way scheduling decision (the §6.3 "three rounds, ~0.26 ms").
    let queries: Vec<abacus_core::Query> = [
        dnn_models::ModelId::ResNet152,
        dnn_models::ModelId::Bert,
        dnn_models::ModelId::InceptionV3,
    ]
    .iter()
    .enumerate()
    .map(|(i, &m)| {
        let input = m.max_input();
        abacus_core::Query::new(i as u64, m, input, 0.0, 100.0, fx.lib.graph(m, input).len())
    })
    .collect();
    let refs: Vec<&abacus_core::Query> = queries.iter().collect();
    let model = fx.model();
    let full_decision_ms = time_ms(reps, inner.min(20), || {
        std::hint::black_box(abacus_core::plan_group(
            &refs,
            60.0,
            model.as_ref(),
            &fx.lib,
            4,
        ));
    });
    eprintln!("  full 4-way decision: {full_decision_ms:.4} ms");

    let json = emit_json(&results, full_decision_ms, quick);
    let checking = check_path.is_some();
    if let Some(path) = out_path.or_else(|| (!checking).then(|| "BENCH_search.json".to_string())) {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(json.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_baseline(&baseline);
        assert!(!base.is_empty(), "baseline {path} has no rounds");
        let mut failed = false;
        for (ways, base_ns) in base {
            let Some(now) = results.iter().find(|r| r.ways == ways) else {
                continue;
            };
            let ratio = now.batched_ns_per_prediction / base_ns;
            if ratio > REGRESSION_FACTOR {
                eprintln!(
                    "REGRESSION at {ways} ways: {:.1} ns/pred vs baseline {base_ns:.1} ({ratio:.2}x > {REGRESSION_FACTOR}x)",
                    now.batched_ns_per_prediction
                );
                failed = true;
            } else {
                eprintln!(
                    "ok at {ways} ways: {:.1} ns/pred vs baseline {base_ns:.1} ({ratio:.2}x)",
                    now.batched_ns_per_prediction
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("bench check passed");
    }
}
