//! Shared fixtures for the Criterion benchmark harness.
//!
//! Two bench targets live under `benches/`:
//!
//! * `figures` — one benchmark per paper table/figure, each timing a
//!   scaled-down end-to-end regeneration of that experiment (the full-scale
//!   versions are the `abacus-repro` subcommands);
//! * `microbench` — the hot paths: engine events, contention math, batched
//!   MLP inference per search-way count (the real Fig. 23 measurement),
//!   multi-way search rounds, and MLP training epochs.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::GpuSpec;
use predictor::{GroupEntry, GroupSpec, LatencyModel, Mlp, MlpConfig};
use serving::{train_unified, TrainerConfig};
use std::sync::Arc;

/// Shared, lazily-built fixture: model library, GPU and a small trained MLP.
pub struct Fixture {
    /// The instantiated model zoo.
    pub lib: Arc<ModelLibrary>,
    /// The A100 spec.
    pub gpu: GpuSpec,
    /// A quickly-trained unified MLP (bench-quality, not paper-quality).
    pub mlp: Arc<Mlp>,
}

impl Fixture {
    /// Build the fixture (a few seconds: samples, profiles and trains a
    /// small MLP over one pair).
    pub fn new() -> Self {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::a100();
        let (mlp, _) = train_unified(
            &[vec![ModelId::ResNet152, ModelId::Bert]],
            &lib,
            &gpu,
            &gpu_sim::NoiseModel::calibrated(),
            &TrainerConfig {
                samples_per_set: 300,
                runs_per_group: 2,
                mlp: MlpConfig {
                    epochs: 30,
                    ..MlpConfig::default()
                },
                seed: 1,
            },
        );
        Self {
            lib,
            gpu,
            mlp: Arc::new(mlp),
        }
    }

    /// The MLP as a trait object.
    pub fn model(&self) -> Arc<dyn LatencyModel> {
        self.mlp.clone()
    }

    /// A two-entry operator group (Res152 full + Bert prefix).
    pub fn sample_group(&self, bert_ops: usize) -> GroupSpec {
        GroupSpec::new(
            vec![
                GroupEntry {
                    model: ModelId::ResNet152,
                    op_start: 0,
                    op_end: 363,
                    input: ModelId::ResNet152.max_input(),
                },
                GroupEntry {
                    model: ModelId::Bert,
                    op_start: 0,
                    op_end: bert_ops,
                    input: ModelId::Bert.max_input(),
                },
            ],
            &self.lib,
        )
    }
}

impl Default for Fixture {
    fn default() -> Self {
        Self::new()
    }
}
