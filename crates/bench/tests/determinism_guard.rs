//! Workspace determinism guard: a scaled-down fig14-style sweep run
//! through the serial path and through the rayon fan-out must render to
//! byte-identical CSV. This is the property the whole parallelisation
//! layer rests on — per-cell seeds derived with `fork_seed`, the Abacus
//! prediction-round latency pinned (never wall-clock calibrated), and
//! results regrouped in the deterministic flat-cell order.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{LatencyModel, MODEL_SLOT_BASE, SLOT_WIDTH};
use rayon::prelude::*;
use serving::{run_colocation, ColocationConfig, ColocationResult, PolicyKind};
use std::sync::Arc;
use workload::fork_seed;

/// Cheap deterministic predictor (no training): sums each co-located
/// entry's solo time weighted by its operator span.
struct SpanModel {
    lib: Arc<ModelLibrary>,
    gpu: GpuSpec,
}

impl LatencyModel for SpanModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut slot = 0;
        for (idx, m) in ModelId::ALL.into_iter().enumerate() {
            if x[idx] > 0.5 {
                let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                let span = x[base + 1] - x[base];
                total += span * self.lib.solo_ms(m, m.max_input(), &self.gpu);
                slot += 1;
            }
        }
        total
    }
    fn name(&self) -> &'static str {
        "span"
    }
}

fn run_cells(parallel: bool) -> String {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let model: Arc<dyn LatencyModel> = Arc::new(SpanModel {
        lib: lib.clone(),
        gpu: gpu.clone(),
    });
    let pairs: [&[ModelId]; 2] = [
        &[ModelId::ResNet50, ModelId::ResNet152],
        &[ModelId::Vgg19, ModelId::Bert],
    ];
    // Flat (row, policy) cells in CSV order — the same layout the figure
    // sweeps use before fanning out.
    let cells: Vec<(usize, PolicyKind)> = (0..pairs.len())
        .flat_map(|row| PolicyKind::ALL.into_iter().map(move |p| (row, p)))
        .collect();
    let run_one = |&(row, policy): &(usize, PolicyKind)| -> ColocationResult {
        // Pinned prediction-round latency: the default config calibrates
        // it from wall-clock timing, which would differ per run/thread.
        let abacus = abacus_core::AbacusConfig {
            predict_round_ms: Some(0.09),
            ..Default::default()
        };
        let cfg = ColocationConfig {
            qps_per_service: 25.0,
            horizon_ms: 800.0,
            seed: fork_seed(2021, row as u64),
            abacus,
            ..ColocationConfig::default()
        };
        let pred = (policy == PolicyKind::Abacus).then(|| model.clone());
        run_colocation(pairs[row], policy, pred, &lib, &gpu, &noise, &cfg)
    };
    let results: Vec<ColocationResult> = if parallel {
        cells.par_iter().map(run_one).collect()
    } else {
        cells.iter().map(run_one).collect()
    };
    // Render exactly as the CSV writers do: one row per pair, one column
    // per policy, full float precision.
    let mut csv = String::from("pair,FCFS,SJF,EDF,Abacus\n");
    let mut it = cells.iter().zip(&results);
    for (row, pair) in pairs.iter().enumerate() {
        csv.push_str(&format!("{:?}+{:?}", pair[0], pair[1]));
        for _ in PolicyKind::ALL {
            let (&(r, _), res) = it.next().expect("grid covered");
            assert_eq!(r, row);
            csv.push_str(&format!(
                ",{}|{}|{}",
                res.normalized_p99(),
                res.violation_ratio(),
                res.all.total()
            ));
        }
        csv.push('\n');
    }
    csv
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let serial = run_cells(false);
    let parallel = run_cells(true);
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "serial:\n{serial}\nparallel:\n{parallel}"
    );
    // Sanity: the sweep actually produced distinct, populated rows.
    assert_eq!(serial.lines().count(), 3);
    assert!(serial.lines().skip(1).all(|l| l.matches('|').count() == 8));
}
