//! Contract tests for the headroom router (DESIGN.md §13).
//!
//! * A golden fixed-seed routing stream checked against an embedded
//!   reference router that implements the scoring specification naively
//!   (full per-row encodes, one scalar forward per candidate). The
//!   production router's overload fast-path and incremental row encoding
//!   must be *observationally invisible*: same outcomes, same RNG
//!   consumption, same mirror evolution.
//! * A proptest pinning the least-connections degeneracy: on a
//!   homogeneous pool with a constant predictor, the headroom score
//!   reduces to queue depth and the router must pick exactly the
//!   least-loaded (lowest-index on ties) GPU.
//! * Serial-vs-parallel byte identity of the routed cluster CSV, with and
//!   without the predictive autoscaler.
//! * One batched forward per scored arrival — N-candidate scoring must
//!   issue a single `predict_into` over N rows, never N scalar calls.
//! * Telemetry on/off byte identity: counters observe, they never steer.

use abacus_core::Query;
use cluster::{
    run_routed_cluster, write_records_csv, HeadroomRouter, NodeHead, PredictiveAutoscaler,
    RouteOutcome, RoutedClusterConfig,
};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::NoiseModel;
use predictor::{encode_features_with_ops, GroupEntry, LatencyModel, FEATURE_DIM};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use workload::{fork_seed, RateTrace, SeededRng};

/// Deterministic feature-sensitive model: distinct rows get distinct
/// latencies, so scoring order actually depends on the encoding.
#[derive(Debug)]
struct SpreadModel;

impl LatencyModel for SpreadModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        5.0 + 7.0 * x.iter().sum::<f64>()
    }
    fn name(&self) -> &'static str {
        "spread"
    }
}

/// Constant-latency model for the least-connections degeneracy.
#[derive(Debug)]
struct ConstModel(f64);

impl LatencyModel for ConstModel {
    fn predict_one(&self, _x: &[f64]) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "const"
    }
}

/// Counts `predict_into` batch calls and records each call's row count.
#[derive(Debug)]
struct CountingModel {
    inner: SpreadModel,
    calls: AtomicUsize,
    batch_sizes: Mutex<Vec<usize>>,
}

impl CountingModel {
    fn new() -> Self {
        Self {
            inner: SpreadModel,
            calls: AtomicUsize::new(0),
            batch_sizes: Mutex::new(Vec::new()),
        }
    }
}

impl LatencyModel for CountingModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.inner.predict_one(x)
    }
    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.batch_sizes.lock().unwrap().push(n);
        self.inner.predict_into(xs, n, out);
    }
    fn name(&self) -> &'static str {
        "counting"
    }
}

/// The routing *specification*, implemented with no shortcuts: every
/// arrival encodes one full row per active GPU, predicts each row with a
/// scalar forward, scores, tie-breaks by (outstanding, index), spills via
/// the same weighted draw, and commits winners to its own mirrors.
struct ReferenceRouter {
    model: Arc<dyn LatencyModel>,
    derates: Vec<f64>,
    spill_slack_ms: f64,
    rng: SeededRng,
    outstanding: Vec<u32>,
    est_free_ms: Vec<f64>,
    head: Vec<Option<NodeHead>>,
}

impl ReferenceRouter {
    fn new(model: Arc<dyn LatencyModel>, derates: Vec<f64>, spill_slack_ms: f64, seed: u64) -> Self {
        let n = derates.len();
        Self {
            model,
            derates,
            spill_slack_ms,
            rng: SeededRng::new(seed),
            outstanding: vec![0; n],
            est_free_ms: vec![0.0; n],
            head: vec![None; n],
        }
    }

    fn route(&mut self, t_ms: f64, q: &Query) -> RouteOutcome {
        let n = self.derates.len();
        let mut preds = Vec::with_capacity(n);
        let mut row = vec![0.0; FEATURE_DIM];
        for g in 0..n {
            let q_entry = GroupEntry {
                model: q.model,
                op_start: q.next_op,
                op_end: q.n_ops,
                input: q.input,
            };
            match self.head[g] {
                Some(h) if h.model != q.model && h.next_op < h.n_ops => {
                    let entries = [
                        q_entry,
                        GroupEntry {
                            model: h.model,
                            op_start: h.next_op,
                            op_end: h.n_ops,
                            input: h.input,
                        },
                    ];
                    encode_features_with_ops(&entries, &[q.n_ops, h.n_ops], &mut row);
                }
                _ => encode_features_with_ops(&[q_entry], &[q.n_ops], &mut row),
            }
            // The naive path the tentpole forbids in production: one
            // scalar forward per candidate.
            preds.push(self.model.predict_one(&row) * self.derates[g]);
        }
        let headroom = q.headroom_ms(t_ms);
        let mut scores = Vec::with_capacity(n);
        let mut best = 0usize;
        for (g, &pred) in preds.iter().enumerate() {
            let wait = (self.est_free_ms[g] - t_ms).max(0.0);
            let score = q.routing_headroom_ms(t_ms, wait, pred);
            scores.push(score);
            let better = score > scores[best]
                || (score == scores[best]
                    && (self.outstanding[g], g) < (self.outstanding[best], best));
            if better {
                best = g;
            }
        }
        let (pick, outcome) = if scores[best] >= 0.0 {
            (best, RouteOutcome::Route(best))
        } else if scores[best] >= -self.spill_slack_ms {
            let weight = |g: usize| 1.0 / (1e-3 + (headroom - scores[g]).max(0.0));
            let total: f64 = (0..n).map(weight).sum();
            let mut u = self.rng.f64() * total;
            let mut pick = n - 1;
            for (g, _) in scores.iter().enumerate() {
                u -= weight(g);
                if u <= 0.0 {
                    pick = g;
                    break;
                }
            }
            (pick, RouteOutcome::Spill(pick))
        } else {
            return RouteOutcome::Shed;
        };
        self.outstanding[pick] += 1;
        self.est_free_ms[pick] = self.est_free_ms[pick].max(t_ms) + preds[pick];
        self.head[pick] = Some(NodeHead {
            model: q.model,
            input: q.input,
            next_op: q.next_op,
            n_ops: q.n_ops,
        });
        outcome
    }
}

fn test_query(lib: &ModelLibrary, id: u64, model: ModelId, input: QueryInput, at: f64) -> Query {
    Query::new(id, model, input, at, 100.0, lib.graph(model, input).len())
}

/// Golden stream: 3000 fixed-seed arrivals through the production router
/// and the reference, step for step. Covers route, spill, and shed (both
/// the scored and fast-path variety — arrival spacing tightens enough to
/// saturate the mirrors) on a heterogeneous derate vector.
#[test]
fn production_router_matches_reference_stream() {
    let lib = ModelLibrary::new();
    let derates = vec![1.0, 1.0, 1.4, 1.4, 1.9, 1.9, 4.0, 4.0];
    let model: Arc<dyn LatencyModel> = Arc::new(SpreadModel);
    let seed = fork_seed(2021, 0x601D);
    let mut prod = HeadroomRouter::new(model.clone(), derates.clone(), 20.0, seed);
    let mut reference = ReferenceRouter::new(model, derates, 20.0, seed);
    let models = [
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::Vgg19,
        ModelId::Bert,
    ];
    let mut rng = SeededRng::new(fork_seed(2021, 0xA221));
    let mut outcomes = (0u64, 0u64, 0u64);
    for i in 0..3000u64 {
        // Spacing sweeps from saturating (0.05 ms) to relaxed (2 ms) so
        // the stream exercises every outcome.
        let spacing = 0.05 + 1.95 * (i as f64 / 3000.0);
        let t = i as f64 * spacing;
        let m = models[(i % 4) as usize];
        let input = lib.random_input(m, &mut rng);
        let q = test_query(&lib, i, m, input, t);
        let got = prod.route(t, &q, None);
        let want = reference.route(t, &q);
        assert_eq!(got, want, "arrival {i} diverged");
        match got {
            RouteOutcome::Route(_) => outcomes.0 += 1,
            RouteOutcome::Spill(_) => outcomes.1 += 1,
            RouteOutcome::Shed => outcomes.2 += 1,
        }
    }
    // Mirrors must have evolved identically.
    for g in 0..8 {
        assert_eq!(prod.outstanding(g), reference.outstanding[g], "gpu {g}");
    }
    let stats = prod.stats();
    assert_eq!(
        (stats.routed, stats.spilled, stats.shed),
        outcomes,
        "stats disagree with the outcome stream"
    );
    assert!(
        outcomes.0 > 0 && outcomes.1 > 0 && outcomes.2 > 0,
        "stream must cover all outcomes: {outcomes:?}"
    );
    assert_eq!(stats.routed + stats.spilled + stats.shed, 3000);
}

/// The overload fast-path: when queue wait alone exhausts the deadline on
/// every GPU, the router sheds without issuing the batched forward — and
/// the verdict is the one full scoring would have reached (the golden
/// stream above pins the general equivalence).
#[test]
fn deep_overload_sheds_without_a_forward() {
    let lib = ModelLibrary::new();
    let model: Arc<dyn LatencyModel> = Arc::new(SpreadModel);
    let mut router = HeadroomRouter::new(model, vec![1.0; 4], 20.0, 3);
    for g in 0..4 {
        // Every GPU is 200 ms from free: qos (100) + slack (20) is gone
        // on wait alone, whatever the predictor would have said.
        router.sync(g, 10, 200.0, None);
    }
    let q = test_query(
        &lib,
        0,
        ModelId::ResNet50,
        QueryInput::new(4, 1),
        0.0,
    );
    assert_eq!(router.route(0.0, &q, None), RouteOutcome::Shed);
    let stats = router.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.forwards, 0, "deep overload must not pay for scoring");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Least-connections degeneracy: homogeneous derates + constant
    /// predictor collapse the headroom score to queue depth, so from any
    /// consistent mirror state the router must pick the GPU with the
    /// fewest outstanding queries (lowest index on ties).
    #[test]
    fn homogeneous_uniform_load_degenerates_to_least_connections(
        depths in proptest::collection::vec(0u32..12, 2..9),
        pred in 1.0f64..8.0,
        arrivals in 1usize..24,
    ) {
        let lib = ModelLibrary::new();
        let n = depths.len();
        let model: Arc<dyn LatencyModel> = Arc::new(ConstModel(pred));
        // QoS generous enough that every arrival stays routable.
        let qos = 1e6;
        let mut router = HeadroomRouter::new(model, vec![1.0; n], 20.0, 7);
        let mut depths = depths;
        for (g, &d) in depths.iter().enumerate() {
            // Consistent mirror: d queued queries at `pred` ms each.
            router.sync(g, d, f64::from(d) * pred, None);
        }
        let input = QueryInput::new(4, 1);
        for i in 0..arrivals {
            let mut q = test_query(&lib, i as u64, ModelId::ResNet50, input, 0.0);
            q.qos_ms = qos;
            let want = (0..n).min_by_key(|&g| (depths[g], g)).unwrap();
            match router.route(0.0, &q, None) {
                RouteOutcome::Route(g) => {
                    prop_assert_eq!(g, want, "arrival {} not least-connections", i);
                    depths[g] += 1;
                }
                other => prop_assert!(false, "uniform load must route, got {:?}", other),
            }
        }
    }
}

fn small_cfg(parallel: bool, autoscale: bool) -> RoutedClusterConfig {
    let mut cfg = RoutedClusterConfig::paper(
        RateTrace::with_bucket_ms(vec![420.0], 4_000.0),
        2021,
    );
    cfg.parallel = parallel;
    // Pin the per-round prediction overhead: the default measures real
    // wall time (the paper's self-accounting), which is exactly the
    // nondeterminism a byte-identity test must exclude.
    cfg.abacus.predict_round_ms = Some(0.08);
    if autoscale {
        // 60 qps per reference GPU at the default 70% target needs 10 of
        // the 16 GPUs: the scaler visibly parks capacity.
        cfg.autoscale = Some(PredictiveAutoscaler::new(60.0, 2));
    }
    cfg
}

fn run_csv(parallel: bool, autoscale: bool, tag: &str) -> Vec<u8> {
    let lib = Arc::new(ModelLibrary::new());
    let noise = NoiseModel::calibrated();
    let model: Arc<dyn LatencyModel> = Arc::new(SpreadModel);
    let out = run_routed_cluster(&small_cfg(parallel, autoscale), &lib, &noise, model, None, None);
    let path = std::env::temp_dir().join(format!("routing_golden_{tag}_{}.csv", std::process::id()));
    write_records_csv(&path, &out.records).expect("write csv");
    let bytes = std::fs::read(&path).expect("read csv");
    std::fs::remove_file(&path).ok();
    bytes
}

/// The epoch-batched restructuring's determinism contract: the serial and
/// parallel cluster runs must produce byte-identical CSVs, with and
/// without the autoscaler in the loop.
#[test]
fn serial_and_parallel_cluster_csvs_are_byte_identical() {
    let serial = run_csv(false, false, "s");
    let parallel = run_csv(true, false, "p");
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel cluster CSV diverged");
    let serial_auto = run_csv(false, true, "sa");
    let parallel_auto = run_csv(true, true, "pa");
    assert_eq!(serial_auto, parallel_auto, "autoscaled cluster CSV diverged");
    assert_ne!(serial, serial_auto, "autoscaler had no observable effect");
}

/// N-candidate scoring is one batched forward, never N scalar calls: the
/// router model sees exactly `stats.forwards` batch calls, each covering
/// every active candidate.
#[test]
fn scoring_is_one_batched_forward_per_scored_arrival() {
    let lib = Arc::new(ModelLibrary::new());
    let noise = NoiseModel::calibrated();
    let counting = Arc::new(CountingModel::new());
    let router_model: Arc<dyn LatencyModel> = counting.clone();
    // Separate scheduler models so only ingress scoring hits the counter.
    let cfg = small_cfg(true, false);
    let pool_models: Vec<Arc<dyn LatencyModel>> = cfg
        .pools
        .iter()
        .map(|_| Arc::new(SpreadModel) as Arc<dyn LatencyModel>)
        .collect();
    let out = run_routed_cluster(&cfg, &lib, &noise, router_model, Some(&pool_models), None);
    let stats = out.router;
    assert_eq!(
        counting.calls.load(Ordering::SeqCst) as u64,
        stats.forwards,
        "forwards stat disagrees with actual batch calls"
    );
    assert!(stats.forwards > 0, "nothing was scored");
    let sizes = counting.batch_sizes.lock().unwrap();
    assert!(
        sizes.iter().all(|&n| n == 16),
        "every batched forward must score all 16 candidates"
    );
}

/// Telemetry observes, it never steers: running with counters enabled
/// must leave every record byte-identical to the disabled run.
#[test]
fn telemetry_enabled_run_is_byte_identical_to_disabled() {
    let lib = Arc::new(ModelLibrary::new());
    let noise = NoiseModel::calibrated();
    let model: Arc<dyn LatencyModel> = Arc::new(SpreadModel);
    let cfg = small_cfg(true, true);
    let plain = run_routed_cluster(&cfg, &lib, &noise, model.clone(), None, None);
    let mut tel = telemetry::Telemetry::new();
    let with_tel = run_routed_cluster(&cfg, &lib, &noise, model, None, Some(&mut tel));
    assert_eq!(plain.records, with_tel.records, "telemetry perturbed the run");
    use telemetry::Counter;
    let scored = tel.registry.get(Counter::RouterRouted)
        + tel.registry.get(Counter::RouterSpilled);
    assert!(scored > 0, "telemetry counted nothing");
    assert_eq!(
        tel.registry.get(Counter::RouterRouted),
        with_tel.router.routed,
        "telemetry and stats disagree"
    );
}
