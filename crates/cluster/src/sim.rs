//! Multi-GPU cluster simulation (§7.6, Fig. 22).
//!
//! A cluster of `nodes × gpus_per_node` GPUs serves the quadruplet
//! deployment (Res101, Res152, VGG19, Bert) under a time-varying offered
//! load. Two systems are compared:
//!
//! * **Abacus + Kubernetes** — a K8s-style least-outstanding-queries router
//!   sends each query to a GPU; every GPU runs the full Abacus controller
//!   and overlaps operators across services.
//! * **Clockwork** — a central earliest-deadline-first queue; a free GPU
//!   pulls the most urgent query and runs it *exclusively* (Clockwork's
//!   per-GPU predictability discipline), with deadline-based admission
//!   (a query whose solo latency can no longer fit its deadline is dropped
//!   rather than scheduled — Clockwork refuses work it cannot finish in
//!   time).
//!
//! Both systems see the same arrival stream and the same per-GPU hardware.

use abacus_core::{
    AbacusConfig, AbacusScheduler, Query, Scheduler, SegmentalExecutor,
};
use abacus_metrics::{QueryOutcome, QueryRecord};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use faults::NodeDegradation;
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use std::sync::Arc;
use workload::{fork_seed, Arrival, RateTrace, SeededRng};

/// Clockwork admits a query only if its *worst-case* latency estimate fits
/// the deadline. Real Clockwork profiles worst-case execution; we scale the
/// mean solo estimate by this margin to cover run-to-run noise and the
/// per-group sync overhead.
pub const CLOCKWORK_ADMISSION_MARGIN: f64 = 1.15;

/// Which cluster system to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterSystem {
    /// Kubernetes routing + Abacus on every GPU.
    AbacusK8s,
    /// Clockwork: central EDF + exclusive per-GPU execution.
    Clockwork,
}

impl ClusterSystem {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            ClusterSystem::AbacusK8s => "Abacus",
            ClusterSystem::Clockwork => "Clockwork",
        }
    }
}

/// Cluster experiment configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of server nodes (paper: 4).
    pub nodes: usize,
    /// GPUs per node (paper: 4 × V100).
    pub gpus_per_node: usize,
    /// Deployed services (paper: Res101, Res152, VGG19, Bert on every GPU).
    pub models: Vec<ModelId>,
    /// Uniform QoS target (paper: 100 ms).
    pub qos_ms: f64,
    /// Aggregate offered load over time (split evenly across services).
    pub trace: RateTrace,
    /// Seed for arrivals, inputs and execution noise.
    pub seed: u64,
    /// Abacus controller settings (AbacusK8s only). Pin
    /// `predict_round_ms` for reproducible runs: the default calibrates
    /// from the wall clock inside every per-GPU scheduler.
    pub abacus: AbacusConfig,
    /// Simulate the (independent) nodes on separate threads. Node results
    /// are concatenated in node order, so the records — and every summary
    /// derived from them — are identical to a serial run.
    pub parallel: bool,
    /// Fault injection: nodes running at reduced capacity (every GPU on a
    /// listed node computes and moves data `slowdown`× slower, while QoS
    /// targets stay calibrated to healthy hardware). Empty = all healthy.
    pub degraded: Vec<NodeDegradation>,
}

impl ClusterConfig {
    /// The paper's §7.6 deployment at a given trace.
    pub fn paper(trace: RateTrace, seed: u64) -> Self {
        Self {
            nodes: 4,
            gpus_per_node: 4,
            models: vec![
                ModelId::ResNet101,
                ModelId::ResNet152,
                ModelId::Vgg19,
                ModelId::Bert,
            ],
            qos_ms: 100.0,
            trace,
            seed,
            abacus: AbacusConfig::default(),
            parallel: true,
            degraded: Vec::new(),
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Capacity slowdown of `node` (1.0 = healthy).
    pub fn node_slowdown(&self, node: usize) -> f64 {
        self.degraded
            .iter()
            .find(|d| d.node == node)
            .map_or(1.0, |d| d.slowdown)
    }
}

/// The GPU spec a node's GPUs actually run at: compute and bandwidth both
/// divided by the node's degradation slowdown.
fn node_gpu_spec(gpu: &GpuSpec, slowdown: f64) -> GpuSpec {
    assert!(
        slowdown.is_finite() && slowdown >= 1.0,
        "slowdown must be finite and >= 1, got {slowdown}"
    );
    if slowdown == 1.0 {
        return gpu.clone();
    }
    let mut g = gpu.clone();
    g.peak_flops /= slowdown;
    g.peak_bw /= slowdown;
    g
}

/// One query with its routing metadata.
#[derive(Debug, Clone)]
struct ClusterQuery {
    query: Query,
}

/// Aggregate utilisation of one GPU over a run — the autoscaler's input
/// signals (§7.9).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuUsage {
    /// Total wall time spent executing groups, ms.
    pub busy_ms: f64,
    /// Operator groups executed.
    pub groups: u64,
    /// Sum of the groups' sequential-execution times, ms (overlap-gain
    /// numerator).
    pub sequential_ms: f64,
}

impl GpuUsage {
    /// Fraction of the horizon the GPU was executing, in `[0, 1]`.
    pub fn busy_fraction(&self, horizon_ms: f64) -> f64 {
        (self.busy_ms / horizon_ms).clamp(0.0, 1.0)
    }

    /// Mean overlap gain: sequential time ÷ actual time (1.0 = no benefit).
    pub fn overlap_gain(&self) -> f64 {
        if self.busy_ms <= 0.0 {
            1.0
        } else {
            self.sequential_ms / self.busy_ms
        }
    }
}

/// The full outcome of a cluster run: per-query records plus per-GPU usage.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// One record per query.
    pub records: Vec<QueryRecord>,
    /// Usage per GPU, index order.
    pub gpu_usage: Vec<GpuUsage>,
}

/// Per-GPU serving state.
struct GpuSim {
    scheduler: Option<Box<dyn Scheduler>>,
    executor: SegmentalExecutor,
    queue: Vec<Query>,
    free_at: f64,
    usage: GpuUsage,
}

impl GpuSim {
    /// Outstanding queries (the K8s least-connections routing signal).
    fn outstanding(&self) -> usize {
        self.queue.len()
    }

    /// Run scheduling rounds until the GPU's next decision would start
    /// after `until`. Appends completion/drop records.
    fn advance(&mut self, until: f64, lib: &ModelLibrary, records: &mut Vec<QueryRecord>) {
        let scheduler = self.scheduler.as_mut().expect("abacus gpu");
        loop {
            if self.queue.is_empty() {
                break;
            }
            let earliest = self
                .queue
                .iter()
                .map(|q| q.arrival_ms)
                .fold(f64::INFINITY, f64::min);
            let t = self.free_at.max(earliest);
            if t > until {
                break;
            }
            let decision = scheduler.decide(t, &self.queue);
            for id in &decision.dropped {
                let pos = self.queue.iter().position(|q| q.id == *id).unwrap();
                let q = self.queue.swap_remove(pos);
                records.push(record_of(&q, t - q.arrival_ms, QueryOutcome::Dropped));
            }
            let Some(group) = decision.group else {
                continue;
            };
            let start = t + decision.overhead_ms;
            for e in &group.entries {
                let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                self.queue[pos].mark_started(start);
            }
            let spec = group.to_spec(
                |id| self.queue.iter().find(|q| q.id == id).unwrap(),
                lib,
            );
            let out = self.executor.execute(&spec);
            self.free_at = start + out.duration_ms;
            self.usage.busy_ms += out.duration_ms;
            self.usage.groups += 1;
            self.usage.sequential_ms += spec.sequential_ms(lib, self.executor.gpu());
            scheduler.on_group_complete(out.duration_ms);
            for e in &group.entries {
                let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                self.queue[pos].advance_to(e.op_end);
                if self.queue[pos].is_complete() {
                    let q = self.queue.swap_remove(pos);
                    records.push(record_of(
                        &q,
                        self.free_at - q.arrival_ms,
                        QueryOutcome::Completed,
                    ));
                }
            }
        }
    }
}

pub(crate) fn record_of(q: &Query, latency_ms: f64, outcome: QueryOutcome) -> QueryRecord {
    QueryRecord {
        service: q.model.index(),
        arrival_ms: q.arrival_ms,
        latency_ms,
        qos_ms: q.qos_ms,
        outcome,
        requests: q.input.batch,
        queue_ms: q.queue_ms().unwrap_or(latency_ms),
    }
}

/// Build the merged arrival stream: the aggregate trace split evenly across
/// the deployed services, each query with a random Table-1 input.
pub fn cluster_workload(
    cfg: &ClusterConfig,
    lib: &ModelLibrary,
) -> (Vec<Arrival>, Vec<QueryInput>) {
    shared_workload(&cfg.models, &cfg.trace, cfg.seed, lib)
}

/// The workload derivation shared by the round-robin and routed cluster
/// paths: identical `(models, trace, seed)` produce the byte-identical
/// arrival stream, so the two ingress designs are compared on equal
/// footing.
pub(crate) fn shared_workload(
    models: &[ModelId],
    trace: &RateTrace,
    seed: u64,
    lib: &ModelLibrary,
) -> (Vec<Arrival>, Vec<QueryInput>) {
    let mut rng = SeededRng::new(fork_seed(seed, 0x10AD));
    let per_service = trace.scaled(1.0 / models.len() as f64);
    let streams: Vec<Vec<Arrival>> = (0..models.len())
        .map(|s| per_service.generate(s, &mut rng))
        .collect();
    let arrivals = workload::merge_arrivals(streams);
    let inputs: Vec<QueryInput> = arrivals
        .iter()
        .map(|a| lib.random_input(models[a.service], &mut rng))
        .collect();
    (arrivals, inputs)
}

/// Run the cluster and return all query records (arrival-stamped, so
/// timelines can be rebuilt at any granularity).
pub fn run_cluster(
    system: ClusterSystem,
    cfg: &ClusterConfig,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    predictor: Option<Arc<dyn LatencyModel>>,
) -> Vec<QueryRecord> {
    run_cluster_detailed(system, cfg, lib, gpu, noise, predictor).records
}

/// Like [`run_cluster`], additionally returning per-GPU usage — the
/// signals the §7.9 autoscaler consumes.
pub fn run_cluster_detailed(
    system: ClusterSystem,
    cfg: &ClusterConfig,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    predictor: Option<Arc<dyn LatencyModel>>,
) -> ClusterRunResult {
    let (arrivals, inputs) = cluster_workload(cfg, lib);
    match system {
        ClusterSystem::AbacusK8s => run_abacus_k8s(
            cfg,
            lib,
            gpu,
            noise,
            predictor.expect("Abacus needs a predictor"),
            &arrivals,
            &inputs,
        ),
        ClusterSystem::Clockwork => run_clockwork(cfg, lib, gpu, noise, &arrivals, &inputs),
    }
}

fn make_query(
    id: u64,
    cfg: &ClusterConfig,
    lib: &ModelLibrary,
    a: &Arrival,
    input: QueryInput,
) -> ClusterQuery {
    let model = cfg.models[a.service];
    let n_ops = lib.graph(model, input).len();
    ClusterQuery {
        query: Query::new(id, model, input, a.at_ms, cfg.qos_ms, n_ops),
    }
}

fn run_abacus_k8s(
    cfg: &ClusterConfig,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    predictor: Arc<dyn LatencyModel>,
    arrivals: &[Arrival],
    inputs: &[QueryInput],
) -> ClusterRunResult {
    // The cluster-level ingress distributes arrivals round-robin across
    // nodes; inside a node, K8s least-connections routing picks the GPU.
    // Nodes never share queries, so each node is an independent simulation
    // — the unit [`ClusterConfig::parallel`] fans out over threads. With
    // one node this is exactly the old single-tier least-connections
    // cluster.
    let nodes = cfg.nodes.max(1);
    let mut node_arrivals: Vec<Vec<(u64, &Arrival, QueryInput)>> = vec![Vec::new(); nodes];
    for (i, (a, &input)) in arrivals.iter().zip(inputs).enumerate() {
        node_arrivals[i % nodes].push((i as u64, a, input));
    }
    let run_node = |node: usize| -> (Vec<QueryRecord>, Vec<GpuUsage>) {
        let node_gpu = node_gpu_spec(gpu, cfg.node_slowdown(node));
        let mut gpus: Vec<GpuSim> = (0..cfg.gpus_per_node)
            .map(|local| {
                // Global GPU index: seeds are identical to the pre-sharding
                // single-tier layout (and independent of node count).
                let g = node * cfg.gpus_per_node + local;
                GpuSim {
                    scheduler: Some(Box::new(AbacusScheduler::new(
                        predictor.clone(),
                        lib.clone(),
                        cfg.abacus.clone(),
                    ))),
                    executor: SegmentalExecutor::new(
                        node_gpu.clone(),
                        noise.clone(),
                        lib.clone(),
                        fork_seed(cfg.seed, 0xE000 + g as u64),
                    ),
                    queue: Vec::new(),
                    free_at: 0.0,
                    usage: GpuUsage::default(),
                }
            })
            .collect();
        let mut records = Vec::with_capacity(node_arrivals[node].len());
        for &(id, a, input) in &node_arrivals[node] {
            for g in gpus.iter_mut() {
                g.advance(a.at_ms, lib, &mut records);
            }
            // K8s least-connections routing within the node.
            let target = gpus
                .iter()
                .enumerate()
                .min_by_key(|(i, g)| (g.outstanding(), *i))
                .map(|(i, _)| i)
                .unwrap();
            let cq = make_query(id, cfg, lib, a, input);
            gpus[target].queue.push(cq.query);
        }
        for g in gpus.iter_mut() {
            g.advance(f64::INFINITY, lib, &mut records);
        }
        (records, gpus.iter().map(|g| g.usage).collect())
    };
    let per_node: Vec<(Vec<QueryRecord>, Vec<GpuUsage>)> = if cfg.parallel && nodes > 1 {
        use rayon::prelude::*;
        (0..nodes).into_par_iter().map(run_node).collect()
    } else {
        (0..nodes).map(run_node).collect()
    };
    let mut records = Vec::with_capacity(arrivals.len());
    let mut gpu_usage = Vec::with_capacity(cfg.total_gpus());
    for (rs, us) in per_node {
        records.extend(rs);
        gpu_usage.extend(us);
    }
    ClusterRunResult { records, gpu_usage }
}

fn run_clockwork(
    cfg: &ClusterConfig,
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    arrivals: &[Arrival],
    inputs: &[QueryInput],
) -> ClusterRunResult {
    let mut executors: Vec<SegmentalExecutor> = (0..cfg.total_gpus())
        .map(|g| {
            SegmentalExecutor::new(
                node_gpu_spec(gpu, cfg.node_slowdown(g / cfg.gpus_per_node.max(1))),
                noise.clone(),
                lib.clone(),
                fork_seed(cfg.seed, 0xC000 + g as u64),
            )
        })
        .collect();
    let mut free_at = vec![0.0f64; cfg.total_gpus()];
    let mut usage = vec![GpuUsage::default(); cfg.total_gpus()];
    let mut central: Vec<ClusterQuery> = Vec::new();
    let mut records = Vec::with_capacity(arrivals.len());

    let drain = |central: &mut Vec<ClusterQuery>,
                     free_at: &mut Vec<f64>,
                     usage: &mut Vec<GpuUsage>,
                     executors: &mut Vec<SegmentalExecutor>,
                     records: &mut Vec<QueryRecord>,
                     until: f64| {
        loop {
            if central.is_empty() {
                break;
            }
            // The next GPU to act is the one that frees earliest.
            let g = (0..free_at.len())
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .unwrap();
            let earliest = central
                .iter()
                .map(|q| q.query.arrival_ms)
                .fold(f64::INFINITY, f64::min);
            let t = free_at[g].max(earliest);
            if t > until {
                break;
            }
            // EDF pull with deadline admission: drop queries whose solo
            // latency can no longer fit before the deadline.
            central.sort_by(|a, b| {
                a.query
                    .deadline_ms()
                    .total_cmp(&b.query.deadline_ms())
                    .then(a.query.id.cmp(&b.query.id))
            });
            let mut pulled = None;
            while let Some(cq) = central.first() {
                if cq.query.arrival_ms > t {
                    break;
                }
                let solo = lib
                    .graph(cq.query.model, cq.query.input)
                    .solo_ms(executors[g].gpu());
                if t + solo * CLOCKWORK_ADMISSION_MARGIN > cq.query.deadline_ms() {
                    let cq = central.remove(0);
                    records.push(record_of(
                        &cq.query,
                        t - cq.query.arrival_ms,
                        QueryOutcome::Dropped,
                    ));
                } else {
                    pulled = Some(central.remove(0));
                    break;
                }
            }
            let Some(cq) = pulled else {
                // Nothing admissible has arrived yet for this GPU.
                if central.is_empty() {
                    break;
                }
                // All remaining queries arrive later than `t`; jump ahead.
                if earliest > until {
                    break;
                }
                free_at[g] = free_at[g].max(earliest);
                continue;
            };
            let spec = predictor::GroupSpec::new(
                vec![predictor::GroupEntry {
                    model: cq.query.model,
                    op_start: 0,
                    op_end: cq.query.n_ops,
                    input: cq.query.input,
                }],
                lib,
            );
            let out = executors[g].execute(&spec);
            free_at[g] = t + out.duration_ms;
            usage[g].busy_ms += out.duration_ms;
            usage[g].groups += 1;
            usage[g].sequential_ms += spec.sequential_ms(lib, executors[g].gpu());
            let mut q = cq.query;
            q.mark_started(t);
            records.push(record_of(
                &q,
                free_at[g] - q.arrival_ms,
                QueryOutcome::Completed,
            ));
        }
    };

    for (i, (a, &input)) in arrivals.iter().zip(inputs).enumerate() {
        drain(
            &mut central,
            &mut free_at,
            &mut usage,
            &mut executors,
            &mut records,
            a.at_ms,
        );
        central.push(make_query(i as u64, cfg, lib, a, input));
    }
    drain(
        &mut central,
        &mut free_at,
        &mut usage,
        &mut executors,
        &mut records,
        f64::INFINITY,
    );
    ClusterRunResult {
        records,
        gpu_usage: usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictor::features::SLOT_WIDTH;
    use predictor::MAX_COLOCATED;

    /// Cheap monotone predictor for tests.
    struct SpanModel {
        lib: Arc<ModelLibrary>,
        gpu: GpuSpec,
    }
    impl LatencyModel for SpanModel {
        fn predict_one(&self, x: &[f64]) -> f64 {
            let mut total = 0.0;
            let mut slot = 0;
            for (idx, m) in ModelId::ALL.into_iter().enumerate() {
                if x[idx] > 0.5 {
                    let base = predictor::MODEL_SLOT_BASE + slot * SLOT_WIDTH;
                    let span = x[base + 1] - x[base];
                    total += span * self.lib.solo_ms(m, m.max_input(), &self.gpu);
                    slot += 1;
                }
            }
            debug_assert!(slot <= MAX_COLOCATED);
            total
        }
        fn name(&self) -> &'static str {
            "span"
        }
    }

    fn tiny_cfg(peak_qps: f64) -> ClusterConfig {
        let trace = RateTrace::new(vec![peak_qps; 2]); // 2 minutes flat
        ClusterConfig {
            nodes: 1,
            gpus_per_node: 2,
            ..ClusterConfig::paper(trace, 5)
        }
    }

    #[test]
    fn both_systems_account_every_query() {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::v100();
        let noise = NoiseModel::calibrated();
        let cfg = tiny_cfg(40.0);
        let (arrivals, _) = cluster_workload(&cfg, &lib);
        let predictor: Arc<dyn LatencyModel> = Arc::new(SpanModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        let a = run_cluster(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor),
        );
        let c = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &gpu, &noise, None);
        assert_eq!(a.len(), arrivals.len());
        assert_eq!(c.len(), arrivals.len());
    }

    #[test]
    fn clockwork_p99_stays_under_qos() {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::v100();
        let noise = NoiseModel::calibrated();
        let cfg = tiny_cfg(60.0);
        let recs = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &gpu, &noise, None);
        let lats: Vec<f64> = recs
            .iter()
            .filter(|r| r.outcome == QueryOutcome::Completed)
            .map(|r| r.latency_ms)
            .collect();
        let p99 = abacus_metrics::percentile(&lats, 99.0);
        // Admission control: Clockwork never completes a query past its
        // deadline (it drops instead), so p99 <= QoS.
        assert!(p99 <= cfg.qos_ms + 1e-6, "p99 {p99}");
    }

    #[test]
    fn abacus_cluster_throughput_at_least_clockwork() {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::v100();
        let noise = NoiseModel::calibrated();
        let cfg = tiny_cfg(80.0); // keep both systems busy
        let predictor: Arc<dyn LatencyModel> = Arc::new(SpanModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        let a = run_cluster(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor),
        );
        let c = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &gpu, &noise, None);
        let completed_requests = |rs: &[QueryRecord]| -> u64 {
            rs.iter()
                .filter(|r| r.outcome == QueryOutcome::Completed)
                .map(|r| u64::from(r.requests))
                .sum()
        };
        let ar = completed_requests(&a);
        let cr = completed_requests(&c);
        assert!(
            ar as f64 >= cr as f64 * 0.95,
            "abacus {ar} vs clockwork {cr}"
        );
    }

    #[test]
    fn parallel_nodes_match_serial_bitwise() {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::v100();
        let noise = NoiseModel::calibrated();
        let trace = RateTrace::new(vec![50.0; 2]);
        let mut cfg = ClusterConfig {
            nodes: 2,
            gpus_per_node: 1,
            ..ClusterConfig::paper(trace, 5)
        };
        // Pin the prediction-round latency: the default calibrates it from
        // the wall clock, which would differ between the two runs.
        cfg.abacus.predict_round_ms = Some(0.08);
        let predictor: Arc<dyn LatencyModel> = Arc::new(SpanModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        cfg.parallel = false;
        let serial = run_cluster_detailed(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor.clone()),
        );
        cfg.parallel = true;
        let parallel = run_cluster_detailed(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor),
        );
        assert!(!serial.records.is_empty());
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.gpu_usage, parallel.gpu_usage);
    }

    #[test]
    fn degraded_node_loses_goodput_and_stays_deterministic() {
        let lib = Arc::new(ModelLibrary::new());
        let gpu = GpuSpec::v100();
        let noise = NoiseModel::calibrated();
        let trace = RateTrace::new(vec![50.0; 2]);
        let mut cfg = ClusterConfig {
            nodes: 2,
            gpus_per_node: 1,
            ..ClusterConfig::paper(trace, 5)
        };
        cfg.abacus.predict_round_ms = Some(0.08);
        let predictor: Arc<dyn LatencyModel> = Arc::new(SpanModel {
            lib: lib.clone(),
            gpu: gpu.clone(),
        });
        let healthy = run_cluster(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor.clone()),
        );
        cfg.degraded = vec![NodeDegradation {
            node: 1,
            slowdown: 3.0,
        }];
        cfg.parallel = false;
        let serial = run_cluster(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor.clone()),
        );
        cfg.parallel = true;
        let parallel = run_cluster(
            ClusterSystem::AbacusK8s,
            &cfg,
            &lib,
            &gpu,
            &noise,
            Some(predictor),
        );
        // Degradation is deterministic and serial ≡ parallel.
        assert_eq!(serial, parallel);
        // Same arrivals, worse outcomes: a 3× slower node must not
        // improve QoS.
        assert_eq!(healthy.len(), serial.len());
        let good = |rs: &[QueryRecord]| {
            rs.iter()
                .filter(|r| r.outcome == QueryOutcome::Completed && r.met_qos())
                .count()
        };
        assert!(
            good(&serial) < good(&healthy),
            "degraded {} vs healthy {}",
            good(&serial),
            good(&healthy)
        );
    }

    #[test]
    fn workload_split_across_services() {
        let lib = Arc::new(ModelLibrary::new());
        let cfg = tiny_cfg(100.0);
        let (arrivals, inputs) = cluster_workload(&cfg, &lib);
        assert_eq!(arrivals.len(), inputs.len());
        let mut counts = [0usize; 4];
        for a in &arrivals {
            counts[a.service] += 1;
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let frac = c as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.06, "{counts:?}");
        }
    }
}
