//! Cluster-level serving (§7.6, Fig. 22) and the §7.9 autoscaling
//! extension.
//!
//! Abacus deliberately does *not* replace cluster-level management (§3.1):
//! it slots under any router. [`sim`] pits "Kubernetes routing + Abacus on
//! every GPU" against a Clockwork model (central EDF admission, exclusive
//! per-GPU execution) on a 16-GPU V100 cluster replaying a synthetic
//! MAF-like trace; [`timeline`] produces the per-minute
//! throughput/p99/average series of Fig. 22; [`autoscale`] implements the
//! scale-in/out/up decision rule sketched as future work.
//!
//! [`route`] is the performance-first ingress that replaces round-robin +
//! least-connections: a headroom-scored router that scores every candidate
//! GPU with one batched predictor forward, sheds or spills when nothing
//! has headroom, supports heterogeneous (A100/V100/MIG) pools through
//! per-GPU derates, and is driven by [`autoscale::PredictiveAutoscaler`]
//! over diurnal traces.

pub mod autoscale;
pub mod route;
pub mod sim;
pub mod timeline;

pub use autoscale::{
    AutoscalePolicy, AutoscaleStats, NodeSignals, PredictiveAutoscaler, ScaleDecision,
};
pub use route::{
    derate_of, run_routed_cluster, run_routed_cluster_on, write_records_csv, HeadroomRouter,
    NodeHead, NodePool,
    RouteOutcome, RoutedClusterConfig, RoutedRunResult, RouterStats,
};
pub use sim::{
    cluster_workload, run_cluster, run_cluster_detailed, ClusterConfig, ClusterRunResult,
    ClusterSystem, GpuUsage,
};
pub use timeline::{
    add_counter_tracks, build_timeline, build_timeline_bucketed, summarize, TimelinePoint,
    TimelineSummary,
};
