//! Cluster-level serving (§7.6, Fig. 22) and the §7.9 autoscaling
//! extension.
//!
//! Abacus deliberately does *not* replace cluster-level management (§3.1):
//! it slots under any router. [`sim`] pits "Kubernetes routing + Abacus on
//! every GPU" against a Clockwork model (central EDF admission, exclusive
//! per-GPU execution) on a 16-GPU V100 cluster replaying a synthetic
//! MAF-like trace; [`timeline`] produces the per-minute
//! throughput/p99/average series of Fig. 22; [`autoscale`] implements the
//! scale-in/out/up decision rule sketched as future work.

pub mod autoscale;
pub mod sim;
pub mod timeline;

pub use autoscale::{AutoscalePolicy, NodeSignals, ScaleDecision};
pub use sim::{
    cluster_workload, run_cluster, run_cluster_detailed, ClusterConfig, ClusterRunResult,
    ClusterSystem, GpuUsage,
};
pub use timeline::{
    add_counter_tracks, build_timeline, build_timeline_bucketed, summarize, TimelinePoint,
    TimelineSummary,
};
