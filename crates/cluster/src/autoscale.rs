//! Cluster autoscaling sketch — the paper's §7.9 future-work direction.
//!
//! "Based on the experiment results, Abacus can be extended to determine
//! whether to scale out or up": a node whose GPUs still have overlap
//! headroom benefits from *scaling up* (denser co-location on the same
//! hardware), while a node whose operator groups already saturate the GPU
//! benefits from *scaling out* (more nodes). This module implements that
//! decision rule from the signals an Abacus node already produces: QoS
//! violation ratio and the measured overlap gain of its operator groups.
//!
//! [`PredictiveAutoscaler`] is the routed-cluster counterpart: instead of
//! reacting to violation ratios after the fact, it reads the *known* MAF
//! diurnal [`RateTrace`] a little ahead of the clock and sizes the active
//! GPU set so the predicted offered load lands at a target utilisation —
//! capacity is provisioned before the ramp arrives, not after the queue
//! melts.

use workload::RateTrace;

/// Signals sampled from one serving node over a control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSignals {
    /// Fraction of wall time the GPU was executing groups, in `[0, 1]`.
    pub busy_fraction: f64,
    /// QoS violation ratio over the window, in `[0, 1]`.
    pub violation_ratio: f64,
    /// Mean ratio of (sum of member queries' solo time) / (group duration)
    /// over executed groups: 1.0 = no overlap benefit, 2.0 = perfect
    /// pair-wise overlap.
    pub overlap_gain: f64,
}

/// The autoscaler's recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Capacity is fine; no change.
    Hold,
    /// Co-locate more services on the existing GPUs (scale up density):
    /// the node still extracts overlap headroom from its groups.
    ScaleUp,
    /// Add nodes (scale out): groups already saturate the hardware, so
    /// denser co-location would only time-share.
    ScaleOut,
    /// Load is so low the deployment can shed nodes.
    ScaleIn,
}

/// Thresholds for the decision rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Violation ratio above which capacity must grow.
    pub violation_high: f64,
    /// Busy fraction below which nodes can be shed.
    pub busy_low: f64,
    /// Overlap gain above which co-location still pays (scale up rather
    /// than out).
    pub overlap_gain_useful: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            violation_high: 0.02,
            busy_low: 0.30,
            overlap_gain_useful: 1.25,
        }
    }
}

impl AutoscalePolicy {
    /// Decide for one node.
    pub fn decide(&self, s: &NodeSignals) -> ScaleDecision {
        assert!((0.0..=1.0).contains(&s.busy_fraction), "busy out of range");
        assert!(
            (0.0..=1.0).contains(&s.violation_ratio),
            "violations out of range"
        );
        assert!(s.overlap_gain >= 0.0);
        if s.violation_ratio > self.violation_high {
            if s.overlap_gain >= self.overlap_gain_useful {
                // Groups still overlap well: denser co-location adds
                // effective capacity without new hardware.
                ScaleDecision::ScaleUp
            } else {
                // Saturated kernels (VGG-like): only more GPUs help.
                ScaleDecision::ScaleOut
            }
        } else if s.busy_fraction < self.busy_low {
            ScaleDecision::ScaleIn
        } else {
            ScaleDecision::Hold
        }
    }

    /// Decide for a fleet: scale out/up if *any* node needs it, scale in
    /// only when *all* nodes are idle enough.
    pub fn decide_fleet(&self, nodes: &[NodeSignals]) -> ScaleDecision {
        assert!(!nodes.is_empty());
        let mut decisions: Vec<ScaleDecision> = nodes.iter().map(|n| self.decide(n)).collect();
        if decisions.contains(&ScaleDecision::ScaleOut) {
            return ScaleDecision::ScaleOut;
        }
        if decisions.contains(&ScaleDecision::ScaleUp) {
            return ScaleDecision::ScaleUp;
        }
        if decisions.iter().all(|d| *d == ScaleDecision::ScaleIn) {
            return ScaleDecision::ScaleIn;
        }
        decisions.clear();
        ScaleDecision::Hold
    }
}

/// Predictive GPU-count sizing from a known offered-load timeline.
///
/// The routed cluster simulation ticks this once per routing epoch: the
/// scaler looks `lead_ms` ahead in the trace, converts the predicted
/// aggregate rate into reference-GPU equivalents, and the simulation
/// activates the cheapest prefix of its (derate-sorted) GPU priority
/// order whose summed capacity covers the demand. Deactivated GPUs drain
/// their queues but receive no new routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveAutoscaler {
    /// Queries/sec one reference-derate (1.0×) GPU sustains at QoS.
    pub capacity_qps_per_gpu: f64,
    /// Plan so predicted load sits at this fraction of active capacity.
    pub target_utilization: f64,
    /// How far ahead of the clock to read the trace, ms.
    pub lead_ms: f64,
    /// Never deactivate below this many GPUs.
    pub min_gpus: usize,
}

impl PredictiveAutoscaler {
    /// Conservative defaults: size for 70% utilisation one minute ahead.
    pub fn new(capacity_qps_per_gpu: f64, min_gpus: usize) -> Self {
        assert!(
            capacity_qps_per_gpu.is_finite() && capacity_qps_per_gpu > 0.0,
            "per-GPU capacity must be positive"
        );
        Self {
            capacity_qps_per_gpu,
            target_utilization: 0.7,
            lead_ms: 60_000.0,
            min_gpus: min_gpus.max(1),
        }
    }

    /// Reference-GPU equivalents needed to carry the trace's predicted
    /// rate at `now_ms + lead_ms` (clamped to the trace horizon) at the
    /// target utilisation. Fractional: the caller rounds up by activating
    /// GPUs until the summed capacity covers it.
    pub fn needed_capacity(&self, trace: &RateTrace, now_ms: f64) -> f64 {
        if trace.buckets() == 0 {
            return self.min_gpus as f64;
        }
        let predicted_qps = trace.qps_at_ms(now_ms + self.lead_ms);
        predicted_qps / (self.capacity_qps_per_gpu * self.target_utilization)
    }
}

/// What the predictive autoscaler did over one routed-cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AutoscaleStats {
    /// GPU activations (0 when no autoscaler ran).
    pub up_events: u64,
    /// GPU deactivations.
    pub down_events: u64,
    /// Active GPUs averaged over routing epochs (fleet size when no
    /// autoscaler ran).
    pub mean_active_gpus: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(busy: f64, viol: f64, gain: f64) -> NodeSignals {
        NodeSignals {
            busy_fraction: busy,
            violation_ratio: viol,
            overlap_gain: gain,
        }
    }

    #[test]
    fn overloaded_with_overlap_headroom_scales_up() {
        let p = AutoscalePolicy::default();
        assert_eq!(p.decide(&signals(0.95, 0.10, 1.6)), ScaleDecision::ScaleUp);
    }

    #[test]
    fn overloaded_saturated_scales_out() {
        let p = AutoscalePolicy::default();
        // VGG-like: overlap gain ~1 — co-location only time-shares.
        assert_eq!(p.decide(&signals(0.98, 0.10, 1.02)), ScaleDecision::ScaleOut);
    }

    #[test]
    fn idle_scales_in_and_nominal_holds() {
        let p = AutoscalePolicy::default();
        assert_eq!(p.decide(&signals(0.10, 0.0, 1.5)), ScaleDecision::ScaleIn);
        assert_eq!(p.decide(&signals(0.70, 0.01, 1.5)), ScaleDecision::Hold);
    }

    #[test]
    fn fleet_priorities() {
        let p = AutoscalePolicy::default();
        let out = signals(0.99, 0.2, 1.0);
        let up = signals(0.9, 0.2, 1.5);
        let idle = signals(0.1, 0.0, 1.5);
        let hold = signals(0.6, 0.0, 1.5);
        assert_eq!(p.decide_fleet(&[up, out, hold]), ScaleDecision::ScaleOut);
        assert_eq!(p.decide_fleet(&[up, hold]), ScaleDecision::ScaleUp);
        assert_eq!(p.decide_fleet(&[idle, idle]), ScaleDecision::ScaleIn);
        assert_eq!(p.decide_fleet(&[idle, hold]), ScaleDecision::Hold);
    }

    #[test]
    #[should_panic(expected = "busy out of range")]
    fn validates_inputs() {
        AutoscalePolicy::default().decide(&signals(1.5, 0.0, 1.0));
    }

    #[test]
    fn predictive_scaler_reads_the_trace_ahead() {
        // Ramp: 10 qps for the first minute, 100 qps for the second.
        let trace = RateTrace::new(vec![10.0, 100.0]);
        let sc = PredictiveAutoscaler {
            capacity_qps_per_gpu: 10.0,
            target_utilization: 1.0,
            lead_ms: 60_000.0,
            min_gpus: 1,
        };
        // At t=0 the scaler already sees minute 1's 100 qps.
        assert!((sc.needed_capacity(&trace, 0.0) - 10.0).abs() < 1e-9);
        // Past the horizon it holds the last minute's rate.
        assert!((sc.needed_capacity(&trace, 120_000.0) - 10.0).abs() < 1e-9);
        // No lead: sizes for the current minute.
        let now_only = PredictiveAutoscaler { lead_ms: 0.0, ..sc };
        assert!((now_only.needed_capacity(&trace, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predictive_scaler_respects_utilization_target() {
        let trace = RateTrace::new(vec![70.0]);
        let sc = PredictiveAutoscaler::new(10.0, 2);
        // 70 qps at 70% target utilisation → 10 reference GPUs.
        assert!((sc.needed_capacity(&trace, 0.0) - 10.0).abs() < 1e-9);
    }
}
