//! Headroom-scored cluster routing over heterogeneous GPU pools.
//!
//! The round-robin + least-connections ingress in [`crate::sim`] is
//! load-signal-free: it never asks *when* a candidate GPU could actually
//! finish the query. This module replaces it with the predicted-latency
//! design llm-d's Endpoint Picker ships for LLM pods, specialised to the
//! paper's deterministic-overlap predictor:
//!
//! * **Scoring.** Per arriving query, every active GPU is scored by
//!   predicted QoS headroom: the query's Eq. 2 budget minus the GPU's
//!   estimated queue wait minus the predicted service latency on that
//!   GPU's hardware ([`abacus_core::Query::routing_headroom_ms`]). All N
//!   candidate features are encoded into one contiguous buffer and scored
//!   with **one** batched
//!   [`predict_derated_into`](LatencyModel::predict_derated_into) forward
//!   — N-GPU scoring is one matrix pass, never N scalar forwards.
//! * **Shed / spill.** When no GPU has headroom, a query whose best
//!   predicted completion misses its deadline by at most
//!   [`RoutedClusterConfig::spill_slack_ms`] spills to a weighted pool
//!   favouring lower predicted completion (the predictor is conservative;
//!   near-misses often still make QoS). Anything worse is shed at ingress
//!   — the cluster refuses work it cannot finish instead of melting its
//!   per-GPU schedulers with doomed queries.
//! * **Heterogeneous pools.** Each [`NodePool`] carries its own
//!   [`GpuSpec`]; the router scores with a single reference predictor and
//!   per-GPU derate factors ([`derate_of`]), while each pool's in-node
//!   Abacus schedulers get their own (possibly derated) predictor.
//! * **Determinism.** Global routing couples the GPUs, so the simulation
//!   is *epoch-batched*: arrivals inside one epoch are routed serially
//!   against the router's mirrors, then every GPU simulates the epoch
//!   independently (fanned out over threads when
//!   [`RoutedClusterConfig::parallel`]), and the mirrors re-sync from
//!   actual GPU state at the epoch boundary. Serial and parallel runs are
//!   byte-identical — the PR 2/PR 6 contract, kept.
//!
//! All per-arrival router state lives in a persistent [`RouterScratch`];
//! a steady-state routing decision allocates nothing.

use crate::autoscale::{AutoscaleStats, PredictiveAutoscaler};
use crate::sim::{record_of, shared_workload, GpuUsage};
use abacus_core::{
    AbacusConfig, AbacusScheduler, Query, RoundDecision, Scheduler, SegmentalExecutor,
};
use abacus_metrics::{QueryOutcome, QueryRecord};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{
    encode_features_with_ops, DeratedModel, GroupEntry, LatencyModel, FEATURE_DIM,
    MODEL_SLOT_BASE, SLOT_WIDTH,
};
use std::sync::Arc;
use telemetry::{Counter, Hist, Telemetry};
use workload::{fork_seed, Arrival, RateTrace, SeededRng};

/// A homogeneous slice of the fleet: `gpus` identical GPUs of one spec.
#[derive(Debug, Clone)]
pub struct NodePool {
    /// Display label ("a100", "mig-2g" ...).
    pub name: &'static str,
    /// GPUs in this pool.
    pub gpus: usize,
    /// The hardware every GPU in the pool runs.
    pub gpu: GpuSpec,
}

/// Latency multiplier of `gpu` relative to `reference`: how much longer
/// the same operator group takes on `gpu` than on the hardware the
/// router's predictor was trained on. Roofline-pessimistic — the slower of
/// the compute and bandwidth ratios dominates.
pub fn derate_of(gpu: &GpuSpec, reference: &GpuSpec) -> f64 {
    let d = (reference.peak_flops / gpu.peak_flops).max(reference.peak_bw / gpu.peak_bw);
    assert!(d.is_finite() && d > 0.0, "degenerate derate {d}");
    d
}

/// Configuration of a routed (headroom-scored) cluster run.
#[derive(Debug, Clone)]
pub struct RoutedClusterConfig {
    /// Heterogeneous fleet, flattened to GPUs in pool order.
    pub pools: Vec<NodePool>,
    /// The hardware the router's predictor is calibrated to; per-pool
    /// derates are computed against it.
    pub reference: GpuSpec,
    /// Deployed services.
    pub models: Vec<ModelId>,
    /// Uniform QoS target, ms.
    pub qos_ms: f64,
    /// Aggregate offered load (split evenly across services — same
    /// derivation as [`crate::cluster_workload`]).
    pub trace: RateTrace,
    /// Seed for arrivals, inputs, execution noise and the spill draw.
    pub seed: u64,
    /// Per-GPU Abacus controller settings. Pin `predict_round_ms` for
    /// reproducible runs.
    pub abacus: AbacusConfig,
    /// Fan per-GPU epoch simulation out over threads. Byte-identical to
    /// the serial run by the epoch-batching construction.
    pub parallel: bool,
    /// Routing epoch, ms: arrivals within one epoch are routed against
    /// start-of-epoch GPU state plus the router's own incremental
    /// estimates. Smaller = fresher mirrors, more sync barriers.
    pub epoch_ms: f64,
    /// Spill band, ms: a query whose *best* predicted completion misses
    /// its deadline by at most this much is still admitted (weighted
    /// toward lower predicted completion); beyond it the query is shed.
    pub spill_slack_ms: f64,
    /// Predictive autoscaler; `None` keeps the whole fleet active.
    pub autoscale: Option<PredictiveAutoscaler>,
}

impl RoutedClusterConfig {
    /// The paper's §7.6 fleet (16 V100s) behind the headroom router.
    pub fn paper(trace: RateTrace, seed: u64) -> Self {
        Self {
            pools: vec![NodePool {
                name: "v100",
                gpus: 16,
                gpu: GpuSpec::v100(),
            }],
            reference: GpuSpec::v100(),
            models: vec![
                ModelId::ResNet101,
                ModelId::ResNet152,
                ModelId::Vgg19,
                ModelId::Bert,
            ],
            qos_ms: 100.0,
            trace,
            seed,
            abacus: AbacusConfig::default(),
            parallel: true,
            epoch_ms: 50.0,
            spill_slack_ms: 20.0,
            autoscale: None,
        }
    }

    /// Total GPU count across pools.
    pub fn total_gpus(&self) -> usize {
        self.pools.iter().map(|p| p.gpus).sum()
    }

    /// Per-GPU derates vs [`Self::reference`], flattened in pool order.
    pub fn gpu_derates(&self) -> Vec<f64> {
        self.pools
            .iter()
            .flat_map(|p| {
                let d = derate_of(&p.gpu, &self.reference);
                std::iter::repeat_n(d, p.gpus)
            })
            .collect()
    }
}

/// Router decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Placed on the GPU with the best (non-negative) predicted headroom.
    Route(usize),
    /// No GPU had headroom; admitted to this GPU via the weighted
    /// overflow pool.
    Spill(usize),
    /// Predicted to miss its deadline everywhere by more than the spill
    /// slack; refused at ingress.
    Shed,
}

/// Router decision counts over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Arrivals placed by headroom score.
    pub routed: u64,
    /// Arrivals admitted through the weighted overflow pool.
    pub spilled: u64,
    /// Arrivals refused at ingress.
    pub shed: u64,
    /// Batched scoring forwards issued (one per scored arrival).
    pub forwards: u64,
}

/// The representative in-flight query mirrored per GPU: the most urgent
/// incomplete queue entry at the last sync (or the last routed arrival).
/// Candidate features pair the arriving query against it, so the predicted
/// service latency reflects the co-location the query actually lands in.
#[derive(Debug, Clone, Copy)]
pub struct NodeHead {
    /// Model of the representative query.
    pub model: ModelId,
    /// Its input.
    pub input: QueryInput,
    /// First operator still to run.
    pub next_op: usize,
    /// Operators in its graph.
    pub n_ops: usize,
}

impl NodeHead {
    /// The head's mirror of an arriving (unstarted) query.
    fn of(q: &Query) -> Self {
        Self {
            model: q.model,
            input: q.input,
            next_op: q.next_op,
            n_ops: q.n_ops,
        }
    }
}

/// All router state, persistent across arrivals — scores, candidate
/// features and the per-GPU outstanding/free-at mirrors, in the style of
/// the scheduler's `DecisionScratch`. Buffers are sized once for the fleet
/// and reused; a steady-state [`HeadroomRouter::route`] allocates nothing.
#[derive(Debug)]
pub struct RouterScratch {
    /// Candidate feature rows, `cand.len() × FEATURE_DIM`.
    features: Vec<f64>,
    /// Arrival-only base row with the arrival in slot 0 (solo rows and
    /// pairs whose head has a higher model index copy this).
    base_lo: Vec<f64>,
    /// Arrival-only base row with the arrival in slot 1 (pairs whose head
    /// has a lower model index copy this).
    base_hi: Vec<f64>,
    /// Batched predictions, parallel to `cand` (derate-scaled).
    preds: Vec<f64>,
    /// Headroom scores, parallel to `cand`.
    scores: Vec<f64>,
    /// Derates gathered in candidate order (the batched forward's input).
    cand_derates: Vec<f64>,
    /// GPU index of each scored candidate.
    cand: Vec<usize>,
    /// Mirror: queries outstanding per GPU.
    outstanding: Vec<u32>,
    /// Mirror: estimated time each GPU frees, ms.
    est_free_ms: Vec<f64>,
    /// Mirror: representative in-flight query per GPU.
    head: Vec<Option<NodeHead>>,
    /// Whether each GPU accepts new routes (autoscaler-controlled).
    active: Vec<bool>,
    /// Per-GPU latency derate vs the router predictor's hardware.
    derate: Vec<f64>,
}

impl RouterScratch {
    fn new(derates: Vec<f64>) -> Self {
        let n = derates.len();
        assert!(n > 0, "a cluster needs at least one GPU");
        Self {
            features: Vec::with_capacity(n * FEATURE_DIM),
            base_lo: vec![0.0; FEATURE_DIM],
            base_hi: vec![0.0; FEATURE_DIM],
            preds: Vec::with_capacity(n),
            scores: Vec::with_capacity(n),
            cand_derates: Vec::with_capacity(n),
            cand: Vec::with_capacity(n),
            outstanding: vec![0; n],
            est_free_ms: vec![0.0; n],
            head: vec![None; n],
            active: vec![true; n],
            derate: derates,
        }
    }
}

/// The headroom-scored ingress router.
pub struct HeadroomRouter {
    model: Arc<dyn LatencyModel>,
    spill_slack_ms: f64,
    scratch: RouterScratch,
    rng: SeededRng,
    stats: RouterStats,
}

impl HeadroomRouter {
    /// Create a router over `derates.len()` GPUs. `model` must be
    /// calibrated to the hardware the derates are relative to; `seed`
    /// drives only the weighted spill draw.
    pub fn new(
        model: Arc<dyn LatencyModel>,
        derates: Vec<f64>,
        spill_slack_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(spill_slack_ms >= 0.0, "spill slack must be non-negative");
        Self {
            model,
            spill_slack_ms,
            scratch: RouterScratch::new(derates),
            rng: SeededRng::new(seed),
            stats: RouterStats::default(),
        }
    }

    /// Decision counts so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Mirror of queries outstanding on `gpu`.
    pub fn outstanding(&self, gpu: usize) -> u32 {
        self.scratch.outstanding[gpu]
    }

    /// Enable/disable `gpu` as a routing candidate (autoscaler hook; a
    /// disabled GPU drains but receives nothing new).
    pub fn set_active(&mut self, gpu: usize, on: bool) {
        self.scratch.active[gpu] = on;
    }

    /// Whether `gpu` currently accepts routes.
    pub fn is_active(&self, gpu: usize) -> bool {
        self.scratch.active[gpu]
    }

    /// GPUs currently accepting routes.
    pub fn active_gpus(&self) -> usize {
        self.scratch.active.iter().filter(|a| **a).count()
    }

    /// Re-anchor `gpu`'s mirror from its actual simulation state (epoch
    /// boundary): queue depth, when it frees, and its most urgent
    /// incomplete query.
    pub fn sync(&mut self, gpu: usize, outstanding: u32, free_at_ms: f64, head: Option<NodeHead>) {
        self.scratch.outstanding[gpu] = outstanding;
        self.scratch.est_free_ms[gpu] = free_at_ms;
        self.scratch.head[gpu] = head;
    }

    /// Route one arrival at time `t_ms`. Scores every active GPU with one
    /// batched forward, updates the winning GPU's mirror, and returns
    /// where the query went. Steady-state allocation-free.
    ///
    /// Predicted latencies are assumed non-negative, which licenses an
    /// overload fast-path: when queue wait alone pushes every active GPU
    /// past the spill slack (`qos − elapsed − wait < −slack`), the verdict
    /// is shed for *any* non-negative prediction, so the router sheds
    /// without encoding candidates or running the forward. Scored
    /// arrivals always use exactly one batched forward.
    pub fn route(
        &mut self,
        t_ms: f64,
        q: &Query,
        mut tel: Option<&mut Telemetry>,
    ) -> RouteOutcome {
        let s = &mut self.scratch;
        let mut min_wait = f64::INFINITY;
        for g in 0..s.active.len() {
            if s.active[g] {
                min_wait = min_wait.min((s.est_free_ms[g] - t_ms).max(0.0));
            }
        }
        if q.routing_headroom_ms(t_ms, min_wait, 0.0) < -self.spill_slack_ms {
            // Covers "no active GPU" too: min_wait stays +inf.
            self.stats.shed += 1;
            if let Some(t) = tel.as_deref_mut() {
                t.registry.inc(Counter::RouterShed);
            }
            return RouteOutcome::Shed;
        }
        s.cand.clear();
        s.cand_derates.clear();
        s.features.clear();
        // Every candidate row shares the arrival's half; encode it once
        // into the two slot positions it can occupy (slots are laid out in
        // model-index order) and build each row as a copy plus the head's
        // ~5-float contribution. Bit-identical to a per-row
        // `encode_features_with_ops` — debug builds assert it below.
        encode_features_with_ops(
            &[GroupEntry {
                model: q.model,
                op_start: q.next_op,
                op_end: q.n_ops,
                input: q.input,
            }],
            &[q.n_ops],
            &mut s.base_lo,
        );
        s.base_hi.fill(0.0);
        s.base_hi[q.model.index()] = 1.0;
        let slot1 = MODEL_SLOT_BASE + SLOT_WIDTH;
        s.base_hi[slot1..slot1 + SLOT_WIDTH]
            .copy_from_slice(&s.base_lo[MODEL_SLOT_BASE..MODEL_SLOT_BASE + SLOT_WIDTH]);
        for g in 0..s.active.len() {
            if !s.active[g] {
                continue;
            }
            s.cand.push(g);
            s.cand_derates.push(s.derate[g]);
            let at = s.features.len();
            // Pair the arrival against the GPU's representative in-flight
            // query when they can actually overlap; otherwise score the
            // solo group. Same-model pairs never co-locate (one query per
            // service), so they score solo too.
            match s.head[g] {
                Some(h) if h.model != q.model && h.next_op < h.n_ops => {
                    let (base, head_slot) = if q.model.index() < h.model.index() {
                        (&s.base_lo, slot1)
                    } else {
                        (&s.base_hi, MODEL_SLOT_BASE)
                    };
                    s.features.extend_from_slice(base);
                    let row = &mut s.features[at..];
                    row[h.model.index()] = 1.0;
                    let nh = h.n_ops as f64;
                    row[head_slot] = h.next_op as f64 / nh;
                    row[head_slot + 1] = 1.0;
                    row[head_slot + 2] = f64::from(h.input.batch) / 32.0;
                    row[head_slot + 3] = f64::from(h.input.seq) / 64.0;
                    #[cfg(debug_assertions)]
                    {
                        let entries = [
                            GroupEntry {
                                model: q.model,
                                op_start: q.next_op,
                                op_end: q.n_ops,
                                input: q.input,
                            },
                            GroupEntry {
                                model: h.model,
                                op_start: h.next_op,
                                op_end: h.n_ops,
                                input: h.input,
                            },
                        ];
                        let mut full = vec![0.0; FEATURE_DIM];
                        encode_features_with_ops(&entries, &[q.n_ops, h.n_ops], &mut full);
                        debug_assert_eq!(&s.features[at..], &full[..], "patched row diverged");
                    }
                }
                _ => {
                    s.features.extend_from_slice(&s.base_lo);
                }
            }
        }
        let n = s.cand.len();
        if n == 0 {
            self.stats.shed += 1;
            if let Some(t) = tel.as_deref_mut() {
                t.registry.inc(Counter::RouterShed);
            }
            return RouteOutcome::Shed;
        }
        // THE batched forward: one matrix pass scores all N candidates.
        self.model
            .predict_derated_into(&s.features, n, &s.cand_derates, &mut s.preds);
        self.stats.forwards += 1;
        s.scores.clear();
        let headroom = q.headroom_ms(t_ms);
        let mut best = 0usize;
        let mut worst_score = f64::INFINITY;
        for k in 0..n {
            let g = s.cand[k];
            let wait = (s.est_free_ms[g] - t_ms).max(0.0);
            let score = q.routing_headroom_ms(t_ms, wait, s.preds[k]);
            s.scores.push(score);
            if score < worst_score {
                worst_score = score;
            }
            // Max score; ties prefer fewer outstanding, then lower index —
            // the least-connections order the proptest pins for
            // homogeneous pools.
            let better = score > s.scores[best]
                || (score == s.scores[best]
                    && (s.outstanding[g], g) < (s.outstanding[s.cand[best]], s.cand[best]));
            if better {
                best = k;
            }
        }
        if let Some(t) = tel.as_deref_mut() {
            t.registry.inc(Counter::RouterForwards);
            t.registry
                .observe(Hist::RouterScoreSpreadMs, s.scores[best] - worst_score);
        }
        let (k, outcome) = if s.scores[best] >= 0.0 {
            self.stats.routed += 1;
            if let Some(t) = tel.as_deref_mut() {
                t.registry.inc(Counter::RouterRouted);
            }
            (best, RouteOutcome::Route(s.cand[best]))
        } else if s.scores[best] >= -self.spill_slack_ms {
            // Weighted overflow pool: draw a GPU with probability inversely
            // proportional to its predicted completion (wait + service =
            // headroom − score), favouring the least-bad candidates.
            let weight = |k: usize| 1.0 / (1e-3 + (headroom - s.scores[k]).max(0.0));
            let total: f64 = (0..n).map(weight).sum();
            let mut u = self.rng.f64() * total;
            let mut pick = n - 1;
            for k in 0..n {
                u -= weight(k);
                if u <= 0.0 {
                    pick = k;
                    break;
                }
            }
            self.stats.spilled += 1;
            if let Some(t) = tel.as_deref_mut() {
                t.registry.inc(Counter::RouterSpilled);
            }
            (pick, RouteOutcome::Spill(s.cand[pick]))
        } else {
            self.stats.shed += 1;
            if let Some(t) = tel {
                t.registry.inc(Counter::RouterShed);
            }
            return RouteOutcome::Shed;
        };
        // Commit the placement to the mirrors: one more outstanding query,
        // the free horizon extends by its predicted service time, and the
        // arrival becomes the GPU's representative.
        let g = s.cand[k];
        s.outstanding[g] += 1;
        s.est_free_ms[g] = s.est_free_ms[g].max(t_ms) + s.preds[k];
        s.head[g] = Some(NodeHead::of(q));
        outcome
    }
}

/// The full outcome of a routed cluster run.
#[derive(Debug, Clone)]
pub struct RoutedRunResult {
    /// One record per query: per-GPU completions/drops in GPU order, then
    /// ingress sheds (each stream in event order).
    pub records: Vec<QueryRecord>,
    /// Usage per GPU, pool-flattened index order.
    pub gpu_usage: Vec<GpuUsage>,
    /// Router decision counts.
    pub router: RouterStats,
    /// Autoscaler activity (fleet-sized mean when disabled).
    pub autoscale: AutoscaleStats,
}

/// Per-GPU serving state for the routed path. Unlike the pre-overhaul
/// `GpuSim`, rounds go through `decide_into` with admit/retire hooks, so
/// the scheduler's incremental order index and entry-buffer recycling stay
/// engaged — the decision layer runs at its PR 7 speed.
struct RoutedGpuSim {
    scheduler: AbacusScheduler,
    executor: SegmentalExecutor,
    queue: Vec<Query>,
    decision: RoundDecision,
    free_at: f64,
    usage: GpuUsage,
    records: Vec<QueryRecord>,
    /// Queries routed here this epoch, arrival order.
    assigned: Vec<Query>,
}

impl RoutedGpuSim {
    fn admit(&mut self, q: Query) {
        self.scheduler.on_admit(&q);
        self.queue.push(q);
    }

    fn retire(&mut self, pos: usize, latency_ms: f64, outcome: QueryOutcome) {
        self.scheduler.on_retire(&self.queue[pos]);
        let q = self.queue.swap_remove(pos);
        self.records.push(record_of(&q, latency_ms, outcome));
    }

    /// Run scheduling rounds until the next decision would start after
    /// `until`.
    fn advance(&mut self, until: f64, lib: &ModelLibrary) {
        loop {
            if self.queue.is_empty() {
                break;
            }
            let earliest = self
                .queue
                .iter()
                .map(|q| q.arrival_ms)
                .fold(f64::INFINITY, f64::min);
            let t = self.free_at.max(earliest);
            if t > until {
                break;
            }
            self.scheduler.decide_into(t, &self.queue, &mut self.decision);
            let n_dropped = self.decision.dropped.len();
            for i in 0..n_dropped {
                let id = self.decision.dropped[i];
                let pos = self.queue.iter().position(|q| q.id == id).unwrap();
                self.retire(pos, t - self.queue[pos].arrival_ms, QueryOutcome::Dropped);
            }
            let Some(group) = self.decision.group.take() else {
                continue;
            };
            let start = t + self.decision.overhead_ms;
            for e in &group.entries {
                let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                self.queue[pos].mark_started(start);
            }
            let spec = group.to_spec(|id| self.queue.iter().find(|q| q.id == id).unwrap(), lib);
            let out = self.executor.execute(&spec);
            self.free_at = start + out.duration_ms;
            self.usage.busy_ms += out.duration_ms;
            self.usage.groups += 1;
            self.usage.sequential_ms += spec.sequential_ms(lib, self.executor.gpu());
            self.scheduler.on_group_complete(out.duration_ms);
            for e in &group.entries {
                let pos = self.queue.iter().position(|q| q.id == e.query_id).unwrap();
                self.queue[pos].advance_to(e.op_end);
                if self.queue[pos].is_complete() {
                    self.retire(pos, self.free_at - self.queue[pos].arrival_ms, QueryOutcome::Completed);
                }
            }
            // Hand the entry buffer back for next round's recycling.
            self.decision.group = Some(group);
        }
    }

    /// The most urgent incomplete query — the router's representative.
    fn head(&self) -> Option<NodeHead> {
        self.queue
            .iter()
            .min_by(|a, b| {
                a.deadline_ms()
                    .total_cmp(&b.deadline_ms())
                    .then(a.id.cmp(&b.id))
            })
            .map(NodeHead::of)
    }
}

/// Run the headroom-routed cluster. `router_model` scores candidates on
/// [`RoutedClusterConfig::reference`] hardware; `pool_models` (parallel to
/// `cfg.pools`) drive the in-node Abacus schedulers — pass `None` to
/// derive them from `router_model` via per-pool [`DeratedModel`]s.
pub fn run_routed_cluster(
    cfg: &RoutedClusterConfig,
    lib: &Arc<ModelLibrary>,
    noise: &NoiseModel,
    router_model: Arc<dyn LatencyModel>,
    pool_models: Option<&[Arc<dyn LatencyModel>]>,
    telemetry: Option<&mut Telemetry>,
) -> RoutedRunResult {
    let (arrivals, inputs) = shared_workload(&cfg.models, &cfg.trace, cfg.seed, lib);
    run_routed_cluster_on(
        cfg,
        lib,
        noise,
        router_model,
        pool_models,
        telemetry,
        &arrivals,
        &inputs,
    )
}

/// [`run_routed_cluster`] over a caller-supplied workload (the same
/// `(arrivals, inputs)` that [`crate::cluster_workload`] derives) —
/// benchmarks generate the trace once and time only the routed run.
#[allow(clippy::too_many_arguments)]
pub fn run_routed_cluster_on(
    cfg: &RoutedClusterConfig,
    lib: &Arc<ModelLibrary>,
    noise: &NoiseModel,
    router_model: Arc<dyn LatencyModel>,
    pool_models: Option<&[Arc<dyn LatencyModel>]>,
    mut telemetry: Option<&mut Telemetry>,
    arrivals: &[Arrival],
    inputs: &[QueryInput],
) -> RoutedRunResult {
    if let Some(ms) = pool_models {
        assert_eq!(ms.len(), cfg.pools.len(), "one scheduler model per pool");
    }
    assert_eq!(arrivals.len(), inputs.len(), "one input per arrival");
    let derates = cfg.gpu_derates();
    let n_gpus = derates.len();
    let derived: Vec<Arc<dyn LatencyModel>>;
    let pool_models: &[Arc<dyn LatencyModel>] = match pool_models {
        Some(ms) => ms,
        None => {
            derived = cfg
                .pools
                .iter()
                .map(|p| {
                    let d = derate_of(&p.gpu, &cfg.reference);
                    Arc::new(DeratedModel::new(router_model.clone(), d)) as Arc<dyn LatencyModel>
                })
                .collect();
            &derived
        }
    };
    let mut sims: Vec<RoutedGpuSim> = Vec::with_capacity(n_gpus);
    for (p, pool) in cfg.pools.iter().enumerate() {
        for _ in 0..pool.gpus {
            let g = sims.len();
            sims.push(RoutedGpuSim {
                scheduler: AbacusScheduler::new(
                    pool_models[p].clone(),
                    lib.clone(),
                    cfg.abacus.clone(),
                ),
                executor: SegmentalExecutor::new(
                    pool.gpu.clone(),
                    noise.clone(),
                    lib.clone(),
                    fork_seed(cfg.seed, 0xE000 + g as u64),
                ),
                queue: Vec::new(),
                decision: RoundDecision::idle(),
                free_at: 0.0,
                usage: GpuUsage::default(),
                records: Vec::new(),
                assigned: Vec::new(),
            });
        }
    }
    let mut router = HeadroomRouter::new(
        router_model,
        derates.clone(),
        cfg.spill_slack_ms,
        fork_seed(cfg.seed, 0x5B111),
    );
    // Autoscaler priority: fastest (lowest-derate) GPUs first, index as
    // the deterministic tie-break.
    let mut priority: Vec<usize> = (0..n_gpus).collect();
    priority.sort_by(|&a, &b| derates[a].total_cmp(&derates[b]).then(a.cmp(&b)));
    let mut scale = AutoscaleStats::default();
    let mut shed_records: Vec<QueryRecord> = Vec::new();
    let horizon = cfg.trace.horizon_ms();
    assert!(cfg.epoch_ms > 0.0, "epoch must be positive");
    let epochs = ((horizon / cfg.epoch_ms).ceil() as usize).max(1);
    let mut next = 0usize;
    // Epoch `epochs` is the drain: no arrivals left, run queues dry.
    for e in 0..=epochs {
        let t_start = e as f64 * cfg.epoch_ms;
        let t_end = if e == epochs {
            f64::INFINITY
        } else {
            (e + 1) as f64 * cfg.epoch_ms
        };
        if let Some(sc) = &cfg.autoscale {
            let needed = sc.needed_capacity(&cfg.trace, t_start);
            let mut cum = 0.0;
            let mut on = 0usize;
            for &g in &priority {
                let activate = on < sc.min_gpus || cum < needed;
                if activate {
                    cum += 1.0 / derates[g];
                    on += 1;
                }
                if router.is_active(g) != activate {
                    if activate {
                        scale.up_events += 1;
                        if let Some(t) = telemetry.as_deref_mut() {
                            t.registry.inc(Counter::AutoscaleUpEvents);
                        }
                    } else {
                        scale.down_events += 1;
                        if let Some(t) = telemetry.as_deref_mut() {
                            t.registry.inc(Counter::AutoscaleDownEvents);
                        }
                    }
                    router.set_active(g, activate);
                }
            }
        }
        scale.mean_active_gpus += router.active_gpus() as f64 / (epochs + 1) as f64;
        // Serial routing pass over this epoch's arrivals.
        while next < arrivals.len() && arrivals[next].at_ms < t_end {
            let a = &arrivals[next];
            let model = cfg.models[a.service];
            let input = inputs[next];
            let n_ops = lib.graph(model, input).len();
            let q = Query::new(next as u64, model, input, a.at_ms, cfg.qos_ms, n_ops);
            match router.route(a.at_ms, &q, telemetry.as_deref_mut()) {
                RouteOutcome::Route(g) | RouteOutcome::Spill(g) => sims[g].assigned.push(q),
                RouteOutcome::Shed => shed_records.push(record_of(&q, 0.0, QueryOutcome::Dropped)),
            }
            next += 1;
        }
        // Independent per-GPU simulation of the epoch — the parallel
        // fan-out. GPU order is restored by the indexed collect, so the
        // serial and parallel paths produce identical state.
        let step = |mut s: RoutedGpuSim| -> RoutedGpuSim {
            let assigned = std::mem::take(&mut s.assigned);
            for q in assigned {
                s.advance(q.arrival_ms, lib);
                s.admit(q);
            }
            s.advance(t_end, lib);
            s
        };
        let owned = std::mem::take(&mut sims);
        sims = if cfg.parallel && rayon::worth_fanning_out(owned.len()) {
            use rayon::prelude::*;
            owned.into_par_iter().map(step).collect()
        } else {
            owned.into_iter().map(step).collect()
        };
        // Epoch barrier: re-anchor the router's mirrors on actual state.
        for (g, s) in sims.iter().enumerate() {
            router.sync(g, s.queue.len() as u32, s.free_at, s.head());
        }
    }
    debug_assert!(next == arrivals.len(), "arrivals routed past the horizon");
    let mut records = Vec::with_capacity(arrivals.len());
    let mut gpu_usage = Vec::with_capacity(n_gpus);
    for s in &mut sims {
        assert!(s.queue.is_empty(), "drain epoch left queries behind");
        records.append(&mut s.records);
        gpu_usage.push(s.usage);
    }
    records.append(&mut shed_records);
    assert_eq!(
        records.len(),
        arrivals.len(),
        "every arrival must be accounted exactly once"
    );
    if let Some(t) = telemetry {
        if let Some(h) = t.health_mut() {
            // Per-GPU sims retire queries on their own clocks; the burn-rate
            // windows need one global stream, so replay the outcomes in
            // retire-time order. The sort key is fully determined by the
            // records (ties broken by service, arrival, then the records'
            // own deterministic serial≡parallel order), so the resulting
            // alert stream is byte-reproducible.
            let mut order: Vec<usize> = (0..records.len()).collect();
            order.sort_by(|&a, &b| {
                let (ra, rb) = (&records[a], &records[b]);
                (ra.arrival_ms + ra.latency_ms)
                    .total_cmp(&(rb.arrival_ms + rb.latency_ms))
                    .then(ra.service.cmp(&rb.service))
                    .then(ra.arrival_ms.total_cmp(&rb.arrival_ms))
                    .then(a.cmp(&b))
            });
            for &i in &order {
                let r = &records[i];
                h.note_service(r.service, r.qos_ms);
                h.observe_query(r.arrival_ms + r.latency_ms, r.service, !r.met_qos());
            }
        }
    }
    RoutedRunResult {
        records,
        gpu_usage,
        router: router.stats(),
        autoscale: scale,
    }
}

/// Write per-query records as CSV — the byte-identity surface the
/// serial-vs-parallel contract is checked on.
pub fn write_records_csv(path: &std::path::Path, records: &[QueryRecord]) -> std::io::Result<()> {
    let mut csv = abacus_metrics::CsvWriter::create(
        path,
        &[
            "service",
            "arrival_ms",
            "latency_ms",
            "qos_ms",
            "outcome",
            "requests",
            "queue_ms",
        ],
    )?;
    for r in records {
        csv.write_row([
            r.service.to_string(),
            format!("{:.6}", r.arrival_ms),
            format!("{:.6}", r.latency_ms),
            format!("{:.3}", r.qos_ms),
            format!("{:?}", r.outcome),
            r.requests.to_string(),
            format!("{:.6}", r.queue_ms),
        ])?;
    }
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derates_are_roofline_pessimistic() {
        let v100 = GpuSpec::v100();
        let a100 = GpuSpec::a100();
        assert!((derate_of(&v100, &v100) - 1.0).abs() < 1e-12);
        // A100 is faster than V100 → derate < 1; the reverse > 1.
        assert!(derate_of(&a100, &v100) < 1.0);
        assert!(derate_of(&v100, &a100) > 1.0);
        // A MIG slice of an A100 is slower than the V100 reference.
        let mig = GpuSpec::a100().mig_slice(gpu_sim::MigProfile::TwoG10Gb);
        assert!(derate_of(&mig, &v100) > 1.0);
    }

    #[test]
    fn heterogeneous_config_flattens_derates_in_pool_order() {
        let trace = RateTrace::new(vec![10.0]);
        let mut cfg = RoutedClusterConfig::paper(trace, 1);
        cfg.pools = vec![
            NodePool {
                name: "a100",
                gpus: 2,
                gpu: GpuSpec::a100(),
            },
            NodePool {
                name: "v100",
                gpus: 1,
                gpu: GpuSpec::v100(),
            },
        ];
        let d = cfg.gpu_derates();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], d[1]);
        assert!(d[0] < 1.0);
        assert!((d[2] - 1.0).abs() < 1e-12);
    }

    /// Constant-latency model: every group predicts `c` ms.
    struct ConstModel(f64);
    impl LatencyModel for ConstModel {
        fn predict_one(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    fn test_query(id: u64, t: f64) -> Query {
        Query::new(
            id,
            ModelId::ResNet50,
            QueryInput::new(4, 1),
            t,
            100.0,
            10,
        )
    }

    #[test]
    fn router_sheds_when_nothing_can_finish() {
        let mut r = HeadroomRouter::new(Arc::new(ConstModel(500.0)), vec![1.0; 4], 20.0, 7);
        let q = test_query(0, 0.0);
        assert_eq!(r.route(0.0, &q, None), RouteOutcome::Shed);
        assert_eq!(r.stats().shed, 1);
        assert_eq!(r.stats().forwards, 1);
    }

    #[test]
    fn router_spills_inside_the_slack_band() {
        // Predicted completion misses the 100 ms deadline by 10 ms —
        // inside the 20 ms spill band.
        let mut r = HeadroomRouter::new(Arc::new(ConstModel(110.0)), vec![1.0; 4], 20.0, 7);
        let q = test_query(0, 0.0);
        match r.route(0.0, &q, None) {
            RouteOutcome::Spill(g) => assert!(g < 4),
            other => panic!("expected spill, got {other:?}"),
        }
        assert_eq!(r.stats().spilled, 1);
    }

    #[test]
    fn router_prefers_the_idle_gpu() {
        let mut r = HeadroomRouter::new(Arc::new(ConstModel(10.0)), vec![1.0; 3], 20.0, 7);
        // GPU 0 and 2 busy until t=40; GPU 1 idle.
        r.sync(0, 3, 40.0, None);
        r.sync(2, 1, 40.0, None);
        let q = test_query(0, 0.0);
        assert_eq!(r.route(0.0, &q, None), RouteOutcome::Route(1));
        // Mirror updated: GPU 1 now has one outstanding, frees at 10 ms.
        assert_eq!(r.outstanding(1), 1);
    }

    #[test]
    fn inactive_gpus_are_never_candidates() {
        let mut r = HeadroomRouter::new(Arc::new(ConstModel(10.0)), vec![1.0; 2], 20.0, 7);
        r.set_active(0, false);
        let q = test_query(0, 0.0);
        assert_eq!(r.route(0.0, &q, None), RouteOutcome::Route(1));
        r.set_active(1, false);
        assert_eq!(r.route(0.0, &q, None), RouteOutcome::Shed);
        assert_eq!(r.active_gpus(), 0);
    }

    #[test]
    fn derates_steer_routing_toward_faster_hardware() {
        // Same mirrors, but GPU 1 is 3× slower hardware: the idle-equal
        // cluster must route to the fast GPU 0.
        let mut r = HeadroomRouter::new(Arc::new(ConstModel(30.0)), vec![1.0, 3.0], 20.0, 7);
        let q = test_query(0, 0.0);
        assert_eq!(r.route(0.0, &q, None), RouteOutcome::Route(0));
    }
}
