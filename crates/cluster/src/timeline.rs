//! Per-minute timeline aggregation for the Fig. 22 series.
//!
//! The paper's cluster figure plots three stacked panels over the two-hour
//! trace: throughput (requests per second), 99%-ile latency, and average
//! latency, for Abacus and Clockwork against the offered load.

use abacus_metrics::{percentile, QueryOutcome, QueryRecord};
use telemetry::{ChromeTrace, PID_COUNTERS};
use workload::Arrival;

/// One minute of the Fig. 22 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Bucket index (a minute in the Fig. 22 series; arbitrary width via
    /// [`build_timeline_bucketed`]).
    pub minute: usize,
    /// Offered load, requests/s (arrival batch sizes summed).
    pub offered_rps: f64,
    /// Achieved throughput, completed requests/s.
    pub achieved_rps: f64,
    /// 99%-ile latency of completions in this minute, ms.
    pub p99_ms: f64,
    /// Mean latency of completions in this minute, ms.
    pub avg_ms: f64,
}

/// Build the per-minute series from arrivals (with batch sizes) and records.
pub fn build_timeline(
    arrivals: &[Arrival],
    arrival_requests: &[u32],
    records: &[QueryRecord],
    minutes: usize,
) -> Vec<TimelinePoint> {
    build_timeline_bucketed(arrivals, arrival_requests, records, minutes, 60_000.0)
}

/// [`build_timeline`] with an arbitrary bucket width (ms). With
/// `bucket_ms = 60_000.0` this is exactly the per-minute Fig. 22 series
/// (the /60 denominator falls out of `bucket_ms / 1000`, both exact).
pub fn build_timeline_bucketed(
    arrivals: &[Arrival],
    arrival_requests: &[u32],
    records: &[QueryRecord],
    buckets: usize,
    bucket_ms: f64,
) -> Vec<TimelinePoint> {
    assert_eq!(arrivals.len(), arrival_requests.len());
    assert!(bucket_ms > 0.0);
    let bucket_s = bucket_ms / 1000.0;
    let mut offered = vec![0.0f64; buckets];
    for (a, &req) in arrivals.iter().zip(arrival_requests) {
        let m = (a.at_ms / bucket_ms) as usize;
        if m < buckets {
            offered[m] += f64::from(req);
        }
    }
    let mut achieved = vec![0.0f64; buckets];
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); buckets];
    for r in records {
        if r.outcome != QueryOutcome::Completed {
            continue;
        }
        let end = r.arrival_ms + r.latency_ms;
        let m = (end / bucket_ms) as usize;
        if m < buckets {
            achieved[m] += f64::from(r.requests);
            latencies[m].push(r.latency_ms);
        }
    }
    (0..buckets)
        .map(|m| TimelinePoint {
            minute: m,
            offered_rps: offered[m] / bucket_s,
            achieved_rps: achieved[m] / bucket_s,
            p99_ms: percentile(&latencies[m], 99.0),
            avg_ms: abacus_metrics::mean(&latencies[m]),
        })
        .collect()
}

/// Lower a timeline onto Chrome trace counter (`C`) tracks: one sample per
/// bucket for offered vs achieved load, and one for the bucket's p99
/// latency — the Perfetto view of the Fig. 22 panels.
pub fn add_counter_tracks(trace: &mut ChromeTrace, points: &[TimelinePoint], bucket_ms: f64) {
    trace.add_process_name(PID_COUNTERS, "load");
    for p in points {
        let ts = p.minute as f64 * bucket_ms;
        trace.add_counter(
            PID_COUNTERS,
            "rps",
            ts,
            &[("offered", p.offered_rps), ("achieved", p.achieved_rps)],
        );
        trace.add_counter(PID_COUNTERS, "p99_ms", ts, &[("p99", p.p99_ms)]);
    }
}

/// Aggregate over the whole run (skipping a warm-up prefix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSummary {
    /// Mean achieved throughput, requests/s.
    pub mean_rps: f64,
    /// 99%-ile latency over all completions, ms.
    pub p99_ms: f64,
    /// Mean latency over all completions, ms.
    pub avg_ms: f64,
    /// Fraction of queries dropped.
    pub drop_ratio: f64,
}

/// Summarise a run, ignoring the first `warmup_minutes` of the trace.
pub fn summarize(records: &[QueryRecord], warmup_minutes: usize, minutes: usize) -> TimelineSummary {
    let start = warmup_minutes as f64 * 60_000.0;
    let span_s = ((minutes - warmup_minutes) as f64) * 60.0;
    let mut requests = 0.0;
    let mut lats = Vec::new();
    let mut dropped = 0usize;
    let mut total = 0usize;
    for r in records {
        if r.arrival_ms < start {
            continue;
        }
        total += 1;
        match r.outcome {
            QueryOutcome::Completed => {
                requests += f64::from(r.requests);
                lats.push(r.latency_ms);
            }
            QueryOutcome::Dropped | QueryOutcome::TimedOut => dropped += 1,
        }
    }
    TimelineSummary {
        mean_rps: requests / span_s,
        p99_ms: percentile(&lats, 99.0),
        avg_ms: abacus_metrics::mean(&lats),
        drop_ratio: if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: f64, latency: f64, outcome: QueryOutcome, requests: u32) -> QueryRecord {
        QueryRecord {
            service: 0,
            arrival_ms: arrival,
            latency_ms: latency,
            qos_ms: 100.0,
            outcome,
            requests,
            queue_ms: latency * 0.5,
        }
    }

    #[test]
    fn timeline_buckets_by_completion_minute() {
        let arrivals = vec![
            Arrival { service: 0, at_ms: 1_000.0 },
            Arrival { service: 0, at_ms: 59_900.0 },
        ];
        let reqs = vec![8, 16];
        // First completes in minute 0; second crosses into minute 1.
        let records = vec![
            rec(1_000.0, 50.0, QueryOutcome::Completed, 8),
            rec(59_900.0, 500.0, QueryOutcome::Completed, 16),
        ];
        let tl = build_timeline(&arrivals, &reqs, &records, 2);
        assert_eq!(tl.len(), 2);
        assert!((tl[0].offered_rps - 24.0 / 60.0).abs() < 1e-12);
        assert!((tl[0].achieved_rps - 8.0 / 60.0).abs() < 1e-12);
        assert!((tl[1].achieved_rps - 16.0 / 60.0).abs() < 1e-12);
        assert_eq!(tl[0].p99_ms, 50.0);
    }

    #[test]
    fn summary_skips_warmup_and_counts_drops() {
        let records = vec![
            rec(10_000.0, 10.0, QueryOutcome::Completed, 4), // warm-up, skipped
            rec(70_000.0, 20.0, QueryOutcome::Completed, 4),
            rec(80_000.0, 30.0, QueryOutcome::Dropped, 4),
        ];
        let s = summarize(&records, 1, 2);
        assert!((s.drop_ratio - 0.5).abs() < 1e-12);
        assert!((s.avg_ms - 20.0).abs() < 1e-12);
        assert!((s.mean_rps - 4.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_minutes_have_zero_stats() {
        let tl = build_timeline(&[], &[], &[], 3);
        assert_eq!(tl.len(), 3);
        assert!(tl.iter().all(|p| p.achieved_rps == 0.0 && p.p99_ms == 0.0));
    }

    #[test]
    fn bucketed_with_minute_width_matches_build_timeline() {
        let arrivals = vec![
            Arrival { service: 0, at_ms: 1_000.0 },
            Arrival { service: 1, at_ms: 61_000.0 },
        ];
        let reqs = vec![8, 16];
        let records = vec![
            rec(1_000.0, 50.0, QueryOutcome::Completed, 8),
            rec(61_000.0, 70.0, QueryOutcome::Completed, 16),
        ];
        let a = build_timeline(&arrivals, &reqs, &records, 2);
        let b = build_timeline_bucketed(&arrivals, &reqs, &records, 2, 60_000.0);
        assert_eq!(a, b);
        // Finer buckets re-normalise the rates to the bucket width.
        let fine = build_timeline_bucketed(&arrivals, &reqs, &records, 4, 30_000.0);
        assert_eq!(fine.len(), 4);
        assert!((fine[0].offered_rps - 8.0 / 30.0).abs() < 1e-12);
        assert!((fine[2].achieved_rps - 16.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn counter_tracks_emit_one_sample_pair_per_bucket() {
        let points = vec![
            TimelinePoint { minute: 0, offered_rps: 10.0, achieved_rps: 9.0, p99_ms: 40.0, avg_ms: 20.0 },
            TimelinePoint { minute: 1, offered_rps: 12.0, achieved_rps: 11.0, p99_ms: 45.0, avg_ms: 22.0 },
        ];
        let mut trace = ChromeTrace::new();
        add_counter_tracks(&mut trace, &points, 500.0);
        // 1 process-name event + 2 counter events per point.
        assert_eq!(trace.len(), 1 + 2 * points.len());
        let json = trace.to_json();
        assert!(json.contains("\"offered\":12"));
        assert!(json.contains("\"ts\":500000")); // minute 1 at 500 ms = 5e5 µs
    }
}
