//! Integration test host crate. Test sources live in the repo-root `tests/`
//! directory and are wired in via `[[test]]` entries in this crate's
//! manifest so they can span every workspace crate.
