//! Property test: the library's memoised kernel lowering is exactly the
//! fresh per-call lowering from the graph, for arbitrary Table-1
//! (model, batch, seq) combinations and arbitrary operator sub-ranges.

use dnn_models::{ModelId, ModelLibrary, QueryInput, BATCH_CHOICES, SEQ_CHOICES};
use proptest::prelude::*;
use std::sync::OnceLock;

fn lib() -> &'static ModelLibrary {
    static LIB: OnceLock<ModelLibrary> = OnceLock::new();
    LIB.get_or_init(ModelLibrary::new)
}

fn arb_case() -> impl Strategy<Value = ((usize, usize, usize), (f64, f64))> {
    // (model index, batch index, seq index), (range fractions). Seq index
    // is taken modulo the model's actual choices, so CV models map to seq=1.
    (
        (
            0usize..ModelId::ALL.len(),
            0usize..BATCH_CHOICES.len(),
            0usize..SEQ_CHOICES.len(),
        ),
        (0.0f64..1.0, 0.0f64..1.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_lowering_equals_fresh_lowering(((mi, bi, si), (a, b)) in arb_case()) {
        let model = ModelId::ALL[mi];
        let seqs = model.seq_choices();
        let input = QueryInput::new(BATCH_CHOICES[bi], seqs[si % seqs.len()]);
        let graph = lib().graph(model, input);

        let fresh = graph.kernels();
        prop_assert_eq!(lib().kernels(model, input), fresh.as_slice());

        let n = graph.ops.len();
        let (lo, hi) = (a * n as f64, b * n as f64);
        let (start, end) = if lo <= hi {
            (lo as usize, hi as usize)
        } else {
            (hi as usize, lo as usize)
        };
        prop_assert_eq!(
            lib().kernels_range(model, input, start, end),
            graph.kernels_range(start, end).as_slice()
        );
    }
}
