//! BERT-base (Devlin et al., 2018): 12 layers, hidden 768, 12 heads,
//! FFN 3072.
//!
//! The only model in Table 1 whose cost depends on the sequence length:
//! projection/FFN GEMMs scale linearly in `seq`, attention score/context
//! matmuls quadratically. This is exactly the input sensitivity §3.3 calls
//! out, and why the Fig. 8 feature vector carries `seqlen`.

use crate::graph::{GraphBuilder, ModelGraph};
use crate::op::Operator;

/// Hidden width.
const HIDDEN: f64 = 768.0;
/// Attention heads.
const HEADS: f64 = 12.0;
/// FFN inner width.
const FFN: f64 = 3072.0;
/// Encoder layers.
const LAYERS: usize = 12;

/// Build BERT-base for batch size `bs` and sequence length `seq`.
pub fn build(bs: u32, seq: u32) -> ModelGraph {
    let b = f64::from(bs);
    let s = f64::from(seq);
    let rows = b * s; // GEMM M dimension for all projections
    let tok_elems = rows * HIDDEN;
    let head_dim = HIDDEN / HEADS;

    let mut g = GraphBuilder::new("bert");

    // Embeddings: word + position lookup, then layer-norm.
    g.chain(Operator::embedding("embed/word", tok_elems));
    g.chain(Operator::add("embed/pos_add", tok_elems));
    g.chain(Operator::norm("embed/ln", tok_elems));

    for l in 0..LAYERS {
        let tag = |op: &str| format!("layer{l}/{op}");
        let input = g.last();
        let q = g.push(Operator::linear(tag("q_proj"), rows, HIDDEN, HIDDEN), &[input]);
        let k = g.push(Operator::linear(tag("k_proj"), rows, HIDDEN, HIDDEN), &[input]);
        let v = g.push(Operator::linear(tag("v_proj"), rows, HIDDEN, HIDDEN), &[input]);
        // Scores: (b*heads) batched s×d · d×s.
        let scores = g.push(
            Operator::matmul(tag("scores"), b * HEADS, s, head_dim, s),
            &[q, k],
        );
        let probs = g.push(Operator::softmax(tag("softmax"), b * HEADS * s * s), &[scores]);
        // Context: (b*heads) batched s×s · s×d.
        let ctx = g.push(
            Operator::matmul(tag("context"), b * HEADS, s, s, head_dim),
            &[probs, v],
        );
        let o = g.push(Operator::linear(tag("out_proj"), rows, HIDDEN, HIDDEN), &[ctx]);
        let a1 = g.push(Operator::add(tag("attn_add"), tok_elems), &[input, o]);
        let n1 = g.push(Operator::norm(tag("attn_ln"), tok_elems), &[a1]);
        let f1 = g.push(Operator::linear(tag("ffn1"), rows, HIDDEN, FFN), &[n1]);
        let gelu = g.push(Operator::activation(tag("gelu"), rows * FFN), &[f1]);
        let f2 = g.push(Operator::linear(tag("ffn2"), rows, FFN, HIDDEN), &[gelu]);
        let a2 = g.push(Operator::add(tag("ffn_add"), tok_elems), &[n1, f2]);
        g.push(Operator::norm(tag("ffn_ln"), tok_elems), &[a2]);
    }

    // Pooler over the [CLS] token.
    g.chain(Operator::linear("pooler/dense", b, HIDDEN, HIDDEN));
    g.chain(Operator::activation("pooler/tanh", b * HIDDEN));
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use gpu_sim::GpuSpec;

    #[test]
    fn operator_count() {
        let g = build(8, 32);
        // 3 embedding ops + 12 layers x 14 ops + 2 pooler ops.
        assert_eq!(g.len(), 3 + 12 * 14 + 2);
        assert!(g.validate_topological().is_ok());
    }

    #[test]
    fn linear_layers_dominate() {
        let g = build(8, 32);
        assert_eq!(g.count_kind(OpKind::Linear), 12 * 6 + 1);
        assert_eq!(g.count_kind(OpKind::MatMul), 24);
    }

    #[test]
    fn flops_match_published_numbers() {
        // BERT-base forward ≈ 2 * 110M params * tokens for the GEMM part;
        // at bs=1, seq=128 published estimates are ~22 GFLOPs.
        let f = build(1, 128).total_flops() / 1e9;
        assert!((18.0..28.0).contains(&f), "bert {f} GFLOP");
    }

    #[test]
    fn seq_scaling_superlinear() {
        // Doubling seq more than doubles FLOPs (attention is quadratic).
        let f32 = build(8, 32).total_flops();
        let f64_ = build(8, 64).total_flops();
        let ratio = f64_ / f32;
        assert!(ratio > 2.0 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn batch_scaling_linear() {
        let f8 = build(8, 32).total_flops();
        let f16 = build(16, 32).total_flops();
        assert!((f16 / f8 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solo_latency_reasonable() {
        // Max input (bs 32, seq 64) should land in the tens of ms, in the
        // same band as the CV models (QoS targets 50–150 ms at 2x).
        let ms = build(32, 64).solo_ms(&GpuSpec::a100());
        assert!((10.0..50.0).contains(&ms), "bert solo {ms} ms");
    }
}
