//! Inception-V3 (Szegedy et al., CVPR 2016), 299×299 inputs.
//!
//! Follows the torchvision structure: stem, 3× InceptionA (35×35),
//! InceptionB reduction, 4× InceptionC (17×17, factorised 1×7/7×1 convs),
//! InceptionD reduction, 2× InceptionE (8×8), head. 94 convolutions total.
//! Like ResNet, Inception's many small kernels under-occupy the A100, which
//! is why (Res152, IncepV3) is the pair where sequential scheduling hurts
//! most in Fig. 15.

use crate::graph::{GraphBuilder, ModelGraph};
use crate::op::Operator;

/// Convenience: conv + fused bn/relu, returning the norm's index.
#[allow(clippy::too_many_arguments)]
fn conv_bn(
    g: &mut GraphBuilder,
    name: &str,
    input: usize,
    b: f64,
    cin: f64,
    cout: f64,
    h: f64,
    w: f64,
    kh: f64,
    kw: f64,
) -> usize {
    let c = g.push(
        Operator::conv2d_rect(format!("{name}/conv"), b, cin, cout, h, w, kh, kw),
        &[input],
    );
    g.push(Operator::norm(format!("{name}/bn"), b * cout * h * w), &[c])
}

#[allow(clippy::too_many_arguments)]
fn square(g: &mut GraphBuilder, name: &str, input: usize, b: f64, cin: f64, cout: f64, hw: f64, k: f64) -> usize {
    conv_bn(g, name, input, b, cin, cout, hw, hw, k, k)
}

/// InceptionA at 35×35: outputs 64 + 64 + 96 + pool_features channels.
fn inception_a(g: &mut GraphBuilder, tag: &str, input: usize, b: f64, cin: f64, pf: f64) -> (usize, f64) {
    let hw = 35.0;
    let b1 = square(g, &format!("{tag}/b1x1"), input, b, cin, 64.0, hw, 1.0);
    let b5 = square(g, &format!("{tag}/b5x5_1"), input, b, cin, 48.0, hw, 1.0);
    let b5 = square(g, &format!("{tag}/b5x5_2"), b5, b, 48.0, 64.0, hw, 5.0);
    let d = square(g, &format!("{tag}/b3x3dbl_1"), input, b, cin, 64.0, hw, 1.0);
    let d = square(g, &format!("{tag}/b3x3dbl_2"), d, b, 64.0, 96.0, hw, 3.0);
    let d = square(g, &format!("{tag}/b3x3dbl_3"), d, b, 96.0, 96.0, hw, 3.0);
    let p = g.push(Operator::pool(format!("{tag}/pool"), b * cin * hw * hw, 3.0), &[input]);
    let p = square(g, &format!("{tag}/bpool"), p, b, cin, pf, hw, 1.0);
    let cout = 64.0 + 64.0 + 96.0 + pf;
    let cat = g.push(
        Operator::concat(format!("{tag}/concat"), b * cout * hw * hw),
        &[b1, b5, d, p],
    );
    (cat, cout)
}

/// InceptionB: 35×35 → 17×17 reduction, outputs cin + 384 + 96 channels.
fn inception_b(g: &mut GraphBuilder, tag: &str, input: usize, b: f64, cin: f64) -> (usize, f64) {
    let b3 = square(g, &format!("{tag}/b3x3"), input, b, cin, 384.0, 17.0, 3.0);
    let d = square(g, &format!("{tag}/dbl_1"), input, b, cin, 64.0, 35.0, 1.0);
    let d = square(g, &format!("{tag}/dbl_2"), d, b, 64.0, 96.0, 35.0, 3.0);
    let d = square(g, &format!("{tag}/dbl_3"), d, b, 96.0, 96.0, 17.0, 3.0);
    let p = g.push(Operator::pool(format!("{tag}/pool"), b * cin * 17.0 * 17.0, 3.0), &[input]);
    let cout = cin + 384.0 + 96.0;
    let cat = g.push(
        Operator::concat(format!("{tag}/concat"), b * cout * 17.0 * 17.0),
        &[b3, d, p],
    );
    (cat, cout)
}

/// InceptionC at 17×17 with factorised 7×7 convolutions; outputs 768.
fn inception_c(g: &mut GraphBuilder, tag: &str, input: usize, b: f64, cin: f64, c7: f64) -> (usize, f64) {
    let hw = 17.0;
    let b1 = square(g, &format!("{tag}/b1x1"), input, b, cin, 192.0, hw, 1.0);
    let s = square(g, &format!("{tag}/b7_1"), input, b, cin, c7, hw, 1.0);
    let s = conv_bn(g, &format!("{tag}/b7_2"), s, b, c7, c7, hw, hw, 1.0, 7.0);
    let s = conv_bn(g, &format!("{tag}/b7_3"), s, b, c7, 192.0, hw, hw, 7.0, 1.0);
    let d = square(g, &format!("{tag}/b7dbl_1"), input, b, cin, c7, hw, 1.0);
    let d = conv_bn(g, &format!("{tag}/b7dbl_2"), d, b, c7, c7, hw, hw, 7.0, 1.0);
    let d = conv_bn(g, &format!("{tag}/b7dbl_3"), d, b, c7, c7, hw, hw, 1.0, 7.0);
    let d = conv_bn(g, &format!("{tag}/b7dbl_4"), d, b, c7, c7, hw, hw, 7.0, 1.0);
    let d = conv_bn(g, &format!("{tag}/b7dbl_5"), d, b, c7, 192.0, hw, hw, 1.0, 7.0);
    let p = g.push(Operator::pool(format!("{tag}/pool"), b * cin * hw * hw, 3.0), &[input]);
    let p = square(g, &format!("{tag}/bpool"), p, b, cin, 192.0, hw, 1.0);
    let cout = 768.0;
    let cat = g.push(
        Operator::concat(format!("{tag}/concat"), b * cout * hw * hw),
        &[b1, s, d, p],
    );
    (cat, cout)
}

/// InceptionD: 17×17 → 8×8 reduction; outputs cin + 320 + 192.
fn inception_d(g: &mut GraphBuilder, tag: &str, input: usize, b: f64, cin: f64) -> (usize, f64) {
    let s = square(g, &format!("{tag}/b3_1"), input, b, cin, 192.0, 17.0, 1.0);
    let s = square(g, &format!("{tag}/b3_2"), s, b, 192.0, 320.0, 8.0, 3.0);
    let d = square(g, &format!("{tag}/b7_1"), input, b, cin, 192.0, 17.0, 1.0);
    let d = conv_bn(g, &format!("{tag}/b7_2"), d, b, 192.0, 192.0, 17.0, 17.0, 1.0, 7.0);
    let d = conv_bn(g, &format!("{tag}/b7_3"), d, b, 192.0, 192.0, 17.0, 17.0, 7.0, 1.0);
    let d = square(g, &format!("{tag}/b7_4"), d, b, 192.0, 192.0, 8.0, 3.0);
    let p = g.push(Operator::pool(format!("{tag}/pool"), b * cin * 8.0 * 8.0, 3.0), &[input]);
    let cout = cin + 320.0 + 192.0;
    let cat = g.push(
        Operator::concat(format!("{tag}/concat"), b * cout * 8.0 * 8.0),
        &[s, d, p],
    );
    (cat, cout)
}

/// InceptionE at 8×8: outputs 2048.
fn inception_e(g: &mut GraphBuilder, tag: &str, input: usize, b: f64, cin: f64) -> (usize, f64) {
    let hw = 8.0;
    let b1 = square(g, &format!("{tag}/b1x1"), input, b, cin, 320.0, hw, 1.0);
    let s = square(g, &format!("{tag}/b3_1"), input, b, cin, 384.0, hw, 1.0);
    let sa = conv_bn(g, &format!("{tag}/b3_2a"), s, b, 384.0, 384.0, hw, hw, 1.0, 3.0);
    let sb = conv_bn(g, &format!("{tag}/b3_2b"), s, b, 384.0, 384.0, hw, hw, 3.0, 1.0);
    let scat = g.push(
        Operator::concat(format!("{tag}/b3_cat"), b * 768.0 * hw * hw),
        &[sa, sb],
    );
    let d = square(g, &format!("{tag}/dbl_1"), input, b, cin, 448.0, hw, 1.0);
    let d = square(g, &format!("{tag}/dbl_2"), d, b, 448.0, 384.0, hw, 3.0);
    let da = conv_bn(g, &format!("{tag}/dbl_3a"), d, b, 384.0, 384.0, hw, hw, 1.0, 3.0);
    let db = conv_bn(g, &format!("{tag}/dbl_3b"), d, b, 384.0, 384.0, hw, hw, 3.0, 1.0);
    let dcat = g.push(
        Operator::concat(format!("{tag}/dbl_cat"), b * 768.0 * hw * hw),
        &[da, db],
    );
    let p = g.push(Operator::pool(format!("{tag}/pool"), b * cin * hw * hw, 3.0), &[input]);
    let p = square(g, &format!("{tag}/bpool"), p, b, cin, 192.0, hw, 1.0);
    let cout = 320.0 + 768.0 + 768.0 + 192.0;
    let cat = g.push(
        Operator::concat(format!("{tag}/concat"), b * cout * hw * hw),
        &[b1, scat, dcat, p],
    );
    (cat, cout)
}

/// Build Inception-V3 for batch size `bs` (299×299 inputs).
pub fn build(bs: u32) -> ModelGraph {
    let b = f64::from(bs);
    let mut g = GraphBuilder::new("inception_v3");

    // Stem.
    g.chain(Operator::conv2d("stem/conv1", b, 3.0, 32.0, 149.0, 3.0));
    g.chain(Operator::norm("stem/bn1", b * 32.0 * 149.0 * 149.0));
    g.chain(Operator::conv2d("stem/conv2", b, 32.0, 32.0, 147.0, 3.0));
    g.chain(Operator::norm("stem/bn2", b * 32.0 * 147.0 * 147.0));
    g.chain(Operator::conv2d("stem/conv3", b, 32.0, 64.0, 147.0, 3.0));
    g.chain(Operator::norm("stem/bn3", b * 64.0 * 147.0 * 147.0));
    g.chain(Operator::pool("stem/pool1", b * 64.0 * 73.0 * 73.0, 3.0));
    g.chain(Operator::conv2d("stem/conv4", b, 64.0, 80.0, 73.0, 1.0));
    g.chain(Operator::norm("stem/bn4", b * 80.0 * 73.0 * 73.0));
    g.chain(Operator::conv2d("stem/conv5", b, 80.0, 192.0, 71.0, 3.0));
    g.chain(Operator::norm("stem/bn5", b * 192.0 * 71.0 * 71.0));
    g.chain(Operator::pool("stem/pool2", b * 192.0 * 35.0 * 35.0, 3.0));

    let mut node = g.last();
    let mut cin = 192.0;
    for (i, pf) in [32.0, 64.0, 64.0].into_iter().enumerate() {
        let (n, c) = inception_a(&mut g, &format!("mixed5{}", (b'b' + i as u8) as char), node, b, cin, pf);
        node = n;
        cin = c;
    }
    let (n, c) = inception_b(&mut g, "mixed6a", node, b, cin);
    node = n;
    cin = c;
    for (i, c7) in [128.0, 160.0, 160.0, 192.0].into_iter().enumerate() {
        let (n, c) = inception_c(&mut g, &format!("mixed6{}", (b'b' + i as u8) as char), node, b, cin, c7);
        node = n;
        cin = c;
    }
    let (n, c) = inception_d(&mut g, "mixed7a", node, b, cin);
    node = n;
    cin = c;
    for i in 0..2 {
        let (n, c) = inception_e(&mut g, &format!("mixed7{}", (b'b' + i as u8) as char), node, b, cin);
        node = n;
        cin = c;
    }

    let p = g.push(Operator::pool("head/avgpool", b * 2048.0, 8.0), &[node]);
    g.push(Operator::linear("head/fc", b, 2048.0, 1000.0), &[p]);
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use gpu_sim::GpuSpec;

    #[test]
    fn conv_count_is_94() {
        // Inception-V3 famously has 94 convolutions.
        let g = build(8);
        assert_eq!(g.count_kind(OpKind::Conv2d), 94);
        assert!(g.validate_topological().is_ok());
    }

    #[test]
    fn flops_match_published_numbers() {
        // ≈ 5.7 GMACs -> ~11.4 GFLOPs per image; our traffic-folded stem
        // conventions land in the same band.
        let f = build(1).total_flops() / 1e9;
        assert!((9.0..15.0).contains(&f), "inception {f} GFLOP");
    }

    #[test]
    fn many_small_operators() {
        let g = build(32);
        assert!(g.len() > 200, "ops {}", g.len());
        // Most convs under-occupy the A100 even at batch 32 — the property
        // Fig. 15's (Res152, IncepV3) discussion relies on.
        let gpu = GpuSpec::a100();
        let under = g
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Conv2d)
            .filter(|o| o.kernel().occupancy(&gpu) < 0.9)
            .count();
        assert!(under * 2 > 94, "only {under}/94 convs under-occupy");
    }

    #[test]
    fn concat_structure() {
        let g = build(4);
        // 11 inception modules with a final concat each + 4 branch concats
        // inside the two E modules.
        assert_eq!(g.count_kind(OpKind::Concat), 11 + 4);
    }
}
