//! VGG-16 / VGG-19 (Simonyan & Zisserman, 2014), 224×224 inputs.
//!
//! VGG is the paper's "saturating" workload: its convolutions carry large
//! spatial extents and channel counts, so at batch 32 nearly every kernel
//! fills the A100 — which is why §7.3 finds almost no overlap headroom for
//! (VGG16, VGG19). Operator granularity matches a cuDNN-fused deployment:
//! each conv carries its bias+ReLU (cuDNN's fused activation path), leaving
//! conv, pool and the three fully-connected layers — the paper's
//! observation that VGG has far fewer operators than ResNet/Inception.

use crate::graph::{GraphBuilder, ModelGraph};
use crate::op::Operator;

/// Configuration letter → conv channel plan. `0` marks a 2×2 max-pool.
fn plan(depth: u32) -> &'static [u32] {
    match depth {
        16 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
        ],
        19 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512,
            512, 0,
        ],
        _ => panic!("unsupported VGG depth {depth}"),
    }
}

/// Build VGG-`depth` for batch size `bs`.
pub fn build(depth: u32, bs: u32) -> ModelGraph {
    let b = f64::from(bs);
    let mut g = GraphBuilder::new(format!("vgg{depth}"));
    let mut hw = 224.0;
    let mut cin = 3.0;
    let mut conv_idx = 0;
    let mut pool_idx = 0;
    for &c in plan(depth) {
        if c == 0 {
            hw /= 2.0;
            g.chain(Operator::pool(format!("pool{pool_idx}"), b * cin * hw * hw, 2.0));
            pool_idx += 1;
        } else {
            let cout = f64::from(c);
            // cuDNN-style fused conv+bias+ReLU: one kernel.
            g.chain(Operator::conv2d(
                format!("conv{conv_idx}"),
                b,
                cin,
                cout,
                hw,
                3.0,
            ));
            cin = cout;
            conv_idx += 1;
        }
    }
    // Classifier (ReLU fused into the GEMMs): 7x7x512 = 25088 features.
    g.chain(Operator::linear("fc6", b, 25_088.0, 4096.0));
    g.chain(Operator::linear("fc7", b, 4096.0, 4096.0));
    g.chain(Operator::linear("fc8", b, 4096.0, 1000.0));
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use gpu_sim::GpuSpec;

    #[test]
    fn operator_counts() {
        let v16 = build(16, 8);
        // 13 fused convs + 5 pools + 3 fc = 21.
        assert_eq!(v16.len(), 21);
        assert_eq!(v16.count_kind(OpKind::Conv2d), 13);
        let v19 = build(19, 8);
        assert_eq!(v19.count_kind(OpKind::Conv2d), 16);
        assert_eq!(v19.len(), 24);
        assert!(v19.validate_topological().is_ok());
    }

    #[test]
    fn vgg_has_far_fewer_ops_than_resnet() {
        let v = build(16, 8).len();
        let r = crate::resnet::build(101, 8).len();
        assert!(v * 4 < r, "vgg {v} resnet {r}");
    }

    #[test]
    fn flops_match_published_numbers() {
        // VGG-16 ≈ 15.5 GMACs -> ~31 GFLOPs per image.
        let f = build(16, 1).total_flops() / 1e9;
        assert!((27.0..36.0).contains(&f), "vgg16 {f} GFLOP");
        let f19 = build(19, 1).total_flops() / 1e9;
        assert!(f19 > f, "vgg19 {f19} vs vgg16 {f}");
    }

    #[test]
    fn vgg_convs_saturate_at_batch32() {
        let gpu = GpuSpec::a100();
        let g = build(16, 32);
        let sat = g
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Conv2d)
            .filter(|o| o.kernel().occupancy(&gpu) > 0.7)
            .count();
        let total = g.count_kind(OpKind::Conv2d);
        assert!(sat == total, "only {sat}/{total} convs near-saturate");
    }

    #[test]
    fn vgg_slower_than_resnet50() {
        let gpu = GpuSpec::a100();
        assert!(build(16, 32).solo_ms(&gpu) > crate::resnet::build(50, 32).solo_ms(&gpu));
    }
}
