//! Compiler-style element-wise operator fusion (extension).
//!
//! §2 of the paper notes that compiler-level work (Rammer, TensorRT) fuses
//! operators for stable high performance and "these works are not the
//! opposite of the way that Abacus processes the DNN query" — i.e. Abacus
//! composes with fusion. This pass implements the standard producer-consumer
//! fusion: a single-input element-wise operator (activation, normalisation,
//! softmax) whose producer is a matrix-like kernel (conv, linear, matmul)
//! with no other consumer merges into that producer, eliminating a kernel
//! launch and the intermediate tensor round-trip.
//!
//! Residual adds and concats are *not* fused (multiple producers), so the
//! DFG shape the scheduler sees stays faithful.

use crate::graph::ModelGraph;
use crate::op::OpKind;

/// True when `kind` can absorb a following element-wise op.
fn is_anchor(kind: OpKind) -> bool {
    matches!(kind, OpKind::Conv2d | OpKind::Linear | OpKind::MatMul)
}

/// True when `kind` is a single-input element-wise op that fusion can fold
/// into its producer.
fn is_fusable(kind: OpKind) -> bool {
    matches!(kind, OpKind::Activation | OpKind::Norm | OpKind::Softmax)
}

/// Fuse single-consumer element-wise operators into their producers.
///
/// Cost model of a fused kernel: FLOPs add; the intermediate tensor is no
/// longer written and re-read, so of the element-wise op's traffic only its
/// extra-operand share (≈ one third) survives; parallelism stays the
/// producer's.
pub fn fuse_elementwise(g: &ModelGraph) -> ModelGraph {
    let n = g.ops.len();
    // Producer list and consumer count per node.
    let mut producers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut consumer_count = vec![0usize; n];
    for &(src, dst) in &g.edges {
        producers[dst].push(src);
        consumer_count[src] += 1;
    }
    // fused_into[i] = Some(anchor) when op i is absorbed.
    let mut fused_into: Vec<Option<usize>> = vec![None; n];
    // Resolve an index through fusion chains to its surviving anchor.
    fn resolve(fused_into: &[Option<usize>], mut i: usize) -> usize {
        while let Some(a) = fused_into[i] {
            i = a;
        }
        i
    }
    let mut new_ops = g.ops.clone();
    for i in 0..n {
        if !is_fusable(g.ops[i].kind) || producers[i].len() != 1 {
            continue;
        }
        let producer = resolve(&fused_into, producers[i][0]);
        // The producer (or the anchor it already fused into) must be
        // matrix-like and feed only this op.
        if !is_anchor(new_ops[producer].kind) || consumer_count[producers[i][0]] != 1 {
            continue;
        }
        new_ops[producer].flops += g.ops[i].flops;
        new_ops[producer].bytes += g.ops[i].bytes / 3.0;
        new_ops[producer].name = format!("{}+{}", new_ops[producer].name, g.ops[i].kind.label());
        fused_into[i] = Some(producer);
    }
    // Rebuild: surviving ops keep topological order; edges re-point through
    // fused nodes and deduplicate.
    let mut remap = vec![usize::MAX; n];
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        if fused_into[i].is_none() {
            remap[i] = ops.len();
            ops.push(new_ops[i].clone());
        }
    }
    let mut edges: Vec<(usize, usize)> = g
        .edges
        .iter()
        .map(|&(src, dst)| {
            (
                remap[resolve(&fused_into, src)],
                remap[resolve(&fused_into, dst)],
            )
        })
        .filter(|&(a, b)| a != b)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let fused = ModelGraph {
        name: format!("{}(fused)", g.name),
        ops,
        edges,
    };
    debug_assert!(fused.validate_topological().is_ok());
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{ModelId, QueryInput};
    use gpu_sim::GpuSpec;

    #[test]
    fn resnet_conv_bn_chains_fuse() {
        let g = ModelId::ResNet152.build(QueryInput::new(32, 1));
        let f = fuse_elementwise(&g);
        // Every conv's bn fuses; adds and pools survive.
        assert!(f.len() < g.len(), "{} -> {}", g.len(), f.len());
        assert_eq!(f.count_kind(OpKind::Norm), 0);
        assert_eq!(f.count_kind(OpKind::Add), g.count_kind(OpKind::Add));
        assert_eq!(f.count_kind(OpKind::Conv2d), g.count_kind(OpKind::Conv2d));
        assert!(f.validate_topological().is_ok());
    }

    #[test]
    fn flops_preserved_traffic_and_launches_reduced() {
        let gpu = GpuSpec::a100();
        let g = ModelId::ResNet101.build(QueryInput::new(16, 1));
        let f = fuse_elementwise(&g);
        assert!((f.total_flops() - g.total_flops()).abs() < 1.0);
        let g_bytes: f64 = g.ops.iter().map(|o| o.bytes).sum();
        let f_bytes: f64 = f.ops.iter().map(|o| o.bytes).sum();
        assert!(f_bytes < g_bytes);
        // Fewer launches + less traffic => faster solo run.
        assert!(f.solo_ms(&gpu) < g.solo_ms(&gpu));
    }

    #[test]
    fn bert_fusion_pattern() {
        let g = ModelId::Bert.build(QueryInput::new(8, 32));
        let f = fuse_elementwise(&g);
        // GELU (after ffn1) and the pooler tanh (after its dense) fuse.
        assert_eq!(f.count_kind(OpKind::Activation), 0);
        // Softmax follows the scores matmul with one consumer — it fuses.
        assert_eq!(f.count_kind(OpKind::Softmax), 0);
        // LayerNorms follow residual adds (not anchors) — they survive.
        assert_eq!(f.count_kind(OpKind::Norm), g.count_kind(OpKind::Norm));
        assert_eq!(f.count_kind(OpKind::Add), g.count_kind(OpKind::Add));
        assert!(f.validate_topological().is_ok());
    }

    #[test]
    fn multi_consumer_producers_are_not_fused_through() {
        // In BERT, the attn layer-norm output feeds both ffn1 and the
        // residual add — ffn1's consumer count is 1 but the norm's producer
        // (the add) has 2 consumers? Construct an explicit diamond:
        use crate::graph::GraphBuilder;
        use crate::op::Operator;
        let mut b = GraphBuilder::new("diamond");
        let conv = b.chain(Operator::conv2d("conv", 1.0, 8.0, 8.0, 8.0, 3.0));
        // conv feeds two consumers: an activation and an add.
        let act = b.push(Operator::activation("act", 512.0), &[conv]);
        b.push(Operator::add("add", 512.0), &[conv, act]);
        let g = b.build();
        let f = fuse_elementwise(&g);
        // The activation must NOT fuse (conv has 2 consumers).
        assert_eq!(f.len(), 3);
        assert_eq!(f.count_kind(OpKind::Activation), 1);
    }

    #[test]
    fn fusion_is_idempotent() {
        let g = ModelId::InceptionV3.build(QueryInput::new(8, 1));
        let f1 = fuse_elementwise(&g);
        let f2 = fuse_elementwise(&f1);
        assert_eq!(f1.len(), f2.len());
    }
}
