//! ResNet-50 / 101 / 152 (He et al., CVPR 2016), bottleneck variant,
//! 224×224 inputs.
//!
//! Operator granularity matches what a PyTorch trace shows after cuDNN-style
//! fusion: one `conv` per convolution, one `norm` per (batch-norm + ReLU)
//! pair, one `add` per residual connection. At this granularity ResNet-101
//! has 244 operators — the paper quotes 241, so the counting convention
//! agrees to within the stem details.

use crate::graph::{GraphBuilder, ModelGraph};
use crate::op::Operator;

/// Stage repeat counts per variant.
fn blocks_for(depth: u32) -> [usize; 4] {
    match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        _ => panic!("unsupported ResNet depth {depth}"),
    }
}

/// Build ResNet-`depth` for batch size `bs` (224×224 inputs).
pub fn build(depth: u32, bs: u32) -> ModelGraph {
    let stages = blocks_for(depth);
    let b = f64::from(bs);
    let mut g = GraphBuilder::new(format!("resnet{depth}"));

    // Stem: 7x7/2 conv to 112, bn+relu, 3x3/2 max-pool to 56.
    g.chain(Operator::conv2d("stem/conv", b, 3.0, 64.0, 112.0, 7.0));
    g.chain(Operator::norm("stem/bn", b * 64.0 * 112.0 * 112.0));
    g.chain(Operator::pool("stem/pool", b * 64.0 * 56.0 * 56.0, 3.0));

    // Bottleneck stages: (width, spatial) per stage.
    let widths = [256.0, 512.0, 1024.0, 2048.0];
    let spatial = [56.0, 28.0, 14.0, 7.0];
    let mut cin = 64.0;
    for (s, &reps) in stages.iter().enumerate() {
        let cout = widths[s];
        let mid = cout / 4.0;
        let hw = spatial[s];
        for r in 0..reps {
            let tag = |op: &str| format!("layer{}.{r}/{op}", s + 1);
            let block_in = g.last();
            // Shortcut: 1x1 projection on the first block of each stage.
            let shortcut = if r == 0 {
                let c = g.push(Operator::conv2d(tag("down/conv"), b, cin, cout, hw, 1.0), &[block_in]);
                g.push(Operator::norm(tag("down/bn"), b * cout * hw * hw), &[c])
            } else {
                block_in
            };
            let c1 = g.push(Operator::conv2d(tag("conv1"), b, cin, mid, hw, 1.0), &[block_in]);
            let n1 = g.push(Operator::norm(tag("bn1"), b * mid * hw * hw), &[c1]);
            let c2 = g.push(Operator::conv2d(tag("conv2"), b, mid, mid, hw, 3.0), &[n1]);
            let n2 = g.push(Operator::norm(tag("bn2"), b * mid * hw * hw), &[c2]);
            let c3 = g.push(Operator::conv2d(tag("conv3"), b, mid, cout, hw, 1.0), &[n2]);
            let n3 = g.push(Operator::norm(tag("bn3"), b * cout * hw * hw), &[c3]);
            g.push(Operator::add(tag("add"), b * cout * hw * hw), &[shortcut, n3]);
            cin = cout;
        }
    }

    // Head: global average pool + fully connected.
    g.chain(Operator::pool("head/avgpool", b * 2048.0, 7.0));
    g.chain(Operator::linear("head/fc", b, 2048.0, 1000.0));
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use gpu_sim::GpuSpec;

    #[test]
    fn operator_counts() {
        // Per bottleneck: 6 conv/norm + add = 7; +2 per stage for downsample;
        // +3 stem +2 head.
        let r50 = build(50, 8);
        assert_eq!(r50.len(), 16 * 7 + 4 * 2 + 3 + 2);
        let r101 = build(101, 8);
        assert_eq!(r101.len(), 33 * 7 + 4 * 2 + 3 + 2); // 244 ≈ paper's 241
        let r152 = build(152, 8);
        assert_eq!(r152.len(), 50 * 7 + 4 * 2 + 3 + 2);
        assert!(r101.validate_topological().is_ok());
        assert!(r152.validate_topological().is_ok());
    }

    #[test]
    fn conv_counts() {
        let r50 = build(50, 4);
        // 16 blocks * 3 convs + 4 downsample + stem = 53.
        assert_eq!(r50.count_kind(OpKind::Conv2d), 53);
        let r152 = build(152, 4);
        assert_eq!(r152.count_kind(OpKind::Conv2d), 50 * 3 + 4 + 1);
    }

    #[test]
    fn flops_match_published_numbers() {
        // ResNet-50 ≈ 4.1 GFLOPs, ResNet-152 ≈ 11.5 GFLOPs per image
        // (2*MACs). Our stem/downsample conventions land within 15%.
        let r50 = build(50, 1).total_flops() / 1e9;
        assert!((7.0..9.5).contains(&r50), "r50 {r50} GFLOP (2x MACs = 8.2)");
        let r152 = build(152, 1).total_flops() / 1e9;
        assert!((19.0..26.0).contains(&r152), "r152 {r152} GFLOP (2x MACs = 23)");
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let f4 = build(50, 4).total_flops();
        let f32 = build(50, 32).total_flops();
        assert!((f32 / f4 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn resnet152_bs32_solo_near_paper() {
        // §3.2: ResNet-152 batch 32 runs solo in ≈ 24 ms on the A100.
        let g = build(152, 32);
        let ms = g.solo_ms(&GpuSpec::a100());
        assert!((18.0..34.0).contains(&ms), "solo {ms} ms");
    }

    #[test]
    fn deeper_is_slower() {
        let gpu = GpuSpec::a100();
        let t50 = build(50, 16).solo_ms(&gpu);
        let t101 = build(101, 16).solo_ms(&gpu);
        let t152 = build(152, 16).solo_ms(&gpu);
        assert!(t50 < t101 && t101 < t152);
    }
}
