//! A stacked LSTM language service — the "traditional NLP model" of the
//! paper's footnote 2.
//!
//! The footnote observes that LSTM-style models need no explicit `seqlen`
//! feature because the *number of operators* already encodes the sequence
//! length (one recurrence step per token). This builder realises exactly
//! that: a 2-layer LSTM with hidden width 1024 unrolls into `seq` recurrent
//! steps per layer, each step one fused gate GEMM plus one element-wise
//! gate/state update, so the operator count grows linearly with `seq`.
//!
//! The LSTM is an *extension* model: it is not part of the paper's Table 1
//! serving set (`zoo::PAPER_MODELS`), but the whole stack — feature
//! encoding, predictor, controller — supports it through the same unified
//! layout.

use crate::graph::{GraphBuilder, ModelGraph};
use crate::op::Operator;

/// Hidden state width.
const HIDDEN: f64 = 1024.0;
/// Embedding width (equals hidden for simplicity, as in common LM stacks).
const EMBED: f64 = 1024.0;
/// Stacked layers.
const LAYERS: usize = 2;

/// Build the stacked LSTM for batch size `bs` and sequence length `seq`.
pub fn build(bs: u32, seq: u32) -> ModelGraph {
    let b = f64::from(bs);
    let s = seq as usize;
    let mut g = GraphBuilder::new("lstm");

    g.chain(Operator::embedding("embed", b * f64::from(seq) * EMBED));

    for layer in 0..LAYERS {
        let in_dim = if layer == 0 { EMBED } else { HIDDEN };
        // The recurrence serialises steps: each step consumes the previous
        // step's hidden state, so the chain models the true dependency.
        for t in 0..s {
            let tag = |op: &str| format!("layer{layer}/t{t}/{op}");
            // Fused gate GEMM: [x_t, h_{t-1}] x W -> 4 gates.
            g.chain(Operator::linear(tag("gates"), b, in_dim + HIDDEN, 4.0 * HIDDEN));
            // Element-wise gate activations + cell/hidden update.
            g.chain(Operator::activation(tag("cell"), b * 4.0 * HIDDEN));
        }
    }

    // Output projection over the final hidden state.
    g.chain(Operator::linear("head/proj", b, HIDDEN, HIDDEN));
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuSpec;

    #[test]
    fn operator_count_encodes_sequence_length() {
        // Footnote 2: seq length is "related to the number of operators".
        for seq in [8u32, 16, 32, 64] {
            let g = build(8, seq);
            // embed + layers*(seq * 2) + head.
            assert_eq!(g.len(), 1 + LAYERS * (seq as usize) * 2 + 1);
            assert!(g.validate_topological().is_ok());
        }
    }

    #[test]
    fn flops_linear_in_seq_and_batch() {
        let base = build(4, 8).total_flops();
        let double_seq = build(4, 16).total_flops();
        let double_batch = build(8, 8).total_flops();
        // Embedding/head are small; recurrence dominates.
        assert!((double_seq / base - 2.0).abs() < 0.1, "{}", double_seq / base);
        assert!((double_batch / base - 2.0).abs() < 0.1);
    }

    #[test]
    fn recurrence_steps_under_occupy_the_gpu() {
        // Per-step GEMMs have tiny M (= batch), so they cannot saturate an
        // A100 — the overlap-friendly regime.
        let gpu = GpuSpec::a100();
        let g = build(32, 32);
        let gate = g
            .ops
            .iter()
            .find(|o| o.name.contains("gates"))
            .unwrap()
            .kernel();
        assert!(gate.occupancy(&gpu) < 0.5, "occ {}", gate.occupancy(&gpu));
    }

    #[test]
    fn solo_latency_in_serving_band() {
        let ms = build(32, 64).solo_ms(&GpuSpec::a100());
        assert!((3.0..60.0).contains(&ms), "lstm solo {ms} ms");
    }
}
