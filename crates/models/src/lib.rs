//! Operator-level DNN model zoo for the Abacus reproduction.
//!
//! Implements the seven models of the paper's Table 1 — ResNet-50/101/152,
//! Inception-V3, VGG-16/19, and BERT-base — as data-flow graphs of
//! [`Operator`]s with analytic FLOP / byte / parallelism counts, instantiated
//! for concrete (batch size, sequence length) inputs and lowered 1:1 to
//! `gpu-sim` kernels.
//!
//! The zoo reproduces the *structural* properties the paper's evaluation
//! leans on: ResNet/Inception are long chains of small, under-occupying
//! kernels (overlap-friendly); VGG is a short chain of saturating kernels
//! (overlap-hostile, §7.3); BERT's cost is sequence-length sensitive
//! (§3.3, Fig. 8). Solo latencies are calibrated to the A100 numbers the
//! paper reports (ResNet-152 bs32 ≈ 24 ms, QoS targets 50–150 ms at 2×).

pub mod bert;
pub mod fuse;
pub mod graph;
pub mod inception;
pub mod lstm;
pub mod op;
pub mod resnet;
pub mod vgg;
pub mod zoo;

pub use fuse::fuse_elementwise;
pub use graph::{GraphBuilder, ModelGraph};
pub use op::{OpKind, Operator};
pub use zoo::{ModelId, ModelLibrary, QueryInput, BATCH_CHOICES, MODEL_COUNT, SEQ_CHOICES};
