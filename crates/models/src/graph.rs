//! Data-flow graphs of instantiated models.
//!
//! As Fig. 1 of the paper shows, a DNN query is processed by executing the
//! operators of a data-flow graph sequentially in a topological order.
//! [`ModelGraph`] stores the operators *already in execution order* together
//! with the DFG edges; [`ModelGraph::validate_topological`] checks the
//! invariant (every edge points forward), and [`GraphBuilder`] makes the
//! model builders readable.

use crate::op::{OpKind, Operator};
use gpu_sim::{GpuSpec, KernelDesc};

/// An instantiated model: operators in topological (execution) order plus
/// data-flow edges between them.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGraph {
    /// Model name, e.g. `"resnet152"`.
    pub name: String,
    /// Operators in execution order.
    pub ops: Vec<Operator>,
    /// DFG edges `(producer, consumer)`, indices into `ops`.
    pub edges: Vec<(usize, usize)>,
}

impl ModelGraph {
    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Lower every operator to a kernel, in execution order.
    pub fn kernels(&self) -> Vec<KernelDesc> {
        self.ops.iter().map(Operator::kernel).collect()
    }

    /// Lower the operator range `[start, end)` (a query segment).
    pub fn kernels_range(&self, start: usize, end: usize) -> Vec<KernelDesc> {
        assert!(start <= end && end <= self.ops.len(), "invalid range");
        self.ops[start..end].iter().map(Operator::kernel).collect()
    }

    /// Total FLOPs of the model for this instantiation.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Resident parameter bytes (independent of batch size).
    pub fn weight_bytes(&self) -> f64 {
        self.ops.iter().map(|o| o.weight_bytes).sum()
    }

    /// Total solo execution time on `gpu`, ms.
    pub fn solo_ms(&self, gpu: &GpuSpec) -> f64 {
        self.ops.iter().map(|o| o.kernel().solo_ms(gpu)).sum()
    }

    /// Solo execution time of the range `[start, end)` on `gpu`, ms.
    pub fn solo_ms_range(&self, gpu: &GpuSpec, start: usize, end: usize) -> f64 {
        assert!(start <= end && end <= self.ops.len(), "invalid range");
        self.ops[start..end]
            .iter()
            .map(|o| o.kernel().solo_ms(gpu))
            .sum()
    }

    /// Count operators of a given kind.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// Check that the stored order is a valid topological order of the DFG
    /// (every edge goes from a lower to a higher index) and that edges are
    /// in bounds.
    pub fn validate_topological(&self) -> Result<(), String> {
        for &(src, dst) in &self.edges {
            if src >= self.ops.len() || dst >= self.ops.len() {
                return Err(format!("edge ({src},{dst}) out of bounds"));
            }
            if src >= dst {
                return Err(format!(
                    "edge ({src},{dst}) violates topological order in {}",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// Incremental builder used by the model constructors.
///
/// Tracks the index of the last appended operator so chains can be wired
/// without manual index bookkeeping.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    ops: Vec<Operator>,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Start building a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Append `op` consuming the outputs of `inputs` (indices of earlier
    /// ops). Returns the new op's index.
    pub fn push(&mut self, op: Operator, inputs: &[usize]) -> usize {
        let idx = self.ops.len();
        for &src in inputs {
            assert!(src < idx, "input {src} must precede op {idx}");
            self.edges.push((src, idx));
        }
        self.ops.push(op);
        idx
    }

    /// Append `op` consuming the most recently appended op (linear chain).
    /// For the first op, no edge is added.
    pub fn chain(&mut self, op: Operator) -> usize {
        let prev = self.ops.len().checked_sub(1);
        match prev {
            Some(p) => self.push(op, &[p]),
            None => self.push(op, &[]),
        }
    }

    /// Index of the most recently appended operator.
    ///
    /// # Panics
    /// Panics when the graph is still empty.
    pub fn last(&self) -> usize {
        assert!(!self.ops.is_empty(), "no ops appended yet");
        self.ops.len() - 1
    }

    /// Finish and validate.
    pub fn build(self) -> ModelGraph {
        let g = ModelGraph {
            name: self.name,
            ops: self.ops,
            edges: self.edges,
        };
        debug_assert!(g.validate_topological().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operator;

    fn tiny() -> ModelGraph {
        let mut b = GraphBuilder::new("tiny");
        let c = b.chain(Operator::conv2d("conv", 1.0, 3.0, 8.0, 8.0, 3.0));
        let r = b.push(Operator::activation("relu", 512.0), &[c]);
        let c2 = b.push(Operator::conv2d("conv2", 1.0, 8.0, 8.0, 8.0, 3.0), &[r]);
        b.push(Operator::add("add", 512.0), &[r, c2]);
        b.build()
    }

    #[test]
    fn builder_wires_edges() {
        let g = tiny();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (1, 3), (2, 3)]);
        assert!(g.validate_topological().is_ok());
    }

    #[test]
    fn kernels_match_ops() {
        let g = tiny();
        assert_eq!(g.kernels().len(), 4);
        assert_eq!(g.kernels_range(1, 3).len(), 2);
        assert!(g.kernels_range(2, 2).is_empty());
    }

    #[test]
    fn solo_range_decomposes() {
        let g = tiny();
        let gpu = GpuSpec::a100();
        let total = g.solo_ms(&gpu);
        let split = g.solo_ms_range(&gpu, 0, 2) + g.solo_ms_range(&gpu, 2, 4);
        assert!((total - split).abs() < 1e-12);
    }

    #[test]
    fn bad_topology_detected() {
        let mut g = tiny();
        g.edges.push((3, 1));
        assert!(g.validate_topological().is_err());
        g.edges.pop();
        g.edges.push((0, 99));
        assert!(g.validate_topological().is_err());
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn push_rejects_forward_inputs() {
        let mut b = GraphBuilder::new("bad");
        b.push(Operator::activation("a", 1.0), &[0]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn range_bounds_checked() {
        let g = tiny();
        let _ = g.kernels_range(2, 99);
    }
}
